"""Quickstart: build a SCAN index and query clusterings for several parameters.

Run with::

    python examples/quickstart.py

The script uses the 11-vertex worked example from Figure 1 of the paper, so
the output can be compared line by line against the figures: with
(mu, epsilon) = (3, 0.6) there are two clusters, one hub, and two outliers.
"""

from __future__ import annotations

from repro import ScanIndex
from repro.graphs import paper_example_graph


def main() -> None:
    graph = paper_example_graph()
    print(f"graph: {graph}")

    # Build the index once; it precomputes the similarity of every edge plus
    # the neighbor order and core order, so that queries for any (mu, epsilon)
    # are cheap afterwards.
    index = ScanIndex.build(graph, measure="cosine")
    report = index.construction_report
    print(
        f"index built: work={report.work:.0f}, span={report.span:.0f}, "
        f"wall={report.wall_seconds * 1000:.1f} ms"
    )

    # The setting used throughout the paper's running example.
    clustering = index.query(mu=3, epsilon=0.6, classify_hubs_and_outliers=True)
    print(f"\n(mu=3, eps=0.6): {clustering.num_clusters} clusters")
    for cluster_id, members in clustering.clusters().items():
        print(f"  cluster {cluster_id}: vertices {members.tolist()}")
    print(f"  cores:    {sorted(clustering.core_vertices().tolist())}")
    print(f"  hubs:     {clustering.hubs().tolist()}")
    print(f"  outliers: {clustering.outliers().tolist()}")

    # The point of the index: exploring other parameters costs almost nothing.
    print("\nparameter exploration:")
    for mu in (2, 3, 4):
        for epsilon in (0.5, 0.6, 0.7, 0.8):
            result = index.query(mu=mu, epsilon=epsilon)
            print(
                f"  mu={mu} eps={epsilon:.1f}: "
                f"{result.num_clusters} clusters, "
                f"{result.num_clustered_vertices} clustered vertices"
            )


if __name__ == "__main__":
    main()
