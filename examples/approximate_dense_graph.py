"""LSH-approximated index construction on a dense weighted graph.

Dense graphs (large arboricity) are where exact similarity computation is
most expensive and where the paper's LSH approximation pays off.  This
example builds the index on a dense weighted functional-association graph
(the regime of the paper's HumanBase datasets) three ways -- exactly, with
SimHash at a small sample count, and with SimHash at a large sample count --
and reports the construction work next to the clustering quality relative to
the exact result.

Run with::

    python examples/approximate_dense_graph.py
"""

from __future__ import annotations

from repro import ApproximationConfig, ScanIndex
from repro.graphs import dense_weighted_association
from repro.quality import adjusted_rand_index, modularity_sweep


def build_and_report(graph, label, approximate=None):
    index = ScanIndex.build(graph, measure="cosine", approximate=approximate)
    report = index.construction_report
    print(
        f"  {label:<24} work={report.work:.3e}  span={report.span:.0f}  "
        f"wall={report.wall_seconds:.2f} s"
    )
    return index


def main() -> None:
    graph = dense_weighted_association(400, num_modules=5, density=0.45, seed=7)
    print(f"dense weighted graph: {graph} (average degree {2 * graph.num_edges / graph.num_vertices:.0f})")

    print("\nindex construction:")
    exact_index = build_and_report(graph, "exact cosine")
    small_index = build_and_report(
        graph, "SimHash, k=32", ApproximationConfig(measure="cosine", num_samples=32, seed=1)
    )
    large_index = build_and_report(
        graph, "SimHash, k=256", ApproximationConfig(measure="cosine", num_samples=256, seed=1)
    )

    # Ground truth: the modularity-maximising clustering of the exact index.
    sweep = modularity_sweep(exact_index, epsilon_step=0.05)
    mu, epsilon = sweep.best_parameters()
    print(f"\nexact index best parameters: mu={mu}, eps={epsilon:.2f} "
          f"(modularity {sweep.best.modularity:.3f})")
    ground_truth = exact_index.query(mu, epsilon, deterministic_borders=True)

    print("\nclustering quality at the exact index's best parameters:")
    for label, index in (("SimHash, k=32", small_index), ("SimHash, k=256", large_index)):
        clustering = index.query(mu, epsilon, deterministic_borders=True)
        ari = adjusted_rand_index(clustering, ground_truth)
        print(f"  {label:<16} ARI vs exact = {ari:.3f}  "
              f"({clustering.num_clusters} clusters)")

    print(
        "\nHigher sample counts approach the exact clustering (ARI -> 1); the work of "
        "approximate construction grows with k but stays below the exact O(alpha*m) "
        "cost on dense graphs."
    )


if __name__ == "__main__":
    main()
