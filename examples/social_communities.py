"""Community detection in a synthetic social network.

This example mirrors the workload that motivates the paper: a social network
with planted communities is indexed once, the SCAN parameter grid is swept to
find the modularity-maximising clustering, and the recovered communities are
compared against the planted ground truth with the adjusted Rand index.
Hubs (users bridging several communities) and outliers are reported as well.

Run with::

    python examples/social_communities.py
"""

from __future__ import annotations

from repro import ScanIndex
from repro.graphs import planted_partition, planted_partition_labels
from repro.quality import adjusted_rand_index, modularity, modularity_sweep

NUM_COMMUNITIES = 12
COMMUNITY_SIZE = 60


def main() -> None:
    graph = planted_partition(
        NUM_COMMUNITIES,
        COMMUNITY_SIZE,
        p_intra=0.3,
        p_inter=0.004,
        seed=42,
    )
    ground_truth = planted_partition_labels(NUM_COMMUNITIES, COMMUNITY_SIZE)
    print(f"social network: {graph}")

    index = ScanIndex.build(graph, measure="cosine")
    print(
        "index construction: "
        f"work={index.construction_report.work:.3e}, "
        f"wall={index.construction_report.wall_seconds:.2f} s"
    )

    # Sweep the SCAN parameter grid; every query reads prefixes of the
    # precomputed orders, so the whole sweep is cheap.
    sweep = modularity_sweep(index, epsilon_step=0.05)
    best = sweep.best
    print(
        f"best parameters: mu={best.mu}, eps={best.epsilon:.2f} "
        f"(modularity {best.modularity:.3f}, {best.num_clusters} clusters)"
    )

    clustering = index.query(
        best.mu, best.epsilon, deterministic_borders=True, classify_hubs_and_outliers=True
    )
    score = adjusted_rand_index(clustering, ground_truth)
    print(f"agreement with planted communities (ARI): {score:.3f}")
    print(f"modularity of the clustering:            {modularity(graph, clustering):.3f}")
    print(f"clustered vertices: {clustering.num_clustered_vertices}/{graph.num_vertices}")
    print(f"hubs: {clustering.hubs().size}, outliers: {clustering.outliers().size}")

    sizes = clustering.cluster_sizes()
    print(f"cluster sizes (largest 12): {sizes[:12].tolist()}")


if __name__ == "__main__":
    main()
