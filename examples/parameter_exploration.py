"""Why an index: exploring many SCAN parameter settings cheaply.

SCAN's two parameters (mu, epsilon) are hard to pick in advance, so users try
many settings.  Non-index algorithms (pSCAN/ppSCAN) redo the expensive
similarity computations on every run, while the index pays that cost once.
This example measures the simulated running time of answering a grid of 27
parameter settings both ways and prints the break-even point, mirroring the
discussion around Figures 6 and 7 of the paper.

Run with::

    python examples/parameter_exploration.py
"""

from __future__ import annotations

from repro import ScanIndex
from repro.baselines import pscan_clustering
from repro.bench import PARALLEL_WORKERS, format_table
from repro.graphs import planted_partition
from repro.parallel import Scheduler


def main() -> None:
    graph = planted_partition(15, 70, p_intra=0.3, p_inter=0.004, seed=3)
    print(f"graph: {graph}")

    settings = [(mu, round(eps, 2)) for mu in (2, 5, 10) for eps in
                (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)]

    # Index-based: pay construction once, then answer every query from the index.
    construction = Scheduler(PARALLEL_WORKERS)
    index = ScanIndex.build(graph, measure="cosine", scheduler=construction)
    construction_time = construction.simulated_time()

    rows = []
    index_query_total = 0.0
    ppscan_total = 0.0
    for mu, epsilon in settings:
        query_scheduler = Scheduler(PARALLEL_WORKERS)
        clustering = index.query(mu, epsilon, scheduler=query_scheduler)
        index_time = query_scheduler.simulated_time()
        index_query_total += index_time

        ppscan_scheduler = Scheduler(PARALLEL_WORKERS)
        ppscan = pscan_clustering(graph, mu, epsilon, scheduler=ppscan_scheduler)
        ppscan_time = ppscan_scheduler.simulated_time()
        ppscan_total += ppscan_time

        rows.append([
            mu, epsilon, clustering.num_clusters,
            index_time, ppscan_time, ppscan_time / max(index_time, 1e-12),
        ])

    print(format_table(
        ["mu", "epsilon", "clusters", "index query (s, simulated)",
         "ppSCAN (s, simulated)", "ppSCAN / index"],
        rows,
    ))

    print(f"\nindex construction (simulated): {construction_time:.4f} s")
    print(f"sum of index queries:           {index_query_total:.4f} s")
    print(f"sum of ppSCAN runs:             {ppscan_total:.4f} s")
    total_index = construction_time + index_query_total
    print(f"index total (construction + queries): {total_index:.4f} s")
    if total_index < ppscan_total:
        print("=> over this parameter exploration the index already pays for itself, "
              "as the paper observes for Orkut and Friendster.")
    else:
        queries_needed = construction_time / max(
            (ppscan_total - index_query_total) / len(settings), 1e-12
        )
        print(f"=> the index pays for itself after roughly {queries_needed:.0f} queries.")


if __name__ == "__main__":
    main()
