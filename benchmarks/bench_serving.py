"""Serving-loop benchmark: steady-state queries/sec and allocation footprint.

Not a figure of the paper -- this tracks the repo's serving trajectory: the
throughput of answering a repeated-``(μ, ε)`` request stream from a *loaded*
columnar artifact through a :class:`~repro.serve.session.ClusterSession`
(recycled buffers + ε-snapped result cache), against the cold per-query path
that allocates O(n) scratch per call.  Three modes are measured over the
same seeded request stream:

``cold``
    ``ScanIndex.query`` per request -- fresh union-find, dense labels.
``recycled``
    ``ClusterSession.serve`` with the cache disabled -- recycled buffers,
    compact results, every request computed.
``cached``
    ``ClusterSession.serve`` with the LRU cache -- steady state after one
    warm pass, repeats answered from the cache.

Each mode is timed per request over three passes of the stream (the best
pass counts: single-shot totals on a shared box swing by ±30%, which is
larger than the effects being measured), reporting mean throughput plus the
p50/p99 request latencies of the best pass -- the serving trajectory is
tail-aware, matching the concurrent-tier numbers in
``bench_serve_concurrent.py``.  Each mode is then re-run under
``tracemalloc`` to record the mean per-request peak allocation, which is
where the O(n)-per-query tax of the cold path shows up.  Results accumulate
in ``BENCH_serving.json`` next to the repository root.

On ``recycled_speedup``: the recycled mode answers every request *and*
builds the compact cacheable payload, which the cold mode does not -- so on
small graphs, where the dense O(n) arrays that recycling avoids are nearly
free, recycled throughput sits a few percent below cold.  Bypassing the
recycled path below a size floor was measured and rejected: computing cold
and then compacting the dense result (``ClusterSession._admit``) is slower
than the recycled compute at *every* rung, because re-deriving the core
prefix and boolean-gathering the dense labels costs more than the recycled
path's buffer restores.  The crossover where recycling wins outright is
about 10k vertices (the top rung of the ladder); below it the mode is kept
because its halved per-request allocation is what the long-lived serving
workers in ``serve/worker.py`` are after, not raw single-request speed.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py            # default ladder
    PYTHONPATH=src python benchmarks/bench_serving.py --tiny     # CI smoke run

or through pytest (smoke-sized, asserts bit-identity and the steady-state
speedup)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -s
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro import ScanIndex
from repro.bench import capture_environment, format_table
from repro.bench.recording import add_record_argument, record_payload
from repro.graphs import planted_partition

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serving.json"

#: (num_clusters, cluster_size, p_intra, p_inter) ladder.
DEFAULT_LADDER = [
    (10, 40, 0.30, 0.010),
    (25, 50, 0.30, 0.006),
    (60, 60, 0.35, 0.005),
    (120, 80, 0.30, 0.003),
]
TINY_LADDER = [(4, 20, 0.30, 0.02)]

#: Distinct (μ, ε) settings of the repeated workload.
WORKLOAD_MUS = (2, 3, 5, 8)
WORKLOAD_EPSILONS = (0.3, 0.45, 0.6, 0.75)
#: Stream length as a multiple of the distinct-setting count.
STREAM_REPEATS = 12


def request_stream(seed: int = 0) -> list[tuple[int, float]]:
    """A seeded repeated-workload stream over the distinct settings grid."""
    distinct = [(mu, eps) for mu in WORKLOAD_MUS for eps in WORKLOAD_EPSILONS]
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(distinct), size=STREAM_REPEATS * len(distinct))
    return [distinct[p] for p in picks.tolist()]


#: Stream passes per timed mode; the best pass is reported.
TIMING_PASSES = 3


def _timed(serve_one, stream) -> tuple[float, list[float]]:
    """Best-of-``TIMING_PASSES`` stream time plus that pass's latencies."""
    best_seconds = float("inf")
    best_latencies: list[float] = []
    for _ in range(TIMING_PASSES):
        latencies = []
        for mu, epsilon in stream:
            started = time.perf_counter()
            serve_one(mu, epsilon)
            latencies.append(time.perf_counter() - started)
        seconds = sum(latencies)
        if seconds < best_seconds:
            best_seconds, best_latencies = seconds, latencies
    return best_seconds, best_latencies


def _mean_peak_alloc(serve_one, stream) -> float:
    """Mean per-request peak traced allocation (bytes) over the stream."""
    tracemalloc.start()
    try:
        total_peak = 0.0
        for mu, epsilon in stream:
            baseline, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            serve_one(mu, epsilon)
            _, peak = tracemalloc.get_traced_memory()
            total_peak += max(peak - baseline, 0)
    finally:
        tracemalloc.stop()
    return total_peak / max(len(stream), 1)


def bench_graph(num_clusters, cluster_size, p_intra, p_inter, *, seed=0) -> dict:
    """Build, persist, reload and serve one graph; return the timing record."""
    graph = planted_partition(
        num_clusters, cluster_size, p_intra=p_intra, p_inter=p_inter, seed=seed
    )
    index = ScanIndex.build(graph)
    with tempfile.TemporaryDirectory() as scratch:
        artifact_path = Path(scratch) / "index.scanidx"
        index.save(artifact_path)
        loaded = ScanIndex.load(artifact_path)

        stream = request_stream(seed)
        distinct = sorted(set(stream))

        def cold(mu, epsilon):
            return loaded.query(mu, epsilon, deterministic_borders=True)

        recycled_session = loaded.session(cache_size=0)

        def recycled(mu, epsilon):
            return recycled_session.serve(mu, epsilon, deterministic_borders=True)

        cached_session = loaded.session()

        def cached(mu, epsilon):
            return cached_session.serve(mu, epsilon, deterministic_borders=True)

        # Bit-identity across every mode, checked on the distinct settings.
        mismatches = 0
        for mu, epsilon in distinct:
            reference = cold(mu, epsilon)
            for served in (recycled(mu, epsilon), cached(mu, epsilon)):
                dense = served.to_clustering()
                if not (
                    np.array_equal(reference.labels, dense.labels)
                    and np.array_equal(reference.core_mask, dense.core_mask)
                ):
                    mismatches += 1

        # The warm pass above put every distinct setting in the cache, so the
        # cached timing below is the steady state the serving loop reaches.
        modes = {}
        for name, serve_one in (("cold", cold), ("recycled", recycled), ("cached", cached)):
            seconds, latencies = _timed(serve_one, stream)
            modes[name] = {
                "seconds": seconds,
                "requests_per_second": len(stream) / max(seconds, 1e-12),
                "p50_seconds": float(np.percentile(latencies, 50)),
                "p99_seconds": float(np.percentile(latencies, 99)),
                "mean_peak_alloc_bytes": _mean_peak_alloc(serve_one, stream),
            }

        stats = cached_session.stats()
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_arcs": graph.num_arcs,
        "distinct_settings": len(distinct),
        "stream_length": len(stream),
        "modes": modes,
        "steady_state_speedup": (
            modes["cached"]["requests_per_second"]
            / max(modes["cold"]["requests_per_second"], 1e-12)
        ),
        "recycled_speedup": (
            modes["recycled"]["requests_per_second"]
            / max(modes["cold"]["requests_per_second"], 1e-12)
        ),
        "cache_hit_rate": stats["hit_rate"],
        "mismatching_clusterings": mismatches,
    }


def run(ladder, output: Path | None) -> dict:
    """Benchmark every rung of ``ladder`` and optionally write the JSON."""
    results = {
        "benchmark": "serving",
        "environment": capture_environment(),
        "graphs": [bench_graph(*rung) for rung in ladder],
    }
    rows = [
        [
            record["num_arcs"],
            record["stream_length"],
            round(record["modes"]["cold"]["requests_per_second"], 1),
            round(record["modes"]["recycled"]["requests_per_second"], 1),
            round(record["modes"]["cached"]["requests_per_second"], 1),
            round(record["steady_state_speedup"], 2),
            int(record["modes"]["cold"]["mean_peak_alloc_bytes"]),
            int(record["modes"]["cached"]["mean_peak_alloc_bytes"]),
        ]
        for record in results["graphs"]
    ]
    print(format_table(
        ["arcs", "requests", "cold_qps", "recycled_qps", "cached_qps",
         "speedup", "cold_alloc_B", "cached_alloc_B"],
        rows,
    ))
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def test_serving_smoke(tmp_path):
    """Smoke run: identical labels, steady-state serving ≥ 2x the cold path."""
    results = run(TINY_LADDER, tmp_path / "BENCH_serving.json")
    record = results["graphs"][0]
    assert (tmp_path / "BENCH_serving.json").exists()
    assert record["mismatching_clusterings"] == 0
    assert record["steady_state_speedup"] >= 2.0
    assert (
        record["modes"]["cached"]["mean_peak_alloc_bytes"]
        < record["modes"]["cold"]["mean_peak_alloc_bytes"]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI-sized smoke ladder")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    add_record_argument(parser, REPO_ROOT)
    args = parser.parse_args(argv)
    results = run(TINY_LADDER if args.tiny else DEFAULT_LADDER, args.output)
    if args.record is not None:
        record_payload(args.record, results, source="bench_serving.py",
                       smoke=args.tiny)
    for record in results["graphs"]:
        if record["mismatching_clusterings"]:
            print("ERROR: served clusterings disagree with the cold query path")
            return 1
        if record["steady_state_speedup"] < 2.0:
            print("ERROR: steady-state serving fell below 2x the cold path")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
