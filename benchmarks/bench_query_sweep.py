"""Query-sweep benchmark: build -> save -> load -> batched multi-(μ, ε) queries.

Not a figure of the paper -- this tracks the repo's own serving trajectory:
the wall-clock cost of answering a whole parameter sweep from a *loaded*
columnar index artifact, batched through ``ScanIndex.query_many``, against
issuing the same settings one ``query`` at a time.  Results accumulate in
``BENCH_query_sweep.json`` next to the repository root so successive PRs can
compare planner and storage changes over time.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_query_sweep.py            # default ladder
    PYTHONPATH=src python benchmarks/bench_query_sweep.py --tiny     # CI smoke run

or through pytest (smoke-sized, asserts the batched planner stays ahead and
the loaded artifact answers identically)::

    PYTHONPATH=src python -m pytest benchmarks/bench_query_sweep.py -s
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import ScanIndex
from repro.bench import capture_environment, format_table
from repro.bench.recording import add_record_argument, record_payload
from repro.graphs import planted_partition
from repro.quality.sweep import epsilon_grid, mu_grid

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_query_sweep.json"

#: (num_clusters, cluster_size, p_intra, p_inter) ladder.
DEFAULT_LADDER = [
    (10, 40, 0.30, 0.010),
    (25, 50, 0.30, 0.006),
    (60, 60, 0.35, 0.005),
]
TINY_LADDER = [(4, 20, 0.30, 0.02)]

#: ε-grid step of the swept parameter grid (~20 settings per μ).
SWEEP_EPSILON_STEP = 0.05


def sweep_pairs(graph) -> list[tuple[int, float]]:
    """The benchmark's parameter grid: powers-of-two μ times a 0.05 ε grid."""
    return [
        (mu, float(eps))
        for mu in mu_grid(graph.max_degree + 1)
        for eps in epsilon_grid(SWEEP_EPSILON_STEP)
    ]


def bench_graph(num_clusters, cluster_size, p_intra, p_inter, *, seed=0) -> dict:
    """Build, persist, reload and sweep one graph; return the timing record."""
    graph = planted_partition(
        num_clusters, cluster_size, p_intra=p_intra, p_inter=p_inter, seed=seed
    )
    started = time.perf_counter()
    index = ScanIndex.build(graph)
    build_seconds = time.perf_counter() - started

    with tempfile.TemporaryDirectory() as scratch:
        artifact_path = Path(scratch) / "index.scanidx"
        started = time.perf_counter()
        index.save(artifact_path)
        save_seconds = time.perf_counter() - started
        started = time.perf_counter()
        loaded = ScanIndex.load(artifact_path)
        load_seconds = time.perf_counter() - started

        pairs = sweep_pairs(graph)
        started = time.perf_counter()
        batched = loaded.query_many(pairs, deterministic_borders=True)
        batched_seconds = time.perf_counter() - started

        started = time.perf_counter()
        singles = [
            loaded.query(mu, epsilon, deterministic_borders=True)
            for mu, epsilon in pairs
        ]
        per_pair_seconds = time.perf_counter() - started

    mismatches = sum(
        not np.array_equal(a.labels, b.labels) for a, b in zip(batched, singles)
    )
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_arcs": graph.num_arcs,
        "num_settings": len(pairs),
        "build_seconds": build_seconds,
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
        "batched_sweep_seconds": batched_seconds,
        "per_pair_sweep_seconds": per_pair_seconds,
        "sweep_speedup": per_pair_seconds / max(batched_seconds, 1e-12),
        "settings_per_second_batched": len(pairs) / max(batched_seconds, 1e-12),
        "mismatching_clusterings": mismatches,
    }


def run(ladder, output: Path | None) -> dict:
    """Benchmark every rung of ``ladder`` and optionally write the JSON."""
    results = {
        "benchmark": "query_sweep",
        "environment": capture_environment(),
        "graphs": [bench_graph(*rung) for rung in ladder],
    }
    rows = [
        [
            record["num_arcs"],
            record["num_settings"],
            round(record["load_seconds"], 4),
            round(record["batched_sweep_seconds"], 4),
            round(record["per_pair_sweep_seconds"], 4),
            round(record["sweep_speedup"], 2),
        ]
        for record in results["graphs"]
    ]
    print(format_table(
        ["arcs", "settings", "load_s", "batched_s", "per_pair_s", "speedup"], rows
    ))
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def test_query_sweep_smoke(tmp_path):
    """Smoke run: the loaded artifact answers the grid, batching stays ahead."""
    results = run(TINY_LADDER, tmp_path / "BENCH_query_sweep.json")
    record = results["graphs"][0]
    assert (tmp_path / "BENCH_query_sweep.json").exists()
    assert record["mismatching_clusterings"] == 0
    assert record["num_settings"] >= 20
    assert record["batched_sweep_seconds"] < record["per_pair_sweep_seconds"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI-sized smoke ladder")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    add_record_argument(parser, REPO_ROOT)
    args = parser.parse_args(argv)
    results = run(TINY_LADDER if args.tiny else DEFAULT_LADDER, args.output)
    if args.record is not None:
        record_payload(args.record, results, source="bench_query_sweep.py",
                       smoke=args.tiny)
    for record in results["graphs"]:
        if record["mismatching_clusterings"]:
            print("ERROR: batched sweep disagrees with per-pair queries")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
