"""Figure 7: clustering query times with epsilon = 0.6 and varying mu.

Paper shape: the parallel index query stays below GS*-Index and ppSCAN across
the whole mu range; once mu exceeds the largest core degree the query returns
an empty clustering almost instantly.
"""

import numpy as np

from repro.bench import (
    UNWEIGHTED_DATASETS,
    VARIANT_GS_INDEX,
    VARIANT_PARALLEL,
    VARIANT_PPSCAN,
    figure7_query_vs_mu,
)


def test_fig7_query_vs_mu(benchmark, once):
    result = once(benchmark, figure7_query_vs_mu)
    print()
    print(result.report())

    measurements = result.extras["measurements"]

    def times(dataset, variant):
        rows = [m for m in measurements if m.dataset == dataset and m.variant == variant]
        return np.array([m.simulated_seconds for m in rows])

    for dataset in UNWEIGHTED_DATASETS:
        index_times = times(dataset, VARIANT_PARALLEL)
        # The index query wins against both baselines at every mu (up to
        # microsecond noise on queries whose output is empty).
        assert np.all(index_times <= times(dataset, VARIANT_GS_INDEX) + 1e-6)
        assert np.all(index_times < times(dataset, VARIANT_PPSCAN))
        # Queries at the largest mu (few or no cores) are among the cheapest.
        assert index_times[-1] <= np.median(index_times) * 1.5


if __name__ == "__main__":
    from _standalone import experiment_main

    raise SystemExit(experiment_main("figure7"))
