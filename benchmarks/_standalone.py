"""Standalone entry point shared by the paper-figure benchmark wrappers.

The figure/table benchmarks are pytest modules (their assertions pin the
paper's shapes), but the trajectory store wants their rows too.  Running
one directly --

    PYTHONPATH=src python benchmarks/bench_fig6_query_vs_epsilon.py --record

-- executes the experiment driver once, prints the paper-style report,
and (with ``--record``) appends the rows to the sqlite trajectory store
through the same shared recording path the standalone runners use.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.recording import add_record_argument, record_payload
from repro.cli import experiment_payload

REPO_ROOT = Path(__file__).resolve().parent.parent


def experiment_main(experiment: str, argv=None) -> int:
    """Run one registered experiment driver as a recordable script."""
    driver = ALL_EXPERIMENTS[experiment]
    parser = argparse.ArgumentParser(
        description=(driver.__doc__ or experiment).strip().splitlines()[0]
    )
    if experiment != "table1":
        parser.add_argument("--scale", default="bench",
                            help="dataset scale (default: bench)")
    add_record_argument(parser, REPO_ROOT)
    args = parser.parse_args(argv)
    kwargs = {} if experiment == "table1" else {"scale": args.scale}
    result = driver(**kwargs)
    print(result.report())
    if args.record is not None:
        record_payload(
            args.record,
            experiment_payload(result, experiment),
            source=f"benchmarks/{experiment}",
        )
    return 0
