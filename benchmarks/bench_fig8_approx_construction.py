"""Figure 8: approximate index construction time versus number of LSH samples.

Paper shape: approximate Jaccard (k-partition MinHash) construction is
consistently cheaper than approximate cosine (SimHash) at the same sample
count, and the curves flatten (or even drop) at large sample counts because
the low-degree heuristic reverts more vertices to exact computation.
"""

from collections import defaultdict

from repro.bench import UNWEIGHTED_DATASETS, figure8_approx_construction


def test_fig8_approx_construction(benchmark, once):
    result = once(benchmark, figure8_approx_construction)
    print()
    print(result.report())

    # Organise rows: work[(dataset, similarity)][samples] = work charge.
    work = defaultdict(dict)
    for dataset, similarity, samples, _, _, charged in result.rows:
        work[(dataset, similarity)][samples] = charged

    for dataset in UNWEIGHTED_DATASETS:
        cosine = work[(dataset, "approx cosine")]
        jaccard = work[(dataset, "approx jaccard")]
        for samples in cosine:
            # MinHash sketching (O(k + d) per vertex) undercuts SimHash (O(k d)).
            assert jaccard[samples] <= cosine[samples]


if __name__ == "__main__":
    from _standalone import experiment_main

    raise SystemExit(experiment_main("figure8"))
