"""Hot-path microbenchmark: construction and query across all backends.

Not a figure of the paper -- this seeds the repo's own performance
trajectory.  It times :class:`~repro.core.index.ScanIndex` construction with
every exact similarity backend (and queries against the resulting index) on
planted-partition graphs of growing size, then writes the measurements to
``BENCH_hot_paths.json`` next to the repository root so successive PRs can
compare engines over time.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py            # default ladder
    PYTHONPATH=src python benchmarks/bench_hot_paths.py --tiny     # CI smoke run

or through pytest (smoke-sized, asserts the batch engine's speedup)::

    PYTHONPATH=src python -m pytest benchmarks/bench_hot_paths.py -s
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro import ScanIndex
from repro.bench import capture_environment, format_table
from repro.bench.recording import add_record_argument, record_payload
from repro.graphs import planted_partition
from repro.parallel import Scheduler
from repro.similarity import compute_similarities
from repro.similarity.batch import batch_numerators

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hot_paths.json"

#: (num_clusters, cluster_size, p_intra, p_inter) ladder; the last rung
#: exceeds 100k arcs, where the batch engine's >= 10x construction advantage
#: over the scalar merge engine is asserted.
DEFAULT_LADDER = [
    (10, 40, 0.30, 0.010),
    (25, 50, 0.30, 0.006),
    (60, 60, 0.35, 0.005),
]
TINY_LADDER = [(4, 20, 0.30, 0.02)]

#: Dense matmul is only reasonable while the adjacency matrix stays small.
MATMUL_VERTEX_LIMIT = 2000
QUERY_SETTINGS = [(3, 0.4), (5, 0.6), (8, 0.7)]
QUERY_REPEATS = 5


def _time(fn, repeats: int = 2) -> tuple[float, object]:
    """Best-of-``repeats`` wall time (first call also warms memoised caches)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best, result


def bench_graph(num_clusters, cluster_size, p_intra, p_inter, *, seed=0) -> dict:
    """Construction + query timings of every backend on one graph."""
    graph = planted_partition(
        num_clusters, cluster_size, p_intra=p_intra, p_inter=p_inter, seed=seed
    )
    # Warm the memoised graph structures so every backend is timed on equal
    # footing (the first caller would otherwise pay for the shared caches).
    graph.degree_oriented_csr()
    graph.oriented_search_keys()
    backends = ["batch", "merge", "hash"]
    if graph.num_vertices <= MATMUL_VERTEX_LIMIT:
        backends.append("matmul")

    construction: dict[str, float] = {}
    similarity_only: dict[str, float] = {}
    index = None
    for backend in backends:
        construction[backend], built = _time(lambda: ScanIndex.build(graph, backend=backend))
        similarity_only[backend], _ = _time(
            lambda: compute_similarities(graph, backend=backend)
        )
        if backend == "batch":
            index = built

    def run_queries():
        for mu, epsilon in QUERY_SETTINGS:
            index.query(mu, epsilon)

    query_seconds, _ = _time(lambda: [run_queries() for _ in range(QUERY_REPEATS)])

    # Membership-probe strategy comparison (the before/after of the bounded
    # per-source-segment search vs the global composite-key searchsorted):
    # recorded on every rung so the crossover driving `resolve_probe`'s
    # "auto" heuristic stays visible in the JSON trajectory.
    probe_seconds = {}
    for strategy in ("global", "bounded"):
        probe_seconds[strategy], _ = _time(
            lambda strategy=strategy: batch_numerators(
                graph, Scheduler(), probe=strategy
            )
        )
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_arcs": graph.num_arcs,
        "construction_seconds": construction,
        "similarity_seconds": similarity_only,
        "query_seconds_per_batch": query_seconds / QUERY_REPEATS,
        "probe_seconds": probe_seconds,
        # The backend only controls the similarity stage; the neighbor/core
        # order sorts are identical work for every backend, so the engine
        # comparison is the similarity construction time.
        "batch_speedup_over_merge": similarity_only["merge"] / similarity_only["batch"],
        "index_build_speedup_over_merge": construction["merge"] / construction["batch"],
    }


def run(ladder, output: Path | None) -> dict:
    """Benchmark every rung of ``ladder`` and optionally write the JSON."""
    results = {
        "benchmark": "hot_paths",
        "environment": capture_environment(),
        "graphs": [bench_graph(*rung) for rung in ladder],
    }
    rows = []
    for record in results["graphs"]:
        for backend, seconds in sorted(record["construction_seconds"].items()):
            rows.append(
                [record["num_arcs"], backend, round(seconds, 4),
                 round(record["query_seconds_per_batch"], 5)]
            )
    print(format_table(["arcs", "backend", "construction_s", "query_batch_s"], rows))
    for record in results["graphs"]:
        print(
            f"arcs={record['num_arcs']}: batch similarity engine is "
            f"{record['batch_speedup_over_merge']:.1f}x faster than merge "
            f"({record['index_build_speedup_over_merge']:.1f}x on the full index build)"
        )
        probes = record["probe_seconds"]
        print(
            f"arcs={record['num_arcs']}: probe strategies -- global "
            f"{probes['global']*1000:.1f} ms vs bounded {probes['bounded']*1000:.1f} ms"
        )
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def test_hot_paths_smoke(tmp_path):
    """Smoke run on a tiny graph; asserts the vectorised engine stays ahead."""
    results = run(TINY_LADDER, tmp_path / "BENCH_hot_paths.json")
    record = results["graphs"][0]
    assert (tmp_path / "BENCH_hot_paths.json").exists()
    assert record["batch_speedup_over_merge"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI-sized smoke ladder")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    add_record_argument(parser, REPO_ROOT)
    args = parser.parse_args(argv)
    results = run(TINY_LADDER if args.tiny else DEFAULT_LADDER, args.output)
    if args.record is not None:
        record_payload(args.record, results, source="bench_hot_paths.py",
                       smoke=args.tiny)
    largest = results["graphs"][-1]
    if largest["num_arcs"] >= 100_000 and largest["batch_speedup_over_merge"] < 10.0:
        print("WARNING: batch speedup below the expected 10x on the largest graph")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
