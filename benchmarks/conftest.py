"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The heavy
lifting lives in :mod:`repro.bench.experiments`; the benchmark functions call
the drivers once (``rounds=1``) through pytest-benchmark so a timing record is
kept, and print the paper-style rows so the shape of each result is visible in
the captured output (`pytest benchmarks/ --benchmark-only -s` shows it live).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once` to the benchmark modules."""
    return run_once
