"""Table 2: summary of the benchmark datasets (stand-ins for the paper's graphs)."""

from repro.bench import DATASETS, table2_datasets


def test_table2_datasets(benchmark, once):
    result = once(benchmark, table2_datasets, "bench")
    print()
    print(result.report())

    assert len(result.rows) == len(DATASETS) == 6
    weighted = {row[0] for row in result.rows if row[4] == "weighted"}
    assert weighted == {"blood-vessel-like", "cochlea-like"}


if __name__ == "__main__":
    from _standalone import experiment_main

    raise SystemExit(experiment_main("table2"))
