"""Figure 6: clustering query times with mu = 5 and varying epsilon.

Paper shape: the parallel index query is faster than GS*-Index (5-32x) and
faster than ppSCAN at every tested epsilon; query time falls as epsilon grows
because fewer edges clear the similarity threshold (output-sensitive cost).
"""

import numpy as np

from repro.bench import (
    UNWEIGHTED_DATASETS,
    VARIANT_GS_INDEX,
    VARIANT_PARALLEL,
    VARIANT_PPSCAN,
    figure6_query_vs_epsilon,
)


def test_fig6_query_vs_epsilon(benchmark, once):
    result = once(benchmark, figure6_query_vs_epsilon)
    print()
    print(result.report())

    measurements = result.extras["measurements"]

    def times(dataset, variant):
        rows = [m for m in measurements if m.dataset == dataset and m.variant == variant]
        return np.array([m.simulated_seconds for m in rows])

    for dataset in UNWEIGHTED_DATASETS:
        index_times = times(dataset, VARIANT_PARALLEL)
        gs_times = times(dataset, VARIANT_GS_INDEX)
        ppscan_times = times(dataset, VARIANT_PPSCAN)
        # The parallel index query wins against both baselines at every epsilon
        # (up to microsecond noise on queries whose output is empty).
        assert np.all(index_times <= gs_times + 1e-6)
        assert np.all(index_times < ppscan_times)
        # Query cost is output-sensitive: large epsilon is never more expensive
        # than the densest (epsilon = 0.1) query.
        assert index_times[-1] <= index_times[0] * 1.5


if __name__ == "__main__":
    from _standalone import experiment_main

    raise SystemExit(experiment_main("figure6"))
