"""Dynamic-update benchmark: incremental patch vs full rebuild.

Not a figure of the paper -- this tracks the repo's update trajectory: the
cost of applying a batch of edge insertions/deletions to a built index
through :meth:`~repro.core.index.ScanIndex.apply_updates` (similarity
recompute on affected edges only, merge-of-sorted-runs order repair),
against rebuilding the index from scratch on the mutated graph.  Batches
mix deletions of random existing edges with insertions of random non-edges
at several sizes, expressed as a fraction of the edge count.

Every measurement also verifies the tentpole invariant: the patched index
must be **bit-identical** to the rebuilt one -- same graph columns, same
per-edge scores, same neighbor and core orders -- or the benchmark fails.
Results accumulate in ``BENCH_updates.json`` next to the repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_updates.py            # default ladder
    PYTHONPATH=src python benchmarks/bench_updates.py --tiny     # CI smoke run

or through pytest (smoke-sized, asserts bit-identity and the small-batch
speedup)::

    PYTHONPATH=src python -m pytest benchmarks/bench_updates.py -s
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import ScanIndex
from repro.bench import capture_environment, format_table
from repro.bench.recording import add_record_argument, record_payload
from repro.dynamic import UpdateBatch
from repro.graphs import from_edge_list, planted_partition
from repro.storage import IndexArtifact

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_updates.json"

#: Ladder entries: ((num_clusters, cluster_size, p_intra, p_inter), floor)
#: where ``floor`` is the small-batch speedup ``main()`` enforces for that
#: rung.  The dense rungs (average degree ~70-125) match the paper's
#: social-network datasets (orkut stands at ~76), where a rebuild's
#: triangle work is heaviest -- the regime the dynamic subsystem exists
#: for -- and carry the ≥5x acceptance bar.  The first rung is sparse
#: (average degree ~13) so its 0.1% batches stay under the order-repair
#: churn crossover: it is the one that exercises and times the
#: merge-of-sorted-runs strategy in the shipped JSON (a lower floor --
#: sparse graphs have less triangle work for patching to save).
DEFAULT_LADDER = [
    ((150, 40, 0.20, 0.0008), 2.0),
    ((40, 100, 0.55, 0.0040), 5.0),
    ((50, 160, 0.50, 0.0030), 5.0),
    ((60, 200, 0.50, 0.0020), 5.0),
]
TINY_LADDER = [((12, 50, 0.30, 0.008), 1.0)]

#: Batch sizes as fractions of the edge count; the acceptance bar lives at
#: the small end (≤ 1% of edges), where localized repair should win big.
DEFAULT_FRACTIONS = (0.001, 0.01, 0.05)
TINY_FRACTIONS = (0.01, 0.05)

#: Timing repetitions; the minimum is reported (the machines running CI
#: smoke and local ladders both jitter heavily under load).
TIMING_REPEATS = 3


def make_batch(graph, fraction: float, rng) -> tuple[UpdateBatch, np.ndarray]:
    """A mixed batch: ~half deletions of existing edges, ~half insertions.

    Returns the batch and the mutated canonical edge list (for the rebuild
    reference).  Seeded through ``rng`` so every mode sees the same delta.
    """
    m = graph.num_edges
    n = graph.num_vertices
    size = max(2, int(round(m * fraction)))
    num_del = size // 2
    num_ins = size - num_del
    edge_u, edge_v = graph.edge_list()
    delete_ids = rng.choice(m, size=num_del, replace=False)
    deletions = list(zip(edge_u[delete_ids].tolist(), edge_v[delete_ids].tolist()))
    existing = set(zip(edge_u.tolist(), edge_v.tolist()))
    insertions: list[tuple[int, int]] = []
    while len(insertions) < num_ins:
        candidates = rng.integers(0, n, size=(4 * num_ins, 2))
        for u, v in candidates.tolist():
            if u == v:
                continue
            if u > v:
                u, v = v, u
            if (u, v) in existing:
                continue
            existing.add((u, v))
            insertions.append((u, v))
            if len(insertions) == num_ins:
                break
    keep = np.ones(m, dtype=bool)
    keep[delete_ids] = False
    mutated_edges = np.concatenate(
        [
            np.stack([edge_u[keep], edge_v[keep]], axis=1),
            np.array(insertions, dtype=np.int64).reshape(num_ins, 2),
        ]
    )
    return UpdateBatch.from_edges(insertions, deletions), mutated_edges


def _clone_index(index: ScanIndex) -> ScanIndex:
    """An independent in-memory copy (patching mutates the index in place)."""
    return IndexArtifact.from_index(index).to_index()


def _indexes_identical(patched: ScanIndex, rebuilt: ScanIndex) -> bool:
    """Every stored column of the two indexes matches bit for bit."""
    pairs = [
        (patched.graph.indptr, rebuilt.graph.indptr),
        (patched.graph.indices, rebuilt.graph.indices),
        (patched.graph.arc_edge_ids, rebuilt.graph.arc_edge_ids),
        (patched.similarities.values, rebuilt.similarities.values),
        (patched.neighbor_order.neighbors, rebuilt.neighbor_order.neighbors),
        (patched.neighbor_order.similarities, rebuilt.neighbor_order.similarities),
        (patched.core_order.indptr, rebuilt.core_order.indptr),
        (patched.core_order.vertices, rebuilt.core_order.vertices),
        (patched.core_order.thresholds, rebuilt.core_order.thresholds),
    ]
    return all(np.array_equal(np.asarray(a), np.asarray(b)) for a, b in pairs)


def bench_graph(num_clusters, cluster_size, p_intra, p_inter, *, seed=0,
                fractions=DEFAULT_FRACTIONS) -> dict:
    """Build one graph's index and measure patch vs rebuild per batch size."""
    graph = planted_partition(
        num_clusters, cluster_size, p_intra=p_intra, p_inter=p_inter, seed=seed
    )
    index = ScanIndex.build(graph)
    rng = np.random.default_rng(seed + 1)
    batches = []
    for fraction in fractions:
        batch, mutated_edges = make_batch(graph, fraction, rng)

        # Best-of-N timing for both modes (each patch run gets a fresh
        # clone -- patching mutates in place; clone cost is untimed).
        patch_seconds = float("inf")
        report = None
        patched = None
        for _ in range(TIMING_REPEATS):
            clone = _clone_index(index)
            started = time.perf_counter()
            report = clone.apply_updates(batch)
            patch_seconds = min(patch_seconds, time.perf_counter() - started)
            patched = clone

        # The rebuild alternative starts from the mutated edge list, which
        # is what an operator without the patcher would feed `index build`.
        rebuild_seconds = float("inf")
        rebuilt = None
        for _ in range(TIMING_REPEATS):
            started = time.perf_counter()
            mutated_graph = from_edge_list(
                mutated_edges, num_vertices=graph.num_vertices
            )
            rebuilt = ScanIndex.build(mutated_graph)
            rebuild_seconds = min(rebuild_seconds, time.perf_counter() - started)

        batches.append({
            "fraction": fraction,
            "batch_size": batch.num_insertions + batch.num_deletions,
            "insertions": batch.num_insertions,
            "deletions": batch.num_deletions,
            "affected_edges": report.affected_edges,
            "affected_vertices": report.affected_vertices,
            "order_strategy": report.order_strategy,
            "patch_seconds": patch_seconds,
            "rebuild_seconds": rebuild_seconds,
            "speedup": rebuild_seconds / max(patch_seconds, 1e-12),
            "identical": _indexes_identical(patched, rebuilt),
        })
    # The headline cell is the smallest batch measured -- the regime the
    # subsystem exists for -- not a max over mixed sizes.
    smallest = min(batches, key=lambda b: b["fraction"])
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_arcs": graph.num_arcs,
        "small_batch_fraction": smallest["fraction"],
        "small_batch_speedup": smallest["speedup"],
        "batches": batches,
    }


def run(ladder, output: Path | None, *, fractions=DEFAULT_FRACTIONS) -> dict:
    """Benchmark every rung of ``ladder`` and optionally write the JSON."""
    graphs = []
    for shape, floor in ladder:
        record = bench_graph(*shape, fractions=fractions)
        record["small_batch_floor"] = floor
        graphs.append(record)
    results = {
        "benchmark": "updates",
        "environment": capture_environment(),
        "graphs": graphs,
    }
    rows = [
        [
            record["num_edges"],
            batch["batch_size"],
            f"{batch['fraction']:.1%}",
            batch["affected_edges"],
            batch["order_strategy"],
            round(batch["patch_seconds"] * 1e3, 2),
            round(batch["rebuild_seconds"] * 1e3, 2),
            round(batch["speedup"], 1),
            "yes" if batch["identical"] else "NO",
        ]
        for record in results["graphs"]
        for batch in record["batches"]
    ]
    print(format_table(
        ["edges", "batch", "fraction", "affected", "orders",
         "patch_ms", "rebuild_ms", "speedup", "identical"],
        rows,
    ))
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def test_updates_smoke(tmp_path):
    """Smoke run: patched index bit-identical to rebuilt, patching not slower.

    The smoke ladder is CI-sized (a few thousand edges), where Python call
    overhead dominates both sides -- the bit-identity invariant is the real
    assertion here; the ≥ 5x small-batch bar is enforced by ``main()`` on
    the full dense ladder that produces ``BENCH_updates.json``.
    """
    results = run(
        TINY_LADDER, tmp_path / "BENCH_updates.json", fractions=TINY_FRACTIONS
    )
    assert (tmp_path / "BENCH_updates.json").exists()
    for record in results["graphs"]:
        for batch in record["batches"]:
            assert batch["identical"], "patched index diverged from a rebuild"
            assert batch["affected_edges"] < record["num_edges"]
        assert record["small_batch_speedup"] >= 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI-sized smoke ladder")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    add_record_argument(parser, REPO_ROOT)
    args = parser.parse_args(argv)
    ladder = TINY_LADDER if args.tiny else DEFAULT_LADDER
    fractions = TINY_FRACTIONS if args.tiny else DEFAULT_FRACTIONS
    results = run(ladder, args.output, fractions=fractions)
    if args.record is not None:
        record_payload(args.record, results, source="bench_updates.py",
                       smoke=args.tiny)
    for record in results["graphs"]:
        for batch in record["batches"]:
            if not batch["identical"]:
                print("ERROR: patched index diverged from the full rebuild")
                return 1
        floor = record["small_batch_floor"]
        if record["small_batch_speedup"] < floor:
            print(
                f"ERROR: patching the {record['small_batch_fraction']:.1%} batch "
                f"fell below {floor}x the rebuild on the "
                f"{record['num_edges']}-edge graph"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
