"""Figure 10: ARI of approximate clusterings against the exact clustering.

Paper shape: at the exact index's modularity-maximising parameters, the
clustering produced by the approximate index approaches the exact clustering
(ARI -> 1) as the sample count grows.
"""

from repro.bench import figure10_ari_tradeoff

#: Subset used by the benchmark run (full figure available through the driver).
BENCH_DATASETS = ("orkut-like", "friendster-like", "blood-vessel-like")


def test_fig10_ari_tradeoff(benchmark, once):
    result = once(
        benchmark,
        figure10_ari_tradeoff,
        datasets=BENCH_DATASETS,
        sample_counts=(16, 64, 256),
        num_trials=1,
        epsilon_step=0.05,
    )
    print()
    print(result.report())

    for dataset in BENCH_DATASETS:
        rows = [row for row in result.rows if row[0] == dataset and row[1] == "approx cosine"]
        ari_by_samples = {row[2]: row[4] for row in rows}
        # More samples bring the approximate clustering closer to the exact one.
        assert ari_by_samples[256] >= ari_by_samples[16] - 0.05
        assert ari_by_samples[256] > 0.5


if __name__ == "__main__":
    from _standalone import experiment_main

    raise SystemExit(experiment_main("figure10"))
