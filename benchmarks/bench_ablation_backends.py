"""Ablation: similarity backends and sorting strategies for index construction.

Not a figure of the paper, but it quantifies the two design choices the paper
discusses in Sections 4.1.2 and 6.1:

* the vectorised batch engine vs merge-based similarity on the
  degree-oriented graph vs the hash-join of Algorithm 1 vs dense matrix
  multiplication;
* integer sort vs comparison sort for building the neighbor/core orders.
"""

from repro import ScanIndex
from repro.bench import PARALLEL_WORKERS, format_table, load_dataset
from repro.parallel import Scheduler


def _build_work(graph, **kwargs) -> float:
    scheduler = Scheduler(PARALLEL_WORKERS)
    ScanIndex.build(graph, scheduler=scheduler, **kwargs)
    return scheduler.counter.work


def test_ablation_similarity_backends(benchmark, once):
    graph = load_dataset("cochlea-like", "bench")

    def run():
        return {
            "batch": _build_work(graph, backend="batch"),
            "merge": _build_work(graph, backend="merge"),
            "hash": _build_work(graph, backend="hash"),
            "matmul": _build_work(graph, backend="matmul"),
        }

    work = once(benchmark, run)
    print()
    print(format_table(["backend", "construction work"], sorted(work.items())))
    # The degree-oriented merge shares triangle work across edges, so it never
    # does more work than the per-edge hash join.
    assert work["merge"] <= work["hash"]
    # The batch engine is the merge strategy executed array-at-once, so it
    # charges exactly the merge engine's work.
    assert work["batch"] == work["merge"]


def test_ablation_sorting_strategy(benchmark, once):
    graph = load_dataset("orkut-like", "bench")

    def run():
        return {
            "integer sort": _build_work(graph, use_integer_sort=True),
            "comparison sort": _build_work(graph, use_integer_sort=False),
        }

    work = once(benchmark, run)
    print()
    print(format_table(["sorting", "construction work"], sorted(work.items())))
    # Integer sorting the quantised similarity scores shaves the log n factor.
    assert work["integer sort"] < work["comparison sort"]
