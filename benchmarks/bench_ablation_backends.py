"""Ablation: similarity backends and sorting strategies for index construction.

Not a figure of the paper, but it quantifies the two design choices the paper
discusses in Sections 4.1.2 and 6.1:

* the vectorised batch engine vs merge-based similarity on the
  degree-oriented graph vs the hash-join of Algorithm 1 vs dense matrix
  multiplication;
* integer sort vs comparison sort for building the neighbor/core orders.

Run standalone (``--record`` appends the work counts to the trajectory
store)::

    PYTHONPATH=src python benchmarks/bench_ablation_backends.py --record
"""

from repro import ScanIndex
from repro.bench import PARALLEL_WORKERS, format_table, load_dataset
from repro.parallel import Scheduler


def _build_work(graph, **kwargs) -> float:
    scheduler = Scheduler(PARALLEL_WORKERS)
    ScanIndex.build(graph, scheduler=scheduler, **kwargs)
    return scheduler.counter.work


def similarity_backend_work() -> dict:
    """Construction work charged by every exact similarity backend."""
    graph = load_dataset("cochlea-like", "bench")
    return {
        "batch": _build_work(graph, backend="batch"),
        "merge": _build_work(graph, backend="merge"),
        "hash": _build_work(graph, backend="hash"),
        "matmul": _build_work(graph, backend="matmul"),
    }


def sorting_strategy_work() -> dict:
    """Construction work of integer vs comparison order sorts."""
    graph = load_dataset("orkut-like", "bench")
    return {
        "integer_sort": _build_work(graph, use_integer_sort=True),
        "comparison_sort": _build_work(graph, use_integer_sort=False),
    }


def test_ablation_similarity_backends(benchmark, once):
    work = once(benchmark, similarity_backend_work)
    print()
    print(format_table(["backend", "construction work"], sorted(work.items())))
    # The degree-oriented merge shares triangle work across edges, so it never
    # does more work than the per-edge hash join.
    assert work["merge"] <= work["hash"]
    # The batch engine is the merge strategy executed array-at-once, so it
    # charges exactly the merge engine's work.
    assert work["batch"] == work["merge"]


def test_ablation_sorting_strategy(benchmark, once):
    work = once(benchmark, sorting_strategy_work)
    print()
    print(format_table(["sorting", "construction work"], sorted(work.items())))
    # Integer sorting the quantised similarity scores shaves the log n factor.
    assert work["integer_sort"] < work["comparison_sort"]


if __name__ == "__main__":
    import argparse
    from pathlib import Path

    from repro.bench.recording import add_record_argument, record_payload

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_record_argument(parser, Path(__file__).resolve().parent.parent)
    args = parser.parse_args()
    results = {
        "benchmark": "ablation_backends",
        "similarity_backend_work": similarity_backend_work(),
        "sorting_strategy_work": sorting_strategy_work(),
    }
    print(format_table(
        ["backend", "construction work"],
        sorted(results["similarity_backend_work"].items()),
    ))
    print(format_table(
        ["sorting", "construction work"],
        sorted(results["sorting_strategy_work"].items()),
    ))
    if args.record is not None:
        record_payload(args.record, results,
                       source="bench_ablation_backends.py")
    raise SystemExit(0)
