"""Table 1: empirical check of the index-construction work bounds.

The measured work of exact and approximate index construction is divided by
the bounds the paper states in Table 1 (``(α + log n) m`` exact,
``(k + log log n) m`` approximate); the ratios should stay roughly flat as the
graph family grows.
"""

from repro.bench import table1_work_scaling


def test_table1_work_scaling(benchmark, once):
    result = once(
        benchmark,
        table1_work_scaling,
        sizes=(20, 40, 80, 160),
        cluster_size=25,
        num_samples=32,
    )
    print()
    print(result.report())

    ratios_exact = [row[4] for row in result.rows]
    ratios_approx = [row[6] for row in result.rows]
    # Work tracks the bound: the ratio varies by less than an order of
    # magnitude across an 8x growth in graph size.
    assert max(ratios_exact) / min(ratios_exact) < 10
    assert max(ratios_approx) / min(ratios_approx) < 10


if __name__ == "__main__":
    from _standalone import experiment_main

    raise SystemExit(experiment_main("table1"))
