"""Serving-tier overload benchmark: shed rate and tail latency at 2x saturation.

Not a figure of the paper -- this measures the resilience contract of the
concurrent serving tier (:mod:`repro.serve.server`): a ``repro serve``
subprocess started with a deliberately small ``--max-inflight`` high-water
mark, hammered by **twice** that many concurrent client connections.  Past
the mark the server must answer ``error: overloaded (shed)`` immediately
instead of queueing unboundedly, so the numbers that matter are:

* the **shed rate** -- how much of the offered 2x load was refused, and
* the **p50/p99 latency of the accepted requests** -- admission control
  exists precisely so the accepted tail stays flat while the excess is
  turned away at the door.

Every response must be accounted for: bit-identical to a single in-process
session (``cache=`` field stripped), or the structured shed refusal.  A
transport error, a hung connection, or an unexplained answer fails the run
-- that is the chaos-acceptance bar of the resilience PR, measured rather
than mocked.

The environment block records the container's CPU count: on a single-CPU
box the offered concurrency still exceeds the admission mark, so the shed
path is exercised honestly even though throughput numbers are modest.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve_resilience.py           # full
    PYTHONPATH=src python benchmarks/bench_serve_resilience.py --smoke   # CI

or through pytest (smoke-sized, asserts full accounting)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_resilience.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import ScanIndex
from repro.bench import capture_environment, format_table
from repro.bench.recording import add_record_argument, record_payload
from repro.graphs import planted_partition
from repro.serve import ServeClient
from repro.serve import wire

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serve_resilience.json"

#: (num_clusters, cluster_size, p_intra, p_inter) of the served graph.
FULL_GRAPH = (25, 50, 0.30, 0.006)
SMOKE_GRAPH = (4, 20, 0.30, 0.02)

#: ``(max_inflight, workers)`` admission configs; clients = 2x max_inflight.
FULL_CONFIGS = ((4, 2), (8, 2))
SMOKE_CONFIGS = ((2, 1), (4, 2))

#: Distinct (mu, eps) settings and stream repeats (mirrors bench_serving.py).
WORKLOAD_MUS = (2, 3, 5, 8)
WORKLOAD_EPSILONS = (0.3, 0.45, 0.6, 0.75)
FULL_REPEATS = 8
SMOKE_REPEATS = 2

_BANNER = re.compile(r"listening on ([0-9.]+):(\d+) \((\d+) workers?\)")
SHED_LINE = wire.format_error("overloaded (shed)")

#: Seconds to wait for the server banner / subprocess exit.
STARTUP_TIMEOUT = 60.0


def request_stream(repeats: int, seed: int = 0) -> list[tuple[int, float]]:
    """A seeded repeated-workload stream over the distinct settings grid."""
    distinct = [(mu, eps) for mu in WORKLOAD_MUS for eps in WORKLOAD_EPSILONS]
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(distinct), size=repeats * len(distinct))
    return [distinct[p] for p in picks.tolist()]


def reference_responses(
    artifact_path: Path, stream: list[tuple[int, float]]
) -> list[str]:
    """The single-session answers, formatted exactly as the server replies."""
    session = ScanIndex.load(artifact_path).session()
    return [
        wire.strip_cache_field(
            wire.format_response(
                session.serve(mu, epsilon, deterministic_borders=True)
            )
        )
        for mu, epsilon in stream
    ]


def start_server(
    artifact_path: Path, workers: int, max_inflight: int
) -> tuple[subprocess.Popen, str, int]:
    """Launch ``repro serve`` with a small admission mark; parse the banner."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(artifact_path),
            "--port", "0", "--workers", str(workers), "--deterministic",
            "--max-inflight", str(max_inflight),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    banner = process.stderr.readline()
    match = _BANNER.search(banner or "")
    if match is None or time.monotonic() > deadline:
        process.terminate()
        process.wait(timeout=STARTUP_TIMEOUT)
        raise RuntimeError(f"server failed to start (banner: {banner!r})")
    return process, match.group(1), int(match.group(2))


def _overload_slice(
    host: str,
    port: int,
    requests: list[str],
    expected: list[str],
    latencies: list[float],
    tallies: dict,
) -> None:
    """One client hammering its slice; every response lands in a tally.

    ``tallies`` gains ``shed`` (structured refusals), ``mismatched``
    (answers matching neither the reference nor the shed line) and
    ``transport_errors`` (a :class:`ServeClientError` -- the bar says this
    must never happen: overload is answered, not dropped).
    """
    shed = mismatched = 0
    try:
        with ServeClient(host, port) as client:
            for line, want in zip(requests, expected):
                started = time.perf_counter()
                response = client.request(line)
                elapsed = time.perf_counter() - started
                if response == SHED_LINE:
                    shed += 1
                elif wire.strip_cache_field(response) == want:
                    latencies.append(elapsed)
                else:
                    mismatched += 1
    except ConnectionError:
        tallies["transport_errors"] = tallies.get("transport_errors", 0) + 1
    tallies["shed"] = shed
    tallies["mismatched"] = mismatched


def bench_config(
    artifact_path: Path,
    max_inflight: int,
    workers: int,
    stream: list[tuple[int, float]],
    expected: list[str],
) -> dict:
    """Offer 2x ``max_inflight`` concurrent clients to one small server."""
    clients = 2 * max_inflight
    process, host, port = start_server(artifact_path, workers, max_inflight)
    try:
        request_lines = [f"{mu}:{epsilon:g}" for mu, epsilon in stream]
        threads = []
        latencies: list[list[float]] = [[] for _ in range(clients)]
        tallies: list[dict] = [{} for _ in range(clients)]
        for c in range(clients):
            threads.append(threading.Thread(
                target=_overload_slice,
                args=(host, port, request_lines[c::clients],
                      expected[c::clients], latencies[c], tallies[c]),
            ))
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - started
    finally:
        process.terminate()
        try:
            process.wait(timeout=STARTUP_TIMEOUT)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    succeeded = [lat for per_client in latencies for lat in per_client]
    shed = sum(t.get("shed", 0) for t in tallies)
    mismatched = sum(t.get("mismatched", 0) for t in tallies)
    transport_errors = sum(t.get("transport_errors", 0) for t in tallies)
    offered = len(stream)
    unanswered = offered - len(succeeded) - shed - mismatched
    return {
        "max_inflight": max_inflight,
        "workers": workers,
        "clients": clients,
        "offered_requests": offered,
        "succeeded": len(succeeded),
        "shed": shed,
        "shed_rate": shed / max(offered, 1),
        "mismatching_responses": mismatched,
        "transport_errors": transport_errors,
        "unanswered": unanswered,
        "seconds": seconds,
        "accepted_per_second": len(succeeded) / max(seconds, 1e-12),
        "p50_seconds": float(np.percentile(succeeded, 50)) if succeeded else None,
        "p99_seconds": float(np.percentile(succeeded, 99)) if succeeded else None,
    }


def run(graph_spec, configs, repeats: int, output: Path | None) -> dict:
    """Benchmark every admission config over one artifact; optionally write JSON."""
    num_clusters, cluster_size, p_intra, p_inter = graph_spec
    graph = planted_partition(
        num_clusters, cluster_size, p_intra=p_intra, p_inter=p_inter, seed=0
    )
    index = ScanIndex.build(graph)
    stream = request_stream(repeats)
    with tempfile.TemporaryDirectory() as scratch:
        artifact_path = Path(scratch) / "index.scanidx"
        index.save(artifact_path)
        expected = reference_responses(artifact_path, stream)
        records = [
            bench_config(artifact_path, max_inflight, workers, stream, expected)
            for max_inflight, workers in configs
        ]
    results = {
        "benchmark": "serve_resilience",
        "environment": capture_environment(),
        "graph": {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "num_arcs": graph.num_arcs,
        },
        "overload_configs": records,
    }
    rows = [
        [
            record["max_inflight"],
            record["clients"],
            record["offered_requests"],
            record["succeeded"],
            record["shed"],
            round(record["shed_rate"], 3),
            round(record["p50_seconds"] * 1e3, 3) if record["p50_seconds"] else "-",
            round(record["p99_seconds"] * 1e3, 3) if record["p99_seconds"] else "-",
            record["mismatching_responses"] + record["transport_errors"]
            + record["unanswered"],
        ]
        for record in records
    ]
    print(format_table(
        ["inflight", "clients", "offered", "ok", "shed", "shed_rate",
         "p50_ms", "p99_ms", "violations"],
        rows,
    ))
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def test_serve_resilience_smoke(tmp_path):
    """Smoke run: every offered request is answered -- served or shed."""
    results = run(
        SMOKE_GRAPH, SMOKE_CONFIGS, SMOKE_REPEATS,
        tmp_path / "BENCH_serve_resilience.json",
    )
    assert (tmp_path / "BENCH_serve_resilience.json").exists()
    assert len(results["overload_configs"]) >= 2
    for record in results["overload_configs"]:
        # The accounting identity of the shedding contract: nothing hangs,
        # nothing is dropped, nothing is wrong -- only served or refused.
        assert record["mismatching_responses"] == 0
        assert record["transport_errors"] == 0
        assert record["unanswered"] == 0
        assert record["succeeded"] + record["shed"] == record["offered_requests"]
        if record["succeeded"]:
            assert record["p50_seconds"] <= record["p99_seconds"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: tiny graph, fewer configs")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    add_record_argument(parser, REPO_ROOT)
    args = parser.parse_args(argv)
    if args.smoke:
        results = run(SMOKE_GRAPH, SMOKE_CONFIGS, SMOKE_REPEATS, args.output)
    else:
        results = run(FULL_GRAPH, FULL_CONFIGS, FULL_REPEATS, args.output)
    if args.record is not None:
        record_payload(args.record, results, source="bench_serve_resilience.py",
                       smoke=args.smoke)
    failures = 0
    for record in results["overload_configs"]:
        violations = (record["mismatching_responses"]
                      + record["transport_errors"] + record["unanswered"])
        if violations:
            print(f"ERROR: {violations} unaccounted responses at "
                  f"max_inflight={record['max_inflight']}")
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
