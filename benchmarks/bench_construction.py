"""Multicore construction benchmark: process-parallel builds + radix order sorts.

Not a figure of the paper -- this tracks the repo's construction trajectory
along the two axes PR 5 opened:

* **wall-clock scaling**: ``ScanIndex.build`` executed serially vs through
  the real execution layer (``repro.parallel.execute``) at jobs={2, 4, 8},
  with bit-identity of every stored column re-verified per cell (the
  determinism contract: any worker count, same index);
* **order-build strategy**: the packed segmented permutation behind both
  index orders timed under both strategies -- the stable int64 argsort and
  the radix digit chain of Section 4.1.2 -- on the *actual* pre-sort arrays
  of each rung (captured from the build itself), alongside what ``"auto"``
  picks.

The environment block records what the scaling numbers mean on this
machine: the visible core count (a 1-core container cannot show a real
speedup; the JSON says so instead of pretending), the measured worker-pool
startup cost, and the serial-fallback size floor derived from it
(``PARALLEL_FLOOR_ARCS``).  Results accumulate in
``BENCH_construction.json`` next to the repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_construction.py            # full ladder
    PYTHONPATH=src python benchmarks/bench_construction.py --smoke    # CI smoke run

or through pytest (smoke-sized, asserts bit-identity)::

    PYTHONPATH=src python -m pytest benchmarks/bench_construction.py -s
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import ScanIndex, verify_artifact
from repro.bench import capture_environment, format_table
from repro.bench.recording import add_record_argument, record_payload
from repro.graphs import from_edge_list, planted_partition
from repro.parallel import execute
from repro.parallel.execute import PARALLEL_FLOOR_ARCS, ParallelExecutor
from repro.parallel.sorting import (
    pack_segment_keys,
    packed_argsort,
    radix_eligible,
    radix_passes,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_construction.json"

#: Worker counts measured against the serial build.
DEFAULT_JOBS = (2, 4, 8)
SMOKE_JOBS = (2,)

#: Best-of-N timing (construction is the expensive side; keep N small).
TIMING_REPEATS = 2


def _with_hubs(graph_edges: np.ndarray, num_vertices: int, num_hubs: int,
               hub_degree: int, seed: int) -> np.ndarray:
    """Append ``num_hubs`` high-degree hubs to an edge list (orkut-style tail).

    Hub neighbor segments are thousands of entries deep -- the regime where
    the radix chain beats timsort on the neighbor-order sort too, not just
    on the long per-mu core-order segments.
    """
    rng = np.random.default_rng(seed)
    pieces = [graph_edges]
    total = num_vertices + num_hubs
    for hub_index in range(num_hubs):
        hub = num_vertices + hub_index
        spokes = rng.choice(num_vertices, size=hub_degree, replace=False)
        pieces.append(np.stack(
            [np.minimum(spokes, hub), np.maximum(spokes, hub)], axis=1
        ))
    edges = np.concatenate(pieces)
    return edges, total


def _fig5_style_ladder() -> list:
    """(name, loader) rungs shaped like the Figure-5 dataset stand-ins."""

    def pp(clusters, size, p_intra, p_inter, seed):
        return lambda: planted_partition(
            clusters, size, p_intra=p_intra, p_inter=p_inter, seed=seed
        )

    def hubbed():
        base = planted_partition(30, 120, p_intra=0.25, p_inter=0.002, seed=21)
        edge_u, edge_v = base.edge_list()
        edges, total = _with_hubs(
            np.stack([edge_u, edge_v], axis=1), base.num_vertices,
            num_hubs=6, hub_degree=3000, seed=22,
        )
        return from_edge_list(edges, num_vertices=total)

    return [
        # Below the serial-fallback floor on purpose: this rung documents
        # the degradation path (jobs > 1 must still be bit-identical while
        # executing serially).
        ("orkut-like-floor", pp(30, 80, 0.25, 0.002, 5)),
        ("orkut-like-mid", pp(40, 150, 0.25, 0.002, 5)),
        # Hub tail: neighbor-order segments thousands deep.
        ("webbase-like-hubs", hubbed),
        # The largest rung; carries the scaling acceptance bar.
        ("orkut-like-large", pp(60, 200, 0.30, 0.0015, 5)),
    ]


SMOKE_LADDER_NAME = "smoke"


def _smoke_ladder() -> list:
    return [(SMOKE_LADDER_NAME, lambda: planted_partition(
        12, 40, p_intra=0.35, p_inter=0.01, seed=7
    ))]


# ----------------------------------------------------------------------
# Capture of the real order-sort inputs
# ----------------------------------------------------------------------
class _SortRecorder:
    """Record the (offsets, keys) of the two order sorts of one build."""

    def __init__(self) -> None:
        self.calls: list[tuple[np.ndarray, np.ndarray]] = []

    def install(self) -> list:
        import repro.core.core_order as core_order_module
        import repro.core.neighbor_order as neighbor_order_module

        originals = []
        for module in (neighbor_order_module, core_order_module):
            original = module.segmented_sort_by_key
            originals.append((module, original))

            def wrapper(scheduler, offsets, values, keys, *, _original=original,
                        **kwargs):
                self.calls.append((np.asarray(offsets).copy(), np.asarray(keys).copy()))
                return _original(scheduler, offsets, values, keys, **kwargs)

            module.segmented_sort_by_key = wrapper
        return originals

    @staticmethod
    def restore(originals) -> None:
        for module, original in originals:
            module.segmented_sort_by_key = original


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _measure_order_strategies(recorder: _SortRecorder) -> list[dict]:
    """Time argsort vs radix on the captured pre-sort arrays."""
    results = []
    for label, (offsets, keys) in zip(("NO", "CO"), recorder.calls):
        packing = pack_segment_keys(offsets, keys, descending=True)
        if packing is None:
            continue
        packed, universe, max_segment = packing
        if packed.size == 0:
            continue
        passes = radix_passes(universe)
        auto = (
            "radix"
            if radix_eligible(int(packed.shape[0]), universe, max_segment)
            else "argsort"
        )
        argsort_seconds = _best_of(lambda: packed_argsort(
            packed, universe=universe, max_segment=max_segment, strategy="argsort"
        ))
        radix_seconds = _best_of(lambda: packed_argsort(
            packed, universe=universe, max_segment=max_segment, strategy="radix"
        ))
        results.append({
            "order": label,
            "entries": int(packed.shape[0]),
            "max_segment": max_segment,
            "digit_passes": passes,
            "auto_strategy": auto,
            "argsort_seconds": argsort_seconds,
            "radix_seconds": radix_seconds,
            "radix_speedup": argsort_seconds / max(radix_seconds, 1e-12),
        })
    return results


# ----------------------------------------------------------------------
# Build measurements
# ----------------------------------------------------------------------
def _indexes_identical(a: ScanIndex, b: ScanIndex) -> bool:
    pairs = [
        (a.similarities.values, b.similarities.values),
        (a.similarities.numerators, b.similarities.numerators),
        (a.neighbor_order.neighbors, b.neighbor_order.neighbors),
        (a.neighbor_order.similarities, b.neighbor_order.similarities),
        (a.core_order.indptr, b.core_order.indptr),
        (a.core_order.vertices, b.core_order.vertices),
        (a.core_order.thresholds, b.core_order.thresholds),
    ]
    return all(
        (left is None and right is None)
        or np.array_equal(np.asarray(left), np.asarray(right))
        for left, right in pairs
    )


def measure_pool_startup() -> float | None:
    """Fork + first-dispatch + teardown cost of a two-worker pool.

    ``None`` on platforms without shared memory -- the same degradation
    path the library takes, recorded instead of crashed on.
    """
    if not execute.shared_memory_available():  # pragma: no cover - platform
        return None
    started = time.perf_counter()
    with ParallelExecutor(2) as executor:
        executor.segmented_argsort(
            np.arange(8, dtype=np.int64),
            np.array([0, 4, 8], dtype=np.int64),
            universe=8,
            max_segment=4,
        )
    return time.perf_counter() - started


def _measure_durability(index: ScanIndex, name: str) -> dict:
    """Time the artifact lifecycle: crash-safe save, load, fast/deep verify.

    The save number includes the whole commit protocol (scratch write,
    per-file fsyncs, backup-and-rename swap), so it prices what durability
    actually costs relative to the build it protects.
    """
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / f"{name}.scanidx"
        save_seconds = _best_of(lambda: index.save(path), TIMING_REPEATS)
        load_seconds = _best_of(lambda: ScanIndex.load(path), TIMING_REPEATS)
        deep_load_seconds = _best_of(
            lambda: ScanIndex.load(path, verify=True), TIMING_REPEATS
        )
        verify_fast_seconds = _best_of(
            lambda: verify_artifact(path), TIMING_REPEATS
        )
        verify_deep_seconds = _best_of(
            lambda: verify_artifact(path, deep=True), TIMING_REPEATS
        )
        payload_bytes = (path / "columns.npz").stat().st_size
    return {
        "payload_bytes": int(payload_bytes),
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
        "load_verify_seconds": deep_load_seconds,
        "verify_fast_seconds": verify_fast_seconds,
        "verify_deep_seconds": verify_deep_seconds,
    }


def bench_graph(name: str, loader, jobs_grid) -> dict:
    graph = loader()
    recorder = _SortRecorder()
    originals = recorder.install()
    try:
        serial = ScanIndex.build(graph)
    finally:
        _SortRecorder.restore(originals)
    serial_seconds = _best_of(lambda: ScanIndex.build(graph), TIMING_REPEATS)

    jobs_rows = []
    for jobs in jobs_grid:
        parallel_executed = (
            execute.shared_memory_available()
            and graph.num_arcs >= execute.PARALLEL_FLOOR_ARCS
        )
        built = {}

        def build():
            built["index"] = ScanIndex.build(graph, jobs=jobs)

        seconds = _best_of(build, TIMING_REPEATS)
        jobs_rows.append({
            "jobs": jobs,
            "seconds": seconds,
            "speedup": serial_seconds / max(seconds, 1e-12),
            "parallel_executed": parallel_executed,
            "identical": _indexes_identical(serial, built["index"]),
        })

    return {
        "name": name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_arcs": graph.num_arcs,
        "max_degree": graph.max_degree,
        "serial_seconds": serial_seconds,
        "jobs": jobs_rows,
        "order_microbench": _measure_order_strategies(recorder),
        "durability": _measure_durability(serial, name),
    }


def run(ladder, jobs_grid, output: Path | None) -> dict:
    graphs = [bench_graph(name, loader, jobs_grid) for name, loader in ladder]
    results = {
        "benchmark": "construction",
        # The shared fingerprint block (affinity-mask cpu_count: a
        # cgroup-pinned container must not pretend its host's cores are
        # available) plus this runner's pool-cost extras.
        "environment": {
            **capture_environment(),
            "pool_startup_seconds": measure_pool_startup(),
            "parallel_floor_arcs": PARALLEL_FLOOR_ARCS,
            "shared_memory_available": execute.shared_memory_available(),
        },
        "graphs": graphs,
    }
    rows = [
        [
            record["name"],
            record["num_arcs"],
            round(record["serial_seconds"] * 1e3, 1),
            cell["jobs"],
            round(cell["seconds"] * 1e3, 1),
            round(cell["speedup"], 2),
            "pool" if cell["parallel_executed"] else "serial-fallback",
            "yes" if cell["identical"] else "NO",
        ]
        for record in graphs
        for cell in record["jobs"]
    ]
    print(format_table(
        ["graph", "arcs", "serial_ms", "jobs", "jobs_ms", "speedup",
         "execution", "identical"],
        rows,
    ))
    micro_rows = [
        [
            record["name"],
            cell["order"],
            cell["entries"],
            cell["max_segment"],
            cell["digit_passes"],
            cell["auto_strategy"],
            round(cell["argsort_seconds"] * 1e3, 2),
            round(cell["radix_seconds"] * 1e3, 2),
            round(cell["radix_speedup"], 2),
        ]
        for record in graphs
        for cell in record["order_microbench"]
    ]
    print(format_table(
        ["graph", "order", "entries", "max_seg", "passes", "auto",
         "argsort_ms", "radix_ms", "radix_speedup"],
        micro_rows,
    ))
    durability_rows = [
        [
            record["name"],
            round(record["durability"]["payload_bytes"] / 1e6, 3),
            round(record["durability"]["save_seconds"] * 1e3, 2),
            round(record["durability"]["load_seconds"] * 1e3, 2),
            round(record["durability"]["load_verify_seconds"] * 1e3, 2),
            round(record["durability"]["verify_fast_seconds"] * 1e3, 2),
            round(record["durability"]["verify_deep_seconds"] * 1e3, 2),
        ]
        for record in graphs
    ]
    print(format_table(
        ["graph", "payload_mb", "save_ms", "load_ms", "load_verify_ms",
         "verify_fast_ms", "verify_deep_ms"],
        durability_rows,
    ))
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def test_construction_smoke(tmp_path, monkeypatch):
    """Smoke run: the pool path executes and stays bit-identical to serial."""
    monkeypatch.setattr(execute, "PARALLEL_FLOOR_ARCS", 0)
    results = run(_smoke_ladder(), SMOKE_JOBS, tmp_path / "BENCH_construction.json")
    assert (tmp_path / "BENCH_construction.json").exists()
    for record in results["graphs"]:
        for cell in record["jobs"]:
            assert cell["identical"], "parallel build diverged from serial"
            assert cell["parallel_executed"]
        for cell in record["order_microbench"]:
            assert cell["radix_speedup"] > 0
        durability = record["durability"]
        assert durability["payload_bytes"] > 0
        for key in ("save_seconds", "load_seconds", "load_verify_seconds",
                    "verify_fast_seconds", "verify_deep_seconds"):
            assert durability[key] > 0, key


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized rung, jobs=2 only, no size floor")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    add_record_argument(parser, REPO_ROOT)
    args = parser.parse_args(argv)
    if args.smoke:
        execute.PARALLEL_FLOOR_ARCS = 0
        results = run(_smoke_ladder(), SMOKE_JOBS, args.output)
    else:
        results = run(_fig5_style_ladder(), DEFAULT_JOBS, args.output)
    if args.record is not None:
        record_payload(args.record, results, source="bench_construction.py",
                       smoke=args.smoke)

    failed = False
    for record in results["graphs"]:
        for cell in record["jobs"]:
            if not cell["identical"]:
                print(f"ERROR: jobs={cell['jobs']} build of {record['name']} "
                      "diverged from the serial build")
                failed = True
    if not args.smoke:
        # The radix strategy must win where auto picks it (the long-segment
        # sorts); a regression here silently slows every large build.
        for record in results["graphs"]:
            for cell in record["order_microbench"]:
                if cell["auto_strategy"] == "radix" and cell["radix_speedup"] < 1.1:
                    print(f"ERROR: auto picked radix on {record['name']}/"
                          f"{cell['order']} but it only ran "
                          f"{cell['radix_speedup']:.2f}x vs argsort")
                    failed = True
        # The jobs=4 scaling bar only means something with >= 4 cores; on
        # smaller machines the JSON records the honest (≈1x or worse)
        # numbers and the environment block explains why.
        cores = results["environment"]["cpu_count"] or 1
        if cores >= 4:
            largest = max(results["graphs"], key=lambda record: record["num_arcs"])
            by_jobs = {cell["jobs"]: cell for cell in largest["jobs"]}
            if 4 in by_jobs and by_jobs[4]["speedup"] < 2.0:
                print(f"ERROR: jobs=4 speedup {by_jobs[4]['speedup']:.2f}x on "
                      f"{largest['name']} fell below the 2x bar "
                      f"({cores} cores visible)")
                failed = True
        else:
            print(f"note: only {cores} core(s) visible; the jobs=4 >= 2x "
                  "scaling bar is recorded but not enforced on this machine")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
