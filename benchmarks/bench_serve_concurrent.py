"""Concurrent serving-tier benchmark: p50/p99 latency and throughput vs workers.

Not a figure of the paper -- this measures the repo's network serving tier
(:mod:`repro.serve.server`): a ``repro serve --port --workers N`` server
subprocess over one mmapped artifact, loaded by concurrent client
connections replaying a seeded ``MU:EPSILON`` request stream.  For each
worker count the benchmark reports wall-clock throughput plus the p50/p99
per-request latency across all clients -- the tail-aware numbers the
SIGMOD-style serving story is judged by -- and verifies **every** response
bit-identical to a single in-process :class:`~repro.serve.session.
ClusterSession` answering the same stream (``cache=hit/miss`` stripped,
since affinity makes hit patterns legitimately differ across worker
counts).

The environment block records the container's CPU count: on a single-CPU
box the worker configs measure dispatch overhead honestly rather than
showing scaling that the hardware cannot deliver.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve_concurrent.py           # full
    PYTHONPATH=src python benchmarks/bench_serve_concurrent.py --smoke   # CI

or through pytest (smoke-sized, asserts bit-identity and config coverage)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_concurrent.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import ScanIndex
from repro.bench import capture_environment, format_table
from repro.bench.recording import add_record_argument, record_payload
from repro.graphs import planted_partition
from repro.serve import ServeClient
from repro.serve import wire

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serve_concurrent.json"

#: (num_clusters, cluster_size, p_intra, p_inter) of the served graph.
FULL_GRAPH = (25, 50, 0.30, 0.006)
SMOKE_GRAPH = (4, 20, 0.30, 0.02)

#: Worker counts per run flavour (>= 2 configs each, per the acceptance bar).
FULL_WORKER_CONFIGS = (1, 2, 4)
SMOKE_WORKER_CONFIGS = (1, 2)

#: Concurrent client connections replaying the stream.
FULL_CLIENTS = 4
SMOKE_CLIENTS = 2

#: Distinct (μ, ε) settings and stream repeats (mirrors bench_serving.py).
WORKLOAD_MUS = (2, 3, 5, 8)
WORKLOAD_EPSILONS = (0.3, 0.45, 0.6, 0.75)
FULL_REPEATS = 12
SMOKE_REPEATS = 3

_BANNER = re.compile(r"listening on ([0-9.]+):(\d+) \((\d+) workers?\)")

#: Seconds to wait for the server banner / subprocess exit.
STARTUP_TIMEOUT = 60.0


def request_stream(repeats: int, seed: int = 0) -> list[tuple[int, float]]:
    """A seeded repeated-workload stream over the distinct settings grid."""
    distinct = [(mu, eps) for mu in WORKLOAD_MUS for eps in WORKLOAD_EPSILONS]
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(distinct), size=repeats * len(distinct))
    return [distinct[p] for p in picks.tolist()]


def reference_responses(
    artifact_path: Path, stream: list[tuple[int, float]]
) -> list[str]:
    """The single-session answers, formatted exactly as the server replies.

    One in-process :class:`ClusterSession` serves the whole stream in order;
    :func:`repro.serve.wire.strip_cache_field` removes the only field that
    legitimately differs under concurrency (per-worker cache hit patterns).
    """
    session = ScanIndex.load(artifact_path).session()
    return [
        wire.strip_cache_field(
            wire.format_response(
                session.serve(mu, epsilon, deterministic_borders=True)
            )
        )
        for mu, epsilon in stream
    ]


def start_server(artifact_path: Path, workers: int) -> tuple[subprocess.Popen, str, int]:
    """Launch ``repro serve --port 0`` and parse the bound address banner."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(artifact_path),
            "--port", "0", "--workers", str(workers), "--deterministic",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    banner = process.stderr.readline()
    match = _BANNER.search(banner or "")
    if match is None or time.monotonic() > deadline:
        process.terminate()
        process.wait(timeout=STARTUP_TIMEOUT)
        raise RuntimeError(f"server failed to start (banner: {banner!r})")
    return process, match.group(1), int(match.group(2))


def _replay_slice(
    host: str,
    port: int,
    requests: list[str],
    expected: list[str],
    latencies: list[float],
    mismatches: list[int],
) -> None:
    """One client connection replaying its slice, recording latency/identity."""
    wrong = 0
    with ServeClient(host, port) as client:
        for line, want in zip(requests, expected):
            started = time.perf_counter()
            response = client.request(line)
            latencies.append(time.perf_counter() - started)
            if wire.strip_cache_field(response) != want:
                wrong += 1
    mismatches.append(wrong)


def bench_config(
    artifact_path: Path,
    workers: int,
    clients: int,
    stream: list[tuple[int, float]],
    expected: list[str],
) -> dict:
    """Replay the stream through ``clients`` connections against one server."""
    process, host, port = start_server(artifact_path, workers)
    try:
        request_lines = [f"{mu}:{epsilon:g}" for mu, epsilon in stream]
        # Strided slices so every client mixes all (μ, ε) settings -- a
        # contiguous split would hand each client one hot region and
        # understate routing spread.
        threads = []
        latencies: list[list[float]] = [[] for _ in range(clients)]
        mismatches: list[list[int]] = [[] for _ in range(clients)]
        for c in range(clients):
            threads.append(threading.Thread(
                target=_replay_slice,
                args=(host, port, request_lines[c::clients], expected[c::clients],
                      latencies[c], mismatches[c]),
            ))
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - started
    finally:
        process.terminate()
        try:
            process.wait(timeout=STARTUP_TIMEOUT)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    flat = [lat for per_client in latencies for lat in per_client]
    total_mismatches = sum(sum(per_client) for per_client in mismatches)
    if len(flat) != len(stream):
        raise RuntimeError(
            f"{len(stream) - len(flat)} requests went unanswered "
            f"(workers={workers})"
        )
    return {
        "workers": workers,
        "clients": clients,
        "requests": len(stream),
        "seconds": seconds,
        "requests_per_second": len(stream) / max(seconds, 1e-12),
        "p50_seconds": float(np.percentile(flat, 50)),
        "p99_seconds": float(np.percentile(flat, 99)),
        "mismatching_responses": total_mismatches,
    }


def run(
    graph_spec,
    worker_configs,
    clients: int,
    repeats: int,
    output: Path | None,
) -> dict:
    """Benchmark every worker config over one artifact; optionally write JSON."""
    num_clusters, cluster_size, p_intra, p_inter = graph_spec
    graph = planted_partition(
        num_clusters, cluster_size, p_intra=p_intra, p_inter=p_inter, seed=0
    )
    index = ScanIndex.build(graph)
    stream = request_stream(repeats)
    with tempfile.TemporaryDirectory() as scratch:
        artifact_path = Path(scratch) / "index.scanidx"
        index.save(artifact_path)
        expected = reference_responses(artifact_path, stream)
        configs = [
            bench_config(artifact_path, workers, clients, stream, expected)
            for workers in worker_configs
        ]
    results = {
        "benchmark": "serve_concurrent",
        # Shared fingerprint block (affinity-mask cpu_count: a 1-CPU
        # container's worker configs measure dispatch overhead, and the
        # gate must never compare them against real scaling numbers).
        "environment": capture_environment(),
        "graph": {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "num_arcs": graph.num_arcs,
        },
        "configs": configs,
    }
    rows = [
        [
            record["workers"],
            record["clients"],
            record["requests"],
            round(record["requests_per_second"], 1),
            round(record["p50_seconds"] * 1e3, 3),
            round(record["p99_seconds"] * 1e3, 3),
            record["mismatching_responses"],
        ]
        for record in configs
    ]
    print(format_table(
        ["workers", "clients", "requests", "rps", "p50_ms", "p99_ms", "mismatches"],
        rows,
    ))
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {output}")
    return results


def test_serve_concurrent_smoke(tmp_path):
    """Smoke run: >= 2 worker configs, every response identical to one session."""
    results = run(
        SMOKE_GRAPH, SMOKE_WORKER_CONFIGS, SMOKE_CLIENTS, SMOKE_REPEATS,
        tmp_path / "BENCH_serve_concurrent.json",
    )
    assert (tmp_path / "BENCH_serve_concurrent.json").exists()
    assert len(results["configs"]) >= 2
    for record in results["configs"]:
        assert record["mismatching_responses"] == 0
        assert record["p50_seconds"] <= record["p99_seconds"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: tiny graph, fewer configs")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    add_record_argument(parser, REPO_ROOT)
    args = parser.parse_args(argv)
    if args.smoke:
        results = run(SMOKE_GRAPH, SMOKE_WORKER_CONFIGS, SMOKE_CLIENTS,
                      SMOKE_REPEATS, args.output)
    else:
        results = run(FULL_GRAPH, FULL_WORKER_CONFIGS, FULL_CLIENTS,
                      FULL_REPEATS, args.output)
    if args.record is not None:
        record_payload(args.record, results, source="bench_serve_concurrent.py",
                       smoke=args.smoke)
    for record in results["configs"]:
        if record["mismatching_responses"]:
            print("ERROR: concurrent responses diverged from the single session")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
