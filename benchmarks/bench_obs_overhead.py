"""Observability overhead benchmark: tracing off must cost (almost) nothing.

The observability layer's charter (`src/repro/obs/`) is that the disabled
path -- the default for every user who never passes ``--trace`` -- stays
within noise of uninstrumented code, and the enabled path changes no
output byte.  This benchmark pins both, plus the structural guards that
make the timing claim trustworthy:

``disabled``
    A seeded ``(μ, ε)`` request stream served through a fresh session with
    the null tracer installed (the default).  Afterwards the tracer must
    report **zero** events written and the registry must hold no gated
    per-request serve metrics -- proof the hot path really skipped the
    instrumentation rather than writing somewhere invisible.
``enabled``
    The same stream, streaming spans to a real JSONL file.  Every response
    line must be bit-identical to the disabled pass, and the trace must
    pass the closed schema of :mod:`repro.obs.schema`.

Throughput of both modes is the best of three passes (single-pass numbers
on a shared box jitter more than the effect being measured); the headline
number is ``overhead_pct`` of the *disabled* mode versus a pre-import
baseline stream.  ``--assert-overhead`` turns the acceptance bound into an
exit code for CI; the default threshold is deliberately generous because
tiny-graph request latencies sit in the microseconds, where scheduler
noise swamps any real effect.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py            # measure
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --tiny --assert-overhead 0.25

or through pytest (smoke-sized; asserts the structural guards, not timing).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro import ScanIndex, obs
from repro.bench import capture_environment, format_table
from repro.bench.recording import add_record_argument, record_payload
from repro.graphs import planted_partition
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_trace_path
from repro.serve import wire

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_obs_overhead.json"

#: (num_clusters, cluster_size, p_intra, p_inter) ladder.
DEFAULT_LADDER = [
    (10, 40, 0.30, 0.010),
    (25, 50, 0.30, 0.006),
]
TINY_LADDER = [(4, 20, 0.30, 0.02)]

PASSES = 3
REQUESTS = 400


def request_stream(index, count):
    """A seeded request mix biased toward repeats (cache hits and misses)."""
    import numpy as np

    rng = np.random.default_rng(42)
    base = [
        (int(rng.integers(2, 9)), float(rng.uniform(0.15, 0.85)))
        for _ in range(max(count // 4, 1))
    ]
    return [base[int(rng.integers(0, len(base)))] for _ in range(count)]


def serve_pass(index, requests):
    """Serve the stream once through a fresh session; return (rps, lines)."""
    session = index.session(cache_size=64)
    lines = []
    started = time.perf_counter()
    for mu, epsilon in requests:
        lines.append(
            wire.format_response(
                session.serve(mu, epsilon, deterministic_borders=True)
            )
        )
    elapsed = time.perf_counter() - started
    return len(requests) / elapsed, lines, session


def best_of(index, requests, passes=PASSES):
    best_rps, lines, session = 0.0, None, None
    for _ in range(passes):
        rps, pass_lines, pass_session = serve_pass(index, requests)
        if rps > best_rps:
            best_rps, lines, session = rps, pass_lines, pass_session
    return best_rps, lines, session


def measure(shape, requests_per_pass=REQUESTS):
    """One ladder rung: disabled vs enabled serving over the same stream."""
    clusters, size, p_intra, p_inter = shape
    graph = planted_partition(clusters, size, p_intra=p_intra,
                              p_inter=p_inter, seed=11)
    index = ScanIndex.build(graph)
    requests = request_stream(index, requests_per_pass)

    # Disabled mode: fresh registry, null tracer (the default state).
    previous = obs.install(registry=MetricsRegistry())
    try:
        disabled_rps, disabled_lines, _ = best_of(index, requests)
        disabled_events = obs.tracer().events_written
        disabled_snapshot = obs.metrics().snapshot()
    finally:
        obs.install(tracer=previous[0], registry=previous[1])
    # Structural guards: the disabled pass must not have traced anything,
    # and the gated per-request path must not have touched the registry.
    assert disabled_events == 0, "disabled tracer wrote events"
    gated = [name for name in disabled_snapshot["histograms"]
             if name.startswith("serve.")]
    assert not gated, f"gated serve histograms written while disabled: {gated}"

    # Enabled mode: same stream, real spans to a JSONL file.
    with tempfile.TemporaryDirectory() as scratch:
        trace = Path(scratch) / "overhead.jsonl"
        previous = obs.install(registry=MetricsRegistry())
        obs.configure(trace)
        try:
            enabled_rps, enabled_lines, session = best_of(index, requests)
            session.sync_metrics()
        finally:
            obs.finalise()
            obs.install(tracer=previous[0], registry=previous[1])
        counts = validate_trace_path(trace)
        trace_bytes = trace.stat().st_size
    assert enabled_lines == disabled_lines, "tracing changed a response byte"
    # Every request is either a traced compute span or a cache-hit event.
    assert counts["span"] + counts["event"] >= len(requests), \
        "enabled passes traced fewer records than one stream's requests"

    return {
        "graph": f"ppart-{clusters}x{size}",
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "requests_per_pass": len(requests),
        "disabled_rps": disabled_rps,
        "enabled_rps": enabled_rps,
        "overhead_pct": max(0.0, (disabled_rps - enabled_rps) / disabled_rps),
        "trace_spans": counts["span"],
        "trace_bytes": trace_bytes,
        "bit_identical": True,
    }


def run(ladder, output_path):
    results = {
        "benchmark": "obs_overhead",
        "environment": capture_environment(),
        "graphs": [measure(shape) for shape in ladder],
    }
    rows = [
        [r["graph"], r["vertices"], r["edges"], f"{r['disabled_rps']:.0f}",
         f"{r['enabled_rps']:.0f}", f"{r['overhead_pct']:.1%}",
         r["trace_spans"], r["trace_bytes"]]
        for r in results["graphs"]
    ]
    print(format_table(
        ["graph", "vertices", "edges", "off rps", "on rps",
         "tracing cost", "spans", "trace bytes"],
        rows,
    ))
    output_path.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(f"wrote {output_path}")
    return results


def test_obs_overhead_smoke(tmp_path):
    """Smoke: structural guards hold on a tiny rung (no timing assertions)."""
    results = run(TINY_LADDER, tmp_path / "BENCH_obs_overhead.json")
    record = results["graphs"][0]
    assert record["bit_identical"] is True
    assert record["trace_spans"] > 0
    assert record["trace_bytes"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI-sized smoke rung")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON output path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--assert-overhead", type=float, default=None,
                        metavar="FRACTION",
                        help="exit 1 when the enabled-tracing throughput cost "
                             "exceeds FRACTION (e.g. 0.25); structural guards "
                             "always assert")
    add_record_argument(parser, REPO_ROOT)
    args = parser.parse_args(argv)
    results = run(TINY_LADDER if args.tiny else DEFAULT_LADDER, args.output)
    if args.record is not None:
        record_payload(args.record, results, source="bench_obs_overhead.py",
                       smoke=args.tiny)
    if args.assert_overhead is not None:
        for record in results["graphs"]:
            if record["overhead_pct"] > args.assert_overhead:
                print(
                    f"ERROR: tracing cost {record['overhead_pct']:.1%} on "
                    f"{record['graph']} exceeds the "
                    f"{args.assert_overhead:.0%} bound"
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
