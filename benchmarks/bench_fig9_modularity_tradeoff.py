"""Figure 9: best modularity over the parameter grid vs approximate construction time.

Paper shape: even with modest sample counts the best modularity reachable by
sweeping the parameter grid on an LSH-approximated index is close to the
exact index's best modularity; more samples close the remaining gap.
"""

from repro.bench import figure9_modularity_tradeoff

#: A representative subset keeps the benchmark run short; pass the full
#: dataset tuple to ``figure9_modularity_tradeoff`` to reproduce every panel.
BENCH_DATASETS = ("orkut-like", "brain-like", "webbase-like", "cochlea-like")


def test_fig9_modularity_tradeoff(benchmark, once):
    result = once(
        benchmark,
        figure9_modularity_tradeoff,
        datasets=BENCH_DATASETS,
        sample_counts=(16, 64, 256),
        num_trials=1,
        epsilon_step=0.05,
    )
    print()
    print(result.report())

    for dataset in BENCH_DATASETS:
        rows = [row for row in result.rows if row[0] == dataset and "cosine" in row[1]]
        exact_score = [row[4] for row in rows if row[1] == "exact cosine"][0]
        approx_scores = {row[2]: row[4] for row in rows if row[1] == "approx cosine"}
        best_approx = max(approx_scores.values())
        # The grid search over an approximate index finds a clustering whose
        # modularity is close to the exact index's best.
        assert best_approx >= exact_score - 0.1


if __name__ == "__main__":
    from _standalone import experiment_main

    raise SystemExit(experiment_main("figure9"))
