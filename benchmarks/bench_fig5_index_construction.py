"""Figure 5: index construction times with exact cosine similarity.

Paper shape: the parallel index construction is 50-151x faster than GS*-Index
and even the single-threaded run beats GS*-Index; the matrix-multiplication
variant wins on the small dense (weighted) graphs.  Here the speedups come
from the simulated work-span runtime, so the factors differ, but the ordering
must hold.
"""

from repro.bench import (
    DATASETS,
    VARIANT_GS_INDEX,
    VARIANT_PARALLEL,
    VARIANT_SEQUENTIAL,
    figure5_index_construction,
)


def test_fig5_index_construction(benchmark, once):
    result = once(benchmark, figure5_index_construction)
    print()
    print(result.report())

    measurements = result.extras["measurements"]
    by_key = {(m.dataset, m.variant): m for m in measurements}
    for name, spec in DATASETS.items():
        parallel = by_key[(name, VARIANT_PARALLEL)].simulated_seconds
        sequential = by_key[(name, VARIANT_SEQUENTIAL)].simulated_seconds
        # Parallel construction is never slower than 1 thread.
        assert parallel <= sequential
        if not spec.weighted:
            gs = by_key[(name, VARIANT_GS_INDEX)].simulated_seconds
            # The parallel index beats GS*-Index, and even one thread does.
            assert parallel < gs
            assert sequential < gs
