"""Figure 5: index construction times with exact cosine similarity.

Paper shape: the parallel index construction is 50-151x faster than GS*-Index
and even the single-threaded run beats GS*-Index; the matrix-multiplication
variant wins on the small dense (weighted) graphs.  Here the speedups come
from the simulated work-span runtime, so the factors differ, but the ordering
must hold.

Alongside the simulated accounting, this benchmark emits **measured
wall-clock** rows: every variant's real build time (the ``wall_s`` column of
the report) plus a serial-vs-``jobs=2`` build through the real execution
layer (``repro.parallel.execute``) on the largest dataset, bit-identity
checked -- so the multicore scaling numbers of ``BENCH_construction.json``
land in the paper-figure benchmarks too.
"""

import numpy as np

from repro import ScanIndex
from repro.bench import (
    DATASETS,
    VARIANT_GS_INDEX,
    VARIANT_PARALLEL,
    VARIANT_SEQUENTIAL,
    figure5_index_construction,
)
from repro.bench.datasets import load_dataset
from repro.parallel import execute


def test_fig5_index_construction(benchmark, once, monkeypatch):
    result = once(benchmark, figure5_index_construction)
    print()
    print(result.report())

    measurements = result.extras["measurements"]
    by_key = {(m.dataset, m.variant): m for m in measurements}
    for name, spec in DATASETS.items():
        parallel = by_key[(name, VARIANT_PARALLEL)].simulated_seconds
        sequential = by_key[(name, VARIANT_SEQUENTIAL)].simulated_seconds
        # Parallel construction is never slower than 1 thread.
        assert parallel <= sequential
        # Measured wall-clock rides along with every simulated row.
        assert by_key[(name, VARIANT_PARALLEL)].wall_seconds > 0.0
        if not spec.weighted:
            gs = by_key[(name, VARIANT_GS_INDEX)].simulated_seconds
            # The parallel index beats GS*-Index, and even one thread does.
            assert parallel < gs
            assert sequential < gs

    # Measured multicore build on the largest unweighted dataset: the real
    # execution layer must produce a bit-identical index; the wall-clock of
    # both modes is printed so the figure records measured scaling, not
    # just simulated work/span.
    monkeypatch.setattr(execute, "PARALLEL_FLOOR_ARCS", 0)
    largest = max(
        (name for name, spec in DATASETS.items() if not spec.weighted),
        key=lambda name: load_dataset(name, "bench").num_arcs,
    )
    graph = load_dataset(largest, "bench")
    import time

    started = time.perf_counter()
    serial = ScanIndex.build(graph)
    serial_wall = time.perf_counter() - started
    started = time.perf_counter()
    multicore = ScanIndex.build(graph, jobs=2)
    jobs2_wall = time.perf_counter() - started
    print(
        f"measured wall-clock on {largest} ({graph.num_arcs} arcs): "
        f"serial {serial_wall:.3f}s, jobs=2 {jobs2_wall:.3f}s "
        f"({serial_wall / max(jobs2_wall, 1e-12):.2f}x)"
    )
    assert np.array_equal(serial.similarities.values, multicore.similarities.values)
    assert np.array_equal(
        serial.neighbor_order.neighbors, multicore.neighbor_order.neighbors
    )
    assert np.array_equal(serial.core_order.vertices, multicore.core_order.vertices)


if __name__ == "__main__":
    from _standalone import experiment_main

    raise SystemExit(experiment_main("figure5"))
