"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    dense_weighted_association,
    from_edge_list,
    paper_example_graph,
    planted_partition,
)
from repro.parallel import Scheduler


@pytest.fixture
def scheduler() -> Scheduler:
    """A fresh scheduler with the default (paper-sized) worker count."""
    return Scheduler()


@pytest.fixture
def paper_graph():
    """The 11-vertex worked example of Figure 1 (0-based vertex ids)."""
    return paper_example_graph()


@pytest.fixture
def triangle_graph():
    """A single triangle on three vertices."""
    return from_edge_list([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path_graph():
    """A path on five vertices (no triangles)."""
    return from_edge_list([(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def k5_graph():
    """The complete graph on five vertices."""
    return complete_graph(5)


@pytest.fixture
def community_graph():
    """A small planted-partition graph with four clear communities."""
    return planted_partition(4, 30, p_intra=0.4, p_inter=0.01, seed=7)


@pytest.fixture
def weighted_graph():
    """A small dense weighted association graph."""
    return dense_weighted_association(50, num_modules=3, density=0.4, seed=9)


@pytest.fixture
def rng():
    """Seeded numpy random generator for tests that need randomness."""
    return np.random.default_rng(12345)
