"""Unit tests for the zero-dependency metrics registry (`obs/metrics.py`).

The contracts: counters and gauges are exact; histograms bucket by
``bisect`` into fixed bounds with interpolated quantiles; registries
deduplicate by name and refuse silently-different bounds; and
``merge_snapshots`` is a pure function whose result is sorted, additive,
and never aliases its inputs (the serving front end merges worker
snapshots on every ``!metrics`` line, so an impure merge would
double-count on repeats).
"""

import json

import pytest

from repro.obs.metrics import (
    LATENCY_BOUNDS,
    SIZE_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    merge_snapshots,
)


class TestPrimitives:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge_holds_last_value(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_histogram_buckets_and_totals(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(555.5)
        assert histogram.counts == [1, 1, 1, 1]

    def test_histogram_boundary_value_lands_left(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        histogram.observe(1.0)
        assert histogram.counts == [1, 0, 0]

    def test_quantiles_interpolate(self):
        histogram = Histogram(bounds=(0.0, 10.0, 20.0))
        for _ in range(100):
            histogram.observe(5.0)
        # All mass in (0, 10]: the median interpolates inside that bucket.
        assert 0.0 < histogram.quantile(0.5) <= 10.0
        assert histogram.quantile(0.0) <= histogram.quantile(0.99)

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram(bounds=(1.0,)).quantile(0.5) == 0.0

    def test_summary_shape(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(1.5)
        summary = histogram.summary()
        assert set(summary) == {
            "bounds", "counts", "count", "sum", "mean", "p50", "p99"
        }
        assert len(summary["counts"]) == len(summary["bounds"]) + 1

    def test_default_bounds_cover_latency_and_size_ranges(self):
        assert LATENCY_BOUNDS[0] < 1e-5 and LATENCY_BOUNDS[-1] >= 32.0
        assert SIZE_BOUNDS[0] == 1.0 and SIZE_BOUNDS[-1] >= 4 ** 15


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(MetricsError):
            registry.histogram("h", (1.0, 3.0))

    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc(2)
        registry.gauge("mid.gauge").set(1.5)
        registry.histogram("lat").observe(0.01)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.first", "z.last"]
        json.dumps(snapshot)  # must round-trip without a custom encoder


class TestMerge:
    def _snapshot(self, served, latencies):
        registry = MetricsRegistry()
        registry.counter("served").inc(served)
        registry.gauge("size").set(served)
        histogram = registry.histogram("lat")
        for value in latencies:
            histogram.observe(value)
        return registry.snapshot()

    def test_merge_adds_everything(self):
        merged = merge_snapshots(
            self._snapshot(3, [0.01, 0.02]), self._snapshot(5, [0.04])
        )
        assert merged["counters"]["served"] == 8
        assert merged["gauges"]["size"] == 8
        assert merged["histograms"]["lat"]["count"] == 3
        assert merged["histograms"]["lat"]["sum"] == pytest.approx(0.07)

    def test_merge_is_pure(self):
        base = self._snapshot(3, [0.01])
        other = self._snapshot(5, [0.02])
        base_bytes = json.dumps(base, sort_keys=True)
        other_bytes = json.dumps(other, sort_keys=True)
        merge_snapshots(base, other)
        assert json.dumps(base, sort_keys=True) == base_bytes
        assert json.dumps(other, sort_keys=True) == other_bytes

    def test_merge_disjoint_names_unions(self):
        base = MetricsRegistry()
        base.counter("only.base").inc()
        other = MetricsRegistry()
        other.counter("only.other").inc(2)
        merged = merge_snapshots(base.snapshot(), other.snapshot())
        assert merged["counters"] == {"only.base": 1, "only.other": 2}

    def test_merge_refuses_mismatched_bounds(self):
        base = MetricsRegistry()
        base.histogram("h", (1.0, 2.0)).observe(1.5)
        other = MetricsRegistry()
        other.histogram("h", (1.0, 3.0)).observe(1.5)
        with pytest.raises(MetricsError):
            merge_snapshots(base.snapshot(), other.snapshot())

    def test_merge_is_associative_on_counts(self):
        # Binary-exact latencies: the property under test is the merge
        # arithmetic, not float addition order.
        parts = [self._snapshot(i + 1, [0.25 * (i + 1)]) for i in range(3)]
        left = merge_snapshots(merge_snapshots(parts[0], parts[1]), parts[2])
        right = merge_snapshots(parts[0], merge_snapshots(parts[1], parts[2]))
        assert json.dumps(left, sort_keys=True) == json.dumps(right, sort_keys=True)
