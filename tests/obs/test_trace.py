"""Tests for the tracer (`obs/trace.py`) and event schema (`obs/schema.py`).

The tracer's contract is byte-stability under an injected clock: the same
code under the same fake clock emits the same JSONL bytes forever (the
golden test below pins them).  Every emitted line must satisfy the closed
schema, numpy attribute values included, and the null tracer must cost
nothing and write nothing.
"""

import io
import json

import numpy as np
import pytest

from repro.obs.schema import TraceSchemaError, validate_event, validate_trace_path
from repro.obs.trace import NULL_TRACER, Tracer


class FakeClock:
    """Deterministic clock advancing by a fixed step per reading."""

    def __init__(self, step: float = 0.25) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        reading, self.now = self.now, self.now + self.step
        return reading


def make_tracer():
    sink = io.StringIO()
    return Tracer(sink, clock=FakeClock()), sink


class TestTracer:
    def test_golden_bytes_under_fake_clock(self):
        tracer, sink = make_tracer()
        with tracer.span("build.similarities", edges=12):
            pass
        tracer.event("serve.degraded", reason="spawn")
        tracer.snapshot("final", {"counters": {}, "gauges": {}, "histograms": {}})
        assert sink.getvalue() == (
            '{"attrs": {"edges": 12}, "dur": 0.25, "kind": "span",'
            ' "name": "build.similarities", "ts": 0.0}\n'
            '{"attrs": {"reason": "spawn"}, "kind": "event",'
            ' "name": "serve.degraded", "ts": 0.5}\n'
            '{"kind": "snapshot", "metrics": {"counters": {}, "gauges": {},'
            ' "histograms": {}}, "name": "final", "ts": 0.75}\n'
        )
        assert tracer.events_written == 3

    def test_span_attrs_mutable_inside_region(self):
        tracer, sink = make_tracer()
        with tracer.span("serve.worker.request", worker=0) as span:
            span.attrs["cache"] = "hit"
        line = json.loads(sink.getvalue())
        assert line["attrs"] == {"cache": "hit", "worker": 0}

    def test_numpy_attrs_coerce_to_json_scalars(self):
        tracer, sink = make_tracer()
        tracer.event(
            "dynamic.apply_updates",
            affected=np.int64(7),
            seconds=np.float64(0.125),
        )
        line = json.loads(sink.getvalue())
        assert line["attrs"] == {"affected": 7, "seconds": 0.125}
        assert isinstance(line["attrs"]["affected"], int)

    def test_every_emitted_line_validates(self):
        tracer, sink = make_tracer()
        with tracer.span("a.region", size=np.int32(3)):
            pass
        tracer.event("b.moment")
        tracer.snapshot("final", {"counters": {"x.total": 1}})
        for line in sink.getvalue().splitlines():
            validate_event(json.loads(line))

    def test_to_path_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "trace.jsonl"
        tracer = Tracer.to_path(path, clock=FakeClock())
        tracer.event("a.b")
        tracer.close()
        counts = validate_trace_path(path)
        assert counts == {"span": 0, "event": 1, "snapshot": 0}

    def test_null_tracer_is_silent_and_shared(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("anything", key="value")
        with span as entered:
            entered.attrs["dropped"] = True  # must vanish, not accumulate
        assert NULL_TRACER.span("other") is span
        assert span.attrs == {}
        NULL_TRACER.event("ignored")
        NULL_TRACER.snapshot("ignored", {})
        assert NULL_TRACER.events_written == 0


class TestSchema:
    def _valid_span(self):
        return {"kind": "span", "name": "a.b", "ts": 0.0, "dur": 0.1}

    def test_accepts_minimal_kinds(self):
        assert validate_event(self._valid_span()) == "span"
        assert validate_event({"kind": "event", "name": "x", "ts": 1}) == "event"
        assert validate_event(
            {"kind": "snapshot", "name": "final", "ts": 1, "metrics": {}}
        ) == "snapshot"

    @pytest.mark.parametrize("mutation", [
        {"kind": "mystery"},
        {"name": "Not.Lower"},
        {"name": "trailing."},
        {"ts": -1.0},
        {"ts": float("nan")},
        {"dur": True},
        {"extra_key": 1},
        {"attrs": {"nested": {"not": "scalar"}}},
    ])
    def test_rejects_bad_fields(self, mutation):
        event = {**self._valid_span(), **mutation}
        with pytest.raises(TraceSchemaError):
            validate_event(event)

    def test_rejects_missing_keys(self):
        with pytest.raises(TraceSchemaError, match="missing"):
            validate_event({"kind": "span", "name": "a", "ts": 0.0})

    def test_snapshot_histogram_shape_enforced(self):
        bad = {
            "kind": "snapshot", "name": "final", "ts": 0,
            "metrics": {"histograms": {"h": {
                "bounds": [1.0], "counts": [1], "count": 1, "sum": 1.0,
            }}},
        }
        with pytest.raises(TraceSchemaError, match="length mismatch"):
            validate_event(bad)

    def test_trace_path_reports_line_numbers(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"kind": "event", "name": "ok.line", "ts": 0}\nnot json\n')
        with pytest.raises(TraceSchemaError, match=":2"):
            validate_trace_path(path)

    def test_blank_line_rejected(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text('{"kind": "event", "name": "ok.line", "ts": 0}\n\n')
        with pytest.raises(TraceSchemaError):
            validate_trace_path(path)
