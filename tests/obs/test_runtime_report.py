"""Tests for the obs runtime seam, the trace report, and the bench bridge.

`runtime` is the process-global state every instrumented subsystem talks
to; its contracts are: disabled by default (null tracer, `on()` False),
`install` is a restorable test seam, `reset` severs inherited state, and
`finalise` appends exactly one self-describing snapshot then disables
tracing.  `report`/`bridge` consume the files the runtime writes.
"""

import io
import json

import pytest

from repro import obs
from repro.bench.store import BenchStore
from repro.obs import bridge, report
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class FakeClock:
    """Deterministic clock advancing by a fixed step per reading."""

    def __init__(self, step: float = 0.25) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        reading, self.now = self.now, self.now + self.step
        return reading


@pytest.fixture
def isolated_obs():
    """A fresh registry + in-memory tracer installed for one test."""
    sink = io.StringIO()
    tracer = Tracer(sink, clock=FakeClock())
    previous = obs.install(tracer=tracer, registry=MetricsRegistry())
    try:
        yield sink
    finally:
        obs.install(tracer=previous[0], registry=previous[1])


class TestRuntime:
    def test_disabled_by_default(self):
        # The suite must start (and stay) with tracing off: `on()` is the
        # hot-path gate every instrumented subsystem trusts.
        assert obs.on() is False
        assert obs.tracer().enabled is False

    def test_install_enables_and_restores(self, isolated_obs):
        assert obs.on() is True
        obs.event("test.moment")
        obs.counter("test.total").inc()
        assert obs.metrics().snapshot()["counters"] == {"test.total": 1}
        assert '"test.moment"' in isolated_obs.getvalue()

    def test_span_forwarding_writes_through(self, isolated_obs):
        with obs.span("test.region", size=2):
            pass
        line = json.loads(isolated_obs.getvalue())
        assert line["name"] == "test.region"
        assert line["attrs"] == {"size": 2}

    def test_finalise_appends_snapshot_and_disables(self, isolated_obs):
        obs.counter("test.total").inc(3)
        obs.finalise()
        lines = [json.loads(l) for l in isolated_obs.getvalue().splitlines()]
        assert lines[-1]["kind"] == "snapshot"
        assert lines[-1]["metrics"]["counters"] == {"test.total": 3}
        assert obs.on() is False

    def test_reset_gives_fresh_registry(self, isolated_obs):
        obs.counter("test.total").inc(5)
        obs.reset()
        assert obs.metrics().snapshot()["counters"] == {}
        assert obs.on() is False

    def test_configure_writes_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs.configure(path, clock=FakeClock())
        try:
            obs.event("test.configured")
        finally:
            obs.finalise()
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # the event plus finalise's snapshot
        assert json.loads(lines[1])["kind"] == "snapshot"


def write_trace(path):
    """A small deterministic trace with two span names and a snapshot."""
    tracer = Tracer.to_path(path, clock=FakeClock())
    for _ in range(3):
        with tracer.span("serve.request", mu=5):
            pass
    with tracer.span("storage.load"):
        pass
    tracer.event("serve.degraded", reason="spawn")
    registry = MetricsRegistry()
    registry.counter("serve.requests_total").inc(3)
    registry.gauge("serve.cache.size").set(2)
    registry.histogram("serve.request_seconds").observe(0.01)
    tracer.snapshot("final", registry.snapshot())
    tracer.close()


class TestReport:
    def test_summarize_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path)
        summary = report.summarize_trace(path)
        assert summary["lines"] == 6
        assert summary["spans"]["serve.request"]["count"] == 3
        assert summary["spans"]["serve.request"]["sum"] == pytest.approx(0.75)
        assert summary["events"] == {"serve.degraded": 1}
        assert summary["snapshot"]["counters"] == {"serve.requests_total": 3}

    def test_render_is_deterministic_and_complete(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path)
        rendered = report.render_trace_report(path)
        assert rendered == report.render_trace_report(path)
        for needle in ("serve.request", "storage.load", "serve.degraded",
                       "serve.requests_total", "serve.cache.size",
                       "serve.request_seconds"):
            assert needle in rendered

    def test_render_empty_snapshot(self):
        assert report.render_metrics_snapshot({}) == "(no metrics recorded)"

    def test_malformed_trace_refuses_to_render(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span", "name": "x", "ts": 0}\n')
        from repro.obs.schema import TraceSchemaError

        with pytest.raises(TraceSchemaError):
            report.summarize_trace(path)


class TestBridge:
    def test_snapshot_payload_drops_bucket_vectors(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.01)
        payload = bridge.snapshot_payload(registry.snapshot())
        assert payload["benchmark"] == "observability"
        assert "bounds" not in payload["histograms"]["lat"]
        assert "counts" not in payload["histograms"]["lat"]
        assert payload["histograms"]["lat"]["count"] == 1

    def test_record_trace_lands_in_store(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_trace(trace)
        db = tmp_path / "traj.sqlite"
        run_id = bridge.record_trace(db, trace, source="test")
        with BenchStore(db) as store:
            run = store.run(run_id)
            assert run.benchmark == "observability"
            cells = store.cells(run_id)
        metrics = {(cell.cell, cell.metric) for cell in cells}
        assert any("serve.request" in (cell or "") for cell, _ in metrics)
