"""Tests for the index patcher: bit-identity with a rebuild, plus contracts.

The tentpole invariant of the dynamic subsystem is that
``index.apply_updates(batch)`` leaves the index **bit-identical** to
``ScanIndex.build`` on the mutated graph -- every stored column, both sorted
orders, and every query answer.  These tests check it directly for single
batches under both order-repair strategies (the sorted-run merge and the
churn-crossover resort), exercise the lifecycle side effects (lineage,
mutation epoch, snapper memo), and pin the error contract.
"""

import numpy as np
import pytest

import repro.dynamic.patch as patch_module
from repro import ApproximationConfig, ScanIndex
from repro.dynamic import UpdateBatch
from repro.graphs import empty_graph, from_edge_list, planted_partition
from repro.similarity.exact import EdgeSimilarities


def mutate_edge_list(graph, insertions, deletions):
    """The mutated canonical edge list, for the rebuild reference."""
    edge_u, edge_v = graph.edge_list()
    dropped = {(min(u, v), max(u, v)) for u, v in deletions}
    edges = [e for e in zip(edge_u.tolist(), edge_v.tolist()) if e not in dropped]
    edges += [(min(u, v), max(u, v)) for u, v in insertions]
    return edges


def assert_indexes_identical(patched, rebuilt):
    pairs = [
        ("graph_indptr", patched.graph.indptr, rebuilt.graph.indptr),
        ("graph_indices", patched.graph.indices, rebuilt.graph.indices),
        ("arc_edge_ids", patched.graph.arc_edge_ids, rebuilt.graph.arc_edge_ids),
        ("similarities", patched.similarities.values, rebuilt.similarities.values),
        ("numerators", patched.similarities.numerators, rebuilt.similarities.numerators),
        ("no_neighbors", patched.neighbor_order.neighbors, rebuilt.neighbor_order.neighbors),
        ("no_similarities", patched.neighbor_order.similarities, rebuilt.neighbor_order.similarities),
        ("co_indptr", patched.core_order.indptr, rebuilt.core_order.indptr),
        ("co_vertices", patched.core_order.vertices, rebuilt.core_order.vertices),
        ("co_thresholds", patched.core_order.thresholds, rebuilt.core_order.thresholds),
    ]
    for name, a, b in pairs:
        assert np.array_equal(np.asarray(a), np.asarray(b)), name


def random_batch(rng, graph, num_ops):
    edge_u, edge_v = graph.edge_list()
    m, n = graph.num_edges, graph.num_vertices
    num_del = min(num_ops // 2, m)
    delete_ids = rng.choice(m, size=num_del, replace=False)
    deletions = list(zip(edge_u[delete_ids].tolist(), edge_v[delete_ids].tolist()))
    existing = set(zip(edge_u.tolist(), edge_v.tolist()))
    insertions = []
    while len(insertions) < num_ops - num_del:
        u, v = sorted(rng.integers(0, n, size=2).tolist())
        if u == v or (u, v) in existing:
            continue
        existing.add((u, v))
        insertions.append((u, v))
    return insertions, deletions


class TestBitIdentity:
    @pytest.mark.parametrize("measure", ["cosine", "jaccard", "dice"])
    @pytest.mark.parametrize("strategy", ["merge", "resort"])
    def test_mixed_batch_matches_rebuild(self, measure, strategy, monkeypatch):
        # Force each order-repair strategy so both stay covered regardless
        # of where the measured churn crossover sits.
        monkeypatch.setattr(
            patch_module,
            "ORDER_REBUILD_CHURN",
            1.1 if strategy == "merge" else -0.1,
        )
        rng = np.random.default_rng(hash((measure, strategy)) % 1000)
        graph = planted_partition(4, 20, p_intra=0.4, p_inter=0.03, seed=7)
        index = ScanIndex.build(graph, measure=measure)
        insertions, deletions = random_batch(rng, graph, 10)
        report = index.apply_updates(insertions=insertions, deletions=deletions)
        assert report.order_strategy == strategy
        rebuilt = ScanIndex.build(
            from_edge_list(
                mutate_edge_list(graph, insertions, deletions),
                num_vertices=graph.num_vertices,
            ),
            measure=measure,
        )
        assert_indexes_identical(index, rebuilt)
        for mu, eps in [(2, 0.3), (3, 0.55), (5, 0.7)]:
            for det in (False, True):
                a = index.query(mu, eps, deterministic_borders=det)
                b = rebuilt.query(mu, eps, deterministic_borders=det)
                assert np.array_equal(a.labels, b.labels)
                assert np.array_equal(a.core_mask, b.core_mask)

    def test_insert_only_and_delete_only(self):
        graph = planted_partition(3, 15, p_intra=0.5, p_inter=0.05, seed=2)
        edge_u, edge_v = graph.edge_list()
        deletions = [(int(edge_u[0]), int(edge_v[0])), (int(edge_u[7]), int(edge_v[7]))]
        index = ScanIndex.build(graph)
        index.apply_updates(deletions=deletions)
        rebuilt = ScanIndex.build(
            from_edge_list(mutate_edge_list(graph, [], deletions),
                           num_vertices=graph.num_vertices)
        )
        assert_indexes_identical(index, rebuilt)

        index.apply_updates(insertions=deletions)   # put them back
        assert_indexes_identical(index, ScanIndex.build(graph))

    def test_delete_every_edge(self):
        graph = from_edge_list([(0, 1), (1, 2), (0, 2)], num_vertices=4)
        index = ScanIndex.build(graph)
        index.apply_updates(deletions=[(0, 1), (1, 2), (0, 2)])
        assert_indexes_identical(index, ScanIndex.build(empty_graph(4)))

    def test_insert_into_empty_graph(self):
        index = ScanIndex.build(empty_graph(5))
        index.apply_updates(insertions=[(0, 1), (1, 2), (0, 2), (3, 4)])
        rebuilt = ScanIndex.build(
            from_edge_list([(0, 1), (1, 2), (0, 2), (3, 4)], num_vertices=5)
        )
        assert_indexes_identical(index, rebuilt)

    def test_max_mu_grows_and_shrinks(self):
        graph = from_edge_list([(0, 1), (1, 2)], num_vertices=6)
        index = ScanIndex.build(graph)
        star = [(0, 2), (0, 3), (0, 4), (0, 5)]
        index.apply_updates(insertions=star)
        rebuilt = ScanIndex.build(
            from_edge_list([(0, 1), (1, 2)] + star, num_vertices=6)
        )
        assert index.core_order.max_mu == rebuilt.core_order.max_mu
        assert_indexes_identical(index, rebuilt)
        index.apply_updates(deletions=star)
        assert index.core_order.max_mu == ScanIndex.build(graph).core_order.max_mu
        assert_indexes_identical(index, ScanIndex.build(graph))

    def test_weighted_reweight_applies_atomically(self):
        graph = from_edge_list(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 5), (1, 5)],
            weights=[1.0, 2.0, 0.5, 1.5, 1.0, 3.0],
        )
        index = ScanIndex.build(graph, measure="cosine")
        index.apply_updates(insertions=[(3, 5, 0.25)], deletions=[(3, 5)])
        rebuilt = ScanIndex.build(
            from_edge_list(
                [(0, 1), (1, 2), (0, 2), (2, 3), (3, 5), (1, 5)],
                weights=[1.0, 2.0, 0.5, 1.5, 0.25, 3.0],
            ),
            measure="cosine",
        )
        assert np.array_equal(index.graph.indices, rebuilt.graph.indices)
        assert np.allclose(index.graph.arc_weights, rebuilt.graph.arc_weights)
        assert np.allclose(
            index.similarities.values, rebuilt.similarities.values, atol=1e-12
        )

    def test_negative_weights_keep_merge_path_orders_consistent(self, monkeypatch):
        """Negative weighted-cosine scores exercise the full-float-range key
        transform: the merged orders must still equal a re-sort of the
        patched scores."""
        monkeypatch.setattr(patch_module, "ORDER_REBUILD_CHURN", 1.1)  # force merge
        rng = np.random.default_rng(13)
        n = 50
        edges, weights, seen = [], [], set()
        while len(edges) < 200:
            u, v = sorted(rng.integers(0, n, size=2).tolist())
            if u == v or (u, v) in seen:
                continue
            seen.add((u, v))
            edges.append((u, v))
            weights.append(float(rng.normal()))
        graph = from_edge_list(edges, num_vertices=n, weights=weights)
        index = ScanIndex.build(graph, measure="cosine")
        edge_u, edge_v = graph.edge_list()
        report = index.apply_updates(
            insertions=[(0, 49, -0.7)] if not graph.has_edge(0, 49) else [],
            deletions=[(int(edge_u[3]), int(edge_v[3]))],
        )
        assert report.order_strategy == "merge"
        rebuilt = ScanIndex.build_from_similarities(
            index.graph,
            EdgeSimilarities(index.graph, index.similarities.values, "cosine"),
        )
        assert np.array_equal(
            index.neighbor_order.neighbors, rebuilt.neighbor_order.neighbors
        )
        assert np.array_equal(
            index.core_order.vertices, rebuilt.core_order.vertices
        )

    def test_weighted_cosine_scores_match_and_orders_self_consistent(self):
        graph = from_edge_list(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (0, 4), (1, 4)],
            weights=[1.0, 2.0, 0.5, 1.5, 1.0, 3.0, 0.25],
        )
        index = ScanIndex.build(graph, measure="cosine")
        index.apply_updates(insertions=[(1, 3, 2.5)], deletions=[(2, 3)])
        rebuilt = ScanIndex.build(
            from_edge_list(
                [(0, 1), (1, 2), (0, 2), (3, 4), (0, 4), (1, 4), (1, 3)],
                weights=[1.0, 2.0, 0.5, 1.0, 3.0, 0.25, 2.5],
                num_vertices=5,
            ),
            measure="cosine",
        )
        # Weighted float sums depend on summation order: scores agree to
        # tolerance, and the patched orders are exactly the orders of the
        # patched scores (the documented weighted contract).
        assert np.allclose(
            index.similarities.values, rebuilt.similarities.values, atol=1e-12
        )
        self_rebuilt = ScanIndex.build_from_similarities(
            index.graph,
            EdgeSimilarities(index.graph, index.similarities.values, "cosine"),
        )
        assert np.array_equal(
            index.neighbor_order.neighbors, self_rebuilt.neighbor_order.neighbors
        )
        assert np.array_equal(
            index.core_order.vertices, self_rebuilt.core_order.vertices
        )


class TestLifecycle:
    def test_lineage_epoch_and_snapper_refresh(self):
        graph = planted_partition(3, 12, p_intra=0.5, p_inter=0.05, seed=3)
        index = ScanIndex.build(graph)
        session = index.session()
        session.serve(2, 0.5)            # builds + memoizes the snapper
        old_snapper = index._epsilon_snapper
        report = index.apply_updates(insertions=[(0, 35)])
        assert report.insertions == 1 and report.deletions == 0
        assert index.update_lineage == [
            {
                "insertions": 1,
                "deletions": 0,
                "cancelled": 0,
                "affected_edges": report.affected_edges,
                "affected_vertices": report.affected_vertices,
                "order_strategy": report.order_strategy,
            }
        ]
        assert index._mutation_epoch == 1
        assert getattr(index, "_epsilon_snapper", None) is not old_snapper
        index.apply_updates(deletions=[(0, 35)])
        assert len(index.update_lineage) == 2
        assert index._mutation_epoch == 2

    def test_empty_batch_is_a_true_no_op(self):
        graph = from_edge_list([(0, 1), (1, 2)], num_vertices=3)
        index = ScanIndex.build(graph)
        before = index.similarities.values
        report = index.apply_updates(UpdateBatch.from_edges([(0, 2)], [(0, 2)]))
        assert report.cancelled == 1 and report.order_strategy == ""
        assert index.similarities.values is before
        assert index.update_lineage == []
        assert getattr(index, "_mutation_epoch", 0) == 0

    def test_batch_and_keyword_edges_are_mutually_exclusive(self):
        index = ScanIndex.build(from_edge_list([(0, 1)], num_vertices=2))
        with pytest.raises(ValueError, match="not both"):
            index.apply_updates(
                UpdateBatch.from_edges([(0, 1)], []), insertions=[(0, 1)]
            )


class TestErrorContract:
    @pytest.fixture()
    def index(self):
        return ScanIndex.build(
            from_edge_list([(0, 1), (1, 2), (0, 2), (2, 3)], num_vertices=5)
        )

    def test_inserting_present_edge_rejected(self, index):
        with pytest.raises(ValueError, match=r"insert edge \(0, 1\).*already"):
            index.apply_updates(insertions=[(1, 0)])

    def test_deleting_absent_edge_rejected(self, index):
        with pytest.raises(ValueError, match=r"delete edge \(0, 3\).*not in"):
            index.apply_updates(deletions=[(0, 3)])

    def test_out_of_range_endpoint_rejected(self, index):
        with pytest.raises(ValueError, match="out of range"):
            index.apply_updates(insertions=[(0, 99)])

    def test_weighted_insert_into_unweighted_graph_rejected(self, index):
        with pytest.raises(ValueError, match="unweighted"):
            index.apply_updates(insertions=[(0, 3, 2.0)])

    def test_lsh_approximate_index_rejected(self):
        graph = planted_partition(3, 12, p_intra=0.5, p_inter=0.05, seed=4)
        index = ScanIndex.build(
            graph, approximate=ApproximationConfig(num_samples=32)
        )
        with pytest.raises(ValueError, match="LSH-approximate"):
            index.apply_updates(insertions=[(0, 35)])

    def test_failed_validation_leaves_index_untouched(self, index):
        values = index.similarities.values
        with pytest.raises(ValueError):
            index.apply_updates(insertions=[(0, 4)], deletions=[(0, 3)])
        assert index.similarities.values is values
        assert index.update_lineage == []

    def test_hand_assembled_scores_fall_back_without_numerators(self):
        # An EdgeSimilarities without numerators (e.g. computed elsewhere)
        # still patches correctly -- via the wider recompute path.
        graph = planted_partition(3, 12, p_intra=0.5, p_inter=0.05, seed=5)
        base = ScanIndex.build(graph)
        index = ScanIndex.build_from_similarities(
            graph,
            EdgeSimilarities(graph, base.similarities.values.copy(), "cosine"),
        )
        assert index.similarities.numerators is None
        index.apply_updates(insertions=[(0, 30)])
        rebuilt = ScanIndex.build(
            from_edge_list(
                mutate_edge_list(graph, [(0, 30)], []),
                num_vertices=graph.num_vertices,
            )
        )
        assert np.array_equal(index.similarities.values, rebuilt.similarities.values)
        assert np.array_equal(
            index.neighbor_order.neighbors, rebuilt.neighbor_order.neighbors
        )
        assert index.similarities.numerators is None
