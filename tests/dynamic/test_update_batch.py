"""Tests for UpdateBatch canonicalization and the delta-file format."""

import numpy as np
import pytest

from repro.dynamic import UpdateBatch, load_delta_file
from repro.graphs import from_edge_list


class TestCanonicalization:
    def test_endpoints_swapped_and_sorted(self):
        batch = UpdateBatch.from_edges([(5, 2), (1, 0)], [(9, 3)])
        assert batch.insert_u.tolist() == [0, 2]
        assert batch.insert_v.tolist() == [1, 5]
        assert batch.delete_u.tolist() == [3]
        assert batch.delete_v.tolist() == [9]

    def test_duplicate_insertions_keep_last_weight(self):
        batch = UpdateBatch.from_edges([(0, 1, 2.0), (1, 0, 7.0)], [])
        assert batch.num_insertions == 1
        assert batch.insert_weights.tolist() == [7.0]

    def test_mixed_weighted_and_unweighted_items_default_to_one(self):
        batch = UpdateBatch.from_edges([(0, 1), (2, 3, 4.0)], [])
        assert batch.insert_weights.tolist() == [1.0, 4.0]

    def test_unweighted_insertions_have_no_weights(self):
        batch = UpdateBatch.from_edges([(0, 1), (2, 3)], [])
        assert batch.insert_weights is None

    def test_duplicate_deletions_collapse(self):
        batch = UpdateBatch.from_edges([], [(0, 1), (1, 0), (0, 1)])
        assert batch.num_deletions == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            UpdateBatch.from_edges([(3, 3)], [])
        with pytest.raises(ValueError, match="self-loop"):
            UpdateBatch.from_edges([], [(2, 2)])

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            UpdateBatch.from_edges([(-1, 2)], [])


class TestCancellation:
    def test_opposing_ops_cancel(self):
        batch = UpdateBatch.from_edges([(0, 1), (2, 3)], [(1, 0), (4, 5)])
        assert batch.num_cancelled == 1
        assert batch.num_insertions == 1
        assert batch.insert_u.tolist() == [2]
        assert batch.num_deletions == 1
        assert batch.delete_u.tolist() == [4]

    def test_full_cancellation_yields_empty_batch(self):
        batch = UpdateBatch.from_edges([(0, 1)], [(0, 1)])
        assert batch.is_empty
        assert batch.num_cancelled == 1
        assert batch.touched_vertices().size == 0

    def test_weighted_opposing_ops_are_kept_as_a_reweight(self):
        """delete + re-insert with a weight is the way to reweight an edge."""
        batch = UpdateBatch.from_edges([(3, 5, 0.25)], [(5, 3)])
        assert batch.num_cancelled == 0
        assert batch.num_insertions == 1 and batch.num_deletions == 1
        assert batch.insert_weights.tolist() == [0.25]

    def test_explicitness_is_per_insertion_not_per_batch(self):
        """An unrelated weighted op must not turn an opposing pair into a
        reweight-to-default: only the insertion's own explicit weight does."""
        batch = UpdateBatch.from_edges([(0, 4, 2.0), (1, 2)], [(1, 2)])
        assert batch.num_cancelled == 1
        assert batch.num_insertions == 1 and batch.num_deletions == 0
        assert batch.insert_u.tolist() == [0]
        # ... while an explicit 1.0 IS a reweight request.
        reweight = UpdateBatch.from_edges([(1, 2, 1.0)], [(1, 2)])
        assert reweight.num_cancelled == 0
        assert reweight.num_insertions == 1 and reweight.num_deletions == 1


class TestAffectedSet:
    def test_touched_vertices_are_all_endpoints(self):
        batch = UpdateBatch.from_edges([(0, 5)], [(2, 5), (7, 3)])
        assert batch.touched_vertices().tolist() == [0, 2, 3, 5, 7]

    def test_affected_edges_are_those_incident_to_touched(self):
        graph = from_edge_list(
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], num_vertices=6
        )
        batch = UpdateBatch.from_edges([], [(2, 3)])
        # Edges touching vertex 2 or 3: (1,2), (2,3), (3,4).
        affected = batch.affected_edges(graph)
        edge_u, edge_v = graph.edge_list()
        pairs = {(int(edge_u[e]), int(edge_v[e])) for e in affected}
        assert pairs == {(1, 2), (2, 3), (3, 4)}

    def test_empty_batch_affects_nothing(self):
        graph = from_edge_list([(0, 1)], num_vertices=2)
        assert UpdateBatch.from_edges([], []).affected_edges(graph).size == 0


class TestDeltaFile:
    def test_parses_ops_comments_and_weights(self, tmp_path):
        path = tmp_path / "delta.txt"
        path.write_text(
            "# a comment\n"
            "+ 0 5\n"
            "% another comment\n"
            "+ 7 2 1.5\n"
            "\n"
            "- 3 4\n"
        )
        batch = load_delta_file(path)
        assert batch.num_insertions == 2
        assert batch.insert_u.tolist() == [0, 2]
        assert batch.insert_weights.tolist() == [1.0, 1.5]
        assert batch.num_deletions == 1

    @pytest.mark.parametrize(
        "line", ["x 0 1", "+ 0", "- 0 1 2", "0 1", "+ 0 1 2 3"]
    )
    def test_malformed_lines_raise_with_location(self, tmp_path, line):
        path = tmp_path / "delta.txt"
        path.write_text(line + "\n")
        with pytest.raises(ValueError, match="delta.txt:1"):
            load_delta_file(path)
