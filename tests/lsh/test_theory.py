"""Tests for the sample-size bounds of Theorems 5.2 and 5.3."""

import math

import pytest

from repro.lsh import (
    hoeffding_failure_probability,
    minhash_required_samples,
    minhash_uncertainty_interval,
    simhash_required_samples,
    simhash_uncertainty_interval,
)


class TestRequiredSamples:
    def test_simhash_formula(self):
        n, m, delta = 1000, 5000, 0.1
        expected = math.ceil(math.pi ** 2 * math.log(n * m) / (2 * delta ** 2))
        assert simhash_required_samples(n, m, delta) == expected

    def test_minhash_formula(self):
        n, m, delta = 1000, 5000, 0.1
        expected = math.ceil(math.log(n * m) / (2 * delta ** 2))
        assert minhash_required_samples(n, m, delta) == expected

    def test_simhash_needs_more_samples_than_minhash(self):
        assert simhash_required_samples(100, 500, 0.2) > minhash_required_samples(100, 500, 0.2)

    def test_samples_grow_as_delta_shrinks(self):
        assert minhash_required_samples(100, 500, 0.05) > minhash_required_samples(100, 500, 0.2)

    def test_samples_grow_with_graph_size(self):
        assert minhash_required_samples(10_000, 1_000_000, 0.1) > minhash_required_samples(
            100, 500, 0.1
        )

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.5])
    def test_invalid_delta(self, delta):
        with pytest.raises(ValueError):
            simhash_required_samples(100, 500, delta)

    def test_invalid_graph_size(self):
        with pytest.raises(ValueError):
            minhash_required_samples(1, 0, 0.1)


class TestUncertaintyIntervals:
    def test_minhash_interval_symmetric(self):
        low, high = minhash_uncertainty_interval(0.5, 0.1)
        assert low == pytest.approx(0.4)
        assert high == pytest.approx(0.6)

    def test_simhash_interval_asymmetric(self):
        low, high = simhash_uncertainty_interval(0.9, 0.1)
        assert low == pytest.approx(0.8)
        assert high == pytest.approx(0.9 + math.sqrt(1 - 0.81) * 0.1)

    def test_simhash_interval_at_epsilon_one_collapses_above(self):
        low, high = simhash_uncertainty_interval(1.0, 0.1)
        assert high == pytest.approx(1.0)
        assert low == pytest.approx(0.9)

    def test_interval_contains_epsilon(self):
        for epsilon in (0.1, 0.5, 0.9):
            low, high = simhash_uncertainty_interval(epsilon, 0.05)
            assert low <= epsilon <= high

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            simhash_uncertainty_interval(1.5, 0.1)


class TestHoeffding:
    def test_probability_decreases_with_samples(self):
        assert hoeffding_failure_probability(1000, 0.1) < hoeffding_failure_probability(10, 0.1)

    def test_simhash_bound_is_weaker(self):
        assert hoeffding_failure_probability(100, 0.1, simhash=True) > (
            hoeffding_failure_probability(100, 0.1, simhash=False)
        )

    def test_theorem_sample_count_reaches_union_bound_target(self):
        # With the Theorem 5.3 sample count the per-edge failure probability
        # is at most 1 / (n m).
        n, m, delta = 200, 1000, 0.1
        k = minhash_required_samples(n, m, delta)
        assert hoeffding_failure_probability(k, delta, simhash=False) <= 1.0 / (n * m) + 1e-12

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            hoeffding_failure_probability(0, 0.1)
        with pytest.raises(ValueError):
            hoeffding_failure_probability(10, 1.5)
