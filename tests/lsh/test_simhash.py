"""Tests for SimHash sketching and cosine estimation."""

import math

import numpy as np
import pytest

from repro.graphs import complete_graph, paper_example_graph, planted_partition
from repro.lsh import (
    box_muller,
    estimate_angle,
    estimate_cosine,
    estimate_cosine_batch,
    gaussian_projections,
    simhash_sketches,
)
from repro.lsh.simhash import _simhash_sketches_scalar
from repro.parallel import Scheduler
from repro.similarity import compute_similarities


class TestBoxMuller:
    def test_length(self, rng):
        assert box_muller(rng, 101).shape == (101,)

    def test_mean_and_variance_near_standard_normal(self, rng):
        samples = box_muller(rng, 50_000)
        assert abs(float(samples.mean())) < 0.03
        assert abs(float(samples.std()) - 1.0) < 0.03

    def test_projections_shape_and_determinism(self):
        a = gaussian_projections(8, 20, seed=3)
        b = gaussian_projections(8, 20, seed=3)
        assert a.shape == (8, 20)
        assert np.array_equal(a, b)

    def test_projections_different_seeds(self):
        assert not np.array_equal(
            gaussian_projections(8, 20, seed=1), gaussian_projections(8, 20, seed=2)
        )


class TestSketches:
    def test_shape(self, paper_graph):
        sketches = simhash_sketches(paper_graph, 16, seed=0)
        assert sketches.shape == (11, 16)
        assert sketches.dtype == bool

    def test_deterministic_given_seed(self, paper_graph):
        a = simhash_sketches(paper_graph, 32, seed=5)
        b = simhash_sketches(paper_graph, 32, seed=5)
        assert np.array_equal(a, b)

    def test_selected_vertices_only(self, paper_graph):
        sketches = simhash_sketches(paper_graph, 8, seed=0, vertices=np.array([0, 1]))
        # Unselected rows stay untouched (all False).
        assert not sketches[5].any() or sketches.shape[0] == 11

    def test_invalid_sample_count(self, paper_graph):
        with pytest.raises(ValueError):
            simhash_sketches(paper_graph, 0)

    def test_charges_work_proportional_to_k(self, paper_graph):
        small, large = Scheduler(), Scheduler()
        simhash_sketches(paper_graph, 8, scheduler=small)
        simhash_sketches(paper_graph, 64, scheduler=large)
        assert large.counter.work > 4 * small.counter.work


class TestVectorisedAgainstScalar:
    """The degree-bucketed construction is pinned to the per-vertex loop."""

    @pytest.mark.parametrize("num_samples", [4, 16, 33])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_matches_scalar_path(self, paper_graph, num_samples, seed):
        fast = simhash_sketches(paper_graph, num_samples, seed=seed)
        slow = _simhash_sketches_scalar(paper_graph, num_samples, seed=seed)
        assert np.array_equal(fast, slow)

    def test_matches_scalar_on_community_graph(self, weighted_graph):
        fast = simhash_sketches(weighted_graph, 16, seed=3)
        slow = _simhash_sketches_scalar(weighted_graph, 16, seed=3)
        assert np.array_equal(fast, slow)

    def test_matches_scalar_on_vertex_subset(self):
        graph = planted_partition(3, 20, p_intra=0.4, p_inter=0.05, seed=2)
        subset = np.array([0, 5, 17, 40])
        fast = simhash_sketches(graph, 16, seed=1, vertices=subset)
        slow = _simhash_sketches_scalar(graph, 16, seed=1, vertices=subset)
        assert np.array_equal(fast, slow)

    def test_estimates_pinned_within_tolerance(self, paper_graph):
        fast = simhash_sketches(paper_graph, 64, seed=5)
        slow = _simhash_sketches_scalar(paper_graph, 64, seed=5)
        edge_u, edge_v = paper_graph.edge_list()
        a = estimate_cosine_batch(fast, edge_u, edge_v)
        b = estimate_cosine_batch(slow, edge_u, edge_v)
        assert float(np.abs(a - b).max()) < 1e-9


class TestEstimates:
    def test_identical_sketches_give_similarity_one(self):
        sketch = np.array([True, False, True, True])
        assert estimate_cosine(sketch, sketch) == pytest.approx(1.0)

    def test_opposite_sketches_clip_to_zero(self):
        a = np.array([True] * 8)
        b = np.array([False] * 8)
        assert estimate_cosine(a, b) == 0.0

    def test_angle_half_disagreement(self):
        a = np.array([True, True, False, False])
        b = np.array([True, False, False, True])
        assert estimate_angle(a, b) == pytest.approx(math.pi / 2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            estimate_cosine(np.array([True]), np.array([True, False]))

    def test_empty_sketch_rejected(self):
        with pytest.raises(ValueError):
            estimate_angle(np.array([], dtype=bool), np.array([], dtype=bool))

    def test_identical_vertices_of_complete_graph(self):
        graph = complete_graph(8)
        sketches = simhash_sketches(graph, 64, seed=0)
        # All closed neighborhoods are identical, so all sketches agree.
        assert estimate_cosine(sketches[0], sketches[5]) == pytest.approx(1.0)

    def test_estimates_converge_to_exact(self, paper_graph):
        exact = compute_similarities(paper_graph)
        sketches = simhash_sketches(paper_graph, 4096, seed=1)
        edge_u, edge_v = paper_graph.edge_list()
        estimates = estimate_cosine_batch(sketches, edge_u, edge_v)
        assert float(np.abs(estimates - exact.values).max()) < 0.08

    def test_batch_matches_scalar(self, paper_graph):
        sketches = simhash_sketches(paper_graph, 32, seed=2)
        edge_u, edge_v = paper_graph.edge_list()
        batch = estimate_cosine_batch(sketches, edge_u, edge_v)
        for i, (u, v) in enumerate(zip(edge_u.tolist(), edge_v.tolist())):
            assert batch[i] == pytest.approx(estimate_cosine(sketches[u], sketches[v]))

    def test_batch_length_mismatch(self, paper_graph):
        sketches = simhash_sketches(paper_graph, 8, seed=0)
        with pytest.raises(ValueError):
            estimate_cosine_batch(sketches, np.array([0]), np.array([1, 2]))
