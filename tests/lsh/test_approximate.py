"""Tests for approximate all-edge similarities with the low-degree heuristic."""

import numpy as np
import pytest

from repro.graphs import dense_clustered_graph, empty_graph, paper_example_graph
from repro.lsh import ApproximationConfig, compute_approximate_similarities
from repro.parallel import Scheduler
from repro.similarity import compute_similarities


class TestConfig:
    def test_defaults(self):
        config = ApproximationConfig()
        assert config.measure == "cosine"
        assert config.resolved_threshold() == 64

    def test_jaccard_threshold_factor(self):
        config = ApproximationConfig(measure="jaccard", num_samples=64)
        assert config.resolved_threshold() == 96

    def test_explicit_threshold_wins(self):
        config = ApproximationConfig(num_samples=64, degree_threshold=10)
        assert config.resolved_threshold() == 10

    def test_invalid_measure(self):
        with pytest.raises(ValueError):
            ApproximationConfig(measure="dice")

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            ApproximationConfig(num_samples=0)


class TestComputation:
    def test_measure_label_prefixed(self, community_graph):
        approx = compute_approximate_similarities(
            community_graph, measure="cosine", num_samples=32
        )
        assert approx.measure == "approx_cosine"

    def test_empty_graph(self):
        approx = compute_approximate_similarities(empty_graph(3), num_samples=8)
        assert len(approx) == 0

    def test_config_and_kwargs_are_exclusive(self, paper_graph):
        with pytest.raises(ValueError):
            compute_approximate_similarities(
                paper_graph, ApproximationConfig(), num_samples=8
            )

    def test_weighted_graph_rejects_jaccard(self, weighted_graph):
        with pytest.raises(ValueError):
            compute_approximate_similarities(weighted_graph, measure="jaccard", num_samples=8)

    def test_low_degree_edges_are_exact(self, paper_graph):
        # Every vertex of the example graph has degree <= 4 < threshold, so the
        # heuristic computes every edge exactly.
        exact = compute_similarities(paper_graph)
        approx = compute_approximate_similarities(paper_graph, num_samples=32, seed=0)
        assert np.allclose(approx.values, exact.values)

    def test_low_degree_jaccard_edges_are_exact(self, paper_graph):
        exact = compute_similarities(paper_graph, measure="jaccard")
        approx = compute_approximate_similarities(
            paper_graph, measure="jaccard", num_samples=32, seed=0
        )
        assert np.allclose(approx.values, exact.values)

    def test_deterministic_given_seed(self, community_graph):
        a = compute_approximate_similarities(
            community_graph, num_samples=16, seed=3, degree_threshold=5
        )
        b = compute_approximate_similarities(
            community_graph, num_samples=16, seed=3, degree_threshold=5
        )
        assert np.array_equal(a.values, b.values)

    def test_accuracy_improves_with_samples(self):
        graph = dense_clustered_graph(3, 40, p_intra=0.7, p_inter=0.02, seed=1)
        exact = compute_similarities(graph)
        errors = []
        for k in (8, 64, 512):
            approx = compute_approximate_similarities(
                graph, measure="cosine", num_samples=k, seed=2, degree_threshold=4
            )
            errors.append(float(np.abs(approx.values - exact.values).mean()))
        assert errors[2] < errors[0]
        assert errors[2] < 0.05

    def test_jaccard_accuracy_with_k_partition(self):
        graph = dense_clustered_graph(3, 40, p_intra=0.7, p_inter=0.02, seed=1)
        exact = compute_similarities(graph, measure="jaccard")
        approx = compute_approximate_similarities(
            graph, measure="jaccard", num_samples=512, seed=0, degree_threshold=4
        )
        assert float(np.abs(approx.values - exact.values).mean()) < 0.05

    def test_values_in_unit_interval(self, community_graph):
        approx = compute_approximate_similarities(
            community_graph, num_samples=16, seed=1, degree_threshold=3
        )
        assert float(approx.values.min()) >= 0.0
        assert float(approx.values.max()) <= 1.0 + 1e-9

    def test_sketching_work_scales_with_samples(self):
        graph = dense_clustered_graph(3, 40, p_intra=0.7, p_inter=0.02, seed=1)
        small, large = Scheduler(), Scheduler()
        compute_approximate_similarities(
            graph, scheduler=small, num_samples=8, degree_threshold=4
        )
        compute_approximate_similarities(
            graph, scheduler=large, num_samples=128, degree_threshold=4
        )
        assert large.counter.work > small.counter.work
