"""Tests for MinHash / k-partition MinHash sketching and Jaccard estimation."""

import numpy as np
import pytest

from repro.graphs import complete_graph, paper_example_graph, planted_partition
from repro.lsh import (
    EMPTY_BUCKET,
    estimate_jaccard,
    estimate_jaccard_batch,
    estimate_jaccard_k_partition,
    k_partition_minhash_sketches,
    minhash_sketches,
)
from repro.lsh.minhash import (
    _k_partition_minhash_sketches_scalar,
    _minhash_sketches_scalar,
)
from repro.parallel import Scheduler
from repro.similarity import compute_similarities


class TestVectorisedAgainstScalar:
    """Both sketch constructions are pinned to the per-vertex loops."""

    @pytest.mark.parametrize("num_samples", [4, 16, 33])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_standard_matches_scalar(self, paper_graph, num_samples, seed):
        fast = minhash_sketches(paper_graph, num_samples, seed=seed)
        slow = _minhash_sketches_scalar(paper_graph, num_samples, seed=seed)
        assert np.array_equal(fast, slow)

    @pytest.mark.parametrize("num_samples", [4, 16, 33])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_k_partition_matches_scalar(self, paper_graph, num_samples, seed):
        fast = k_partition_minhash_sketches(paper_graph, num_samples, seed=seed)
        slow = _k_partition_minhash_sketches_scalar(
            paper_graph, num_samples, seed=seed
        )
        assert np.array_equal(fast, slow)

    def test_matches_scalar_on_vertex_subset(self):
        graph = planted_partition(3, 20, p_intra=0.4, p_inter=0.05, seed=5)
        subset = np.array([1, 7, 30, 55])
        for fast_fn, slow_fn in (
            (minhash_sketches, _minhash_sketches_scalar),
            (k_partition_minhash_sketches, _k_partition_minhash_sketches_scalar),
        ):
            fast = fast_fn(graph, 16, seed=2, vertices=subset)
            slow = slow_fn(graph, 16, seed=2, vertices=subset)
            assert np.array_equal(fast, slow)

    def test_estimates_pinned_within_tolerance(self, paper_graph):
        fast = k_partition_minhash_sketches(paper_graph, 64, seed=9)
        slow = _k_partition_minhash_sketches_scalar(paper_graph, 64, seed=9)
        edge_u, edge_v = paper_graph.edge_list()
        a = estimate_jaccard_batch(fast, edge_u, edge_v)
        b = estimate_jaccard_batch(slow, edge_u, edge_v)
        assert float(np.abs(a - b).max()) < 1e-9


class TestStandardMinHash:
    def test_shape_and_determinism(self, paper_graph):
        a = minhash_sketches(paper_graph, 16, seed=3)
        b = minhash_sketches(paper_graph, 16, seed=3)
        assert a.shape == (11, 16)
        assert np.array_equal(a, b)

    def test_invalid_sample_count(self, paper_graph):
        with pytest.raises(ValueError):
            minhash_sketches(paper_graph, 0)

    def test_identical_neighborhoods_identical_sketches(self):
        graph = complete_graph(6)
        sketches = minhash_sketches(graph, 32, seed=0)
        assert np.array_equal(sketches[0], sketches[3])

    def test_estimate_identical(self):
        sketch = np.array([5, 9, 1])
        assert estimate_jaccard(sketch, sketch) == 1.0

    def test_estimate_disjoint(self):
        assert estimate_jaccard(np.array([1, 2, 3]), np.array([4, 5, 6])) == 0.0

    def test_estimate_length_mismatch(self):
        with pytest.raises(ValueError):
            estimate_jaccard(np.array([1]), np.array([1, 2]))

    def test_empty_sketch_rejected(self):
        with pytest.raises(ValueError):
            estimate_jaccard(np.array([]), np.array([]))

    def test_estimates_converge_to_exact(self, paper_graph):
        exact = compute_similarities(paper_graph, measure="jaccard")
        sketches = minhash_sketches(paper_graph, 2048, seed=1)
        edge_u, edge_v = paper_graph.edge_list()
        estimates = estimate_jaccard_batch(sketches, edge_u, edge_v, k_partition=False)
        assert float(np.abs(estimates - exact.values).max()) < 0.08


class TestKPartitionMinHash:
    def test_shape_and_determinism(self, paper_graph):
        a = k_partition_minhash_sketches(paper_graph, 16, seed=3)
        b = k_partition_minhash_sketches(paper_graph, 16, seed=3)
        assert a.shape == (11, 16)
        assert np.array_equal(a, b)

    def test_sketching_is_cheaper_than_standard_minhash(self, community_graph):
        standard, partitioned = Scheduler(), Scheduler()
        minhash_sketches(community_graph, 64, scheduler=standard)
        k_partition_minhash_sketches(community_graph, 64, scheduler=partitioned)
        assert partitioned.counter.work < standard.counter.work

    def test_empty_buckets_marked(self, paper_graph):
        # With far more buckets than elements most buckets stay empty.
        sketches = k_partition_minhash_sketches(paper_graph, 256, seed=0)
        assert int((sketches[0] == EMPTY_BUCKET).sum()) > 200

    def test_estimate_ignores_jointly_empty_buckets(self):
        a = np.array([EMPTY_BUCKET, 3, EMPTY_BUCKET, 7])
        b = np.array([EMPTY_BUCKET, 3, 5, 7])
        # Bucket 0 is jointly empty -> ignored; of the remaining 3, 2 match.
        assert estimate_jaccard_k_partition(a, b) == pytest.approx(2 / 3)

    def test_estimate_all_jointly_empty(self):
        a = np.array([EMPTY_BUCKET, EMPTY_BUCKET])
        assert estimate_jaccard_k_partition(a, a.copy()) == 0.0

    def test_estimate_length_mismatch(self):
        with pytest.raises(ValueError):
            estimate_jaccard_k_partition(np.array([1]), np.array([1, 2]))

    def test_large_k_recovers_exact_jaccard(self, paper_graph):
        # With k much larger than any closed neighborhood, one-permutation
        # hashing degenerates to an exact intersection/union computation.
        exact = compute_similarities(paper_graph, measure="jaccard")
        sketches = k_partition_minhash_sketches(paper_graph, 4096, seed=2)
        edge_u, edge_v = paper_graph.edge_list()
        estimates = estimate_jaccard_batch(sketches, edge_u, edge_v, k_partition=True)
        assert np.allclose(estimates, exact.values, atol=1e-9)

    def test_batch_matches_scalar(self, paper_graph):
        sketches = k_partition_minhash_sketches(paper_graph, 32, seed=4)
        edge_u, edge_v = paper_graph.edge_list()
        batch = estimate_jaccard_batch(sketches, edge_u, edge_v)
        for i, (u, v) in enumerate(zip(edge_u.tolist(), edge_v.tolist())):
            assert batch[i] == pytest.approx(
                estimate_jaccard_k_partition(sketches[u], sketches[v])
            )

    def test_batch_length_mismatch(self, paper_graph):
        sketches = k_partition_minhash_sketches(paper_graph, 8, seed=0)
        with pytest.raises(ValueError):
            estimate_jaccard_batch(sketches, np.array([0, 1]), np.array([1]))
