"""Tests for the measurement harness and the text reporting helpers."""

import pytest

from repro.bench import (
    VARIANT_GS_INDEX,
    VARIANT_MATMUL,
    VARIANT_PARALLEL,
    VARIANT_PPSCAN,
    VARIANT_SEQUENTIAL,
    format_series,
    format_table,
    format_value,
    load_dataset,
    measure,
    measure_index_construction,
    measure_query,
    rows_as_table,
    speedup,
)
from repro.baselines import GsStarIndex
from repro.core import ScanIndex


@pytest.fixture(scope="module")
def tiny_graph():
    return load_dataset("orkut-like", "tiny")


class TestMeasure:
    def test_records_work_span_and_wall(self, tiny_graph):
        row = measure(
            "tiny", "variant", 4,
            lambda scheduler: ScanIndex.build(tiny_graph, scheduler=scheduler),
        )
        assert row.work > 0
        assert row.span > 0
        assert row.wall_seconds > 0
        assert row.simulated_seconds > 0
        assert row.details["result"] is not None

    def test_more_workers_never_slower(self, tiny_graph):
        sequential = measure(
            "tiny", "seq", 1, lambda s: ScanIndex.build(tiny_graph, scheduler=s)
        )
        parallel = measure(
            "tiny", "par", 96, lambda s: ScanIndex.build(tiny_graph, scheduler=s)
        )
        assert parallel.simulated_seconds <= sequential.simulated_seconds

    def test_speedup_helper(self, tiny_graph):
        rows = measure_index_construction("tiny", tiny_graph, include_matmul=False)
        value = speedup(rows, VARIANT_GS_INDEX, VARIANT_PARALLEL)
        assert value > 1.0

    def test_speedup_missing_variant(self, tiny_graph):
        rows = measure_index_construction("tiny", tiny_graph, include_matmul=False)
        with pytest.raises(ValueError):
            speedup(rows, "nonexistent", VARIANT_PARALLEL)


class TestConstructionMeasurement:
    def test_variants_present(self, tiny_graph):
        rows = measure_index_construction("tiny", tiny_graph, include_matmul=True)
        variants = {row.variant for row in rows}
        assert variants == {
            VARIANT_PARALLEL, VARIANT_SEQUENTIAL, VARIANT_GS_INDEX, VARIANT_MATMUL
        }

    def test_rows_as_table_shape(self, tiny_graph):
        rows = measure_index_construction("tiny", tiny_graph, include_matmul=False)
        headers, table = rows_as_table(rows)
        assert len(headers) == 6
        assert all(len(row) == 6 for row in table)


class TestQueryMeasurement:
    def test_all_variants_measured(self, tiny_graph):
        index = ScanIndex.build(tiny_graph)
        gs = GsStarIndex.build(tiny_graph)
        rows = measure_query("tiny", tiny_graph, index, gs, mu=3, epsilon=0.4)
        variants = {row.variant for row in rows}
        assert variants == {
            VARIANT_PARALLEL, VARIANT_SEQUENTIAL, VARIANT_GS_INDEX, VARIANT_PPSCAN
        }

    def test_weighted_style_subset(self, tiny_graph):
        index = ScanIndex.build(tiny_graph)
        rows = measure_query("tiny", tiny_graph, index, None, 3, 0.4, include_ppscan=False)
        assert {row.variant for row in rows} == {VARIANT_PARALLEL, VARIANT_SEQUENTIAL}


class TestReporting:
    def test_format_value_types(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(1234567.0) == "1.235e+06"
        assert format_value(0.5) == "0.5"
        assert format_value("text") == "text"

    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [333, "x"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_format_series(self):
        text = format_series("Figure X", "eps", [0.1, 0.2], {"index": [1, 2], "scan": [3, 4]})
        assert "Figure X" in text
        assert "eps" in text and "index" in text and "scan" in text
