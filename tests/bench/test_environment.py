"""Tests for the shared environment capture and fingerprinting."""

import json

import pytest

from repro.bench.environment import (
    FINGERPRINT_FIELDS,
    EnvironmentFingerprint,
    capture_environment,
    capture_fingerprint,
    fingerprint_from_mapping,
    git_revision,
    visible_cpu_count,
)


class TestFingerprint:
    def test_key_is_deterministic(self):
        a = EnvironmentFingerprint(4, "Linux", "x86_64", "3.11.7", "2.4.6")
        b = EnvironmentFingerprint(4, "Linux", "x86_64", "3.11.7", "2.4.6")
        assert a.key() == b.key()
        assert len(a.key()) == 12

    def test_any_field_changes_the_key(self):
        base = EnvironmentFingerprint(4, "Linux", "x86_64", "3.11.7", "2.4.6")
        variants = [
            EnvironmentFingerprint(8, "Linux", "x86_64", "3.11.7", "2.4.6"),
            EnvironmentFingerprint(4, "Darwin", "x86_64", "3.11.7", "2.4.6"),
            EnvironmentFingerprint(4, "Linux", "arm64", "3.11.7", "2.4.6"),
            EnvironmentFingerprint(4, "Linux", "x86_64", "3.12.1", "2.4.6"),
            EnvironmentFingerprint(4, "Linux", "x86_64", "3.11.7", "1.26.0"),
        ]
        keys = {variant.key() for variant in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_missing_field_is_its_own_class(self):
        """An unknown cpu_count must not silently match a known one."""
        known = EnvironmentFingerprint(1, "Linux", "x86_64", "3.11.7", "2.4.6")
        unknown = EnvironmentFingerprint(None, "Linux", "x86_64", "3.11.7", "2.4.6")
        assert known.key() != unknown.key()
        assert not unknown.complete
        assert known.complete

    def test_describe_marks_unknown_fields(self):
        partial = EnvironmentFingerprint(cpu_count=1)
        description = partial.describe()
        assert description.startswith(partial.key())
        assert "cpu_count=1" in description and "platform=?" in description


class TestCapture:
    def test_capture_fingerprint_is_complete_and_stable(self):
        first, second = capture_fingerprint(), capture_fingerprint()
        assert first == second
        assert first.complete
        assert first.cpu_count >= 1

    def test_cpu_count_respects_affinity_not_host(self):
        import os

        assert visible_cpu_count() == len(os.sched_getaffinity(0))

    def test_capture_environment_carries_git_hash(self):
        environment = capture_environment()
        assert set(FINGERPRINT_FIELDS) <= set(environment)
        assert "git_hash" in environment
        # This repo is a checkout, so the hash resolves here.
        assert environment["git_hash"] == git_revision()
        assert environment["git_hash"]
        # The block is JSON-serialisable as benchmark payloads require.
        json.dumps(environment)


class TestFromMapping:
    def test_round_trips_captured_block(self):
        environment = capture_environment()
        assert fingerprint_from_mapping(environment) == capture_fingerprint()

    def test_partial_block_yields_partial_fingerprint(self):
        fingerprint = fingerprint_from_mapping({"cpu_count": 1, "python": "3.11.4"})
        assert fingerprint.cpu_count == 1
        assert fingerprint.python == "3.11.4"
        assert fingerprint.platform is None

    def test_extras_are_ignored(self):
        """The old ad-hoc blocks carried run-scoped extras."""
        fingerprint = fingerprint_from_mapping(
            {"cpu_count": 1, "pool_startup_seconds": 0.013, "git_hash": "abc"}
        )
        assert fingerprint == EnvironmentFingerprint(cpu_count=1)

    def test_none_and_missing_agree(self):
        assert fingerprint_from_mapping(None) == fingerprint_from_mapping({})

    def test_rejects_non_mapping(self):
        with pytest.raises(TypeError):
            fingerprint_from_mapping([("cpu_count", 1)])
