"""Tests for the sqlite results store: validation, labeling, losslessness."""

import json

import numpy as np
import pytest

from repro.bench.store import (
    BenchStore,
    BenchStoreError,
    flatten_payload,
)

ENV_A = {
    "cpu_count": 4,
    "platform": "Linux",
    "machine": "x86_64",
    "python": "3.11.7",
    "numpy": "2.4.6",
    "git_hash": "abc1234",
}


def payload_with(**extra) -> dict:
    base = {
        "benchmark": "demo",
        "environment": dict(ENV_A),
        "graphs": [
            {"name": "orkut-like", "num_edges": 900, "build_seconds": 1.5},
            {"name": "cochlea-like", "num_edges": 400, "build_seconds": 0.5},
        ],
    }
    base.update(extra)
    return base


class TestValidation:
    def test_rejects_non_mapping(self):
        with pytest.raises(BenchStoreError, match="mapping"):
            flatten_payload([1, 2, 3])

    def test_rejects_missing_benchmark_name(self):
        with pytest.raises(BenchStoreError, match="benchmark"):
            flatten_payload({"seconds": 1.0})

    def test_rejects_empty_benchmark_name(self):
        with pytest.raises(BenchStoreError, match="benchmark"):
            flatten_payload({"benchmark": "", "seconds": 1.0})

    def test_rejects_non_mapping_environment(self):
        with pytest.raises(BenchStoreError, match="environment"):
            flatten_payload(
                {"benchmark": "x", "seconds": 1.0, "environment": ["linux"]}
            )

    def test_rejects_payload_without_numbers(self):
        with pytest.raises(BenchStoreError, match="no numeric cells"):
            flatten_payload({"benchmark": "x", "note": "words only"})

    def test_rejects_nan_and_inf(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(BenchStoreError, match="non-finite"):
                flatten_payload({"benchmark": "x", "seconds": bad})

    def test_rejects_unsupported_leaf_types(self):
        with pytest.raises(BenchStoreError, match="unsupported"):
            flatten_payload({"benchmark": "x", "seconds": 1.0, "blob": {1, 2}})

    def test_rejects_non_string_keys(self):
        with pytest.raises(BenchStoreError, match="non-string key"):
            flatten_payload({"benchmark": "x", "rows": {1: 2.0}})

    def test_error_message_names_the_offending_path(self):
        payload = {"benchmark": "x", "graphs": [{"name": "g", "t": float("nan")}]}
        with pytest.raises(BenchStoreError, match=r"graphs\[0\]\.t"):
            flatten_payload(payload)

    def test_rejected_payload_writes_nothing(self):
        with BenchStore() as store:
            with pytest.raises(BenchStoreError):
                store.record({"benchmark": "x", "seconds": float("nan")})
            assert store.runs() == []

    def test_numpy_scalars_are_unwrapped(self):
        with BenchStore() as store:
            run_id = store.record(
                {"benchmark": "x", "seconds": np.float64(1.25), "n": np.int64(7)}
            )
            cells = store.numeric_cells(run_id)
            assert cells[("", "", "seconds")] == 1.25
            assert cells[("", "", "n")] == 7.0
            # Export holds plain JSON numbers, not numpy reprs.
            json.dumps(store.export_run(run_id))


class TestLabeling:
    def test_graph_rungs_use_name_then_vertices(self):
        with BenchStore() as store:
            run_id = store.record(
                {
                    "benchmark": "x",
                    "graphs": [
                        {"name": "orkut-like", "seconds": 1.0},
                        {"num_vertices": 1250, "seconds": 2.0},
                        {"seconds": 3.0},
                    ],
                }
            )
            graphs = {record.graph for record in store.cells(run_id) if record.graph}
            assert graphs == {"orkut-like", "v1250", "graphs[2]"}

    def test_duplicate_rung_labels_never_merge(self):
        with BenchStore() as store:
            run_id = store.record(
                {
                    "benchmark": "x",
                    "graphs": [
                        {"name": "rung", "seconds": 1.0},
                        {"name": "rung", "seconds": 2.0},
                    ],
                }
            )
            cells = store.numeric_cells(run_id)
            assert cells[("rung", "", "seconds")] == 1.0
            assert cells[("rung#2", "", "seconds")] == 2.0

    def test_known_list_groups_label_by_identifier(self):
        with BenchStore() as store:
            run_id = store.record(
                {
                    "benchmark": "x",
                    "graphs": [
                        {
                            "name": "g",
                            "jobs": [
                                {"jobs": 1, "seconds": 4.0},
                                {"jobs": 4, "seconds": 1.0},
                            ],
                            "batches": [{"fraction": 0.001, "speedup": 9.0}],
                        }
                    ],
                    "configs": [{"workers": 2, "rps": 100.0}],
                }
            )
            keys = set(store.numeric_cells(run_id))
            assert ("g", "jobs=1", "seconds") in keys
            assert ("g", "jobs=4", "seconds") in keys
            assert ("g", "fraction=0.001", "speedup") in keys
            assert ("", "workers=2", "rps") in keys

    def test_unknown_lists_fall_back_to_indexes(self):
        with BenchStore() as store:
            run_id = store.record(
                {"benchmark": "x", "trials": [{"seconds": 1.0}, {"seconds": 2.0}]}
            )
            keys = set(store.numeric_cells(run_id))
            assert ("", "trials[0]", "seconds") in keys
            assert ("", "trials[1]", "seconds") in keys

    def test_nested_cells_join_with_dots(self):
        with BenchStore() as store:
            run_id = store.record(
                {"benchmark": "x", "modes": {"cold": {"open_seconds": 0.2}}}
            )
            assert ("", "modes.cold", "open_seconds") in store.numeric_cells(run_id)


class TestRoundTrip:
    def test_export_reconstructs_payload_exactly(self):
        payload = payload_with(
            note="free text survives",
            flags={"mmap": True, "fallback": None},
            empty_list=[],
            empty_dict={},
            mixed=[1, "two", 3.5],
        )
        with BenchStore() as store:
            run_id = store.record(payload, source="test")
            assert store.export_run(run_id) == payload

    def test_runs_are_independent(self):
        first = payload_with()
        second = payload_with(graphs=[{"name": "only", "build_seconds": 9.0}])
        with BenchStore() as store:
            id_first = store.record(first)
            id_second = store.record(second)
            assert store.export_run(id_first) == first
            assert store.export_run(id_second) == second

    def test_persists_across_reopen(self, tmp_path):
        payload = payload_with()
        db = tmp_path / "trajectory.sqlite"
        with BenchStore(db) as store:
            run_id = store.record(payload, source="first-open")
        with BenchStore(db) as store:
            assert store.export_run(run_id) == payload
            assert store.run(run_id).source == "first-open"


class TestRunMetadata:
    def test_fingerprint_and_git_hash_come_from_environment_block(self):
        with BenchStore() as store:
            run_id = store.record(payload_with(), recorded_at="2026-08-08T00:00:00")
            run = store.run(run_id)
            assert run.git_hash == "abc1234"
            assert run.fingerprint.cpu_count == 4
            assert run.recorded_at == "2026-08-08T00:00:00"
            assert not run.smoke

    def test_explicit_git_hash_wins(self):
        with BenchStore() as store:
            run_id = store.record(payload_with(), git_hash="fff0000")
            assert store.run(run_id).git_hash == "fff0000"

    def test_recorded_at_defaults_to_a_timestamp(self):
        with BenchStore() as store:
            run_id = store.record(payload_with())
            assert store.run(run_id).recorded_at  # non-empty ISO stamp

    def test_environment_rows_are_shared(self):
        with BenchStore() as store:
            first = store.record(payload_with())
            second = store.record(payload_with())
            assert (
                store.run(first).fingerprint_key
                == store.run(second).fingerprint_key
            )
            count = store._connection.execute(
                "SELECT COUNT(*) FROM environments"
            ).fetchone()[0]
            assert count == 1

    def test_runs_filter_and_benchmark_listing(self):
        with BenchStore() as store:
            store.record(payload_with())
            store.record({"benchmark": "other", "seconds": 1.0})
            store.record(payload_with())
            assert store.benchmarks() == ["demo", "other"]
            assert [run.benchmark for run in store.runs("other")] == ["other"]
            assert len(store.runs()) == 3

    def test_unknown_run_id_raises_cleanly(self):
        with BenchStore() as store:
            with pytest.raises(BenchStoreError, match="no run with id 99"):
                store.run(99)
            with pytest.raises(BenchStoreError):
                store.cells(99)


class TestImportFile:
    def test_import_file_uses_filename_as_source(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(payload_with()))
        with BenchStore() as store:
            run_id = store.import_file(path)
            assert store.run(run_id).source == "BENCH_demo.json"

    def test_import_missing_file_raises_store_error(self, tmp_path):
        with BenchStore() as store:
            with pytest.raises(BenchStoreError, match="cannot read"):
                store.import_file(tmp_path / "nope.json")

    def test_import_invalid_json_raises_store_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with BenchStore() as store:
            with pytest.raises(BenchStoreError, match="not valid JSON"):
                store.import_file(path)
