"""Smoke tests for every table/figure experiment driver at tiny scale."""

import pytest

from repro.bench import (
    ALL_EXPERIMENTS,
    VARIANT_GS_INDEX,
    VARIANT_PARALLEL,
    figure5_index_construction,
    figure6_query_vs_epsilon,
    figure7_query_vs_mu,
    figure8_approx_construction,
    figure9_modularity_tradeoff,
    figure10_ari_tradeoff,
    sweep_throughput,
    table1_work_scaling,
    table2_datasets,
)

SMALL = ("orkut-like", "cochlea-like")


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "figure5", "figure6", "figure7",
            "figure8", "figure9", "figure10", "sweep",
        }


class TestTables:
    def test_table1_ratios_positive_and_bounded(self):
        result = table1_work_scaling(sizes=(8, 16), cluster_size=20, num_samples=8)
        assert len(result.rows) == 2
        for row in result.rows:
            exact_ratio, approx_ratio = row[4], row[6]
            assert 0 < exact_ratio < 50
            assert 0 < approx_ratio < 50
        assert "Table 1" in result.report()

    def test_table2_lists_all_datasets(self):
        result = table2_datasets("tiny")
        assert len(result.rows) == 6
        assert "Orkut" in {row[1] for row in result.rows}


class TestConstructionFigures:
    def test_figure5_shapes_hold(self):
        result = figure5_index_construction(datasets=SMALL, scale="tiny")
        measurements = result.extras["measurements"]
        by_key = {(m.dataset, m.variant): m for m in measurements}
        for dataset in SMALL:
            parallel = by_key[(dataset, VARIANT_PARALLEL)]
            sequential = by_key[(dataset, "GBBSIndexSCAN (1 thread)")]
            assert parallel.simulated_seconds <= sequential.simulated_seconds
        # GS*-Index is only run on unweighted graphs (as in the paper) and is
        # slower than the parallel index there.
        orkut_gs = by_key[("orkut-like", VARIANT_GS_INDEX)]
        assert by_key[("orkut-like", VARIANT_PARALLEL)].simulated_seconds < (
            orkut_gs.simulated_seconds
        )

    def test_figure8_jaccard_cheaper_than_cosine(self):
        result = figure8_approx_construction(
            datasets=("orkut-like",), scale="tiny", sample_counts=(8, 16)
        )
        cosine = {row[2]: row[5] for row in result.rows if row[1] == "approx cosine"}
        jaccard = {row[2]: row[5] for row in result.rows if row[1] == "approx jaccard"}
        for samples in (8, 16):
            assert jaccard[samples] <= cosine[samples]


class TestQueryFigures:
    def test_figure6_index_beats_baselines(self):
        result = figure6_query_vs_epsilon(
            datasets=("orkut-like",), scale="tiny", epsilons=(0.2, 0.6)
        )
        rows = result.extras["measurements"]
        parallel = [r for r in rows if r.variant == VARIANT_PARALLEL]
        ppscan = [r for r in rows if r.variant == "ppSCAN (48 cores)"]
        assert len(parallel) == len(ppscan) == 2
        for fast, slow in zip(parallel, ppscan):
            assert fast.simulated_seconds < slow.simulated_seconds

    def test_figure7_runs_over_mu_grid(self):
        result = figure7_query_vs_mu(datasets=("orkut-like",), scale="tiny", mus=(2, 4, 8))
        mus = {row[1] for row in result.rows}
        assert mus == {2, 4, 8}


class TestQualityFigures:
    def test_figure9_quality_improves_with_samples(self):
        result = figure9_modularity_tradeoff(
            datasets=("orkut-like",), scale="tiny",
            sample_counts=(4, 64), num_trials=1, epsilon_step=0.1,
        )
        approx = {
            row[2]: row[4] for row in result.rows if row[1] == "approx cosine"
        }
        exact = [row[4] for row in result.rows if row[1] == "exact cosine"][0]
        assert approx[64] >= approx[4] - 0.05
        assert approx[64] >= exact - 0.1

    def test_figure10_ari_improves_with_samples(self):
        result = figure10_ari_tradeoff(
            datasets=("orkut-like",), scale="tiny",
            sample_counts=(4, 64), num_trials=1, epsilon_step=0.1,
        )
        approx = {row[2]: row[4] for row in result.rows if row[1] == "approx cosine"}
        assert approx[64] >= approx[4] - 0.05
        assert approx[64] > 0.5

    def test_sweep_throughput_removes_probe_redundancy(self):
        result = sweep_throughput(datasets=("orkut-like",), scale="tiny")
        [row] = result.rows
        assert row[1] > 10                       # whole grid answered
        assert row[7] > 1.0                      # batched charges less work
