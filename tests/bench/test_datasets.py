"""Tests for the benchmark dataset registry."""

import pytest

from repro.bench import (
    DATASETS,
    UNWEIGHTED_DATASETS,
    WEIGHTED_DATASETS,
    dataset_summaries,
    load_dataset,
    paper_example,
)


class TestRegistry:
    def test_six_datasets_registered(self):
        assert len(DATASETS) == 6

    def test_weighted_and_unweighted_split(self):
        assert set(UNWEIGHTED_DATASETS) | set(WEIGHTED_DATASETS) == set(DATASETS)
        assert not set(UNWEIGHTED_DATASETS) & set(WEIGHTED_DATASETS)
        assert set(WEIGHTED_DATASETS) == {"blood-vessel-like", "cochlea-like"}

    def test_paper_names_match_table2(self):
        paper_names = {spec.paper_name for spec in DATASETS.values()}
        assert paper_names == {
            "Orkut", "brain", "WebBase", "Friendster", "blood vessel", "cochlea"
        }

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("twitter-like")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            load_dataset("orkut-like", "huge")


class TestLoading:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_tiny_scale_loads_and_matches_weight_flag(self, name):
        graph = load_dataset(name, "tiny")
        assert graph.num_vertices > 0
        assert graph.num_edges > 0
        assert graph.is_weighted == DATASETS[name].weighted

    def test_tiny_smaller_than_bench(self):
        tiny = load_dataset("orkut-like", "tiny")
        bench = load_dataset("orkut-like", "bench")
        assert tiny.num_edges < bench.num_edges

    def test_deterministic(self):
        assert load_dataset("webbase-like", "tiny") == load_dataset("webbase-like", "tiny")

    def test_dense_stand_ins_are_denser(self):
        brain = load_dataset("brain-like", "tiny")
        orkut = load_dataset("orkut-like", "tiny")
        assert (2 * brain.num_edges / brain.num_vertices) > (
            2 * orkut.num_edges / orkut.num_vertices
        )

    def test_summaries_cover_all_datasets(self):
        summaries = dataset_summaries("tiny")
        assert {s.name for s in summaries} == set(DATASETS)

    def test_paper_example_helper(self):
        assert paper_example().num_vertices == 11
