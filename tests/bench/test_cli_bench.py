"""Tests for the ``repro bench`` trajectory-store subcommands."""

import json
from pathlib import Path

import pytest

from repro.bench.recording import DEFAULT_DB_NAME
from repro.cli import build_parser, main

FIXTURES = Path(__file__).resolve().parent / "fixtures"

BASELINE = str(FIXTURES / "run_baseline.json")
REGRESSED = str(FIXTURES / "run_regressed.json")
OTHER_MACHINE = str(FIXTURES / "run_other_machine.json")


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "trajectory.sqlite")


class TestParser:
    def test_bench_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_record_arguments(self):
        args = build_parser().parse_args(["bench", "record", "a.json", "b.json"])
        assert args.files == ["a.json", "b.json"]
        assert args.db == Path(DEFAULT_DB_NAME)
        assert not args.smoke

    def test_gate_arguments(self):
        args = build_parser().parse_args(
            ["bench", "gate", "--benchmark", "serving", "--threshold", "0.3"]
        )
        assert args.benchmark == "serving"
        assert args.threshold == 0.3
        assert args.baseline is None and args.candidate is None

    def test_run_record_flag(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "table2", "--record", str(tmp_path / "t.sqlite")]
        )
        assert args.record == tmp_path / "t.sqlite"
        assert build_parser().parse_args(["run", "table2"]).record is None


class TestRecord:
    def test_records_payload_files(self, db, capsys):
        assert main(["bench", "record", BASELINE, REGRESSED, "--db", db]) == 0
        output = capsys.readouterr().out
        assert "recorded run 1 [serving]" in output
        assert "recorded run 2 [serving]" in output
        assert Path(db).exists()

    def test_rejects_malformed_payload(self, db, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"benchmark": "x", "note": "no numbers"}))
        assert main(["bench", "record", str(bad), "--db", db]) == 2
        assert "no numeric cells" in capsys.readouterr().err


class TestRuns:
    def test_lists_recorded_runs(self, db, capsys):
        main(["bench", "record", BASELINE, OTHER_MACHINE, "--db", db])
        capsys.readouterr()
        assert main(["bench", "runs", "--db", db]) == 0
        output = capsys.readouterr().out
        assert "serving" in output
        assert "run_baseline.json" in output

    def test_missing_store_is_a_clean_error(self, db, capsys):
        assert main(["bench", "runs", "--db", db]) == 2
        assert "no trajectory store" in capsys.readouterr().err


class TestReport:
    def test_renders_markdown_to_stdout(self, db, capsys):
        main(["bench", "record", BASELINE, REGRESSED, "--db", db])
        capsys.readouterr()
        assert main(["bench", "report", "--db", db]) == 0
        output = capsys.readouterr().out
        assert output.startswith("# Performance trajectory")
        assert "## serving" in output
        assert "(regressed)" in output

    def test_writes_output_file(self, db, tmp_path, capsys):
        main(["bench", "record", BASELINE, "--db", db])
        target = tmp_path / "report.md"
        assert main(["bench", "report", "--db", db, "--output", str(target)]) == 0
        assert target.read_text().startswith("# Performance trajectory")

    def test_unknown_benchmark_filter_errors(self, db, capsys):
        main(["bench", "record", BASELINE, "--db", db])
        capsys.readouterr()
        assert main(["bench", "report", "--db", db, "--benchmark", "nope"]) == 2
        assert "nope" in capsys.readouterr().err


class TestCompare:
    def test_lists_moved_cells(self, db, capsys):
        main(["bench", "record", BASELINE, REGRESSED, "--db", db])
        capsys.readouterr()
        assert main(["bench", "compare", "1", "2", "--db", db]) == 0
        output = capsys.readouterr().out
        assert "query_seconds" in output and "regressed" in output
        assert "warning" not in output

    def test_warns_across_machine_classes_without_failing(self, db, capsys):
        main(["bench", "record", BASELINE, OTHER_MACHINE, "--db", db])
        capsys.readouterr()
        assert main(["bench", "compare", "1", "2", "--db", db]) == 0
        assert "environment fingerprints differ" in capsys.readouterr().out

    def test_unknown_run_id_errors(self, db, capsys):
        main(["bench", "record", BASELINE, "--db", db])
        capsys.readouterr()
        assert main(["bench", "compare", "1", "99", "--db", db]) == 2
        assert "no run with id 99" in capsys.readouterr().err


class TestGate:
    def test_fails_on_seeded_regression(self, db, capsys):
        main(["bench", "record", BASELINE, REGRESSED, "--db", db])
        capsys.readouterr()
        assert main(["bench", "gate", "1", "2", "--db", db]) == 1
        assert "bench-gate: FAIL" in capsys.readouterr().out

    def test_passes_within_noise(self, db, capsys):
        main(["bench", "record", BASELINE, REGRESSED, "--db", db])
        capsys.readouterr()
        assert main(["bench", "gate", "1", "2", "--db", db,
                     "--threshold", "2.0"]) == 0
        assert "bench-gate: PASS" in capsys.readouterr().out

    def test_refuses_across_machine_classes(self, db, capsys):
        main(["bench", "record", BASELINE, OTHER_MACHINE, "--db", db])
        capsys.readouterr()
        assert main(["bench", "gate", "1", "2", "--db", db]) == 0
        assert "bench-gate: SKIP" in capsys.readouterr().out

    def test_benchmark_mode_gates_latest_same_environment_pair(self, db, capsys):
        main(["bench", "record", BASELINE, OTHER_MACHINE, "--db", db])
        capsys.readouterr()
        # Newest run is the other-machine one: no same-env predecessor.
        assert main(["bench", "gate", "--benchmark", "serving", "--db", db]) == 0
        assert "no prior run with a matching" in capsys.readouterr().out
        # The regressed run pairs with the baseline, skipping run 2.
        main(["bench", "record", REGRESSED, "--db", db])
        capsys.readouterr()
        assert main(["bench", "gate", "--benchmark", "serving", "--db", db]) == 1
        assert "bench-gate: FAIL" in capsys.readouterr().out

    def test_rejects_half_specified_pairs(self, db, capsys):
        main(["bench", "record", BASELINE, "--db", db])
        capsys.readouterr()
        assert main(["bench", "gate", "1", "--db", db]) == 2
        assert "two run ids or --benchmark" in capsys.readouterr().err

    def test_unknown_benchmark_errors(self, db, capsys):
        main(["bench", "record", BASELINE, "--db", db])
        capsys.readouterr()
        assert main(["bench", "gate", "--benchmark", "nope", "--db", db]) == 2
        assert "no recorded runs" in capsys.readouterr().err


class TestRunRecord:
    def test_run_records_experiment_rows(self, db, capsys):
        assert main(["run", "table2", "--scale", "tiny", "--record", db]) == 0
        capsys.readouterr()
        assert main(["bench", "runs", "--db", db]) == 0
        assert "experiment_table2" in capsys.readouterr().out
