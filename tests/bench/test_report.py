"""Tests for trajectory reports and the regression gate.

The golden-output test pins the full markdown rendering byte for byte
against ``fixtures/trajectory.md``; regenerate that file by running this
module directly::

    PYTHONPATH=src python tests/bench/test_report.py
"""

import json
from pathlib import Path

import pytest

from repro.bench.report import (
    TrajectoryReport,
    compare_runs,
    gate_runs,
    latest_pair,
    metric_polarity,
)
from repro.bench.store import BenchStore, BenchStoreError

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_REPORT = FIXTURES / "trajectory.md"


def fixture_store() -> BenchStore:
    """The committed three-run scenario: baseline, regressed rerun on the
    same machine class, and one run from a different machine class."""
    store = BenchStore()
    for name, stamp in [
        ("run_baseline", "2026-08-01T00:00:00+00:00"),
        ("run_regressed", "2026-08-02T00:00:00+00:00"),
        ("run_other_machine", "2026-08-03T00:00:00+00:00"),
    ]:
        store.import_file(FIXTURES / f"{name}.json", recorded_at=stamp)
    return store


class TestMetricPolarity:
    def test_lower_is_better(self):
        for metric in ("build_seconds", "open_ms", "rss_bytes", "mismatches",
                       "failures", "p99_seconds"):
            assert metric_polarity(metric) == -1

    def test_higher_is_better(self):
        for metric in ("requests_per_second", "speedup", "hit_rate", "rps",
                       "identical"):
            assert metric_polarity(metric) == 1

    def test_throughput_beats_the_seconds_substring(self):
        """``requests_per_second`` contains ``seconds`` but is throughput."""
        assert metric_polarity("requests_per_second") == 1

    def test_neutral_metrics_are_never_gated(self):
        for metric in ("num_vertices", "num_edges", "cpu_count", "batch_size"):
            assert metric_polarity(metric) == 0


class TestCompareRuns:
    def test_classifies_regressions_improvements_and_noise(self):
        with fixture_store() as store:
            comparison = compare_runs(store, 1, 2)
            regressed = {delta.label for delta in comparison.regressions}
            improved = {delta.label for delta in comparison.improvements}
            # 2.5x slower queries on orkut-like: regression.
            assert regressed == {"orkut-like/query_seconds"}
            # 33% more throughput on cochlea-like: improvement.
            assert improved == {"cochlea-like/requests_per_second"}
            # 2% drift on the remaining cells stays under the 15% noise bar,
            # and the neutral num_edges cells are never considered.
            assert comparison.shared > 2
            assert comparison.fingerprints_match

    def test_threshold_is_respected(self):
        with fixture_store() as store:
            loose = compare_runs(store, 1, 2, threshold=2.0)
            assert not loose.regressions and not loose.improvements
            tight = compare_runs(store, 1, 2, threshold=0.01)
            assert {delta.label for delta in tight.regressions} >= {
                "orkut-like/query_seconds",
                "orkut-like/requests_per_second",
            }

    def test_deltas_sorted_by_magnitude(self):
        with fixture_store() as store:
            comparison = compare_runs(store, 1, 2, threshold=0.01)
            changes = [abs(delta.change) for delta in comparison.regressions]
            assert changes == sorted(changes, reverse=True)

    def test_zero_baseline_cells_are_skipped(self):
        with BenchStore() as store:
            first = store.record({"benchmark": "x", "wait_seconds": 0.0})
            second = store.record({"benchmark": "x", "wait_seconds": 5.0})
            comparison = compare_runs(store, first, second)
            assert not comparison.regressions

    def test_different_benchmarks_refuse_to_compare(self):
        with BenchStore() as store:
            first = store.record({"benchmark": "a", "seconds": 1.0})
            second = store.record({"benchmark": "b", "seconds": 1.0})
            with pytest.raises(BenchStoreError, match="different benchmarks"):
                compare_runs(store, first, second)


class TestGate:
    def test_fires_on_seeded_regression(self):
        with fixture_store() as store:
            result = gate_runs(store, 1, 2)
            assert result.status == "fail"
            assert result.exit_code == 1
            rendered = result.render()
            assert "bench-gate: FAIL" in rendered
            assert "REGRESSED orkut-like/query_seconds" in rendered
            assert "+150.0%" in rendered

    def test_quiet_on_same_noise_rerun(self):
        """A rerun drifting within the threshold must not fail the gate."""
        baseline = json.loads((FIXTURES / "run_baseline.json").read_text())
        rerun = json.loads((FIXTURES / "run_baseline.json").read_text())
        for entry in rerun["graphs"]:
            entry["query_seconds"] *= 1.05  # 5% timer jitter
        with BenchStore() as store:
            first = store.record(baseline)
            second = store.record(rerun)
            result = gate_runs(store, first, second)
            assert result.status == "pass"
            assert result.exit_code == 0
            assert "bench-gate: PASS" in result.render()

    def test_refuses_across_machine_classes(self):
        """Regression-sized movement on a different machine is not a verdict."""
        with fixture_store() as store:
            result = gate_runs(store, 1, 3)
            assert result.status == "skip"
            assert result.exit_code == 0
            rendered = result.render()
            assert "bench-gate: SKIP -- environment fingerprints differ" in rendered
            # The refusal is structured: both environments are spelled out.
            assert "cpu_count=4" in rendered and "cpu_count=1" in rendered

    def test_committed_container_cells_refuse_against_other_machines(self):
        """The shipped 1-CPU-container numbers must never gate a run from a
        different machine class (here: the same payload with more CPUs)."""
        for name in ("BENCH_construction.json", "BENCH_serve_concurrent.json"):
            payload = json.loads((REPO_ROOT / name).read_text())
            assert payload["environment"]["cpu_count"] == 1
            elsewhere = json.loads(json.dumps(payload))
            elsewhere["environment"]["cpu_count"] = 8
            with BenchStore() as store:
                first = store.import_file(REPO_ROOT / name)
                second = store.record(elsewhere, source="laptop")
                result = gate_runs(store, first, second)
                assert result.status == "skip", name
                assert result.exit_code == 0

    def test_committed_envless_files_only_match_equally_partial_runs(self):
        """Legacy payloads without an environment block form their own
        fingerprint class -- they never gate against fingerprinted runs."""
        with BenchStore() as store:
            construction = store.import_file(REPO_ROOT / "BENCH_construction.json")
            serving = store.import_file(REPO_ROOT / "BENCH_serving.json")
            assert not json.loads(
                (REPO_ROOT / "BENCH_serving.json").read_text()
            ).get("environment")
            assert (
                store.run(construction).fingerprint_key
                != store.run(serving).fingerprint_key
            )


class TestLatestPair:
    def test_picks_most_recent_same_environment_predecessor(self):
        with fixture_store() as store:
            # Newest run (3) is the other-machine one: no same-env ancestor.
            baseline, candidate = latest_pair(store, "serving")
            assert candidate.id == 3
            assert baseline is None

    def test_skips_over_other_machines(self):
        baseline_payload = json.loads((FIXTURES / "run_baseline.json").read_text())
        with fixture_store() as store:
            fourth = store.record(baseline_payload, source="rerun")
            baseline, candidate = latest_pair(store, "serving")
            assert candidate.id == fourth
            assert baseline.id == 2  # run 3 (other machine) is skipped

    def test_unknown_benchmark_yields_nothing(self):
        with fixture_store() as store:
            assert latest_pair(store, "nope") == (None, None)


class TestTrajectoryReport:
    def test_golden_markdown_is_byte_stable(self):
        with fixture_store() as store:
            rendered = TrajectoryReport(store).render()
        assert rendered == GOLDEN_REPORT.read_text()

    def test_rendering_is_deterministic(self):
        with fixture_store() as store:
            assert TrajectoryReport(store).render() == TrajectoryReport(store).render()

    def test_groups_runs_per_fingerprint(self):
        with fixture_store() as store:
            report = TrajectoryReport(store)
            groups = report.groups["serving"]
            assert [len(runs) for _, runs in groups] == [2, 1]

    def test_regressed_cells_are_flagged_inline(self):
        with fixture_store() as store:
            rendered = TrajectoryReport(store).render()
        assert "**0.05** (regressed)" in rendered
        assert "bench-gate: FAIL" in rendered

    def test_benchmark_filter_rejects_unknown_names(self):
        with fixture_store() as store:
            report = TrajectoryReport(store, benchmarks=["nope"])
            with pytest.raises(BenchStoreError, match="nope"):
                report.benchmarks


if __name__ == "__main__":
    with fixture_store() as _store:
        GOLDEN_REPORT.write_text(TrajectoryReport(_store).render())
    print(f"regenerated {GOLDEN_REPORT}")
