"""Tests for the ``python -m repro`` command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.graphs import paper_example_graph, write_edge_list


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.scale == "bench"

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "figure5", "--scale", "tiny", "--datasets", "orkut-like"]
        )
        assert args.experiment == "figure5"
        assert args.scale == "tiny"
        assert args.datasets == ["orkut-like"]

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster", "graph.txt"])
        assert args.mu == 5 and args.epsilon == 0.6 and args.measure == "cosine"


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "orkut-like" in output and "cochlea-like" in output

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        assert "figure5" in output and "table2" in output

    def test_run_table2(self, capsys):
        assert main(["run", "table2", "--scale", "tiny"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_run_figure6_subset(self, capsys):
        code = main(
            ["run", "figure6", "--scale", "tiny", "--datasets", "webbase-like"]
        )
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_cluster_command(self, tmp_path, capsys):
        path = tmp_path / "paper.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["cluster", str(path), "--mu", "3", "--epsilon", "0.6"]) == 0
        output = capsys.readouterr().out
        assert "clusters: 2" in output
        assert "hubs: 1" in output


@pytest.fixture()
def artifact(tmp_path):
    """A small saved index artifact plus the edge list it was built from."""
    path = tmp_path / "paper.txt"
    write_edge_list(paper_example_graph(), path)
    artifact_path = tmp_path / "paper.scanidx"
    assert main(["index", "build", str(path), str(artifact_path)]) == 0
    return artifact_path


class TestServeCommand:
    def test_serves_requests_from_file(self, artifact, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text("3:0.6\n2 0.5\n# a comment\n\n3:0.6\n")
        assert main(["serve", str(artifact), "--requests", str(requests)]) == 0
        captured = capsys.readouterr()
        lines = [l for l in captured.out.splitlines() if l.startswith("mu=")]
        assert len(lines) == 3
        assert "cache=miss" in lines[0]
        assert "cache=hit" in lines[2]          # repeat of the first request
        assert "served 3 requests" in captured.err

    def test_served_counts_match_direct_query(self, artifact, tmp_path, capsys):
        from repro import ScanIndex

        requests = tmp_path / "requests.txt"
        requests.write_text("3:0.6\n")
        assert main(["serve", str(artifact), "--requests", str(requests)]) == 0
        line = [l for l in capsys.readouterr().out.splitlines()
                if l.startswith("mu=")][0]
        clustering = ScanIndex.load(artifact).query(3, 0.6)
        assert f"clusters={clustering.num_clusters}" in line
        assert f"clustered={clustering.num_clustered_vertices}" in line

    def test_bad_request_lines_are_reported_not_fatal(self, artifact, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text("bogus\n3:0.6\n1:0.5\n3:1.7\n")
        assert main(["serve", str(artifact), "--requests", str(requests)]) == 1
        captured = capsys.readouterr()
        assert len([l for l in captured.out.splitlines() if l.startswith("mu=")]) == 1
        assert "expected MU:EPSILON" in captured.err
        assert "mu must be at least 2" in captured.err

    def test_missing_requests_file(self, artifact, capsys):
        assert main(["serve", str(artifact), "--requests", "/no/such/file"]) == 2
        assert "cannot read requests" in capsys.readouterr().err

    def test_interactive_client_gets_each_answer_before_next_request(self, artifact):
        """Responses must flush per request, or a piped client deadlocks."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent.parent / "src"
        ) + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(artifact)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        try:
            for request in ("3:0.6\n", "3:0.6\n"):
                proc.stdin.write(request)
                proc.stdin.flush()
                line = proc.stdout.readline()   # hangs if responses buffer up
                assert line.startswith("mu=3"), line
            assert "cache=hit" in line
        finally:
            proc.stdin.close()
            proc.wait(timeout=30)


class TestUpdateCommand:
    def test_applies_delta_in_place_and_records_lineage(
        self, artifact, tmp_path, capsys
    ):
        delta = tmp_path / "delta.txt"
        delta.write_text("# grow the example\n+ 0 9\n- 0 1\n")
        assert main(["update", str(artifact), str(delta)]) == 0
        out = capsys.readouterr().out
        assert "applied 1 insertions, 1 deletions" in out
        assert "1 update batches in lineage" in out

        from repro import ScanIndex

        loaded = ScanIndex.load(artifact)
        assert loaded.graph.has_edge(0, 9)
        assert not loaded.graph.has_edge(0, 1)
        assert len(loaded.update_lineage) == 1
        # The patched artifact equals a rebuild on the mutated graph.
        edge_u, edge_v = loaded.graph.edge_list()
        from repro.graphs import from_edge_list

        rebuilt = ScanIndex.build(
            from_edge_list(
                list(zip(edge_u.tolist(), edge_v.tolist())),
                num_vertices=loaded.graph.num_vertices,
            )
        )
        assert (
            loaded.similarities.values.tobytes()
            == rebuilt.similarities.values.tobytes()
        )

    def test_output_flag_leaves_source_artifact_untouched(
        self, artifact, tmp_path, capsys
    ):
        delta = tmp_path / "delta.txt"
        delta.write_text("+ 0 9\n")
        target = tmp_path / "patched.scanidx"
        assert main(["update", str(artifact), str(delta), "--output", str(target)]) == 0
        from repro import ScanIndex

        assert not ScanIndex.load(artifact).graph.has_edge(0, 9)
        assert ScanIndex.load(target).graph.has_edge(0, 9)

    def test_inapplicable_delta_is_an_operator_error(self, artifact, tmp_path, capsys):
        delta = tmp_path / "delta.txt"
        delta.write_text("+ 0 1\n")      # already present in the example graph
        assert main(["update", str(artifact), str(delta)]) == 2
        err = capsys.readouterr().err
        assert "error: cannot apply delta" in err
        assert "Traceback" not in err

    def test_malformed_delta_file(self, artifact, tmp_path, capsys):
        delta = tmp_path / "delta.txt"
        delta.write_text("insert 0 9\n")
        assert main(["update", str(artifact), str(delta)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_delta_file(self, artifact, tmp_path, capsys):
        assert main(["update", str(artifact), str(tmp_path / "none.txt")]) == 2
        assert "cannot read delta file" in capsys.readouterr().err

    def test_unwritable_output_is_an_operator_error(
        self, artifact, tmp_path, capsys, monkeypatch
    ):
        delta = tmp_path / "delta.txt"
        delta.write_text("+ 0 9\n")
        from repro.core.index import ScanIndex

        def refuse(self, path):
            raise PermissionError(f"cannot write {path}")

        monkeypatch.setattr(ScanIndex, "save", refuse)
        assert main(["update", str(artifact), str(delta)]) == 2
        err = capsys.readouterr().err
        assert "cannot save updated artifact" in err
        assert "Traceback" not in err


class TestArtifactErrorReporting:
    """Missing/corrupt artifacts are operator errors: message, not traceback."""

    @pytest.mark.parametrize("command", [
        ["cluster", "--load", "{path}"],
        ["index", "query", "{path}"],
        ["serve", "{path}", "--requests", "/dev/null"],
        ["update", "{path}", "/dev/null"],
    ])
    def test_missing_artifact_path(self, command, tmp_path, capsys):
        missing = tmp_path / "nowhere.scanidx"
        argv = [token.format(path=missing) for token in command]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "error: cannot load index artifact" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("command", [
        ["cluster", "--load", "{path}"],
        ["index", "query", "{path}"],
    ])
    def test_corrupt_artifact_header(self, command, artifact, capsys):
        (artifact / "header.json").write_text("{not json")
        argv = [token.format(path=artifact) for token in command]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "error: cannot load index artifact" in err
        assert "corrupt header" in err

    def test_corrupt_column_archive(self, artifact, capsys):
        (artifact / "columns.npz").write_bytes(b"definitely not a zip file")
        assert main(["index", "query", str(artifact)]) == 2
        assert "error: cannot load index artifact" in capsys.readouterr().err


class TestIndexVerifyCommand:
    def test_fast_verify_reports_structure_and_checksums(self, artifact, capsys):
        assert main(["index", "verify", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "format: version 3" in out
        assert "carry checksums" in out
        assert "stale scratch: none" in out

    def test_deep_verify_checks_stored_bytes(self, artifact, capsys):
        assert main(["index", "verify", str(artifact), "--deep"]) == 0
        assert "verified against stored bytes" in capsys.readouterr().out

    def test_deep_verify_catches_corruption_fast_mode_misses(
        self, artifact, capsys
    ):
        archive = artifact / "columns.npz"
        data = bytearray(archive.read_bytes())
        data[len(data) // 2] ^= 0xFF
        archive.write_bytes(data)
        assert main(["index", "verify", str(artifact)]) == 0
        assert main(["index", "verify", str(artifact), "--deep"]) == 2
        err = capsys.readouterr().err
        assert "fails verification" in err and "checksum" in err
        assert "Traceback" not in err

    def test_missing_artifact_is_an_operator_error(self, tmp_path, capsys):
        assert main(["index", "verify", str(tmp_path / "nowhere")]) == 2
        err = capsys.readouterr().err
        assert "fails verification" in err and "Traceback" not in err

    def test_clean_flag_sweeps_stale_scratch(self, artifact, capsys):
        from repro.storage.integrity import scratch_path

        leftover = scratch_path(artifact, pid=2**22 + 77)
        leftover.mkdir()
        assert main(["index", "verify", str(artifact)]) == 0
        assert leftover.name in capsys.readouterr().out
        assert main(["index", "verify", str(artifact), "--clean"]) == 0
        out = capsys.readouterr().out
        assert f"removed stale scratch {leftover.name}" in out
        assert "stale scratch: none" in out
        assert not leftover.exists()

    def test_verify_recovers_a_crashed_commit(self, artifact, capsys):
        import os

        from repro.storage.integrity import backup_path

        os.replace(artifact, backup_path(artifact, pid=2**22 + 88))
        assert main(["index", "verify", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "recovery: rolled-back from parked backup" in out
        assert main(["index", "query", str(artifact)]) == 0


class TestUpdateDurability:
    """``repro update`` stays a clean operator surface under corruption."""

    def _delta(self, tmp_path):
        delta = tmp_path / "delta.txt"
        delta.write_text("- 0 1\n")
        return delta

    def test_unsavable_output_is_an_operator_error(
        self, artifact, tmp_path, capsys
    ):
        # The save path's clean-error contract: a target whose parent is a
        # regular file cannot hold an artifact directory, and the failure
        # surfaces as a message, not a traceback.
        blocker = tmp_path / "a-file"
        blocker.write_text("in the way")
        out_path = blocker / "nested" / "updated.scanidx"
        code = main(["update", str(artifact), str(self._delta(tmp_path)),
                     "--output", str(out_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: cannot save updated artifact" in err
        assert "Traceback" not in err

    def test_interrupted_update_save_leaves_loadable_artifact(
        self, artifact, tmp_path, capsys
    ):
        from repro.testing import FaultSpec, inject

        with inject(FaultSpec(site="storage.commit.pre_swap")):
            with pytest.raises(BaseException, match="simulated crash"):
                main(["update", str(artifact), str(self._delta(tmp_path))])
        capsys.readouterr()
        # the next operator command transparently recovers the old state
        assert main(["index", "verify", str(artifact), "--deep"]) == 0
        assert "recovery: rolled-back" in capsys.readouterr().out
        assert main(["index", "query", str(artifact)]) == 0
