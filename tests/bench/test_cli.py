"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graphs import paper_example_graph, write_edge_list


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.scale == "bench"

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "figure5", "--scale", "tiny", "--datasets", "orkut-like"]
        )
        assert args.experiment == "figure5"
        assert args.scale == "tiny"
        assert args.datasets == ["orkut-like"]

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster", "graph.txt"])
        assert args.mu == 5 and args.epsilon == 0.6 and args.measure == "cosine"


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "orkut-like" in output and "cochlea-like" in output

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        assert "figure5" in output and "table2" in output

    def test_run_table2(self, capsys):
        assert main(["run", "table2", "--scale", "tiny"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_run_figure6_subset(self, capsys):
        code = main(
            ["run", "figure6", "--scale", "tiny", "--datasets", "webbase-like"]
        )
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_cluster_command(self, tmp_path, capsys):
        path = tmp_path / "paper.txt"
        write_edge_list(paper_example_graph(), path)
        assert main(["cluster", str(path), "--mu", "3", "--epsilon", "0.6"]) == 0
        output = capsys.readouterr().out
        assert "clusters: 2" in output
        assert "hubs: 1" in output
