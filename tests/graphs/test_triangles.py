"""Tests for triangle counting and clustering coefficients."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    count_triangles,
    from_edge_list,
    local_clustering_coefficient,
    per_edge_triangle_counts,
)
from repro.parallel import Scheduler


class TestGlobalCount:
    def test_triangle_graph(self, triangle_graph):
        assert count_triangles(triangle_graph) == 1

    def test_path_has_no_triangles(self, path_graph):
        assert count_triangles(path_graph) == 0

    def test_complete_graph(self):
        # K5 has C(5,3) = 10 triangles.
        assert count_triangles(complete_graph(5)) == 10

    def test_paper_example(self, paper_graph):
        # Triangles: {1,2,4}, {1,3,4}, {2,3,4} in paper numbering -> 3... plus
        # {6,7,8}.  In 0-based ids: {0,1,3}, {0,2,3}?  0-2 not an edge; count
        # directly against a brute-force reference instead.
        brute = 0
        n = paper_graph.num_vertices
        for a in range(n):
            for b in range(a + 1, n):
                for c in range(b + 1, n):
                    if (paper_graph.has_edge(a, b) and paper_graph.has_edge(b, c)
                            and paper_graph.has_edge(a, c)):
                        brute += 1
        assert count_triangles(paper_graph) == brute

    def test_charges_work_to_scheduler(self, triangle_graph):
        scheduler = Scheduler()
        count_triangles(triangle_graph, scheduler)
        assert scheduler.counter.work > 0


class TestPerEdgeCounts:
    def test_triangle_graph_every_edge_in_one_triangle(self, triangle_graph):
        counts = per_edge_triangle_counts(triangle_graph)
        assert counts.tolist() == [1, 1, 1]

    def test_complete_graph_counts(self):
        graph = complete_graph(5)
        counts = per_edge_triangle_counts(graph)
        # Every edge of K5 lies in exactly n - 2 = 3 triangles.
        assert np.all(counts == 3)

    def test_counts_match_common_neighbor_sizes(self, community_graph):
        counts = per_edge_triangle_counts(community_graph)
        edge_u, edge_v = community_graph.edge_list()
        for edge in range(0, community_graph.num_edges, 17):
            u, v = int(edge_u[edge]), int(edge_v[edge])
            expected = np.intersect1d(
                community_graph.neighbors(u), community_graph.neighbors(v)
            ).shape[0]
            assert counts[edge] == expected

    def test_sum_is_three_times_triangle_count(self, paper_graph):
        counts = per_edge_triangle_counts(paper_graph)
        assert int(counts.sum()) == 3 * count_triangles(paper_graph)


class TestClusteringCoefficient:
    def test_triangle_graph_is_fully_clustered(self, triangle_graph):
        assert np.allclose(local_clustering_coefficient(triangle_graph), 1.0)

    def test_path_graph_is_zero(self, path_graph):
        assert np.allclose(local_clustering_coefficient(path_graph), 0.0)

    def test_values_in_unit_interval(self, community_graph):
        coefficients = local_clustering_coefficient(community_graph)
        assert float(coefficients.min()) >= 0.0
        assert float(coefficients.max()) <= 1.0 + 1e-12

    def test_star_center_zero(self):
        star = from_edge_list([(0, i) for i in range(1, 6)])
        coefficients = local_clustering_coefficient(star)
        assert coefficients[0] == pytest.approx(0.0)
