"""Tests for degeneracy, arboricity bounds and graph summaries."""

import pytest

from repro.graphs import (
    GraphSummary,
    arboricity_estimate,
    arboricity_lower_bound,
    arboricity_upper_bound,
    average_degree,
    complete_graph,
    degeneracy,
    degeneracy_ordering,
    density,
    empty_graph,
    from_edge_list,
)


class TestDegeneracy:
    def test_path_graph(self, path_graph):
        assert degeneracy(path_graph) == 1

    def test_triangle(self, triangle_graph):
        assert degeneracy(triangle_graph) == 2

    def test_complete_graph(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_star_graph(self):
        star = from_edge_list([(0, i) for i in range(1, 10)])
        assert degeneracy(star) == 1

    def test_ordering_covers_all_vertices(self, paper_graph):
        order, _ = degeneracy_ordering(paper_graph)
        assert sorted(order.tolist()) == list(range(11))

    def test_paper_example(self, paper_graph):
        assert degeneracy(paper_graph) == 2

    def test_empty_graph(self):
        assert degeneracy(empty_graph(4)) == 0


class TestArboricity:
    def test_lower_bound_of_tree_is_one(self, path_graph):
        assert arboricity_lower_bound(path_graph) == 1

    def test_lower_bound_complete_graph(self):
        graph = complete_graph(6)  # m=15, n=6 -> ceil(15/5) = 3
        assert arboricity_lower_bound(graph) == 3

    def test_upper_bound_at_least_lower(self, community_graph):
        assert arboricity_upper_bound(community_graph) >= arboricity_lower_bound(
            community_graph
        )

    def test_estimate_between_bounds(self, community_graph):
        estimate = arboricity_estimate(community_graph)
        assert arboricity_lower_bound(community_graph) <= estimate
        assert estimate <= max(
            arboricity_upper_bound(community_graph),
            arboricity_lower_bound(community_graph),
        )

    def test_empty_graph(self):
        assert arboricity_lower_bound(empty_graph(3)) == 0


class TestDensityAndDegree:
    def test_average_degree(self, triangle_graph):
        assert average_degree(triangle_graph) == 2.0

    def test_average_degree_empty(self):
        assert average_degree(empty_graph(0)) == 0.0

    def test_density_complete_graph(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)

    def test_density_single_vertex(self):
        assert density(empty_graph(1)) == 0.0


class TestSummary:
    def test_summary_fields(self, paper_graph):
        summary = GraphSummary.of("example", paper_graph)
        assert summary.name == "example"
        assert summary.num_vertices == 11
        assert summary.num_edges == 13
        assert summary.weighted is False
        assert summary.max_degree == 4
        assert summary.degeneracy == 2
        assert summary.average_degree == pytest.approx(26 / 11)

    def test_summary_weighted_flag(self, weighted_graph):
        assert GraphSummary.of("w", weighted_graph).weighted is True
