"""Tests for graph builders (edge lists, adjacency maps, relabelling)."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    empty_graph,
    from_adjacency,
    from_edge_list,
    from_weighted_edge_list,
    relabel_to_contiguous,
)


class TestFromEdgeList:
    def test_basic(self):
        graph = from_edge_list([(0, 1), (1, 2)])
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_duplicate_edges_collapsed(self):
        graph = from_edge_list([(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loops_dropped(self):
        graph = from_edge_list([(0, 0), (0, 1), (2, 2)], num_vertices=3)
        assert graph.num_edges == 1

    def test_orientation_ignored(self):
        a = from_edge_list([(2, 0), (1, 2)])
        b = from_edge_list([(0, 2), (2, 1)])
        assert a == b

    def test_explicit_num_vertices_adds_isolated(self):
        graph = from_edge_list([(0, 1)], num_vertices=5)
        assert graph.num_vertices == 5
        assert graph.degree(4) == 0

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list([(0, 5)], num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list([(-1, 2)])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list(np.array([[0, 1, 2]]))

    def test_empty_edge_list(self):
        graph = from_edge_list([], num_vertices=4)
        assert graph.num_vertices == 4 and graph.num_edges == 0

    def test_duplicate_weighted_edge_keeps_last_weight(self):
        graph = from_edge_list([(0, 1), (1, 0)], weights=[0.3, 0.9])
        assert graph.edge_weight(0, 1) == 0.9

    def test_weights_length_mismatch(self):
        with pytest.raises(ValueError):
            from_edge_list([(0, 1)], weights=[1.0, 2.0])

    def test_numpy_input(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        assert from_edge_list(edges).num_edges == 3


class TestOtherBuilders:
    def test_from_adjacency(self):
        graph = from_adjacency({0: [1, 2], 1: [2]})
        assert graph.num_edges == 3
        assert graph.has_edge(0, 2)

    def test_from_adjacency_asymmetric_input(self):
        graph = from_adjacency({0: [1]})
        assert graph.has_edge(1, 0)

    def test_from_weighted_edge_list(self):
        graph = from_weighted_edge_list([(0, 1, 0.5), (1, 2, 2.0)])
        assert graph.is_weighted
        assert graph.edge_weight(1, 2) == 2.0

    def test_empty_graph(self):
        graph = empty_graph(7)
        assert graph.num_vertices == 7
        assert graph.num_edges == 0

    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10
        assert all(graph.degree(v) == 4 for v in range(5))

    def test_complete_graph_weighted(self):
        graph = complete_graph(3, weight=0.5)
        assert graph.is_weighted
        assert graph.edge_weight(0, 2) == 0.5


class TestRelabel:
    def test_drops_isolated_vertices(self):
        graph = from_edge_list([(0, 2), (2, 4)], num_vertices=6)
        compacted, mapping = relabel_to_contiguous(graph)
        assert compacted.num_vertices == 3
        assert compacted.num_edges == 2
        assert mapping.tolist() == [0, 2, 4]

    def test_keep_isolated_when_requested(self):
        graph = from_edge_list([(0, 2)], num_vertices=4)
        compacted, mapping = relabel_to_contiguous(graph, drop_isolated=False)
        assert compacted.num_vertices == 4
        assert mapping.tolist() == [0, 1, 2, 3]

    def test_preserves_weights(self):
        graph = from_edge_list([(1, 3)], num_vertices=5, weights=[0.7])
        compacted, _ = relabel_to_contiguous(graph)
        assert compacted.edge_weight(0, 1) == 0.7
