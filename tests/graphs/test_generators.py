"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs import (
    PAPER_EXAMPLE_EDGES,
    dense_clustered_graph,
    dense_weighted_association,
    erdos_renyi,
    hub_and_spoke_web,
    paper_example_graph,
    planted_partition,
    planted_partition_labels,
    preferential_attachment,
    with_random_weights,
)


class TestPaperExample:
    def test_matches_figure_one(self):
        graph = paper_example_graph()
        assert graph.num_vertices == 11
        assert graph.num_edges == len(PAPER_EXAMPLE_EDGES) == 13

    def test_specific_edges(self):
        graph = paper_example_graph()
        assert graph.has_edge(3, 4)   # bridge between the two communities
        assert graph.has_edge(6, 10)  # border vertex 11 (paper numbering)
        assert not graph.has_edge(0, 5)


class TestErdosRenyi:
    def test_deterministic_given_seed(self):
        assert erdos_renyi(50, 0.1, seed=3) == erdos_renyi(50, 0.1, seed=3)

    def test_different_seeds_differ(self):
        assert erdos_renyi(50, 0.1, seed=3) != erdos_renyi(50, 0.1, seed=4)

    def test_edge_count_near_expectation(self):
        graph = erdos_renyi(200, 0.1, seed=0)
        expected = 0.1 * 200 * 199 / 2
        assert abs(graph.num_edges - expected) < 0.25 * expected

    def test_probability_zero_and_one(self):
        assert erdos_renyi(20, 0.0, seed=0).num_edges == 0
        assert erdos_renyi(20, 1.0, seed=0).num_edges == 190

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_sparse_path_used_for_large_graphs(self):
        graph = erdos_renyi(5000, 0.0004, seed=1)
        assert 0 < graph.num_edges < 5000 * 4999 / 2 * 0.001


class TestPlantedPartition:
    def test_sizes(self):
        graph = planted_partition(4, 25, seed=0)
        assert graph.num_vertices == 100

    def test_intra_cluster_denser_than_inter(self):
        graph = planted_partition(4, 40, p_intra=0.4, p_inter=0.01, seed=1)
        labels = planted_partition_labels(4, 40)
        edge_u, edge_v = graph.edge_list()
        intra = int((labels[edge_u] == labels[edge_v]).sum())
        inter = graph.num_edges - intra
        assert intra > 3 * inter

    def test_labels_shape(self):
        labels = planted_partition_labels(3, 10)
        assert labels.shape == (30,)
        assert set(labels.tolist()) == {0, 1, 2}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            planted_partition(0, 10)

    def test_dense_clustered_variant_is_denser(self):
        sparse = planted_partition(4, 30, p_intra=0.2, seed=2)
        dense = dense_clustered_graph(4, 30, p_intra=0.8, seed=2)
        assert dense.num_edges > sparse.num_edges


class TestOtherGenerators:
    def test_preferential_attachment_heavy_tail(self):
        graph = preferential_attachment(300, 3, seed=0)
        degrees = np.sort(graph.degrees)[::-1]
        assert degrees[0] > 3 * np.median(degrees)

    def test_preferential_attachment_validation(self):
        with pytest.raises(ValueError):
            preferential_attachment(5, 0)
        with pytest.raises(ValueError):
            preferential_attachment(3, 5)

    def test_hub_and_spoke_structure(self):
        graph = hub_and_spoke_web(5, 20, seed=0)
        assert graph.num_vertices == 5 * 21
        # The hub of each group is connected to all its pages.
        assert graph.degree(0) >= 20

    def test_dense_weighted_association_weights_in_range(self):
        graph = dense_weighted_association(60, seed=0)
        assert graph.is_weighted
        assert float(graph.edge_weights.min()) > 0.0
        assert float(graph.edge_weights.max()) <= 1.0

    def test_dense_weighted_association_density(self):
        graph = dense_weighted_association(60, density=0.5, seed=0)
        possible = 60 * 59 / 2
        assert abs(graph.num_edges / possible - 0.5) < 0.1

    def test_dense_weighted_association_invalid_density(self):
        with pytest.raises(ValueError):
            dense_weighted_association(10, density=0.0)

    def test_with_random_weights(self, paper_graph):
        weighted = with_random_weights(paper_graph, low=0.2, high=0.8, seed=1)
        assert weighted.is_weighted
        assert weighted.num_edges == paper_graph.num_edges
        assert float(weighted.edge_weights.min()) >= 0.2
        assert float(weighted.edge_weights.max()) <= 0.8
