"""Tests for connected-component computation."""

import numpy as np
import pytest

from repro.graphs import (
    components_of_edge_set,
    connected_components_bfs,
    connected_components_unionfind,
    empty_graph,
    from_edge_list,
    largest_component_size,
    num_components,
    relabel_components,
)


def _same_partition(a: np.ndarray, b: np.ndarray) -> bool:
    mapping = {}
    for x, y in zip(a.tolist(), b.tolist()):
        if mapping.setdefault(x, y) != y:
            return False
    reverse = {}
    for x, y in zip(a.tolist(), b.tolist()):
        if reverse.setdefault(y, x) != x:
            return False
    return True


class TestComponents:
    def test_two_components(self):
        graph = from_edge_list([(0, 1), (2, 3)], num_vertices=5)
        labels = connected_components_bfs(graph)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert num_components(labels) == 3  # {0,1}, {2,3}, {4}

    def test_connected_graph_single_component(self, paper_graph):
        labels = connected_components_bfs(paper_graph)
        assert num_components(labels) == 1

    def test_empty_graph_all_singletons(self):
        labels = connected_components_bfs(empty_graph(4))
        assert num_components(labels) == 4

    def test_bfs_and_unionfind_agree(self, community_graph):
        bfs = connected_components_bfs(community_graph)
        unionfind = connected_components_unionfind(community_graph)
        assert _same_partition(bfs, unionfind)

    def test_bfs_and_unionfind_agree_on_forest(self):
        graph = from_edge_list([(0, 1), (1, 2), (4, 5), (6, 7), (7, 8)], num_vertices=10)
        assert _same_partition(
            connected_components_bfs(graph), connected_components_unionfind(graph)
        )


class TestEdgeSetComponents:
    def test_only_listed_edges_matter(self):
        labels = components_of_edge_set(6, np.array([0, 2]), np.array([1, 3]))
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] != labels[0] and labels[5] != labels[0]

    def test_empty_edge_set(self):
        labels = components_of_edge_set(3, np.array([], dtype=np.int64),
                                        np.array([], dtype=np.int64))
        assert num_components(labels) == 3


class TestHelpers:
    def test_largest_component_size(self):
        labels = np.array([0, 0, 0, 1, 1, 2])
        assert largest_component_size(labels) == 3

    def test_largest_component_empty(self):
        assert largest_component_size(np.array([], dtype=np.int64)) == 0

    def test_num_components_empty(self):
        assert num_components(np.array([], dtype=np.int64)) == 0

    def test_relabel_components_dense(self):
        labels = np.array([7, 7, 3, 9, 3])
        dense = relabel_components(labels)
        assert set(dense.tolist()) == {0, 1, 2}
        assert dense[0] == dense[1]
        assert dense[2] == dense[4]

    def test_relabel_charges_scheduler(self):
        from repro.parallel import Scheduler

        scheduler = Scheduler()
        relabel_components(np.array([1, 2, 1]), scheduler)
        assert scheduler.counter.work == 3
