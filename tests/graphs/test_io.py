"""Tests for graph file I/O (edge list and adjacency formats)."""

import pytest

from repro.graphs import (
    from_edge_list,
    from_weighted_edge_list,
    read_adjacency,
    read_edge_list,
    write_adjacency,
    write_edge_list,
)


class TestEdgeListFormat:
    def test_roundtrip_unweighted(self, tmp_path, paper_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(paper_graph, path)
        assert read_edge_list(path) == paper_graph

    def test_roundtrip_weighted(self, tmp_path):
        graph = from_weighted_edge_list([(0, 1, 0.25), (1, 2, 0.75)])
        path = tmp_path / "weighted.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.is_weighted
        assert loaded.edge_weight(0, 1) == pytest.approx(0.25)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# a comment\n\n% another\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_num_vertices_override(self, tmp_path):
        path = tmp_path / "small.txt"
        path.write_text("0 1\n")
        graph = read_edge_list(path, num_vertices=10)
        assert graph.num_vertices == 10


class TestAdjacencyFormat:
    def test_roundtrip_unweighted(self, tmp_path, paper_graph):
        path = tmp_path / "graph.adj"
        write_adjacency(paper_graph, path)
        assert read_adjacency(path) == paper_graph

    def test_roundtrip_weighted(self, tmp_path):
        graph = from_weighted_edge_list([(0, 1, 0.5), (0, 2, 0.1), (1, 2, 0.9)])
        path = tmp_path / "weighted.adj"
        write_adjacency(graph, path)
        loaded = read_adjacency(path)
        assert loaded == graph

    def test_header_is_recognisable(self, tmp_path):
        graph = from_edge_list([(0, 1)])
        path = tmp_path / "graph.adj"
        write_adjacency(graph, path)
        assert path.read_text().splitlines()[0] == "AdjacencyGraph"

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("NotAGraph\n1\n0\n")
        with pytest.raises(ValueError):
            read_adjacency(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.adj"
        path.write_text("")
        with pytest.raises(ValueError):
            read_adjacency(path)
