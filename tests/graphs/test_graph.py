"""Tests for the CSR Graph data structure."""

import numpy as np
import pytest

from repro.graphs import Graph, from_edge_list, from_weighted_edge_list


class TestValidation:
    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError):
            Graph(np.array([1, 2]), np.array([0]))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 2, 1]), np.array([1, 0, 0]))

    def test_indptr_must_match_indices_length(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 3]), np.array([1]))

    def test_neighbor_ids_in_range(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 1]), np.array([5]))

    def test_no_self_loops(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 1, 2]), np.array([0, 0]))

    def test_neighbor_lists_sorted_no_duplicates(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 2, 3, 4]), np.array([2, 1, 0, 0]))

    def test_weights_must_align(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 1, 2]), np.array([1, 0]), np.array([1.0]))


class TestAccessors:
    def test_counts(self, paper_graph):
        assert paper_graph.num_vertices == 11
        assert paper_graph.num_edges == 13
        assert paper_graph.num_arcs == 26

    def test_degrees(self, paper_graph):
        degrees = paper_graph.degrees
        assert degrees.tolist() == [2, 3, 2, 4, 2, 3, 3, 3, 2, 1, 1]
        assert paper_graph.degree(3) == 4
        assert paper_graph.max_degree == 4

    def test_neighbors_sorted(self, paper_graph):
        assert paper_graph.neighbors(3).tolist() == [0, 1, 2, 4]

    def test_neighbor_weights_default_to_one(self, paper_graph):
        assert paper_graph.neighbor_weights(3).tolist() == [1.0] * 4

    def test_has_edge(self, paper_graph):
        assert paper_graph.has_edge(0, 1)
        assert paper_graph.has_edge(1, 0)
        assert not paper_graph.has_edge(0, 5)
        assert not paper_graph.has_edge(2, 2)

    def test_edge_list_is_canonical(self, paper_graph):
        edge_u, edge_v = paper_graph.edge_list()
        assert np.all(edge_u < edge_v)
        assert edge_u.shape[0] == 13

    def test_edges_iterator_matches_edge_list(self, paper_graph):
        edge_u, edge_v = paper_graph.edge_list()
        assert list(paper_graph.edges()) == list(zip(edge_u.tolist(), edge_v.tolist()))

    def test_edge_id_roundtrip(self, paper_graph):
        edge_u, edge_v = paper_graph.edge_list()
        for i, (u, v) in enumerate(zip(edge_u.tolist(), edge_v.tolist())):
            assert paper_graph.edge_id(u, v) == i
            assert paper_graph.edge_id(v, u) == i

    def test_edge_id_missing_edge_raises(self, paper_graph):
        with pytest.raises(KeyError):
            paper_graph.edge_id(0, 10)

    def test_arc_edge_ids_consistent(self, paper_graph):
        sources = paper_graph.arc_sources()
        for position in range(paper_graph.num_arcs):
            u = int(sources[position])
            v = int(paper_graph.indices[position])
            assert paper_graph.arc_edge_ids[position] == paper_graph.edge_id(u, v)

    def test_closed_neighborhood_contains_self(self, paper_graph):
        closed = paper_graph.closed_neighborhood(3)
        assert closed.tolist() == [0, 1, 2, 3, 4]

    def test_arc_range(self, paper_graph):
        start, end = paper_graph.arc_range(0)
        assert end - start == paper_graph.degree(0)


class TestWeighted:
    def test_edge_weight_lookup(self):
        graph = from_weighted_edge_list([(0, 1, 0.5), (1, 2, 0.25)])
        assert graph.is_weighted
        assert graph.edge_weight(0, 1) == 0.5
        assert graph.edge_weight(2, 1) == 0.25

    def test_unweighted_edge_weight_is_one(self, paper_graph):
        assert paper_graph.edge_weight(0, 1) == 1.0

    def test_adjacency_matrix_symmetric(self):
        graph = from_weighted_edge_list([(0, 1, 0.5), (1, 2, 0.25)])
        matrix = graph.adjacency_matrix()
        assert matrix[0, 1] == matrix[1, 0] == 0.5
        assert matrix[0, 0] == 0.0

    def test_adjacency_matrix_self_loops(self, triangle_graph):
        matrix = triangle_graph.adjacency_matrix(include_self_loops=True)
        assert np.allclose(np.diag(matrix), 1.0)


class TestDerived:
    def test_degree_oriented_halves_arcs(self, paper_graph):
        oriented = paper_graph.degree_oriented_csr()
        assert oriented.indices.shape[0] == paper_graph.num_edges
        # Every arc points to a vertex of equal-or-higher degree (ties by id).
        sources = np.repeat(np.arange(paper_graph.num_vertices), np.diff(oriented.indptr))
        degrees = paper_graph.degrees
        for u, v in zip(sources, oriented.indices):
            rank_u = (degrees[u], u)
            rank_v = (degrees[v], v)
            assert rank_u < rank_v

    def test_degree_oriented_edge_ids_valid(self, paper_graph):
        oriented = paper_graph.degree_oriented_csr()
        sources = np.repeat(np.arange(paper_graph.num_vertices), np.diff(oriented.indptr))
        for u, v, edge in zip(sources, oriented.indices, oriented.edge_ids):
            assert paper_graph.edge_id(int(u), int(v)) == int(edge)

    def test_degree_ordered_arcs_matches_oriented(self, paper_graph):
        indptr, indices = paper_graph.degree_ordered_arcs()
        oriented = paper_graph.degree_oriented_csr()
        assert np.array_equal(indptr, oriented.indptr)
        assert np.array_equal(indices, oriented.indices)

    def test_subgraph_edge_mask(self, paper_graph):
        mask = np.zeros(11, dtype=bool)
        mask[[0, 1, 2, 3]] = True
        edge_mask = paper_graph.subgraph_edge_mask(mask)
        assert int(edge_mask.sum()) == 5  # the 5 edges inside {0,1,2,3}

    def test_subgraph_edge_mask_wrong_length(self, paper_graph):
        with pytest.raises(ValueError):
            paper_graph.subgraph_edge_mask(np.zeros(3, dtype=bool))


class TestEquality:
    def test_equal_graphs(self):
        a = from_edge_list([(0, 1), (1, 2)])
        b = from_edge_list([(1, 2), (0, 1)])
        assert a == b

    def test_different_structure(self):
        a = from_edge_list([(0, 1)])
        b = from_edge_list([(0, 2)])
        assert a != b

    def test_weighted_vs_unweighted(self):
        a = from_edge_list([(0, 1)])
        b = from_edge_list([(0, 1)], weights=[1.0])
        assert a != b

    def test_not_equal_to_other_types(self):
        assert from_edge_list([(0, 1)]) != "graph"


class TestLocateNeighbors:
    """The batched adjacency-probe helper behind every scalar probe."""

    def test_matches_scalar_searchsorted(self, paper_graph):
        us, vs = [], []
        for u in range(paper_graph.num_vertices):
            for v in range(paper_graph.num_vertices):
                if u != v:
                    us.append(u)
                    vs.append(v)
        us, vs = np.array(us), np.array(vs)
        positions, found = paper_graph.locate_neighbors(us, vs)
        for u, v, position, hit in zip(
            us.tolist(), vs.tolist(), positions.tolist(), found.tolist()
        ):
            neighbors = paper_graph.neighbors(u)
            expected = int(np.searchsorted(neighbors, v))
            assert position - int(paper_graph.indptr[u]) == expected
            assert hit == paper_graph.has_edge(u, v)

    def test_small_and_large_batches_agree(self, paper_graph):
        us = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        vs = np.array([1, 0, 5, 9, 10, 2, 7, 6])
        large_positions, large_found = paper_graph.locate_neighbors(us, vs)
        for i in range(us.size):
            position, hit = paper_graph.locate_neighbors(us[i:i + 1], vs[i:i + 1])
            assert position[0] == large_positions[i]
            assert hit[0] == large_found[i]

    def test_edge_id_routes_through_helper(self, paper_graph):
        edge_u, edge_v = paper_graph.edge_list()
        for edge, (u, v) in enumerate(zip(edge_u.tolist(), edge_v.tolist())):
            assert paper_graph.edge_id(u, v) == edge
            assert paper_graph.edge_id(v, u) == edge


class TestFromIndexColumns:
    def test_reconstruction_matches_original(self, paper_graph):
        rebuilt = Graph.from_index_columns(
            paper_graph.indptr,
            paper_graph.indices,
            None,
            paper_graph.arc_edge_ids,
        )
        assert rebuilt == paper_graph
        assert np.array_equal(rebuilt.arc_edge_ids, paper_graph.arc_edge_ids)
        assert np.array_equal(rebuilt.edge_u, paper_graph.edge_u)
        assert np.array_equal(rebuilt.edge_v, paper_graph.edge_v)

    def test_misaligned_arc_edge_ids_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            Graph.from_index_columns(
                paper_graph.indptr,
                paper_graph.indices,
                None,
                paper_graph.arc_edge_ids[:-1],
            )
