"""Tests for the original SCAN baseline."""

import numpy as np
import pytest

from repro.baselines import find_core_vertices, scan_clustering
from repro.graphs import from_edge_list, planted_partition
from repro.similarity import compute_similarities


class TestCores:
    def test_paper_example_cores(self, paper_graph):
        similarities = compute_similarities(paper_graph)
        cores = find_core_vertices(paper_graph, similarities, 3, 0.6)
        assert set(np.flatnonzero(cores).tolist()) == {0, 1, 2, 3, 5, 6, 7}

    def test_mu_two_epsilon_zero_everything_with_a_neighbor_is_core(self, paper_graph):
        similarities = compute_similarities(paper_graph)
        cores = find_core_vertices(paper_graph, similarities, 2, 0.0)
        assert cores.all()

    def test_core_definition_counts_closed_neighborhood(self, paper_graph):
        similarities = compute_similarities(paper_graph)
        # Paper vertex 6 (0-based 5) has only 2 neighbors with sim >= 0.6, yet
        # is a core for mu = 3 because the vertex itself is counted.
        cores = find_core_vertices(paper_graph, similarities, 3, 0.6)
        assert cores[5]


class TestClustering:
    def test_paper_example(self, paper_graph):
        clustering = scan_clustering(paper_graph, 3, 0.6)
        clusters = {frozenset(v.tolist()) for v in clustering.clusters().values()}
        assert clusters == {frozenset({0, 1, 2, 3}), frozenset({5, 6, 7, 10})}

    def test_precomputed_similarities_reused(self, paper_graph):
        similarities = compute_similarities(paper_graph)
        a = scan_clustering(paper_graph, 3, 0.6, similarities=similarities)
        b = scan_clustering(paper_graph, 3, 0.6)
        assert a.same_partition_as(b)

    def test_cluster_members_are_connected_via_similar_core_edges(self):
        graph = planted_partition(3, 25, p_intra=0.5, p_inter=0.02, seed=3)
        clustering = scan_clustering(graph, 3, 0.3)
        similarities = compute_similarities(graph)
        # Every clustered core must have an epsilon-similar core neighbor in
        # the same cluster (or be alone in its cluster).
        for cluster_members in clustering.clusters().values():
            cores_in_cluster = [
                v for v in cluster_members.tolist() if clustering.core_mask[v]
            ]
            if len(cores_in_cluster) <= 1:
                continue
            for v in cores_in_cluster:
                assert any(
                    clustering.core_mask[int(u)]
                    and clustering.labels[int(u)] == clustering.labels[v]
                    and similarities.of(v, int(u)) >= 0.3
                    for u in graph.neighbors(v)
                )

    def test_invalid_parameters(self, paper_graph):
        with pytest.raises(ValueError):
            scan_clustering(paper_graph, 1, 0.5)
        with pytest.raises(ValueError):
            scan_clustering(paper_graph, 2, -0.1)

    def test_no_cores_means_no_clusters(self):
        graph = from_edge_list([(0, 1), (1, 2), (2, 3)])
        clustering = scan_clustering(graph, 5, 0.9)
        assert clustering.num_clusters == 0

    def test_jaccard_measure(self, paper_graph):
        clustering = scan_clustering(paper_graph, 2, 0.5, measure="jaccard")
        assert clustering.num_clusters >= 1
