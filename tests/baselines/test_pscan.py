"""Tests for the pruning-based pSCAN/ppSCAN baseline."""

import numpy as np
import pytest

from repro.baselines import pscan_clustering, scan_clustering
from repro.graphs import from_edge_list, planted_partition
from repro.parallel import Scheduler
from repro.similarity import compute_similarities


@pytest.fixture(scope="module")
def community():
    return planted_partition(4, 30, p_intra=0.4, p_inter=0.01, seed=7)


class TestCorrectness:
    def test_paper_example(self, paper_graph):
        result = pscan_clustering(paper_graph, 3, 0.6)
        clusters = {frozenset(v.tolist()) for v in result.clustering.clusters().values()}
        assert clusters == {frozenset({0, 1, 2, 3}), frozenset({5, 6, 7, 10})}

    def test_cores_match_scan_across_grid(self, community):
        similarities = compute_similarities(community)
        for mu in (2, 3, 5, 8):
            for epsilon in (0.2, 0.4, 0.6):
                ours = pscan_clustering(community, mu, epsilon).clustering
                reference = scan_clustering(community, mu, epsilon, similarities=similarities)
                assert np.array_equal(ours.core_mask, reference.core_mask)

    def test_core_partition_matches_scan(self, community):
        similarities = compute_similarities(community)
        for mu, epsilon in [(2, 0.3), (3, 0.35), (5, 0.25)]:
            ours = pscan_clustering(community, mu, epsilon).clustering
            reference = scan_clustering(community, mu, epsilon, similarities=similarities)
            mapping = {}
            for v in np.flatnonzero(ours.core_mask).tolist():
                assert mapping.setdefault(ours.labels[v], reference.labels[v]) == (
                    reference.labels[v]
                )

    def test_border_vertices_attached_to_similar_core(self, community):
        epsilon = 0.3
        result = pscan_clustering(community, 3, epsilon)
        clustering = result.clustering
        similarities = compute_similarities(community)
        for v in range(community.num_vertices):
            if clustering.labels[v] == -1 or clustering.core_mask[v]:
                continue
            assert any(
                clustering.core_mask[int(u)]
                and clustering.labels[int(u)] == clustering.labels[v]
                and similarities.of(v, int(u)) >= epsilon
                for u in community.neighbors(v)
            )

    def test_invalid_parameters(self, paper_graph):
        with pytest.raises(ValueError):
            pscan_clustering(paper_graph, 1, 0.5)
        with pytest.raises(ValueError):
            pscan_clustering(paper_graph, 2, 1.5)


class TestPruning:
    def test_stats_record_total_edges(self, paper_graph):
        result = pscan_clustering(paper_graph, 3, 0.6)
        assert result.stats.total_edges == paper_graph.num_edges
        assert 0 < result.stats.similarity_evaluations <= paper_graph.num_edges

    def test_each_edge_evaluated_at_most_once(self, community):
        result = pscan_clustering(community, 3, 0.4)
        assert result.stats.similarity_evaluations <= community.num_edges

    def test_pruning_skips_work_at_extreme_parameters(self, community):
        # With mu far above every degree, effective_degree < mu immediately and
        # no similarity needs to be evaluated.
        result = pscan_clustering(community, 1000, 0.5)
        assert result.stats.similarity_evaluations == 0
        assert result.clustering.num_clusters == 0

    def test_low_epsilon_prunes_after_mu_hits(self, community):
        # With epsilon = 0 every evaluated edge is similar, so each vertex stops
        # after at most mu evaluations: far fewer than all edges.
        result = pscan_clustering(community, 3, 0.0)
        assert result.stats.evaluated_fraction < 0.8

    def test_evaluated_fraction_empty_graph(self):
        graph = from_edge_list([], num_vertices=3)
        result = pscan_clustering(graph, 2, 0.5)
        assert result.stats.evaluated_fraction == 0.0

    def test_charges_scheduler(self, community):
        scheduler = Scheduler()
        pscan_clustering(community, 3, 0.4, scheduler=scheduler)
        assert scheduler.counter.work > 0
        assert scheduler.counter.span < scheduler.counter.work
