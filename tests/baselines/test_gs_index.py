"""Tests for the sequential GS*-Index baseline."""

import numpy as np
import pytest

from repro import ScanIndex
from repro.baselines import GsStarIndex, scan_clustering
from repro.parallel import Scheduler, sequential_scheduler


@pytest.fixture(scope="module")
def graphs():
    from repro.graphs import paper_example_graph, planted_partition

    return {
        "paper": paper_example_graph(),
        "community": planted_partition(4, 30, p_intra=0.4, p_inter=0.01, seed=7),
    }


@pytest.fixture(scope="module")
def gs_paper(graphs):
    return GsStarIndex.build(graphs["paper"])


@pytest.fixture(scope="module")
def gs_community(graphs):
    return GsStarIndex.build(graphs["community"])


class TestConstruction:
    def test_similarities_match_parallel_engine(self, graphs, gs_community):
        parallel = ScanIndex.build(graphs["community"])
        assert np.allclose(gs_community.similarities.values, parallel.similarities.values)

    def test_neighbor_lists_sorted(self, gs_community):
        for values in gs_community.neighbor_similarities:
            assert np.all(np.diff(values) <= 1e-12)

    def test_core_order_thresholds_sorted(self, gs_community):
        for thresholds in gs_community.core_thresholds_by_mu[2:]:
            assert np.all(np.diff(thresholds) <= 1e-12)

    def test_weighted_graph_supported(self, weighted_graph):
        index = GsStarIndex.build(weighted_graph)
        parallel = ScanIndex.build(weighted_graph)
        assert np.allclose(index.similarities.values, parallel.similarities.values)

    def test_weighted_jaccard_rejected(self, weighted_graph):
        with pytest.raises(ValueError):
            GsStarIndex.build(weighted_graph, measure="jaccard")

    def test_unknown_measure_rejected(self, graphs):
        with pytest.raises(ValueError):
            GsStarIndex.build(graphs["paper"], measure="overlap")

    def test_construction_is_sequential_span_equals_work(self, graphs):
        scheduler = sequential_scheduler()
        GsStarIndex.build(graphs["paper"], scheduler=scheduler)
        assert scheduler.counter.span == pytest.approx(scheduler.counter.work)

    def test_construction_report(self, gs_paper):
        assert gs_paper.construction_report.work > 0
        assert gs_paper.construction_report.wall_seconds >= 0


class TestQueries:
    def test_cores_match_parallel_index(self, graphs, gs_community):
        parallel = ScanIndex.build(graphs["community"])
        for mu in (2, 3, 5, 9):
            for epsilon in (0.2, 0.4, 0.6, 0.8):
                ours = set(gs_community.core_vertices(mu, epsilon).tolist())
                theirs = set(parallel.core_vertices(mu, epsilon).tolist())
                assert ours == theirs

    def test_paper_example_query(self, gs_paper):
        clustering = gs_paper.query(3, 0.6)
        clusters = {frozenset(v.tolist()) for v in clustering.clusters().values()}
        assert clusters == {frozenset({0, 1, 2, 3}), frozenset({5, 6, 7, 10})}

    def test_same_partition_as_scan(self, graphs, gs_community):
        graph = graphs["community"]
        for mu, epsilon in [(2, 0.3), (3, 0.4), (5, 0.2)]:
            ours = gs_community.query(mu, epsilon)
            reference = scan_clustering(
                graph, mu, epsilon, similarities=gs_community.similarities
            )
            assert np.array_equal(ours.core_mask, reference.core_mask)
            # Core partitions agree.
            mapping = {}
            for v in np.flatnonzero(ours.core_mask).tolist():
                assert mapping.setdefault(ours.labels[v], reference.labels[v]) == (
                    reference.labels[v]
                )

    def test_mu_above_max_degree_returns_nothing(self, gs_paper):
        assert gs_paper.core_vertices(50, 0.1).size == 0
        assert gs_paper.query(50, 0.1).num_clusters == 0

    def test_invalid_mu(self, gs_paper):
        with pytest.raises(ValueError):
            gs_paper.core_vertices(1, 0.5)

    def test_query_charges_scheduler(self, gs_paper):
        scheduler = Scheduler(1)
        gs_paper.query(3, 0.6, scheduler=scheduler)
        assert scheduler.counter.work > 0
