"""Tests for work-span counters and cost reports."""

import math

import pytest

from repro.parallel import CostReport, WorkSpanCounter, ceil_log2


class TestCeilLog2:
    def test_zero_and_one_have_zero_depth(self):
        assert ceil_log2(0) == 0.0
        assert ceil_log2(1) == 0.0

    def test_powers_of_two(self):
        assert ceil_log2(2) == 1.0
        assert ceil_log2(8) == 3.0
        assert ceil_log2(1024) == 10.0

    def test_non_powers_round_up(self):
        assert ceil_log2(3) == 2.0
        assert ceil_log2(9) == 4.0


class TestWorkSpanCounter:
    def test_starts_at_zero(self):
        counter = WorkSpanCounter()
        assert counter.work == 0.0
        assert counter.span == 0.0

    def test_charge_with_explicit_span(self):
        counter = WorkSpanCounter()
        counter.charge(100, 5)
        assert counter.work == 100
        assert counter.span == 5

    def test_charge_without_span_is_sequential(self):
        counter = WorkSpanCounter()
        counter.charge(7)
        assert counter.span == 7

    def test_negative_work_rejected(self):
        counter = WorkSpanCounter()
        with pytest.raises(ValueError):
            counter.charge(-1, 1)

    def test_charges_accumulate(self):
        counter = WorkSpanCounter()
        counter.charge(10, 2)
        counter.charge(20, 3)
        assert counter.work == 30
        assert counter.span == 5

    def test_charge_parallel_uses_log_fanout(self):
        counter = WorkSpanCounter()
        counter.charge_parallel(1000, fanout=8)
        assert counter.work == 1000
        assert counter.span == ceil_log2(8) + 1.0

    def test_reset(self):
        counter = WorkSpanCounter()
        counter.charge(5, 5)
        counter.reset()
        assert counter.work == 0.0 and counter.span == 0.0

    def test_merge_parallel_takes_max_span(self):
        parent = WorkSpanCounter()
        children = [WorkSpanCounter(10, 2), WorkSpanCounter(20, 7), WorkSpanCounter(5, 1)]
        parent.merge_parallel(children)
        assert parent.work == 35
        assert parent.span == 7 + ceil_log2(3)

    def test_merge_parallel_empty_is_noop(self):
        parent = WorkSpanCounter(1, 1)
        parent.merge_parallel([])
        assert parent.work == 1 and parent.span == 1

    def test_simulated_time_brents_bound(self):
        counter = WorkSpanCounter(work=1000, span=10)
        t = counter.simulated_time(10, scheduling_overhead=1.0, seconds_per_operation=1.0)
        assert t == pytest.approx(1000 / 10 + 10)

    def test_simulated_time_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkSpanCounter(1, 1).simulated_time(0)

    def test_speedup_bounded_by_workers_and_parallelism(self):
        counter = WorkSpanCounter(work=10_000, span=10)
        speedup = counter.speedup(16)
        assert 1.0 < speedup <= 16.0

    def test_speedup_of_sequential_work_is_small(self):
        # When span equals work the computation is fully sequential and the
        # speedup is capped at (W + S) / S = 2 regardless of the worker count.
        counter = WorkSpanCounter(work=100, span=100)
        assert counter.speedup(48) < 2.0

    def test_addition_composes_sequentially(self):
        combined = WorkSpanCounter(10, 4) + WorkSpanCounter(5, 3)
        assert combined.work == 15 and combined.span == 7

    def test_copy_is_independent(self):
        counter = WorkSpanCounter(1, 1)
        other = counter.copy()
        other.charge(5, 5)
        assert counter.work == 1

    def test_snapshot(self):
        counter = WorkSpanCounter(3, 2)
        assert counter.snapshot() == (3, 2)


class TestCostReport:
    def test_from_counter_records_fields(self):
        counter = WorkSpanCounter(100, 7)
        report = CostReport.from_counter("phase", counter, wall_seconds=1.5, note="x")
        assert report.label == "phase"
        assert report.work == 100
        assert report.span == 7
        assert report.wall_seconds == 1.5
        assert report.details["note"] == "x"

    def test_simulated_time_matches_counter(self):
        counter = WorkSpanCounter(1000, 10)
        report = CostReport.from_counter("phase", counter)
        assert report.simulated_time(4) == pytest.approx(counter.simulated_time(4))

    def test_more_workers_is_never_slower(self):
        report = CostReport("x", work=1e6, span=100)
        assert report.simulated_time(96) <= report.simulated_time(1)
