"""Tests for the real multicore execution layer (``repro.parallel.execute``).

The load-bearing property: a build executed through worker processes is
**bit-identical** to the serial build for every stored column, at every
worker count, including the degenerate shapes (empty graph, one segment,
more workers than segments) -- and ``jobs=1`` takes the literal serial code
path, never touching a pool.
"""

import warnings

import numpy as np
import pytest

from repro import ScanIndex
from repro.graphs import from_edge_list, planted_partition
from repro.graphs.generators import dense_weighted_association
from repro.parallel import execute
from repro.parallel.execute import (
    ParallelExecutor,
    executor_for,
    resolve_jobs,
    visible_cpu_count,
)
from repro.parallel.sorting import packed_argsort


@pytest.fixture
def no_floor(monkeypatch):
    """Let tiny test graphs exercise the real pool machinery."""
    monkeypatch.setattr(execute, "PARALLEL_FLOOR_ARCS", 0)


def _columns(index: ScanIndex) -> list[np.ndarray]:
    """Every artifact column of an index, in a fixed order."""
    return [
        np.asarray(column)
        for column in (
            index.graph.indptr,
            index.graph.indices,
            index.graph.arc_edge_ids,
            index.similarities.values,
            index.similarities.numerators
            if index.similarities.numerators is not None
            else np.zeros(0),
            index.neighbor_order.indptr,
            index.neighbor_order.neighbors,
            index.neighbor_order.similarities,
            index.core_order.indptr,
            index.core_order.vertices,
            index.core_order.thresholds,
        )
    ]


def assert_identical(a: ScanIndex, b: ScanIndex) -> None:
    for column_a, column_b in zip(_columns(a), _columns(b)):
        assert np.array_equal(column_a, column_b)


class TestJobsResolution:
    def test_zero_means_all_visible_cores(self):
        assert resolve_jobs(0) == visible_cpu_count()
        assert visible_cpu_count() >= 1

    def test_positive_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            resolve_jobs(-1)

    def test_jobs_one_never_builds_a_pool(self, monkeypatch):
        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("jobs=1 must stay on the serial code path")

        monkeypatch.setattr(execute, "ParallelExecutor", explode)
        graph = planted_partition(3, 10, p_intra=0.5, p_inter=0.02, seed=0)
        index = ScanIndex.build(graph, jobs=1)
        assert index.graph.num_edges == graph.num_edges


class TestGracefulDegradation:
    def test_size_floor_falls_back_serial_with_one_warning(self, monkeypatch):
        monkeypatch.setattr(execute, "PARALLEL_FLOOR_ARCS", 10**9)
        execute._warned.discard("size-floor")
        graph = planted_partition(4, 15, p_intra=0.4, p_inter=0.02, seed=1)
        serial = ScanIndex.build(graph)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = ScanIndex.build(graph, jobs=4)
            second = ScanIndex.build(graph, jobs=4)
        floor_warnings = [w for w in caught if "size floor" in str(w.message)]
        assert len(floor_warnings) == 1
        assert issubclass(floor_warnings[0].category, RuntimeWarning)
        assert_identical(serial, first)
        assert_identical(serial, second)

    def test_missing_shared_memory_falls_back_serial(self, monkeypatch, no_floor):
        monkeypatch.setattr(execute, "_shared_memory", None)
        execute._warned.discard("shared-memory")
        graph = planted_partition(4, 15, p_intra=0.4, p_inter=0.02, seed=2)
        serial = ScanIndex.build(graph)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fallback = ScanIndex.build(graph, jobs=2)
        assert any("shared_memory is unavailable" in str(w.message) for w in caught)
        assert_identical(serial, fallback)
        execute._warned.discard("shared-memory")

    def test_executor_for_yields_none_for_serial_jobs(self):
        with executor_for(1, num_arcs=10**9) as executor:
            assert executor is None


class TestBitIdentity:
    @pytest.mark.parametrize("jobs", [2, 3, 8])
    def test_unweighted_build_matches_serial(self, no_floor, jobs):
        graph = planted_partition(8, 25, p_intra=0.4, p_inter=0.02, seed=7)
        serial = ScanIndex.build(graph)
        parallel = ScanIndex.build(graph, jobs=jobs)
        assert_identical(serial, parallel)

    @pytest.mark.parametrize("measure", ["jaccard", "dice"])
    def test_other_measures_match_serial(self, no_floor, measure):
        graph = planted_partition(6, 20, p_intra=0.45, p_inter=0.03, seed=8)
        serial = ScanIndex.build(graph, measure=measure)
        parallel = ScanIndex.build(graph, measure=measure, jobs=3)
        assert_identical(serial, parallel)

    def test_weighted_build_matches_serial(self, no_floor):
        # Weighted graphs keep the similarity pass serial (float summation
        # order) while the order sorts still shard; the whole index must
        # still match bit for bit.
        graph = dense_weighted_association(80, num_modules=4, density=0.3, seed=9)
        serial = ScanIndex.build(graph)
        parallel = ScanIndex.build(graph, jobs=2)
        assert_identical(serial, parallel)

    def test_empty_graph(self, no_floor):
        graph = from_edge_list(np.zeros((0, 2), dtype=np.int64), num_vertices=5)
        serial = ScanIndex.build(graph)
        parallel = ScanIndex.build(graph, jobs=4)
        assert_identical(serial, parallel)

    def test_single_edge(self, no_floor):
        graph = from_edge_list([(0, 1)])
        assert_identical(ScanIndex.build(graph), ScanIndex.build(graph, jobs=4))

    def test_workers_exceed_segments(self, no_floor):
        # A triangle: three one-entry-deep segments, eight workers.
        graph = from_edge_list([(0, 1), (0, 2), (1, 2)])
        assert_identical(ScanIndex.build(graph), ScanIndex.build(graph, jobs=8))

    def test_one_dominant_segment(self, no_floor):
        # A star: the hub's segment swallows every split point, so the
        # sharded sort degenerates to one shard.
        star = [(0, leaf) for leaf in range(1, 40)]
        graph = from_edge_list(star)
        assert_identical(ScanIndex.build(graph), ScanIndex.build(graph, jobs=4))

    def test_update_resort_path_matches_rebuild(self, no_floor):
        graph = planted_partition(6, 25, p_intra=0.4, p_inter=0.03, seed=11)
        index = ScanIndex.build(graph)
        edge_u, edge_v = graph.edge_list()
        # A high-churn batch (well past the crossover) forces the
        # construction-path re-sorts, which is where jobs applies.
        delete = [(int(edge_u[i]), int(edge_v[i])) for i in range(0, graph.num_edges, 4)]
        report = index.apply_updates(deletions=delete, jobs=2)
        assert report.order_strategy == "resort"
        kept = np.ones(graph.num_edges, dtype=bool)
        kept[:: 4] = False
        mutated = from_edge_list(
            np.stack([edge_u[kept], edge_v[kept]], axis=1),
            num_vertices=graph.num_vertices,
        )
        assert_identical(index, ScanIndex.build(mutated))
        assert index.update_lineage[-1]["order_strategy"] == "resort"


class TestExecutorPrimitives:
    def test_segmented_argsort_matches_serial_permutation(self, rng):
        lengths = rng.integers(0, 40, size=50)
        offsets = np.zeros(51, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        key_span = 17
        keys = rng.integers(0, key_span, total).astype(np.int64)
        segment_ids = np.repeat(np.arange(50, dtype=np.int64), lengths)
        packed = segment_ids * np.int64(key_span) + keys
        universe = 50 * key_span
        expected = packed_argsort(packed, universe=universe, max_segment=40)
        with ParallelExecutor(3) as executor:
            sharded = executor.segmented_argsort(
                packed, offsets, universe=universe, max_segment=40
            )
        assert np.array_equal(sharded, expected)

    def test_executor_requires_two_jobs(self):
        with pytest.raises(ValueError, match="at least 2 jobs"):
            ParallelExecutor(1)
