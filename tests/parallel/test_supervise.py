"""Tests for supervised pool dispatch (``repro.parallel.supervise``).

Two layers: the supervisor's retry/timeout/failure semantics against a
scripted fake pool (deterministic, no processes), and the executor's
degradation contract against a *real* pool whose failures are injected
through the fault harness -- a worker killed mid-build, a dispatch path
that raises -- asserting the built index stays bit-identical to the serial
build, exactly one structured warning fires, and no shared-memory segment
leaks.
"""

import multiprocessing
import warnings

import numpy as np
import pytest

from repro import ScanIndex
from repro.graphs import planted_partition
from repro.parallel import execute
from repro.parallel.execute import ParallelExecutor, active_shared_segments
from repro.parallel.supervise import (
    DegradedExecutionWarning,
    PoolBroken,
    SupervisionPolicy,
    TaskFailed,
    run_supervised,
)
from repro.testing import FaultSpec, inject

#: Fast-retry policy for fake-pool tests (no real work to wait for).
FAST = SupervisionPolicy(task_timeout=5.0, retries=2, backoff_base=0.001,
                         backoff_cap=0.002)


@pytest.fixture
def no_floor(monkeypatch):
    """Let tiny test graphs exercise the real pool machinery."""
    monkeypatch.setattr(execute, "PARALLEL_FLOOR_ARCS", 0)


@pytest.fixture
def short_leash(monkeypatch):
    """Make the default policy detect a dead worker in seconds, not minutes."""
    monkeypatch.setattr(
        execute, "SupervisionPolicy",
        lambda: SupervisionPolicy(task_timeout=10.0, retries=2,
                                  backoff_base=0.01, backoff_cap=0.05),
    )


# ----------------------------------------------------------------------
# The scripted pool
# ----------------------------------------------------------------------
class _FakeResult:
    def __init__(self, outcome):
        self._outcome = outcome

    def get(self, timeout):
        if self._outcome == "timeout":
            raise multiprocessing.TimeoutError()
        if isinstance(self._outcome, BaseException):
            raise self._outcome
        return self._outcome


class _FakePool:
    """A pool whose outcome per (task, attempt) is scripted up front.

    ``plan`` maps ``(task_index, attempt)`` -- both starting at 1 for
    attempts -- to ``"timeout"``, an exception instance, or ``"broken"``
    (submission itself raises).  Unscripted attempts succeed.  Tasks are
    identified by their first argument.
    """

    def __init__(self, plan=None):
        self.plan = plan or {}
        self.submissions = []
        self._attempts = {}

    def apply_async(self, func, args):
        index = args[0]
        attempt = self._attempts.get(index, 0) + 1
        self._attempts[index] = attempt
        self.submissions.append((index, attempt, args))
        outcome = self.plan.get((index, attempt), "ok")
        if outcome == "broken":
            raise RuntimeError("pool machinery is gone")
        return _FakeResult(outcome)


def _tasks(n):
    return [(i,) for i in range(n)]


class TestRunSupervised:
    def test_clean_run_submits_each_task_once(self):
        pool = _FakePool()
        run_supervised(pool, None, _tasks(4), policy=FAST)
        assert [s[:2] for s in pool.submissions] == [(i, 1) for i in range(4)]

    def test_transient_error_is_retried(self):
        pool = _FakePool({(1, 1): OSError("flake")})
        run_supervised(pool, None, _tasks(3), policy=FAST)
        assert pool._attempts == {0: 1, 1: 2, 2: 1}

    def test_timeout_is_retried(self):
        pool = _FakePool({(0, 1): "timeout"})
        run_supervised(pool, None, _tasks(2), policy=FAST)
        assert pool._attempts[0] == 2

    def test_memory_error_is_transient_by_default(self):
        pool = _FakePool({(0, 1): MemoryError()})
        run_supervised(pool, None, _tasks(1), policy=FAST)
        assert pool._attempts[0] == 2

    def test_retries_exhausted_raises_task_failed(self):
        plan = {(0, attempt): OSError("persistent") for attempt in (1, 2, 3)}
        pool = _FakePool(plan)
        with pytest.raises(TaskFailed) as info:
            run_supervised(pool, None, _tasks(1), policy=FAST)
        assert info.value.index == 0
        assert info.value.attempts == FAST.retries + 1
        assert isinstance(info.value.cause, OSError)

    def test_non_transient_error_fails_immediately(self):
        pool = _FakePool({(1, 1): ValueError("shape mismatch: a bug")})
        with pytest.raises(TaskFailed) as info:
            run_supervised(pool, None, _tasks(3), policy=FAST)
        assert info.value.attempts == 1  # never retried: not transient
        assert pool._attempts[1] == 1

    def test_submission_failure_raises_pool_broken(self):
        pool = _FakePool({(2, 1): "broken"})
        with pytest.raises(PoolBroken, match="cannot accept tasks"):
            run_supervised(pool, None, _tasks(3), policy=FAST)

    def test_respawn_hook_supplies_retry_arguments(self):
        pool = _FakePool({(1, 1): "timeout", (1, 2): "timeout"})
        calls = []

        def respawn(index, attempt):
            calls.append((index, attempt))
            return (index, f"fresh-block-{attempt}")

        run_supervised(pool, None, _tasks(3), policy=FAST, respawn=respawn)
        assert calls == [(1, 1), (1, 2)]
        retried = [s[2] for s in pool.submissions if s[0] == 1 and s[1] > 1]
        assert retried == [(1, "fresh-block-1"), (1, "fresh-block-2")]

    def test_retry_without_respawn_reuses_original_args(self):
        pool = _FakePool({(0, 1): OSError()})
        run_supervised(pool, None, [(0, "payload")], policy=FAST)
        assert pool.submissions[-1][2] == (0, "payload")


class TestPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = SupervisionPolicy(backoff_base=0.1, backoff_cap=0.35)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)  # capped, not 0.4

    def test_injected_dispatch_fault_becomes_pool_broken(self):
        # The degradation contract hinges on this translation: an error on
        # the submission path must surface as PoolBroken, never leak raw.
        pool = _FakePool()
        with inject(FaultSpec(site="parallel.dispatch", action="raise")):
            with pytest.raises(PoolBroken):
                run_supervised(pool, None, _tasks(1), policy=FAST)


# ----------------------------------------------------------------------
# The executor's degradation contract (real pool, injected failures)
# ----------------------------------------------------------------------
def _columns(index):
    return [
        np.asarray(c) for c in (
            index.similarities.values,
            index.neighbor_order.neighbors,
            index.neighbor_order.similarities,
            index.core_order.indptr,
            index.core_order.vertices,
            index.core_order.thresholds,
        )
    ]


def _graph():
    return planted_partition(3, 12, p_intra=0.5, p_inter=0.03, seed=11)


class TestExecutorLifecycle:
    def test_healthy_close_drains_instead_of_terminating(self):
        executor = ParallelExecutor(2)
        pool = executor._ensure_pool()
        events = []
        original_close, original_join = pool.close, pool.join
        pool.close = lambda: (events.append("close"), original_close())[1]
        pool.join = lambda: (events.append("join"), original_join())[1]
        pool.terminate = lambda: events.append("terminate")
        executor.close()
        assert events == ["close", "join"]

    def test_degraded_close_terminates(self):
        executor = ParallelExecutor(2)
        executor._degraded = True
        pool = executor._ensure_pool()
        events = []
        original_terminate = pool.terminate
        pool.terminate = lambda: (events.append("terminate"),
                                  original_terminate())[1]
        pool.close = lambda: events.append("close")
        executor.close()
        assert "terminate" in events and "close" not in events

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(2)
        executor._ensure_pool()
        executor.close()
        executor.close()


class TestDegradation:
    def test_broken_dispatch_degrades_to_identical_serial(self, no_floor):
        graph = _graph()
        serial = ScanIndex.build(graph, jobs=1)
        with inject(FaultSpec(site="parallel.dispatch", action="raise")):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                degraded = ScanIndex.build(graph, jobs=2)
        structured = [w for w in caught
                      if issubclass(w.category, DegradedExecutionWarning)]
        assert len(structured) == 1  # once per executor, not once per stage
        assert "bit-identical" in str(structured[0].message)
        for a, b in zip(_columns(serial), _columns(degraded)):
            assert np.array_equal(a, b)

    def test_no_segment_leaks_after_forced_failure(self, no_floor):
        # /dev/shm is machine-wide: a leaked column outlives the process.
        assert active_shared_segments() == 0
        with inject(FaultSpec(site="parallel.dispatch", action="raise")):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                ScanIndex.build(_graph(), jobs=2)
        assert active_shared_segments() == 0

    def test_degraded_executor_skips_the_pool_thereafter(self, no_floor):
        executor = ParallelExecutor(2)
        executor._degraded = True
        try:
            rng = np.random.default_rng(3)
            packed = np.sort(rng.integers(0, 2**20, size=256))
            offsets = np.array([0, 64, 128, 256], dtype=np.int64)
            order = executor.segmented_argsort(
                packed, offsets, universe=2**20, max_segment=2**20
            )
            assert executor._pool is None  # never built one
            assert np.array_equal(packed[order], np.sort(packed))
        finally:
            executor.close()


class TestWorkerDeath:
    def test_killed_worker_is_retried_bit_identically(
        self, no_floor, short_leash, tmp_path
    ):
        # Kill (real os._exit) the worker running task 0, exactly once; the
        # supervisor's timeout notices the lost task and the retry -- in a
        # respawned worker, accumulating into a fresh block -- must leave
        # the build indistinguishable from the serial one.
        graph = _graph()
        serial = ScanIndex.build(graph, jobs=1)
        token = tmp_path / "kill-once"
        with inject(FaultSpec(site="parallel.worker.task", action="kill",
                              task=0, times=1, token=str(token))):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                survived = ScanIndex.build(graph, jobs=2)
        assert token.stat().st_size == 1  # the kill really fired
        assert not [w for w in caught
                    if issubclass(w.category, DegradedExecutionWarning)]
        for a, b in zip(_columns(serial), _columns(survived)):
            assert np.array_equal(a, b)
        assert active_shared_segments() == 0

    def test_unrecoverable_worker_deaths_degrade_not_hang(
        self, no_floor, monkeypatch, tmp_path
    ):
        # Every attempt of task 0 dies (times high enough to outlast the
        # retry budget): supervision must give up in bounded time and the
        # serial path must still deliver the identical index.
        monkeypatch.setattr(
            execute, "SupervisionPolicy",
            lambda: SupervisionPolicy(task_timeout=5.0, retries=1,
                                      backoff_base=0.01, backoff_cap=0.02),
        )
        graph = _graph()
        serial = ScanIndex.build(graph, jobs=1)
        token = tmp_path / "kill-always"
        with inject(FaultSpec(site="parallel.worker.task", action="kill",
                              task=0, times=10, token=str(token))):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                degraded = ScanIndex.build(graph, jobs=2)
        structured = [w for w in caught
                      if issubclass(w.category, DegradedExecutionWarning)]
        assert len(structured) == 1
        for a, b in zip(_columns(serial), _columns(degraded)):
            assert np.array_equal(a, b)
        assert active_shared_segments() == 0
