"""Tests for the parallel sorting primitives and the rational-to-integer trick."""

import numpy as np
import pytest

from repro.parallel import sorting

from repro.parallel import (
    Scheduler,
    packed_argsort,
    comparison_sort_permutation,
    integer_sort_permutation,
    rationals_to_sort_keys,
    segmented_sort_by_key,
    similarity_sort_keys,
    sort_by_key,
)


@pytest.fixture
def s():
    return Scheduler()


class TestComparisonSort:
    def test_ascending(self, s):
        keys = np.array([3.0, 1.0, 2.0])
        order = comparison_sort_permutation(s, keys)
        assert keys[order].tolist() == [1.0, 2.0, 3.0]

    def test_descending(self, s):
        keys = np.array([3.0, 1.0, 2.0])
        order = comparison_sort_permutation(s, keys, descending=True)
        assert keys[order].tolist() == [3.0, 2.0, 1.0]

    def test_stability_on_ties(self, s):
        keys = np.array([1.0, 2.0, 1.0, 2.0])
        order = comparison_sort_permutation(s, keys)
        assert order.tolist() == [0, 2, 1, 3]

    def test_charges_n_log_n_work(self, s):
        comparison_sort_permutation(s, np.arange(1024, dtype=np.float64))
        assert s.counter.work == pytest.approx(1024 * 11)

    def test_empty(self, s):
        assert comparison_sort_permutation(s, np.array([])).size == 0


class TestIntegerSort:
    def test_ascending(self, s):
        keys = np.array([5, 0, 3, 3], dtype=np.int64)
        order = integer_sort_permutation(s, keys)
        assert keys[order].tolist() == [0, 3, 3, 5]

    def test_descending(self, s):
        keys = np.array([5, 0, 3], dtype=np.int64)
        order = integer_sort_permutation(s, keys, descending=True)
        assert keys[order].tolist() == [5, 3, 0]

    def test_rejects_negative_keys(self, s):
        with pytest.raises(ValueError):
            integer_sort_permutation(s, np.array([1, -2, 3]))

    def test_cheaper_than_comparison_sort(self):
        keys = np.arange(1 << 14, dtype=np.int64)
        s_int, s_cmp = Scheduler(), Scheduler()
        integer_sort_permutation(s_int, keys)
        comparison_sort_permutation(s_cmp, keys.astype(np.float64))
        assert s_int.counter.work < s_cmp.counter.work

    def test_matches_comparison_sort_result(self, s, rng):
        keys = rng.integers(0, 1000, size=500)
        a = integer_sort_permutation(s, keys)
        b = comparison_sort_permutation(s, keys.astype(np.float64))
        assert np.array_equal(keys[a], keys[b])


class TestRationalKeys:
    def test_preserves_order_of_distinct_rationals(self):
        numerators = np.array([1, 1, 2, 3])
        denominators = np.array([3, 2, 3, 4])
        keys = rationals_to_sort_keys(numerators, denominators, bound=4)
        ratios = numerators / denominators
        assert np.array_equal(np.argsort(keys), np.argsort(ratios))

    def test_rejects_non_positive_denominator(self):
        with pytest.raises(ValueError):
            rationals_to_sort_keys(np.array([1]), np.array([0]), bound=2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rationals_to_sort_keys(np.array([1, 2]), np.array([1]), bound=2)

    def test_similarity_keys_preserve_order(self, rng):
        similarities = rng.random(200)
        keys = similarity_sort_keys(similarities)
        assert np.array_equal(np.argsort(keys, kind="stable"),
                              np.argsort(np.round(similarities * (1 << 20)), kind="stable"))

    def test_similarity_keys_clip_out_of_range(self):
        keys = similarity_sort_keys(np.array([-0.5, 0.5, 1.5]))
        assert keys[0] == 0
        assert keys[2] == 1 << 20


class TestSortByKey:
    def test_sorts_values(self, s):
        values = np.array([10, 20, 30])
        keys = np.array([3.0, 1.0, 2.0])
        assert sort_by_key(s, values, keys).tolist() == [20, 30, 10]

    def test_integer_path(self, s):
        values = np.array([10, 20, 30])
        keys = np.array([3, 1, 2], dtype=np.int64)
        out = sort_by_key(s, values, keys, descending=True, use_integer_sort=True)
        assert out.tolist() == [10, 30, 20]

    def test_length_mismatch(self, s):
        with pytest.raises(ValueError):
            sort_by_key(s, np.arange(3), np.arange(2))


class TestSegmentedSort:
    def test_sorts_each_segment_independently(self, s):
        offsets = np.array([0, 3, 5])
        values = np.array([10, 11, 12, 13, 14])
        keys = np.array([1.0, 3.0, 2.0, 0.5, 0.9])
        out = segmented_sort_by_key(s, offsets, values, keys, descending=True,
                                    use_integer_sort=False)
        assert out.tolist() == [11, 12, 10, 14, 13]

    def test_ascending(self, s):
        offsets = np.array([0, 2, 4])
        values = np.array([1, 2, 3, 4])
        keys = np.array([5.0, 1.0, 0.0, 7.0])
        out = segmented_sort_by_key(s, offsets, values, keys, descending=False,
                                    use_integer_sort=False)
        assert out.tolist() == [2, 1, 3, 4]

    def test_segments_unchanged_in_size(self, s, rng):
        lengths = rng.integers(0, 10, size=20)
        offsets = np.zeros(21, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        values = rng.integers(0, 1000, size=total)
        keys = rng.random(total)
        out = segmented_sort_by_key(s, offsets, values, keys)
        for i in range(20):
            a, b = int(offsets[i]), int(offsets[i + 1])
            assert sorted(out[a:b].tolist()) == sorted(values[a:b].tolist())

    def test_empty_input(self, s):
        out = segmented_sort_by_key(s, np.array([0]), np.array([], dtype=np.int64),
                                    np.array([], dtype=np.float64))
        assert out.size == 0

    def test_bad_offsets(self, s):
        with pytest.raises(ValueError):
            segmented_sort_by_key(s, np.array([0, 2]), np.arange(3), np.arange(3))

    def test_length_mismatch(self, s):
        with pytest.raises(ValueError):
            segmented_sort_by_key(s, np.array([0, 2]), np.arange(2), np.arange(3))


class TestPackedArgsort:
    """The radix fast path must be indistinguishable from the stable argsort."""

    def _random_packed(self, rng, num_segments, total, key_span):
        lengths = rng.multinomial(total, np.ones(num_segments) / num_segments)
        segment_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)
        keys = rng.integers(0, key_span, total).astype(np.int64)
        return segment_ids * np.int64(key_span) + keys, num_segments * key_span

    @pytest.mark.parametrize("num_segments,total,key_span", [
        (7, 200, 5),          # heavy ties
        (50, 3000, 1000),     # one digit pass
        (300, 5000, 200_000), # two digit passes
        (3, 4000, 1 << 21),   # long segments, wide keys
        (1, 500, 64),         # single segment
    ])
    def test_radix_matches_argsort(self, rng, num_segments, total, key_span):
        packed, universe = self._random_packed(rng, num_segments, total, key_span)
        max_segment = total  # irrelevant to forced strategies
        via_radix = packed_argsort(
            packed, universe=universe, max_segment=max_segment, strategy="radix"
        )
        via_argsort = packed_argsort(
            packed, universe=universe, max_segment=max_segment, strategy="argsort"
        )
        assert np.array_equal(via_radix, via_argsort)

    def test_auto_picks_radix_only_when_eligible(self):
        packed = np.arange(sorting.RADIX_MIN_TOTAL, dtype=np.int64)
        # Long segments + small universe: eligible.
        assert sorting.radix_passes(1 << 16) == 1
        assert sorting.radix_passes(1 << 32) == 2
        assert sorting.radix_passes((1 << 32) + 1) == 3
        # Every auto decision must still return the stable permutation.
        for max_segment in (1, sorting.RADIX_MIN_MAX_SEGMENT):
            order = packed_argsort(
                packed, universe=packed.shape[0], max_segment=max_segment
            )
            assert np.array_equal(order, np.arange(packed.shape[0]))

    def test_empty_and_unknown_strategy(self):
        empty = np.zeros(0, dtype=np.int64)
        assert packed_argsort(empty, universe=1, max_segment=0).size == 0
        with pytest.raises(ValueError, match="unknown sort strategy"):
            packed_argsort(empty, universe=1, max_segment=0, strategy="bogus")

    def test_segmented_sort_strategy_knob(self, s, rng):
        offsets = np.array([0, 4, 4, 9, 16], dtype=np.int64)
        values = np.arange(16, dtype=np.int64)
        keys = rng.integers(0, 5, 16).astype(np.int64)
        expected = segmented_sort_by_key(s, offsets, values, keys)
        for strategy in ("radix", "argsort", "auto"):
            result = segmented_sort_by_key(
                s, offsets, values, keys, sort_strategy=strategy
            )
            assert np.array_equal(result, expected)
