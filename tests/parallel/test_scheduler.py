"""Tests for the fork-join scheduler's execution and span semantics."""

import pytest

from repro.parallel import Scheduler, ceil_log2, sequential_scheduler


class TestConstruction:
    def test_default_worker_count_matches_paper_machine(self):
        assert Scheduler().num_workers == 96

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            Scheduler(0)

    def test_sequential_scheduler_has_one_worker(self):
        assert sequential_scheduler().num_workers == 1

    def test_fresh_keeps_workers_but_resets_counter(self):
        scheduler = Scheduler(4)
        scheduler.charge(100, 10)
        fresh = scheduler.fresh()
        assert fresh.num_workers == 4
        assert fresh.counter.work == 0


class TestParallelFor:
    def test_executes_every_iteration_in_order_observable(self):
        scheduler = Scheduler()
        seen = []
        scheduler.parallel_for(5, seen.append)
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_zero_iterations_charges_nothing(self):
        scheduler = Scheduler()
        scheduler.parallel_for(0, lambda i: None)
        assert scheduler.counter.work == 0

    def test_span_is_max_iteration_not_sum(self):
        scheduler = Scheduler()

        def body(i):
            scheduler.charge(10, 10 if i == 3 else 1)

        scheduler.parallel_for(8, body)
        # Span: heaviest iteration (10) + fork tree depth (log2(8)=3) + 1.
        assert scheduler.counter.span == pytest.approx(10 + 3 + 1)

    def test_work_is_sum_of_iterations(self):
        scheduler = Scheduler()
        scheduler.parallel_for(4, lambda i: scheduler.charge(5, 1))
        assert scheduler.counter.work == pytest.approx(4 * 5 + 4)

    def test_nested_parallel_for_composes_spans(self):
        scheduler = Scheduler()

        def outer(i):
            scheduler.parallel_for(4, lambda j: scheduler.charge(1, 1))

        scheduler.parallel_for(4, outer)
        # Inner loop span: 1 + log2(4) + 1 = 4; outer adds log2(4) + 1 = 3.
        assert scheduler.counter.span == pytest.approx(4 + 3)

    def test_parallel_map_returns_results_in_order(self):
        scheduler = Scheduler()
        assert scheduler.parallel_map([1, 2, 3], lambda x: x * x) == [1, 4, 9]


class TestForkJoin:
    def test_returns_all_results(self):
        scheduler = Scheduler()
        results = scheduler.fork_join([lambda: 1, lambda: 2, lambda: 3])
        assert results == [1, 2, 3]

    def test_span_is_max_task(self):
        scheduler = Scheduler()
        tasks = [
            lambda: scheduler.charge(1, 2),
            lambda: scheduler.charge(1, 9),
            lambda: scheduler.charge(1, 4),
        ]
        scheduler.fork_join(tasks)
        assert scheduler.counter.span == pytest.approx(9 + ceil_log2(3) + 1)


class TestTiming:
    def test_simulated_time_uses_own_worker_count_by_default(self):
        scheduler = Scheduler(10)
        scheduler.charge(1000, 10)
        assert scheduler.simulated_time() == pytest.approx(
            scheduler.counter.simulated_time(10)
        )

    def test_simulated_time_override(self):
        scheduler = Scheduler(10)
        scheduler.charge(1000, 1)
        assert scheduler.simulated_time(1) > scheduler.simulated_time(10)

    def test_reset_zeroes_counter(self):
        scheduler = Scheduler()
        scheduler.charge(10, 10)
        scheduler.reset()
        assert scheduler.counter.work == 0
