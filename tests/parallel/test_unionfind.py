"""Tests for the union-find forest used by clustering queries."""

import numpy as np
import pytest

from repro.parallel import Scheduler, UnionFind


@pytest.fixture
def s():
    return Scheduler()


class TestBasics:
    def test_initially_all_singletons(self):
        forest = UnionFind(5)
        assert forest.num_components == 5
        assert len(forest) == 5
        assert all(forest.find(i) == i for i in range(5))

    def test_union_merges(self):
        forest = UnionFind(4)
        assert forest.union(0, 1) is True
        assert forest.connected(0, 1)
        assert forest.num_components == 3

    def test_union_of_same_set_returns_false(self):
        forest = UnionFind(3)
        forest.union(0, 1)
        assert forest.union(1, 0) is False
        assert forest.num_components == 2

    def test_transitive_connectivity(self):
        forest = UnionFind(5)
        forest.union(0, 1)
        forest.union(1, 2)
        forest.union(3, 4)
        assert forest.connected(0, 2)
        assert not forest.connected(2, 3)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_zero_elements(self):
        forest = UnionFind(0)
        assert forest.num_components == 0


class TestBatches:
    def test_union_batch(self, s):
        forest = UnionFind(6)
        forest.union_batch(s, np.array([0, 2, 4]), np.array([1, 3, 5]))
        assert forest.num_components == 3

    def test_union_batch_length_mismatch(self, s):
        forest = UnionFind(3)
        with pytest.raises(ValueError):
            forest.union_batch(s, np.array([0]), np.array([1, 2]))

    def test_find_batch(self, s):
        forest = UnionFind(4)
        forest.union(0, 1)
        roots = forest.find_batch(s, np.array([0, 1, 2, 3]))
        assert roots[0] == roots[1]
        assert roots[2] != roots[0]

    def test_component_labels_partition(self, s):
        forest = UnionFind(7)
        forest.union_batch(s, np.array([0, 1, 4]), np.array([1, 2, 5]))
        labels = forest.component_labels(s)
        assert labels[0] == labels[1] == labels[2]
        assert labels[4] == labels[5]
        assert labels[3] not in (labels[0], labels[4])

    def test_matches_reference_components(self, s, rng):
        n = 200
        edges = rng.integers(0, n, size=(300, 2))
        forest = UnionFind(n)
        forest.union_batch(s, edges[:, 0], edges[:, 1])
        # Reference: iterative label propagation until fixpoint.
        labels = np.arange(n)
        changed = True
        while changed:
            changed = False
            for u, v in edges:
                low = min(labels[u], labels[v])
                if labels[u] != low or labels[v] != low:
                    labels[u] = labels[v] = low
                    changed = True
        ours = forest.component_labels()
        # Same partition: equal labels iff equal reference labels.
        _, ours_dense = np.unique(ours, return_inverse=True)
        _, ref_dense = np.unique(labels, return_inverse=True)
        remap = {}
        for a, b in zip(ours_dense, ref_dense):
            assert remap.setdefault(a, b) == b
