"""Tests for the open-addressing parallel hash set / map."""

import numpy as np
import pytest

from repro.parallel import ParallelHashMap, ParallelHashSet, Scheduler


@pytest.fixture
def s():
    return Scheduler()


class TestHashSet:
    def test_empty_set(self):
        table = ParallelHashSet()
        assert len(table) == 0
        assert 5 not in table

    def test_add_and_contains(self):
        table = ParallelHashSet()
        table.add(42)
        assert 42 in table
        assert 41 not in table

    def test_add_is_idempotent(self):
        table = ParallelHashSet()
        table.add(7)
        table.add(7)
        assert len(table) == 1

    def test_negative_keys_rejected(self):
        table = ParallelHashSet()
        with pytest.raises(ValueError):
            table.add(-1)

    def test_negative_lookup_is_false(self):
        table = ParallelHashSet()
        assert -3 not in table

    def test_batch_insert_and_lookup(self, s):
        table = ParallelHashSet(4)
        table.add_batch(s, np.array([1, 5, 9, 5, 1]))
        assert len(table) == 3
        hits = table.contains_batch(s, np.array([1, 2, 5, 9, 10]))
        assert hits.tolist() == [True, False, True, True, False]

    def test_grows_beyond_initial_capacity(self, s):
        table = ParallelHashSet(2)
        keys = np.arange(1000)
        table.add_batch(s, keys)
        assert len(table) == 1000
        assert all(int(k) in table for k in keys[::97])

    def test_to_array_returns_all_keys(self, s):
        table = ParallelHashSet()
        table.add_batch(s, np.array([4, 2, 8]))
        assert table.to_array().tolist() == [2, 4, 8]

    def test_invalid_load_factor(self):
        with pytest.raises(ValueError):
            ParallelHashSet(load_factor=1.5)

    def test_colliding_keys_all_stored(self, s):
        # Keys a multiple of the capacity apart tend to collide after masking.
        table = ParallelHashSet(4)
        keys = np.array([8, 16, 24, 32, 40, 48])
        table.add_batch(s, keys)
        assert all(int(k) in table for k in keys)


class TestHashMap:
    def test_set_and_get(self):
        table = ParallelHashMap()
        table[3] = 30
        assert table[3] == 30
        assert table.get(4) is None
        assert table.get(4, -1) == -1

    def test_overwrite_keeps_single_entry(self):
        table = ParallelHashMap()
        table[3] = 30
        table[3] = 99
        assert len(table) == 1
        assert table[3] == 99

    def test_missing_key_raises(self):
        table = ParallelHashMap()
        with pytest.raises(KeyError):
            table[11]

    def test_contains(self):
        table = ParallelHashMap()
        table[1] = 2
        assert 1 in table
        assert 2 not in table
        assert -1 not in table

    def test_negative_key_rejected(self):
        table = ParallelHashMap()
        with pytest.raises(ValueError):
            table[-5] = 0

    def test_batch_set(self, s):
        table = ParallelHashMap(2)
        table.set_batch(s, np.arange(100), np.arange(100) * 2)
        assert len(table) == 100
        assert table[37] == 74

    def test_batch_length_mismatch(self, s):
        table = ParallelHashMap()
        with pytest.raises(ValueError):
            table.set_batch(s, np.arange(3), np.arange(2))

    def test_items_sorted_by_key(self, s):
        table = ParallelHashMap()
        table.set_batch(s, np.array([5, 1, 3]), np.array([50, 10, 30]))
        assert table.items() == [(1, 10), (3, 30), (5, 50)]

    def test_growth_preserves_values(self, s):
        table = ParallelHashMap(2)
        for key in range(200):
            table[key] = key * key
        assert table[141] == 141 * 141
        assert len(table) == 200
