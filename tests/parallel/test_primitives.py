"""Tests for the data-parallel array primitives."""

import numpy as np
import pytest

from repro.parallel import (
    Scheduler,
    parallel_count,
    parallel_filter,
    parallel_flatten,
    parallel_map_array,
    parallel_max,
    parallel_pack_indices,
    parallel_reduce,
    parallel_scan,
    remove_duplicates,
)


@pytest.fixture
def s():
    return Scheduler()


class TestReduce:
    def test_sum(self, s):
        assert parallel_reduce(s, [1, 2, 3, 4]) == 10

    def test_empty_sum_is_zero(self, s):
        assert parallel_reduce(s, []) == 0

    def test_custom_operation(self, s):
        assert parallel_reduce(s, [3, 9, 1], operation=np.max) == 9

    def test_charges_linear_work_log_span(self, s):
        parallel_reduce(s, np.ones(1024))
        assert s.counter.work == 1024
        assert s.counter.span == pytest.approx(11)

    def test_max_raises_on_empty(self, s):
        with pytest.raises(ValueError):
            parallel_max(s, [])

    def test_max(self, s):
        assert parallel_max(s, [5, -1, 12, 3]) == 12


class TestFilterAndPack:
    def test_filter_keeps_masked(self, s):
        values = np.array([10, 20, 30, 40])
        out = parallel_filter(s, values, np.array([True, False, True, False]))
        assert out.tolist() == [10, 30]

    def test_filter_length_mismatch(self, s):
        with pytest.raises(ValueError):
            parallel_filter(s, np.arange(3), np.array([True]))

    def test_pack_indices(self, s):
        mask = np.array([False, True, True, False, True])
        assert parallel_pack_indices(s, mask).tolist() == [1, 2, 4]

    def test_count(self, s):
        assert parallel_count(s, np.array([True, False, True])) == 2


class TestScan:
    def test_exclusive_scan(self, s):
        prefix, total = parallel_scan(s, np.array([1, 2, 3, 4]))
        assert prefix.tolist() == [0, 1, 3, 6]
        assert total == 10

    def test_inclusive_scan(self, s):
        prefix, total = parallel_scan(s, np.array([1, 2, 3]), inclusive=True)
        assert prefix.tolist() == [1, 3, 6]
        assert total == 6

    def test_empty_scan(self, s):
        prefix, total = parallel_scan(s, np.array([], dtype=np.int64))
        assert prefix.size == 0 and total == 0


class TestMapAndDuplicates:
    def test_map_array(self, s):
        out = parallel_map_array(s, np.array([1.0, 4.0, 9.0]), np.sqrt)
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_remove_duplicates(self, s):
        out = remove_duplicates(s, np.array([3, 1, 3, 2, 1]))
        assert sorted(out.tolist()) == [1, 2, 3]

    def test_remove_duplicates_charges_constant_span(self, s):
        remove_duplicates(s, np.arange(10_000))
        assert s.counter.span <= 5.0


class TestFlatten:
    def test_concatenates_chunks(self, s):
        out = parallel_flatten(s, [np.array([1, 2]), np.array([3]), np.array([4, 5])])
        assert out.tolist() == [1, 2, 3, 4, 5]

    def test_empty_chunk_list(self, s):
        assert parallel_flatten(s, []).size == 0

    def test_all_empty_chunks(self, s):
        out = parallel_flatten(s, [np.array([], dtype=np.int64), np.array([], dtype=np.int64)])
        assert out.size == 0
