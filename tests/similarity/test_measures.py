"""Tests for the reference set/vector similarity measures."""

import math

import numpy as np
import pytest

from repro.graphs import from_weighted_edge_list, paper_example_graph
from repro.similarity import (
    angle_between,
    closed_neighborhood_weights,
    cosine_similarity_sets,
    cosine_similarity_vectors,
    dice_similarity,
    edge_similarity_reference,
    jaccard_similarity,
    weighted_cosine_similarity,
)


class TestSetMeasures:
    def test_jaccard_identical_sets(self):
        assert jaccard_similarity([1, 2, 3], [3, 2, 1]) == 1.0

    def test_jaccard_disjoint_sets(self):
        assert jaccard_similarity([1, 2], [3, 4]) == 0.0

    def test_jaccard_partial_overlap(self):
        assert jaccard_similarity([1, 2, 3], [2, 3, 4]) == pytest.approx(2 / 4)

    def test_jaccard_both_empty(self):
        assert jaccard_similarity([], []) == 0.0

    def test_cosine_identical_sets(self):
        assert cosine_similarity_sets([1, 2], [1, 2]) == pytest.approx(1.0)

    def test_cosine_partial_overlap(self):
        assert cosine_similarity_sets([1, 2, 3], [2, 3, 4, 5]) == pytest.approx(
            2 / math.sqrt(12)
        )

    def test_cosine_empty_set(self):
        assert cosine_similarity_sets([], [1]) == 0.0

    def test_dice(self):
        assert dice_similarity([1, 2, 3], [2, 3, 4]) == pytest.approx(4 / 6)

    def test_dice_both_empty(self):
        assert dice_similarity([], []) == 0.0


class TestWeightedAndVector:
    def test_weighted_cosine_matches_unweighted_when_weights_one(self):
        unweighted = cosine_similarity_sets([1, 2, 3], [2, 3, 4])
        weighted = weighted_cosine_similarity([1, 2, 3], [1, 1, 1], [2, 3, 4], [1, 1, 1])
        assert weighted == pytest.approx(unweighted)

    def test_weighted_cosine_zero_vector(self):
        assert weighted_cosine_similarity([1], [0.0], [1], [1.0]) == 0.0

    def test_vector_cosine_orthogonal(self):
        assert cosine_similarity_vectors([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_vector_cosine_parallel(self):
        assert cosine_similarity_vectors([1, 2], [2, 4]) == pytest.approx(1.0)

    def test_vector_cosine_zero_vector(self):
        assert cosine_similarity_vectors([0, 0], [1, 1]) == 0.0

    def test_angle_between_orthogonal(self):
        assert angle_between(np.array([1, 0]), np.array([0, 1])) == pytest.approx(math.pi / 2)


class TestEdgeReference:
    def test_paper_values(self, paper_graph):
        # Values quoted on Figure 1 of the paper (1-based ids 5-6, 1-2, 2-4, 9-10).
        assert edge_similarity_reference(paper_graph, 4, 5) == pytest.approx(0.58, abs=0.01)
        assert edge_similarity_reference(paper_graph, 0, 1) == pytest.approx(0.87, abs=0.01)
        assert edge_similarity_reference(paper_graph, 1, 3) == pytest.approx(0.89, abs=0.01)
        assert edge_similarity_reference(paper_graph, 8, 9) == pytest.approx(0.82, abs=0.01)

    def test_symmetric(self, paper_graph):
        assert edge_similarity_reference(paper_graph, 3, 4) == pytest.approx(
            edge_similarity_reference(paper_graph, 4, 3)
        )

    def test_jaccard_and_dice_variants(self, paper_graph):
        jaccard = edge_similarity_reference(paper_graph, 0, 1, "jaccard")
        dice = edge_similarity_reference(paper_graph, 0, 1, "dice")
        # N̄(0) = {0,1,3}, N̄(1) = {0,1,2,3}: intersection 3, union 4.
        assert jaccard == pytest.approx(3 / 4)
        assert dice == pytest.approx(6 / 7)

    def test_unknown_measure(self, paper_graph):
        with pytest.raises(ValueError):
            edge_similarity_reference(paper_graph, 0, 1, "euclidean")

    def test_non_edge_raises(self, paper_graph):
        with pytest.raises(KeyError):
            edge_similarity_reference(paper_graph, 0, 10)

    def test_weighted_graph_requires_cosine(self):
        graph = from_weighted_edge_list([(0, 1, 0.5), (1, 2, 0.5)])
        with pytest.raises(ValueError):
            edge_similarity_reference(graph, 0, 1, "jaccard")

    def test_weighted_cosine_hand_computed(self):
        # Path 0 - 1 - 2 with weights 0.5 and 2.0.
        graph = from_weighted_edge_list([(0, 1, 0.5), (1, 2, 2.0)])
        # N̄(0) vector: w(0,0)=1, w(0,1)=0.5.  N̄(1) vector: w(1,0)=0.5, w(1,1)=1, w(1,2)=2.
        # numerator = 1*0.5 + 0.5*1 = 1.0; norms: sqrt(1.25), sqrt(5.25).
        expected = 1.0 / (math.sqrt(1.25) * math.sqrt(5.25))
        assert edge_similarity_reference(graph, 0, 1) == pytest.approx(expected)

    def test_closed_neighborhood_weights_include_self(self, paper_graph):
        items, values = closed_neighborhood_weights(paper_graph, 3)
        assert 3 in items.tolist()
        assert values[items.tolist().index(3)] == 1.0
