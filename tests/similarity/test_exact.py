"""Tests for the exact all-edge similarity engines (merge / hash / matmul)."""

import numpy as np
import pytest

from repro.graphs import complete_graph, empty_graph, from_edge_list, paper_example_graph
from repro.parallel import Scheduler
from repro.similarity import EdgeSimilarities, compute_similarities, edge_similarity_reference

BACKENDS = ("merge", "hash", "matmul")
MEASURES = ("cosine", "jaccard", "dice")


class TestAgainstReference:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("measure", MEASURES)
    def test_paper_example_all_backends_and_measures(self, paper_graph, backend, measure):
        similarities = compute_similarities(paper_graph, measure=measure, backend=backend)
        for u, v in paper_graph.edges():
            assert similarities.of(u, v) == pytest.approx(
                edge_similarity_reference(paper_graph, u, v, measure)
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_community_graph_cosine(self, community_graph, backend):
        similarities = compute_similarities(community_graph, backend=backend)
        edge_u, edge_v = community_graph.edge_list()
        for edge in range(0, community_graph.num_edges, 23):
            u, v = int(edge_u[edge]), int(edge_v[edge])
            assert similarities.values[edge] == pytest.approx(
                edge_similarity_reference(community_graph, u, v)
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_weighted_graph_cosine(self, weighted_graph, backend):
        similarities = compute_similarities(weighted_graph, backend=backend)
        edge_u, edge_v = weighted_graph.edge_list()
        for edge in range(0, weighted_graph.num_edges, 11):
            u, v = int(edge_u[edge]), int(edge_v[edge])
            assert similarities.values[edge] == pytest.approx(
                edge_similarity_reference(weighted_graph, u, v)
            )

    def test_backends_agree_exactly(self, community_graph):
        merge = compute_similarities(community_graph, backend="merge")
        hashed = compute_similarities(community_graph, backend="hash")
        matmul = compute_similarities(community_graph, backend="matmul")
        assert np.allclose(merge.values, hashed.values)
        assert np.allclose(merge.values, matmul.values)


class TestSpecialGraphs:
    def test_complete_graph_all_similarities_one(self):
        similarities = compute_similarities(complete_graph(6))
        assert np.allclose(similarities.values, 1.0)

    def test_path_graph_values(self, path_graph):
        similarities = compute_similarities(path_graph)
        # End edges: N̄(0)={0,1}, N̄(1)={0,1,2} -> 2/sqrt(6).
        assert similarities.of(0, 1) == pytest.approx(2 / np.sqrt(6))
        # Middle edge: N̄(1)={0,1,2}, N̄(2)={1,2,3} -> 2/3.
        assert similarities.of(1, 2) == pytest.approx(2 / 3)

    def test_empty_graph(self):
        similarities = compute_similarities(empty_graph(5))
        assert len(similarities) == 0

    def test_values_in_unit_interval(self, community_graph, weighted_graph):
        for graph in (community_graph, weighted_graph):
            values = compute_similarities(graph).values
            assert float(values.min()) >= 0.0
            assert float(values.max()) <= 1.0 + 1e-9

    def test_adjacent_edges_at_least_baseline(self, community_graph):
        # For adjacent u, v the closed intersection always contains both
        # endpoints, so the cosine similarity is at least 2/sqrt((d_u+1)(d_v+1)).
        similarities = compute_similarities(community_graph)
        degrees = community_graph.degrees
        edge_u, edge_v = community_graph.edge_list()
        floor = 2.0 / np.sqrt((degrees[edge_u] + 1.0) * (degrees[edge_v] + 1.0))
        assert np.all(similarities.values >= floor - 1e-12)


class TestValidationAndAccounting:
    def test_unknown_measure(self, paper_graph):
        with pytest.raises(ValueError):
            compute_similarities(paper_graph, measure="overlap")

    def test_unknown_backend(self, paper_graph):
        with pytest.raises(ValueError):
            compute_similarities(paper_graph, backend="gpu")

    def test_weighted_graph_rejects_jaccard(self, weighted_graph):
        with pytest.raises(ValueError):
            compute_similarities(weighted_graph, measure="jaccard")

    def test_wrong_length_values_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            EdgeSimilarities(paper_graph, np.zeros(5), "cosine")

    def test_arc_values_align_with_csr(self, paper_graph):
        similarities = compute_similarities(paper_graph)
        arc_values = similarities.arc_values()
        sources = paper_graph.arc_sources()
        for position in range(paper_graph.num_arcs):
            u = int(sources[position])
            v = int(paper_graph.indices[position])
            assert arc_values[position] == pytest.approx(similarities.of(u, v))

    def test_merge_charges_less_work_than_hash_on_skewed_graph(self):
        # A star plus a few triangles: the hash backend probes the big
        # neighborhood once per edge while the oriented merge shares work.
        star_edges = [(0, i) for i in range(1, 50)] + [(1, 2), (3, 4), (5, 6)]
        graph = from_edge_list(star_edges)
        s_merge, s_hash = Scheduler(), Scheduler()
        compute_similarities(graph, backend="merge", scheduler=s_merge)
        compute_similarities(graph, backend="hash", scheduler=s_hash)
        assert s_merge.counter.work < s_hash.counter.work

    def test_scheduler_span_logarithmic(self, community_graph):
        scheduler = Scheduler()
        compute_similarities(community_graph, scheduler=scheduler)
        # Span should be orders of magnitude below the work (parallel-friendly).
        assert scheduler.counter.span < scheduler.counter.work / 50
