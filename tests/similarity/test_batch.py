"""Property tests for the vectorised batch similarity engine.

The batch backend must agree with the scalar ``merge`` and ``hash`` reference
backends to 1e-9 on random weighted and unweighted graphs across all three
measures, including the degenerate shapes (empty graph, star, clique), and it
must charge the scheduler exactly the costs of the merge engine it
vectorises.
"""

import numpy as np
import pytest

from repro.graphs import complete_graph, empty_graph, from_edge_list
from repro.parallel import Scheduler
from repro.similarity import compute_similarities, edge_numerators_for_subset
from repro.similarity.batch import batch_numerators

MEASURES = ("cosine", "jaccard", "dice")


def random_graph(rng, num_vertices, edge_probability, *, weighted=False):
    """Erdős–Rényi-style graph (optionally with random positive weights)."""
    upper = np.triu(rng.random((num_vertices, num_vertices)) < edge_probability, k=1)
    edge_u, edge_v = np.nonzero(upper)
    edges = np.stack([edge_u, edge_v], axis=1)
    weights = 0.1 + rng.random(edges.shape[0]) if weighted else None
    return from_edge_list(edges, num_vertices=num_vertices, weights=weights)


def star_graph(num_leaves):
    return from_edge_list([(0, i) for i in range(1, num_leaves + 1)])


class TestAgreesWithReferenceBackends:
    @pytest.mark.parametrize("measure", MEASURES)
    @pytest.mark.parametrize("seed", range(5))
    def test_random_unweighted_graphs(self, measure, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(rng, int(rng.integers(2, 60)), float(rng.uniform(0.05, 0.5)))
        batch = compute_similarities(graph, measure=measure, backend="batch")
        merge = compute_similarities(graph, measure=measure, backend="merge")
        hashed = compute_similarities(graph, measure=measure, backend="hash")
        np.testing.assert_allclose(batch.values, merge.values, atol=1e-9, rtol=0)
        np.testing.assert_allclose(batch.values, hashed.values, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_weighted_graphs_cosine(self, seed):
        rng = np.random.default_rng(100 + seed)
        graph = random_graph(
            rng, int(rng.integers(2, 50)), float(rng.uniform(0.1, 0.5)), weighted=True
        )
        batch = compute_similarities(graph, backend="batch")
        merge = compute_similarities(graph, backend="merge")
        hashed = compute_similarities(graph, backend="hash")
        np.testing.assert_allclose(batch.values, merge.values, atol=1e-9, rtol=0)
        np.testing.assert_allclose(batch.values, hashed.values, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("measure", MEASURES)
    def test_empty_graph(self, measure):
        similarities = compute_similarities(empty_graph(4), measure=measure, backend="batch")
        assert len(similarities) == 0

    @pytest.mark.parametrize("measure", MEASURES)
    def test_star_graph(self, measure):
        graph = star_graph(20)
        batch = compute_similarities(graph, measure=measure, backend="batch")
        merge = compute_similarities(graph, measure=measure, backend="merge")
        np.testing.assert_allclose(batch.values, merge.values, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("measure", MEASURES)
    def test_clique(self, measure):
        graph = complete_graph(7)
        batch = compute_similarities(graph, measure=measure, backend="batch")
        assert np.allclose(batch.values, 1.0)

    def test_single_edge(self):
        graph = from_edge_list([(0, 1)])
        batch = compute_similarities(graph, backend="batch")
        merge = compute_similarities(graph, backend="merge")
        np.testing.assert_allclose(batch.values, merge.values, atol=1e-9, rtol=0)

    def test_edgeless_vertices_graph(self):
        graph = from_edge_list([(0, 1), (1, 2)], num_vertices=10)
        batch = compute_similarities(graph, backend="batch")
        merge = compute_similarities(graph, backend="merge")
        np.testing.assert_allclose(batch.values, merge.values, atol=1e-9, rtol=0)


class TestChunking:
    @pytest.mark.parametrize("chunk_pairs", [1, 3, 17, 1 << 22])
    def test_chunk_size_does_not_change_results(self, community_graph, chunk_pairs):
        reference = batch_numerators(community_graph, Scheduler())
        chunked = batch_numerators(community_graph, Scheduler(), chunk_pairs=chunk_pairs)
        np.testing.assert_array_equal(reference, chunked)

    def test_invalid_chunk_size_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            batch_numerators(triangle_graph, Scheduler(), chunk_pairs=0)


class TestCostModel:
    def test_charges_identical_to_merge(self, community_graph, weighted_graph):
        for graph in (community_graph, weighted_graph):
            batch_scheduler, merge_scheduler = Scheduler(), Scheduler()
            compute_similarities(graph, backend="batch", scheduler=batch_scheduler)
            compute_similarities(graph, backend="merge", scheduler=merge_scheduler)
            assert batch_scheduler.counter.work == merge_scheduler.counter.work
            assert batch_scheduler.counter.span == merge_scheduler.counter.span

    def test_span_stays_logarithmic(self, community_graph):
        scheduler = Scheduler()
        compute_similarities(community_graph, backend="batch", scheduler=scheduler)
        assert scheduler.counter.span < scheduler.counter.work / 50


class TestSubsetNumerators:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_full_batch_on_subset(self, seed):
        rng = np.random.default_rng(200 + seed)
        graph = random_graph(rng, 40, 0.2, weighted=bool(seed % 2))
        full = batch_numerators(graph, Scheduler())
        subset = rng.choice(graph.num_edges, size=graph.num_edges // 2, replace=False)
        partial = edge_numerators_for_subset(graph, subset, Scheduler())
        np.testing.assert_allclose(partial, full[subset], atol=1e-9, rtol=0)

    def test_empty_subset(self, community_graph):
        result = edge_numerators_for_subset(
            community_graph, np.zeros(0, dtype=np.int64), Scheduler()
        )
        assert result.shape == (0,)


class TestProbeStrategies:
    """Both membership-probe strategies must agree exactly (see module doc)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_bounded_and_global_probes_agree(self, seed):
        rng = np.random.default_rng(300 + seed)
        graph = random_graph(rng, 35, 0.25, weighted=bool(seed % 2))
        bounded = batch_numerators(graph, Scheduler(), probe="bounded")
        global_probe = batch_numerators(graph, Scheduler(), probe="global")
        np.testing.assert_array_equal(bounded, global_probe)

    @pytest.mark.parametrize("seed", range(2))
    def test_subset_probes_agree(self, seed):
        rng = np.random.default_rng(400 + seed)
        graph = random_graph(rng, 30, 0.3, weighted=False)
        subset = rng.choice(graph.num_edges, size=graph.num_edges // 2, replace=False)
        bounded = edge_numerators_for_subset(graph, subset, Scheduler(), probe="bounded")
        global_probe = edge_numerators_for_subset(
            graph, subset, Scheduler(), probe="global"
        )
        np.testing.assert_array_equal(bounded, global_probe)

    def test_unknown_probe_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            batch_numerators(triangle_graph, Scheduler(), probe="psychic")

    def test_auto_resolves_by_segment_length(self):
        from repro.similarity.batch import resolve_probe

        assert resolve_probe("auto", 2) == "bounded"
        assert resolve_probe("auto", 1000) == "global"
        assert resolve_probe("bounded", 1000) == "bounded"
        assert resolve_probe("global", 2) == "global"
