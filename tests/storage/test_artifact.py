"""Tests for the columnar index artifact: round-trips and error paths."""

import json

import numpy as np
import pytest

from repro import ApproximationConfig, ArtifactFormatError, IndexArtifact, ScanIndex
from repro.graphs import from_edge_list, paper_example_graph, planted_partition
from repro.storage.format import COLUMNS_FILE, FORMAT_VERSION, HEADER_FILE


def random_parameter_grid(rng, max_mu, count=20):
    """A randomized (mu, epsilon) grid with repeated epsilons."""
    mus = rng.integers(2, max_mu + 2, size=count)
    epsilons = rng.choice(np.round(np.linspace(0.05, 0.95, 10), 4), size=count)
    return [(int(mu), float(eps)) for mu, eps in zip(mus, epsilons)]


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_columns_byte_identical_after_round_trip(self, tmp_path, seed):
        graph = planted_partition(4, 20, p_intra=0.4, p_inter=0.03, seed=seed)
        index = ScanIndex.build(graph)
        original = IndexArtifact.from_index(index)
        original.save(tmp_path / "a")
        loaded = IndexArtifact.load(tmp_path / "a")
        assert set(loaded.columns) == set(original.columns)
        for name, column in original.columns.items():
            stored = np.asarray(loaded.columns[name])
            assert stored.dtype == column.dtype, name
            assert stored.tobytes() == column.tobytes(), name

    @pytest.mark.parametrize("seed", [3, 4])
    def test_identical_clusterings_on_random_grid(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        graph = planted_partition(5, 18, p_intra=0.45, p_inter=0.02, seed=seed)
        index = ScanIndex.build(graph)
        index.save(tmp_path / "a")
        loaded = ScanIndex.load(tmp_path / "a")
        for mu, epsilon in random_parameter_grid(rng, graph.max_degree + 1):
            ours = index.query(mu, epsilon, deterministic_borders=True)
            theirs = loaded.query(mu, epsilon, deterministic_borders=True)
            assert np.array_equal(ours.labels, theirs.labels)
            assert np.array_equal(ours.core_mask, theirs.core_mask)

    def test_weighted_graph_round_trip(self, tmp_path, weighted_graph):
        index = ScanIndex.build(weighted_graph)
        index.save(tmp_path / "w")
        loaded = ScanIndex.load(tmp_path / "w")
        assert loaded.graph.is_weighted
        assert np.allclose(loaded.graph.arc_weights, weighted_graph.arc_weights)
        a = index.query(2, 0.3, deterministic_borders=True)
        b = loaded.query(2, 0.3, deterministic_borders=True)
        assert np.array_equal(a.labels, b.labels)

    def test_approximate_index_round_trip(self, tmp_path, community_graph):
        index = ScanIndex.build(
            community_graph,
            approximate=ApproximationConfig(num_samples=32, degree_threshold=4),
        )
        index.save(tmp_path / "approx")
        loaded = ScanIndex.load(tmp_path / "approx")
        assert loaded.measure == "approx_cosine"
        assert loaded.similarities.backend == "lsh"
        a = index.query(3, 0.5, deterministic_borders=True)
        b = loaded.query(3, 0.5, deterministic_borders=True)
        assert np.array_equal(a.labels, b.labels)

    def test_metadata_preserved(self, tmp_path, paper_graph):
        index = ScanIndex.build(paper_graph, measure="jaccard", backend="hash")
        index.save(tmp_path / "meta")
        loaded = ScanIndex.load(tmp_path / "meta")
        assert loaded.measure == "jaccard"
        assert loaded.similarities.backend == "hash"
        assert loaded.construction_report.work == index.construction_report.work
        assert loaded.construction_report.span == index.construction_report.span

    def test_columns_are_memory_mapped(self, tmp_path, paper_graph):
        ScanIndex.build(paper_graph).save(tmp_path / "m")
        loaded = ScanIndex.load(tmp_path / "m")
        assert isinstance(loaded.neighbor_order.neighbors, np.memmap)
        assert isinstance(loaded.core_order.thresholds, np.memmap)

    def test_memmapped_columns_are_aligned(self, tmp_path, paper_graph):
        """Every mmapped column sits on the writer's alignment boundary.

        The zip layout would otherwise put npy payloads at arbitrary file
        offsets, and unaligned memmaps make ``np.take(out=...)`` silently
        copy the whole column per gather -- the serving tier's recycled
        buffers depend on this alignment to stay allocation-free.
        """
        from repro.storage.format import COLUMN_ALIGNMENT

        ScanIndex.build(paper_graph).save(tmp_path / "al")
        loaded = ScanIndex.load(tmp_path / "al")
        for column in (
            loaded.neighbor_order.neighbors,
            loaded.neighbor_order.similarities,
            loaded.neighbor_order.indptr,
            loaded.core_order.thresholds,
        ):
            address = column.__array_interface__["data"][0]
            assert address % COLUMN_ALIGNMENT == 0
            assert column.flags.aligned

    def test_load_without_mmap(self, tmp_path, paper_graph):
        index = ScanIndex.build(paper_graph)
        index.save(tmp_path / "nm")
        loaded = ScanIndex.load(tmp_path / "nm", mmap_mode=None)
        assert not isinstance(loaded.neighbor_order.neighbors, np.memmap)
        a = loaded.query(3, 0.6)
        assert a.num_clusters == 2

    def test_empty_graph_round_trip(self, tmp_path):
        index = ScanIndex.build(from_edge_list([], num_vertices=4))
        index.save(tmp_path / "e")
        loaded = ScanIndex.load(tmp_path / "e")
        assert loaded.graph.num_vertices == 4
        assert loaded.query(2, 0.5).num_clusters == 0


class TestNoRecomputationOnLoad:
    def test_load_path_never_computes_similarities_or_sorts(
        self, tmp_path, paper_graph, monkeypatch
    ):
        index = ScanIndex.build(paper_graph)
        index.save(tmp_path / "a")

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("load path must not recompute this")

        monkeypatch.setattr("repro.similarity.exact.compute_similarities", forbidden)
        monkeypatch.setattr(
            "repro.core.neighbor_order.build_neighbor_order", forbidden
        )
        monkeypatch.setattr("repro.core.core_order.build_core_order", forbidden)
        monkeypatch.setattr("repro.parallel.sorting.segmented_sort_by_key", forbidden)
        loaded = ScanIndex.load(tmp_path / "a")
        clustering = loaded.query(3, 0.6, deterministic_borders=True)
        assert clustering.num_clusters == 2
        batched = loaded.query_many([(3, 0.6), (2, 0.5)])
        assert batched[0].num_clusters == 2


class TestErrorPaths:
    @pytest.fixture
    def saved(self, tmp_path, paper_graph):
        path = tmp_path / "artifact"
        ScanIndex.build(paper_graph).save(path)
        return path

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ArtifactFormatError, match="not an index artifact"):
            ScanIndex.load(tmp_path / "nope")

    def test_corrupt_header_json(self, saved):
        (saved / HEADER_FILE).write_text("{not json")
        with pytest.raises(ArtifactFormatError, match="corrupt header"):
            ScanIndex.load(saved)

    def test_version_mismatch(self, saved):
        header = json.loads((saved / HEADER_FILE).read_text())
        header["version"] = FORMAT_VERSION + 1
        (saved / HEADER_FILE).write_text(json.dumps(header))
        with pytest.raises(ArtifactFormatError, match="version"):
            ScanIndex.load(saved)

    def test_wrong_format_name(self, saved):
        header = json.loads((saved / HEADER_FILE).read_text())
        header["format"] = "something-else"
        (saved / HEADER_FILE).write_text(json.dumps(header))
        with pytest.raises(ArtifactFormatError, match="unrecognised artifact format"):
            ScanIndex.load(saved)

    def test_missing_required_field(self, saved):
        header = json.loads((saved / HEADER_FILE).read_text())
        del header["measure"]
        (saved / HEADER_FILE).write_text(json.dumps(header))
        with pytest.raises(ArtifactFormatError, match="missing required field"):
            ScanIndex.load(saved)

    def test_missing_columns_file(self, saved):
        (saved / COLUMNS_FILE).unlink()
        with pytest.raises(ArtifactFormatError, match="not an index artifact"):
            ScanIndex.load(saved)

    def test_corrupt_columns_archive(self, saved):
        (saved / COLUMNS_FILE).write_bytes(b"garbage, not a zip")
        with pytest.raises(ArtifactFormatError, match="corrupt column archive"):
            ScanIndex.load(saved)

    def test_header_column_length_mismatch(self, saved):
        header = json.loads((saved / HEADER_FILE).read_text())
        header["columns"]["no_neighbors"]["length"] += 1
        (saved / HEADER_FILE).write_text(json.dumps(header))
        with pytest.raises(ArtifactFormatError, match="length"):
            ScanIndex.load(saved)

    def test_graph_shape_mismatch(self, saved):
        header = json.loads((saved / HEADER_FILE).read_text())
        header["num_edges"] += 1
        (saved / HEADER_FILE).write_text(json.dumps(header))
        with pytest.raises(ArtifactFormatError):
            ScanIndex.load(saved)

    def test_unknown_stored_column(self, saved):
        import io
        import zipfile

        buffer = io.BytesIO()
        np.lib.format.write_array(buffer, np.arange(3, dtype=np.int64))
        with zipfile.ZipFile(saved / COLUMNS_FILE, "a") as archive:
            archive.writestr("foreign.npy", buffer.getvalue())
        with pytest.raises(ArtifactFormatError, match="unknown column"):
            ScanIndex.load(saved)

    def test_resave_over_existing_artifact(self, saved, community_graph):
        # A later index can re-save over the same path; the swap is staged so
        # the directory is never a mix of old header and new columns.
        other = ScanIndex.build(community_graph, measure="jaccard")
        other.save(saved)
        loaded = ScanIndex.load(saved)
        assert loaded.measure == "jaccard"
        assert loaded.graph.num_vertices == community_graph.num_vertices
