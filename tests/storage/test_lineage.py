"""Tests for format version 2: update lineage and numerator persistence."""

import json

import numpy as np
import pytest

from repro import ArtifactFormatError, ScanIndex
from repro.graphs import from_edge_list, planted_partition
from repro.storage.format import FORMAT_VERSION, HEADER_FILE, SUPPORTED_VERSIONS


@pytest.fixture()
def index():
    graph = planted_partition(3, 15, p_intra=0.5, p_inter=0.04, seed=8)
    return ScanIndex.build(graph)


class TestLineageRoundTrip:
    def test_fresh_index_saves_empty_lineage(self, index, tmp_path):
        index.save(tmp_path / "a")
        header = json.loads((tmp_path / "a" / HEADER_FILE).read_text())
        assert header["version"] == FORMAT_VERSION
        assert header["updates"] == []
        assert ScanIndex.load(tmp_path / "a").update_lineage == []

    def test_lineage_survives_save_load_update_save(self, index, tmp_path):
        index.apply_updates(insertions=[(0, 44)])
        index.save(tmp_path / "a")
        loaded = ScanIndex.load(tmp_path / "a")
        assert len(loaded.update_lineage) == 1
        assert loaded.update_lineage[0]["insertions"] == 1
        loaded.apply_updates(deletions=[(0, 44)])
        loaded.save(tmp_path / "b")
        header = json.loads((tmp_path / "b" / HEADER_FILE).read_text())
        assert [r["deletions"] for r in header["updates"]] == [0, 1]

    def test_numerators_persist_and_feed_updates_after_load(self, index, tmp_path):
        index.save(tmp_path / "a")
        loaded = ScanIndex.load(tmp_path / "a")
        assert loaded.similarities.numerators is not None
        assert np.array_equal(
            np.asarray(loaded.similarities.numerators),
            np.asarray(index.similarities.numerators),
        )
        loaded.apply_updates(insertions=[(0, 44)])
        edges = list(zip(*[a.tolist() for a in index.graph.edge_list()]))
        rebuilt = ScanIndex.build(
            from_edge_list(edges + [(0, 44)], num_vertices=index.graph.num_vertices)
        )
        assert np.array_equal(
            np.asarray(loaded.similarities.numerators),
            rebuilt.similarities.numerators,
        )


class TestVersionCompatibility:
    def _rewrite_header(self, path, mutate):
        header = json.loads((path / HEADER_FILE).read_text())
        mutate(header)
        (path / HEADER_FILE).write_text(json.dumps(header))

    def test_version_one_artifacts_still_load(self, index, tmp_path):
        """A pre-lineage artifact (version 1, no updates/numerators) loads."""
        index.similarities.numerators = None    # what a v1 writer stored
        index.save(tmp_path / "a")

        def downgrade(header):
            header["version"] = 1
            del header["updates"]
            assert "edge_numerators" not in header["columns"]

        self._rewrite_header(tmp_path / "a", downgrade)
        loaded = ScanIndex.load(tmp_path / "a")
        assert loaded.update_lineage == []
        assert loaded.similarities.numerators is None
        assert np.array_equal(
            loaded.query(2, 0.5).labels, index.query(2, 0.5).labels
        )

    def test_future_versions_rejected(self, index, tmp_path):
        index.save(tmp_path / "a")
        self._rewrite_header(
            tmp_path / "a", lambda h: h.update(version=max(SUPPORTED_VERSIONS) + 1)
        )
        with pytest.raises(ArtifactFormatError, match="version"):
            ScanIndex.load(tmp_path / "a")

    def test_malformed_lineage_rejected(self, index, tmp_path):
        index.save(tmp_path / "a")
        self._rewrite_header(tmp_path / "a", lambda h: h.update(updates="yes"))
        with pytest.raises(ArtifactFormatError, match="updates"):
            ScanIndex.load(tmp_path / "a")
