"""Tests for artifact durability (``repro.storage.integrity``).

Checksums, the verify report, stale-scratch detection and cleanup, and
lineage-checked recovery from a commit that died between its renames.  The
randomized crash-window sweeps live in
``tests/property/test_property_faults.py``; here each mechanism is pinned
down deterministically.
"""

import json
import os
import shutil

import numpy as np
import pytest

from repro import ScanIndex
from repro.graphs import from_edge_list, paper_example_graph
from repro.storage import (
    ArtifactIntegrityError,
    IndexArtifact,
    clean_stale_scratch,
    recover_artifact,
    verify_artifact,
)
from repro.storage.format import COLUMNS_FILE, HEADER_FILE
from repro.storage.integrity import (
    backup_path,
    column_checksum,
    find_backups,
    find_scratch,
    is_stale,
    scratch_path,
    verify_checksums,
)

#: A pid that exists on every Linux box and is never ours: init.
LIVE_FOREIGN_PID = 1
#: A pid far above any default pid_max, hence guaranteed dead.
DEAD_PID = 2**22 + 12345


@pytest.fixture
def index():
    return ScanIndex.build(paper_example_graph(), measure="cosine")


@pytest.fixture
def saved(tmp_path, index):
    path = tmp_path / "paper.scanidx"
    index.save(path)
    return path


# ----------------------------------------------------------------------
# Checksums
# ----------------------------------------------------------------------
class TestChecksums:
    def test_checksum_is_stable_and_byte_sensitive(self):
        column = np.arange(100, dtype=np.int64)
        assert column_checksum(column) == column_checksum(column.copy())
        flipped = column.copy()
        flipped[50] ^= 1
        assert column_checksum(column) != column_checksum(flipped)

    def test_header_records_a_checksum_per_column(self, index):
        artifact = IndexArtifact.from_index(index)
        for name, spec in artifact.meta["columns"].items():
            assert spec["crc32"] == column_checksum(artifact.columns[name])

    def test_verify_checksums_counts_and_passes(self, saved):
        artifact = IndexArtifact.load(saved)
        checked = verify_checksums(artifact.meta, artifact.columns)
        assert checked == len(artifact.columns)

    def test_verify_checksums_raises_on_mismatch(self, saved):
        artifact = IndexArtifact.load(saved, mmap_mode=None)
        artifact.columns["co_vertices"][0] += 1
        with pytest.raises(ArtifactIntegrityError, match="co_vertices"):
            verify_checksums(artifact.meta, artifact.columns)

    def test_pre_checksum_headers_check_zero_columns(self, saved):
        artifact = IndexArtifact.load(saved)
        for spec in artifact.meta["columns"].values():
            spec.pop("crc32")
        assert verify_checksums(artifact.meta, artifact.columns) == 0


# ----------------------------------------------------------------------
# verify_artifact and its report
# ----------------------------------------------------------------------
class TestVerifyArtifact:
    def test_fast_report(self, saved):
        report = verify_artifact(saved)
        assert report.version == 3
        assert report.checksums_recorded == report.num_columns
        assert report.checksums_checked == 0 and not report.deep
        assert report.stale_scratch == [] and report.recovered is None
        assert any("fast mode" in line for line in report.lines())

    def test_deep_report(self, saved):
        report = verify_artifact(saved, deep=True)
        assert report.deep
        assert report.checksums_checked == report.num_columns
        assert any("verified against stored bytes" in line
                   for line in report.lines())

    def test_deep_verify_catches_flipped_byte_fast_check_misses(self, saved):
        # Flip one payload byte inside the archive: dtypes and lengths still
        # parse, so the fast check passes -- only the checksum knows.
        archive = saved / COLUMNS_FILE
        data = bytearray(archive.read_bytes())
        data[len(data) // 2] ^= 0xFF
        archive.write_bytes(data)
        verify_artifact(saved)  # fast: structure is intact
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            verify_artifact(saved, deep=True)

    def test_load_verify_flag_runs_the_deep_check(self, saved):
        archive = saved / COLUMNS_FILE
        data = bytearray(archive.read_bytes())
        data[len(data) // 2] ^= 0xFF
        archive.write_bytes(data)
        ScanIndex.load(saved)  # fast check only: loads
        with pytest.raises(ArtifactIntegrityError):
            ScanIndex.load(saved, verify=True)

    def test_report_lists_stale_scratch(self, saved):
        scratch_path(saved, pid=DEAD_PID).mkdir()
        report = verify_artifact(saved)
        assert report.stale_scratch == [f".paper.scanidx.tmp-{DEAD_PID}"]
        assert any("stale scratch" in line and "dead writers" in line
                   for line in report.lines())


# ----------------------------------------------------------------------
# Stale scratch detection and cleanup
# ----------------------------------------------------------------------
class TestStaleScratch:
    def test_dead_and_own_pid_are_stale_live_foreign_is_not(self, saved):
        dead = scratch_path(saved, pid=DEAD_PID)
        own = scratch_path(saved, pid=os.getpid())
        live = scratch_path(saved, pid=LIVE_FOREIGN_PID)
        for sibling in (dead, own, live):
            sibling.mkdir()
        assert is_stale(dead) and is_stale(own) and not is_stale(live)

    def test_clean_stale_scratch_spares_live_writers_and_backups(self, saved):
        dead = scratch_path(saved, pid=DEAD_PID)
        live = scratch_path(saved, pid=LIVE_FOREIGN_PID)
        backup = backup_path(saved, pid=DEAD_PID)
        for sibling in (dead, live, backup):
            sibling.mkdir()
        removed = clean_stale_scratch(saved)
        assert removed == [dead]
        assert not dead.exists() and live.exists() and backup.exists()

    def test_next_save_sweeps_leftover_scratch(self, saved, index):
        # The crash-recovery path operators actually hit: a writer died
        # mid-stage, its scratch lingers, the next save must not trip on it.
        dead = scratch_path(saved, pid=DEAD_PID)
        dead.mkdir()
        (dead / HEADER_FILE).write_text("{torn")
        index.save(saved)
        assert not dead.exists()
        assert find_scratch(saved) == []

    def test_completed_commit_sweeps_dead_backups_too(self, saved, index):
        stale_backup = backup_path(saved, pid=DEAD_PID)
        stale_backup.mkdir()
        index.save(saved)
        assert not stale_backup.exists()
        assert find_backups(saved) == []


# ----------------------------------------------------------------------
# Recovery from a commit that died between its renames
# ----------------------------------------------------------------------
def _park_backup(saved, pid=DEAD_PID):
    """Reproduce the pre_swap crash window: target gone, old parked."""
    backup = backup_path(saved, pid=pid)
    os.replace(saved, backup)
    return backup


class TestRecovery:
    def test_noop_when_target_exists(self, saved):
        assert recover_artifact(saved) is None

    def test_noop_when_nothing_is_parked(self, tmp_path):
        assert recover_artifact(tmp_path / "never-saved.scanidx") is None

    def test_rolls_back_parked_backup(self, saved, index):
        expected = IndexArtifact.load(saved, mmap_mode=None)
        _park_backup(saved)
        assert recover_artifact(saved) == "rolled-back"
        assert saved.is_dir() and find_backups(saved) == []
        restored = IndexArtifact.load(saved)
        for name, column in expected.columns.items():
            assert np.array_equal(column, restored.columns[name])

    def test_load_recovers_transparently(self, saved):
        _park_backup(saved)
        loaded = ScanIndex.load(saved)  # no special handling by the caller
        assert loaded.graph.num_vertices == paper_example_graph().num_vertices

    def test_unverifiable_backup_refused(self, saved):
        backup = _park_backup(saved)
        (backup / HEADER_FILE).write_text("{torn")
        with pytest.raises(ArtifactIntegrityError, match="does not verify"):
            recover_artifact(saved)
        assert backup.exists()  # refusal must not destroy the evidence

    def test_non_ancestor_backup_refused(self, saved):
        # The parked dir's lineage is NOT a prefix of the interrupted
        # scratch's lineage: whatever is parked there, it is not the state
        # the dying writer was replacing.  Rolling it back would resurrect
        # an unrelated artifact under this name.
        backup = _park_backup(saved)
        scratch = scratch_path(saved, pid=DEAD_PID)
        shutil.copytree(backup, scratch)
        header = json.loads((scratch / HEADER_FILE).read_text())
        header["updates"] = [{"batch": 0, "kind": "unrelated"}]
        backup_header = json.loads((backup / HEADER_FILE).read_text())
        backup_header["updates"] = [{"batch": 0, "kind": "other-history"}]
        (backup / HEADER_FILE).write_text(json.dumps(backup_header))
        (scratch / HEADER_FILE).write_text(json.dumps(header))
        # keep the backup loadable: lineage lives only in the header, and
        # header bytes are not checksummed column payload
        with pytest.raises(ArtifactIntegrityError, match="not the\n?.*ancestor"):
            recover_artifact(saved)
        assert backup.exists()

    def test_prefix_lineage_scratch_allows_rollback(self, saved):
        backup = _park_backup(saved)
        scratch = scratch_path(saved, pid=DEAD_PID)
        shutil.copytree(backup, scratch)
        header = json.loads((scratch / HEADER_FILE).read_text())
        header["updates"] = list(header.get("updates", [])) + [
            {"batch": 1, "kind": "insert"}
        ]
        (scratch / HEADER_FILE).write_text(json.dumps(header))
        assert recover_artifact(saved) == "rolled-back"
        assert find_scratch(saved) == []  # recovery sweeps the dead scratch

    def test_live_writer_backup_left_alone(self, saved):
        # A backup owned by a live foreign pid is a commit in flight, not a
        # death: recovery must keep its hands off.
        _park_backup(saved, pid=LIVE_FOREIGN_PID)
        assert recover_artifact(saved) is None
