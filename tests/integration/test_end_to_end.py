"""Integration tests: full pipelines across the library's subsystems."""

import numpy as np
import pytest

from repro import ApproximationConfig, ScanIndex
from repro.baselines import GsStarIndex, pscan_clustering, scan_clustering
from repro.graphs import (
    planted_partition,
    planted_partition_labels,
    read_adjacency,
    write_adjacency,
)
from repro.lsh import minhash_required_samples, minhash_uncertainty_interval
from repro.parallel import Scheduler
from repro.quality import adjusted_rand_index, best_clustering, modularity


@pytest.fixture(scope="module")
def social_graph():
    return planted_partition(6, 40, p_intra=0.35, p_inter=0.005, seed=17)


@pytest.fixture(scope="module")
def ground_truth():
    return planted_partition_labels(6, 40)


@pytest.fixture(scope="module")
def index(social_graph):
    return ScanIndex.build(social_graph)


class TestCommunityRecovery:
    def test_index_sweep_recovers_planted_communities(self, index, social_graph, ground_truth):
        clustering, best = best_clustering(index, epsilon_step=0.1)
        assert best.modularity > 0.5
        assert adjusted_rand_index(clustering, ground_truth) > 0.9
        assert modularity(social_graph, clustering) == pytest.approx(best.modularity)

    def test_all_algorithms_agree_on_cores(self, index, social_graph):
        mu, epsilon = 4, 0.25
        from_index = index.query(mu, epsilon)
        from_scan = scan_clustering(social_graph, mu, epsilon, similarities=index.similarities)
        from_gs = GsStarIndex.build(social_graph).query(mu, epsilon)
        from_pscan = pscan_clustering(social_graph, mu, epsilon).clustering
        for other in (from_scan, from_gs, from_pscan):
            assert np.array_equal(from_index.core_mask, other.core_mask)

    def test_approximate_index_recovers_same_communities(self, social_graph, index, ground_truth):
        approx_index = ScanIndex.build(
            social_graph,
            approximate=ApproximationConfig(num_samples=256, seed=3, degree_threshold=4),
        )
        clustering, _ = best_clustering(approx_index, epsilon_step=0.1)
        assert adjusted_rand_index(clustering, ground_truth) > 0.85


class TestTheoremGuidedApproximation:
    def test_theorem_53_sample_count_classifies_edges_correctly(self, social_graph):
        # Pick epsilon/delta, take the Theorem 5.3 sample count, and check that
        # every edge outside the uncertainty interval lands on the correct side
        # of the threshold (standard MinHash, no heuristic fallback).
        epsilon, delta = 0.5, 0.2
        k = minhash_required_samples(
            social_graph.num_vertices, social_graph.num_edges, delta
        )
        exact = ScanIndex.build(social_graph, measure="jaccard").similarities
        approx = ScanIndex.build(
            social_graph,
            measure="jaccard",
            approximate=ApproximationConfig(
                measure="jaccard",
                num_samples=k,
                seed=11,
                use_k_partition_minhash=False,
                degree_threshold=0,
            ),
        ).similarities
        low, high = minhash_uncertainty_interval(epsilon, delta)
        decidable = (exact.values <= low) | (exact.values >= high)
        misclassified = ((exact.values >= epsilon) != (approx.values >= epsilon)) & decidable
        # The theorem promises zero misclassifications w.h.p.; allow a tiny
        # slack for the 1/(nm) failure probability.
        assert int(misclassified.sum()) <= max(1, social_graph.num_edges // 1000)


class TestPersistenceAndCosts:
    def test_clustering_survives_graph_roundtrip(self, tmp_path, social_graph, index):
        path = tmp_path / "social.adj"
        write_adjacency(social_graph, path)
        reloaded = read_adjacency(path)
        rebuilt = ScanIndex.build(reloaded)
        a = index.query(3, 0.3, deterministic_borders=True)
        b = rebuilt.query(3, 0.3, deterministic_borders=True)
        assert a.same_partition_as(b)

    def test_query_cost_scales_with_output_not_graph(self, index):
        # A query returning almost nothing must charge far less work than one
        # returning the whole graph (Theorem 4.3: work proportional to output).
        tiny_output = Scheduler()
        index.query(2, 0.95, scheduler=tiny_output)
        large_output = Scheduler()
        index.query(2, 0.05, scheduler=large_output)
        assert tiny_output.counter.work < large_output.counter.work / 5

    def test_index_amortises_over_many_queries(self, social_graph, index):
        # Simulated cost of 15 index queries plus construction stays below 15
        # pSCAN runs on the same settings (the paper's break-even argument).
        settings = [(mu, eps) for mu in (2, 4, 8) for eps in (0.2, 0.3, 0.4, 0.5, 0.6)]
        index_scheduler = Scheduler()
        ScanIndex.build(social_graph, scheduler=index_scheduler)
        for mu, eps in settings:
            index.query(mu, eps, scheduler=index_scheduler)
        pscan_scheduler = Scheduler()
        for mu, eps in settings:
            pscan_clustering(social_graph, mu, eps, scheduler=pscan_scheduler)
        assert index_scheduler.simulated_time() < pscan_scheduler.simulated_time()
