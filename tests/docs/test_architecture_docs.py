"""Checks that keep docs/ARCHITECTURE.md honest.

The architecture document promises pointers into the code; a rename that
orphans one of them should fail CI, not wait for a confused reader.  These
tests extract every repo-relative path the document references and assert
it exists, and verify the document actually covers every subsystem package
under ``src/repro/``.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
ARCHITECTURE = REPO_ROOT / "docs" / "ARCHITECTURE.md"

#: Backtick-quoted references that name repository files or directories.
_PATH_PATTERN = re.compile(
    r"`((?:src|tests|benchmarks|docs)/[\w./-]*|"
    r"(?:README|ROADMAP|PAPER|PAPERS|CHANGES|SNIPPETS)\.md|BENCH_[\w.]+\.json)`"
)


def referenced_paths() -> set[str]:
    text = ARCHITECTURE.read_text()
    # Multi-line references are wrapped as `src/repro/baselines/\npscan.py`;
    # rejoin before extracting.
    text = text.replace("\n", " ").replace("/ ", "/")
    return set(_PATH_PATTERN.findall(text))


def test_architecture_document_exists_and_is_substantial():
    assert ARCHITECTURE.is_file()
    assert len(ARCHITECTURE.read_text()) > 4000


def test_every_referenced_path_resolves():
    paths = referenced_paths()
    assert len(paths) > 30, "path extraction regressed"
    missing = sorted(p for p in paths if not (REPO_ROOT / p).exists())
    assert not missing, f"ARCHITECTURE.md references missing paths: {missing}"


def test_every_subsystem_package_is_documented():
    text = ARCHITECTURE.read_text()
    packages = sorted(
        child.name
        for child in (REPO_ROOT / "src" / "repro").iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    )
    undocumented = [name for name in packages if f"`{name}/`" not in text]
    assert not undocumented, (
        f"ARCHITECTURE.md lacks a section for subsystems: {undocumented}"
    )


def test_cli_module_is_documented():
    assert "`cli.py`" in ARCHITECTURE.read_text()
