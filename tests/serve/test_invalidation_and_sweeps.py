"""Tests for shared-generation invalidation and sweep cache admission.

Two serving-layer behaviors shipped with the dynamic subsystem:

* generation tokens live in a registry shared by every session over one
  index and are read per request, so ``invalidate()`` on any session --
  or ``ScanIndex.apply_updates`` -- makes *all* of them miss at once;
* ``ClusterSession.query_many`` routes sweep pairs through the result
  cache: hits are materialised from cached payloads, misses run as one
  planned batch and are admitted for later serves.
"""

import numpy as np
import pytest

from repro import ScanIndex
from repro.graphs import planted_partition
from repro.serve import ResultCache


@pytest.fixture()
def index():
    graph = planted_partition(3, 20, p_intra=0.5, p_inter=0.04, seed=6)
    return ScanIndex.build(graph)


class TestSharedInvalidation:
    def test_sibling_sessions_miss_after_one_invalidates(self, index):
        cache = ResultCache(16)
        first = index.session(cache=cache)
        second = index.session(cache=cache)
        first.serve(3, 0.6)
        assert second.serve(3, 0.6).from_cache
        first.invalidate()
        refreshed = second.serve(3, 0.6)
        assert not refreshed.from_cache
        assert np.array_equal(
            refreshed.to_clustering().labels, index.query(3, 0.6).labels
        )

    def test_apply_updates_invalidates_every_open_session(self, index):
        cache = ResultCache(16)
        first = index.session(cache=cache)
        second = index.session(cache=cache)
        private = index.session()
        for session in (first, second, private):
            session.serve(2, 0.4)
        edge_u, edge_v = index.graph.edge_list()
        index.apply_updates(deletions=[(int(edge_u[0]), int(edge_v[0]))])
        cold = index.query(2, 0.4)
        # Pre-update entries are unreachable everywhere: the first serve on
        # each cache misses...
        refreshed = first.serve(2, 0.4)
        assert not refreshed.from_cache
        assert not private.serve(2, 0.4).from_cache
        # ... but the *post-update* entry the first sibling cached is shared
        # (the epoch resync must not burn another generation).
        shared = second.serve(2, 0.4)
        assert shared.from_cache
        assert shared.compact is refreshed.compact
        for session in (first, second, private):
            assert np.array_equal(
                session.serve(2, 0.4).to_clustering().labels, cold.labels
            )

    def test_manual_invalidate_resyncs_sibling_snappers(self, index):
        """invalidate() after an in-place content swap must not leave a
        sibling session ranking ε against the replaced similarity set."""
        from repro.graphs import planted_partition

        cache = ResultCache(16)
        first = index.session(cache=cache)
        second = index.session(cache=cache)
        second.serve(2, 0.4)
        replacement = ScanIndex.build(
            planted_partition(3, 20, p_intra=0.4, p_inter=0.08, seed=17)
        )
        index.graph = replacement.graph
        index.similarities = replacement.similarities
        index.neighbor_order = replacement.neighbor_order
        index.core_order = replacement.core_order
        first.invalidate()
        # The sibling resyncs on its next request: fresh snapper, answers
        # matching the new contents for epsilons across the range.
        for epsilon in (0.3, 0.45, 0.6, 0.778, 0.803):
            served = second.serve(2, epsilon)
            assert np.array_equal(
                served.to_clustering().labels, replacement.query(2, epsilon).labels
            ), epsilon
        assert second.snapper is first.snapper

    def test_manual_invalidate_rekeys_private_caches_too(self, index):
        """invalidate() re-keys every cache bound to the index, so even a
        sibling with its own private cache can never serve pre-swap entries."""
        from repro.graphs import planted_partition

        first = index.session()
        second = index.session()          # separate private cache
        second.serve(2, 0.02)
        replacement = ScanIndex.build(
            planted_partition(2, 10, p_intra=0.6, p_inter=0.1, seed=3)
        )
        index.graph = replacement.graph
        index.similarities = replacement.similarities
        index.neighbor_order = replacement.neighbor_order
        index.core_order = replacement.core_order
        first.invalidate()
        served = second.serve(2, 0.02)    # smaller graph: stale payload would crash
        assert not served.from_cache
        assert np.array_equal(
            served.to_clustering().labels, replacement.query(2, 0.02).labels
        )

    def test_update_refreshes_snapper_boundaries(self, index):
        session = index.session()
        session.serve(2, 0.4)
        before = session.snapper.boundaries
        index.apply_updates(insertions=[(0, 59)])
        session.serve(2, 0.4)
        assert session.snapper.boundaries is not before
        # The refreshed snapper reflects the patched similarity columns.
        assert np.array_equal(
            session.snapper.boundaries,
            np.unique(
                np.concatenate(
                    [
                        np.asarray(index.neighbor_order.similarities),
                        np.asarray(index.core_order.thresholds),
                    ]
                )
            ),
        )


class TestSweepCacheAdmission:
    def test_sweep_results_match_cold_queries(self, index):
        session = index.session()
        pairs = [(2, 0.3), (3, 0.6), (2, 0.3), (5, 0.45), (2, 0.31)]
        for deterministic in (False, True):
            batched = session.query_many(pairs, deterministic_borders=deterministic)
            for (mu, epsilon), clustering in zip(pairs, batched):
                cold = index.query(mu, epsilon, deterministic_borders=deterministic)
                assert np.array_equal(clustering.labels, cold.labels), (mu, epsilon)
                assert np.array_equal(clustering.core_mask, cold.core_mask)

    def test_sweep_admits_entries_serves_hit_afterwards(self, index):
        session = index.session()
        pairs = [(2, 0.3), (3, 0.6), (5, 0.45)]
        session.query_many(pairs, deterministic_borders=True)
        for mu, epsilon in pairs:
            assert session.serve(mu, epsilon, deterministic_borders=True).from_cache

    def test_admitted_payload_is_bit_identical_to_a_cold_serve(self, index):
        warmed = index.session()
        warmed.query_many([(3, 0.6)], deterministic_borders=True)
        from_sweep = warmed.serve(3, 0.6, deterministic_borders=True)
        assert from_sweep.from_cache
        cold = index.session().serve(3, 0.6, deterministic_borders=True)
        assert np.array_equal(from_sweep.vertices, cold.vertices)
        assert np.array_equal(from_sweep.labels, cold.labels)
        assert from_sweep.num_cores == cold.num_cores

    def test_serve_entries_satisfy_later_sweeps(self, index):
        session = index.session()
        session.serve(3, 0.6)
        hits_before = session.cache.stats()["hits"]
        result = session.query_many([(3, 0.6), (3, 0.6)])
        assert session.cache.stats()["hits"] == hits_before + 2
        cold = index.query(3, 0.6)
        for clustering in result:
            assert np.array_equal(clustering.labels, cold.labels)

    def test_epsilons_snapping_together_share_one_planner_slot(self, index):
        session = index.session()
        base = session.serve(3, 0.6)
        nearby = (0.6 + base.snapped_epsilon) / 2.0
        misses_before = session.cache.stats()["misses"]
        batched = session.query_many([(3, 0.6), (3, nearby)])
        # Both pairs hit the entry the serve admitted -- no new misses.
        assert session.cache.stats()["misses"] == misses_before
        assert np.array_equal(batched[0].labels, batched[1].labels)

    def test_validation_errors_still_raise(self, index):
        session = index.session()
        with pytest.raises(ValueError, match="mu"):
            session.query_many([(1, 0.5)])
        with pytest.raises(ValueError, match="epsilon"):
            session.query_many([(2, 1.5)])

    def test_sweep_traffic_counts_in_session_stats(self, index):
        session = index.session()
        session.query_many([(3, 0.6), (2, 0.4), (3, 0.6)])
        stats = session.stats()
        assert stats["served"] == 3
        assert stats["cache_hits"] == 0      # all three missed at lookup time
        session.query_many([(3, 0.6), (2, 0.4)])
        stats = session.stats()
        assert stats["served"] == 5
        assert stats["cache_hits"] == 2
        assert stats["hit_rate"] == pytest.approx(0.4)

    def test_cache_disabled_sweeps_bypass_admission(self, index):
        session = index.session(cache_size=0)
        batched = session.query_many([(2, 0.3), (3, 0.6)])
        assert session.cache is None
        cold = index.query(2, 0.3)
        assert np.array_equal(batched[0].labels, cold.labels)

    def test_empty_sweep(self, index):
        assert index.session().query_many([]) == []
