"""Tests for the bounded LRU result cache and its generation tokens."""

import numpy as np
import pytest

from repro import ScanIndex
from repro.graphs import from_edge_list, paper_example_graph
from repro.serve import ResultCache


class TestLRU:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_get_miss_returns_none(self):
        cache = ResultCache(2)
        assert cache.get("a") is None
        assert cache.misses == 1

    def test_put_get_roundtrip(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1

    def test_eviction_drops_least_recently_used(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")            # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_refreshing_insert_does_not_evict(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)        # refresh, not growth
        assert len(cache) == 2 and cache.evictions == 0
        assert cache.get("a") == 10

    def test_clear(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and "a" not in cache

    def test_stats_snapshot(self):
        cache = ResultCache(3)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        assert cache.stats() == {
            "size": 1, "capacity": 3, "hits": 1, "misses": 1, "evictions": 0,
        }


class TestGenerations:
    def test_tokens_are_never_reused(self):
        cache = ResultCache(4)
        tokens = [cache.new_generation() for _ in range(10)]
        assert len(set(tokens)) == 10

    def test_same_index_sessions_share_cache_entries(self):
        """Workers over one loaded index pool their hits through one cache."""
        cache = ResultCache(8)
        index = ScanIndex.build(paper_example_graph())
        first = index.session(cache=cache)
        second = index.session(cache=cache)
        warmed = first.serve(3, 0.6)
        shared = second.serve(3, 0.6)
        assert shared.from_cache
        assert shared.compact is warmed.compact

    def test_invalidate_propagates_to_sessions_opened_later(self):
        cache = ResultCache(8)
        index = ScanIndex.build(paper_example_graph())
        session = index.session(cache=cache)
        session.serve(3, 0.6)
        session.invalidate()
        late = index.session(cache=cache)
        assert not late.serve(3, 0.6).from_cache

    def test_sessions_sharing_a_cache_never_cross_serve(self):
        """An entry cached for one index is never served for another."""
        cache = ResultCache(8)
        index_a = ScanIndex.build(paper_example_graph())
        index_b = ScanIndex.build(
            from_edge_list([(0, 1), (1, 2), (0, 2), (2, 3)], num_vertices=11)
        )
        session_a = index_a.session(cache=cache)
        session_b = index_b.session(cache=cache)
        result_a = session_a.serve(3, 0.6)
        result_b = session_b.serve(3, 0.6)
        assert not result_b.from_cache
        assert not np.array_equal(
            result_a.to_clustering().labels, result_b.to_clustering().labels
        )

    def test_invalidate_prevents_stale_hits_and_lru_reclaims(self):
        index = ScanIndex.build(paper_example_graph())
        session = index.session(cache_size=4)
        first = session.serve(3, 0.6)
        assert session.serve(3, 0.6).from_cache
        session.invalidate()
        refreshed = session.serve(3, 0.6)
        assert not refreshed.from_cache           # old generation never matches
        assert np.array_equal(first.labels, refreshed.labels)
        # The stale entry still occupies a slot until LRU pressure evicts it.
        for epsilon in (0.1, 0.2, 0.3, 0.4, 0.5):
            session.serve(2, epsilon)
        assert len(session.cache) <= 4
