"""Resilience tests for the concurrent serving tier.

The four contracts of the hardened front end, each driven by the
deterministic fault harness rather than hoped-for failures:

* **deadlines + hedging** -- a wedged worker cannot head-of-line-block its
  affinity bucket: dispatch hedges past it within the request deadline,
  late replies are dropped (never mis-delivered), and the watchdog reaps a
  worker whose oldest request exceeds the supervision timeout;
* **admission control + shedding** -- past the inflight high-water mark or
  a saturated worker queue, the server answers ``error: overloaded
  (shed)`` immediately instead of queueing unboundedly;
* **circuit-breaker recovery** -- a pool that could not be spawned is not
  degraded forever: the background probe respawns it under backoff, a
  canary request gates the half-open phase, and serving returns to full
  fan-out with a ``serve.recovered`` event;
* **graceful drain** -- ``!drain`` (and SIGTERM through the CLI) stops
  accepting, finishes in-flight requests inside the drain deadline, and
  exits cleanly with a final merged metric snapshot.

Plus the satellite contracts: over-long request lines answer an inline
error without killing the connection, the blocking client wraps transport
failures in :class:`ServeClientError` with bounded reconnect-retry for
idempotent lines, and ``!invalidate``/``!stats``/``!metrics`` stay honest
while degraded and across a degrade → recover cycle.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import ScanIndex
from repro.graphs import planted_partition
from repro.parallel.supervise import SupervisionPolicy
from repro.serve import (
    ClusterServer,
    DegradedServingWarning,
    ServeClient,
    ServeClientError,
    route,
    wire,
)
from repro.serve.server import _WorkerHandle
from repro.testing import FaultSpec, inject

SETTINGS = [(2, 0.3), (3, 0.45), (5, 0.6), (8, 0.75), (2, 0.5), (4, 0.35)]

#: Interactive supervision for tests: wedges are declared in well under a
#: second so the watchdog paths run in test time.
FAST_POLICY = SupervisionPolicy(
    task_timeout=0.6, retries=2, backoff_base=0.01, backoff_cap=0.02
)


@pytest.fixture(autouse=True)
def fresh_obs_state():
    """The registry is process-global: without a reset, counters asserted
    here (hedges, sheds, recoveries) would accumulate across tests."""
    from repro import obs

    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = planted_partition(4, 20, p_intra=0.30, p_inter=0.02, seed=7)
    path = tmp_path_factory.mktemp("resilience") / "index.scanidx"
    ScanIndex.build(graph).save(path)
    return path


async def _ask(reader, writer, line: str) -> str:
    writer.write((line + "\n").encode("utf-8"))
    await writer.drain()
    raw = await reader.readline()
    assert raw, "server closed the connection mid-conversation"
    return raw.decode("utf-8").strip()


async def _with_server(artifact, scenario, **server_kwargs):
    server = ClusterServer(artifact, deterministic=True, **server_kwargs)
    host, port = await server.start()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await scenario(server, host, port, reader, writer)
    finally:
        writer.close()
        await server.close()


def _expected_lines(artifact, settings):
    session = ScanIndex.load(artifact).session()
    return [
        wire.strip_cache_field(
            wire.format_response(session.serve(mu, eps, deterministic_borders=True))
        )
        for mu, eps in settings
    ]


def _setting_routed_to(server, worker_index: int, workers: int = 2):
    """A ``(mu, eps)`` from SETTINGS whose affinity worker is ``worker_index``."""
    for mu, eps in SETTINGS:
        if route(mu, server._snapper.rank(eps), workers) == worker_index:
            return mu, eps
    raise AssertionError("no setting routes to that worker")  # pragma: no cover


# ----------------------------------------------------------------------
# Deadlines + hedging
# ----------------------------------------------------------------------
class TestDeadlineHedging:
    def test_wedged_worker_is_hedged_past_then_reaped(self, artifact, tmp_path):
        """A hung affinity worker neither blocks nor strands the request."""

        async def scenario(server, host, port, reader, writer):
            mu, eps = _setting_routed_to(server, 0)
            wedged = server._workers[0]
            started = time.perf_counter()
            response = await _ask(reader, writer, f"{mu}:{eps:g}")
            elapsed = time.perf_counter() - started
            # The watchdog reaps the wedged worker at task_timeout.
            deadline = asyncio.get_running_loop().time() + 5.0
            while (
                server._restarts_count == 0
                and asyncio.get_running_loop().time() < deadline
            ):
                await asyncio.sleep(0.02)
            again = await _ask(reader, writer, f"{mu}:{eps:g}")
            return response, elapsed, again, server._restarts_count, wedged

        spec = FaultSpec(
            site="serve.worker.request", action="hang", task=0,
            times=1, token=str(tmp_path / "wedge"), seconds=30.0,
        )
        with inject(spec):
            response, elapsed, again, restarts, wedged = asyncio.run(
                _with_server(
                    artifact, scenario, workers=2,
                    policy=FAST_POLICY, request_deadline=0.15,
                )
            )
        expected = set(_expected_lines(artifact, SETTINGS))
        assert wire.strip_cache_field(response) in expected
        assert wire.strip_cache_field(again) in expected
        # Served by the hedge well under the 30 s wedge.
        assert elapsed < 2.0
        # The wedge was reaped and respawned, not left blocking forever.
        assert restarts >= 1

    def test_late_reply_is_dropped_not_misdelivered(self, artifact, tmp_path):
        """A straggler's answer after a hedge is discarded by request id."""

        async def scenario(server, host, port, reader, writer):
            mu, eps = _setting_routed_to(server, 0)
            response = await _ask(reader, writer, f"{mu}:{eps:g}")
            # Let the straggler finish its 0.4 s nap and write its late
            # reply; id-matching must drop it rather than hand it to the
            # next request.
            await asyncio.sleep(0.7)
            other = await _ask(reader, writer, "5:0.6")
            return response, other, server._late_replies_total.value, \
                server._restarts_count

        spec = FaultSpec(
            site="serve.worker.request", action="hang", task=0,
            times=1, token=str(tmp_path / "nap"), seconds=0.4,
        )
        with inject(spec):
            response, other, late, restarts = asyncio.run(
                _with_server(
                    artifact, scenario, workers=2, request_deadline=0.1,
                )
            )
        expected = set(_expected_lines(artifact, SETTINGS))
        assert wire.strip_cache_field(response) in expected
        assert wire.strip_cache_field(other) in expected
        assert late >= 1
        # A straggler is not a wedge: it answered before task_timeout, so
        # the watchdog must not have killed it.
        assert restarts == 0

    def test_hedge_counter_increments(self, artifact, tmp_path):
        async def scenario(server, host, port, reader, writer):
            mu, eps = _setting_routed_to(server, 0)
            await _ask(reader, writer, f"{mu}:{eps:g}")
            return server._hedges_total.value

        spec = FaultSpec(
            site="serve.worker.request", action="hang", task=0,
            times=1, token=str(tmp_path / "hop"), seconds=0.4,
        )
        with inject(spec):
            hedges = asyncio.run(
                _with_server(artifact, scenario, workers=2, request_deadline=0.1)
            )
        assert hedges >= 1


# ----------------------------------------------------------------------
# Admission control + load shedding
# ----------------------------------------------------------------------
class TestLoadShedding:
    def test_inflight_high_water_mark_sheds(self, artifact, tmp_path):
        """Past max_inflight, the answer is an immediate structured refusal."""

        async def scenario(server, host, port, reader, writer):
            connections = [
                await asyncio.open_connection(host, port) for _ in range(3)
            ]
            try:
                # Request 1 wedges the only worker for 0.5 s; request 2
                # queues behind it; request 3 trips the high-water mark.
                connections[0][1].write(b"5:0.6\n")
                await connections[0][1].drain()
                await asyncio.sleep(0.1)
                connections[1][1].write(b"3:0.45\n")
                await connections[1][1].drain()
                await asyncio.sleep(0.1)
                shed = await _ask(*connections[2], "2:0.3")
                first = (await connections[0][0].readline()).decode().strip()
                second = (await connections[1][0].readline()).decode().strip()
                return shed, first, second, server.stats()
            finally:
                for _, w in connections:
                    w.close()

        spec = FaultSpec(
            site="serve.worker.request", action="hang", task=0,
            times=1, token=str(tmp_path / "busy"), seconds=0.5,
        )
        with inject(spec):
            shed, first, second, stats = asyncio.run(
                _with_server(artifact, scenario, workers=1, max_inflight=2)
            )
        assert shed == wire.format_error("overloaded (shed)")
        expected = set(_expected_lines(artifact, SETTINGS))
        assert wire.strip_cache_field(first) in expected
        assert wire.strip_cache_field(second) in expected
        assert stats["shed_total"] == 1
        assert stats["inflight"] == 0

    def test_saturated_worker_queue_sheds(self, artifact, tmp_path):
        """With every candidate pipe at max depth, dispatch sheds."""

        async def scenario(server, host, port, reader, writer):
            other = await asyncio.open_connection(host, port)
            try:
                other[1].write(b"5:0.6\n")
                await other[1].drain()
                await asyncio.sleep(0.1)  # request 1 lands on the worker pipe
                shed = await _ask(reader, writer, "3:0.45")
                first = (await other[0].readline()).decode().strip()
                return shed, first
            finally:
                other[1].close()

        spec = FaultSpec(
            site="serve.worker.request", action="hang", task=0,
            times=1, token=str(tmp_path / "deep"), seconds=0.5,
        )
        with inject(spec):
            shed, first = asyncio.run(
                _with_server(
                    artifact, scenario, workers=1,
                    max_queue_depth=1, max_inflight=16,
                )
            )
        assert shed == wire.format_error("overloaded (shed)")
        assert wire.strip_cache_field(first) in set(
            _expected_lines(artifact, SETTINGS)
        )

    def test_control_lines_bypass_admission(self, artifact):
        """An overloaded tier must stay observable: !stats always answers."""

        async def scenario(server, host, port, reader, writer):
            server._inflight = server.max_inflight  # simulate saturation
            try:
                stats = json.loads(await _ask(reader, writer, "!stats"))
                shed = await _ask(reader, writer, "5:0.6")
            finally:
                server._inflight = 0
            return stats, shed

        stats, shed = asyncio.run(_with_server(artifact, scenario, workers=1))
        assert stats["workers"] == 1
        assert shed == wire.format_error("overloaded (shed)")


# ----------------------------------------------------------------------
# Circuit-breaker recovery from degraded mode
# ----------------------------------------------------------------------
def _flaky_spawn(monkeypatch, failures: int):
    """Patch _WorkerHandle.spawn to refuse the first ``failures`` calls."""
    real_spawn = _WorkerHandle.spawn
    calls = {"n": 0}

    def spawn(self):
        calls["n"] += 1
        if calls["n"] <= failures:
            raise OSError(f"fork refused by test (call {calls['n']})")
        real_spawn(self)

    monkeypatch.setattr(_WorkerHandle, "spawn", spawn)
    return calls


async def _await_recovery(server, timeout: float = 8.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while server.degraded and asyncio.get_running_loop().time() < deadline:
        await asyncio.sleep(0.02)


class TestCircuitBreakerRecovery:
    def test_degraded_pool_recovers_via_probe(self, artifact, monkeypatch):
        """Degradation is a circuit state: the probe restores full fan-out."""
        _flaky_spawn(monkeypatch, failures=2)

        async def scenario(server, host, port, reader, writer):
            assert server.degraded  # the first spawn attempt was refused
            degraded_reply = await _ask(reader, writer, "3:0.45")
            await _await_recovery(server)
            recovered = not server.degraded
            replies = [
                await _ask(reader, writer, f"{mu}:{eps:g}")
                for mu, eps in SETTINGS
            ]
            stats = json.loads(await _ask(reader, writer, "!stats"))
            return degraded_reply, recovered, replies, stats, \
                server._recovered_total.value

        with pytest.warns(DegradedServingWarning):
            degraded_reply, recovered, replies, stats, recoveries = asyncio.run(
                _with_server(
                    artifact, scenario, workers=2, probe_interval=0.05,
                )
            )
        expected = _expected_lines(artifact, SETTINGS)
        assert wire.strip_cache_field(degraded_reply) in set(expected)
        assert recovered, "the recovery probe never closed the circuit"
        assert [wire.strip_cache_field(r) for r in replies] == expected
        assert recoveries == 1
        assert stats["degraded"] is False
        # Full fan-out restored: the pool, not the fallback, served them.
        assert sum(w["requests"] for w in stats["per_worker"]) == len(SETTINGS)
        assert all(w["alive"] for w in stats["per_worker"])

    def test_probe_fault_site_keeps_circuit_open_then_heals(
        self, artifact, monkeypatch, tmp_path
    ):
        """An armed probe fault pins the circuit open; disarming heals it."""
        _flaky_spawn(monkeypatch, failures=1)

        from repro import obs

        async def scenario(server, host, port, reader, writer):
            assert server.degraded
            replies = [await _ask(reader, writer, "3:0.45") for _ in range(3)]
            await _await_recovery(server)
            probes = obs.counter("serve.probe_attempts_total").value
            return replies, server.degraded, probes, \
                server._recovered_total.value

        spec = FaultSpec(
            site="serve.recovery.probe", action="raise", error="OSError",
            times=2, token=str(tmp_path / "probe"),
        )
        with pytest.warns(DegradedServingWarning):
            with inject(spec):
                replies, degraded, probes, recoveries = asyncio.run(
                    _with_server(
                        artifact, scenario, workers=2, probe_interval=0.05,
                    )
                )
        # Probes 1-2 were blocked by the armed fault, a later one healed.
        assert probes >= 3
        assert not degraded and recoveries == 1
        assert all(
            wire.strip_cache_field(r) in set(_expected_lines(artifact, SETTINGS))
            for r in replies
        )

    def test_spawn_fault_site_drives_degrade_then_recover(self, artifact):
        """The README scenario: injected fork refusals, then a live heal."""

        async def scenario(server, host, port, reader, writer):
            assert server.degraded
            reply = await _ask(reader, writer, "5:0.6")
            await _await_recovery(server)
            return reply, server.degraded

        spec = FaultSpec(site="serve.worker.spawn", action="raise", times=2)
        with pytest.warns(DegradedServingWarning):
            with inject(spec):
                reply, degraded = asyncio.run(
                    _with_server(
                        artifact, scenario, workers=2, probe_interval=0.05,
                    )
                )
        assert not degraded
        assert wire.strip_cache_field(reply) in set(
            _expected_lines(artifact, SETTINGS)
        )

    def test_unspawnable_pool_stays_available_in_process(
        self, artifact, monkeypatch
    ):
        """With spawn permanently broken, serving continues and probes retry."""

        def refuse(self):
            raise OSError("fork refused by test")

        monkeypatch.setattr(_WorkerHandle, "spawn", refuse)

        async def scenario(server, host, port, reader, writer):
            replies = [
                await _ask(reader, writer, f"{mu}:{eps:g}")
                for mu, eps in SETTINGS
            ]
            await asyncio.sleep(0.3)  # let a few probes fail
            from repro import obs

            return replies, server.degraded, \
                obs.counter("serve.probe_attempts_total").value

        with pytest.warns(DegradedServingWarning):
            replies, degraded, probes = asyncio.run(
                _with_server(artifact, scenario, workers=2, probe_interval=0.02)
            )
        assert degraded
        assert probes >= 1
        assert [wire.strip_cache_field(r) for r in replies] == \
            _expected_lines(artifact, SETTINGS)


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestGracefulDrain:
    def test_drain_control_line_stops_accepting_and_shuts_down(self, artifact):
        async def scenario(server, host, port, reader, writer):
            await _ask(reader, writer, "5:0.6")
            ack = await _ask(reader, writer, "!drain")
            await asyncio.wait_for(server._drained.wait(), timeout=5.0)
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)
            return ack, server._workers, server.final_snapshot

        ack, workers, snapshot = asyncio.run(
            _with_server(artifact, scenario, workers=2)
        )
        assert ack.startswith("draining deadline=")
        assert workers == []  # the pool was stopped, not abandoned
        # The final merged snapshot was flushed before the pool died.
        assert snapshot is not None
        assert snapshot["counters"]["serve.requests_total"] == 1
        assert snapshot["counters"]["serve.session.served_total"] == 1
        assert snapshot["counters"]["serve.drains_total"] == 1

    def test_drain_finishes_inflight_requests(self, artifact, tmp_path):
        """A request in flight when the drain starts still gets its answer."""

        async def scenario(server, host, port, reader, writer):
            slow = await asyncio.open_connection(host, port)
            try:
                slow[1].write(b"5:0.6\n")
                await slow[1].drain()
                await asyncio.sleep(0.1)  # the request is now in flight
                ack = await _ask(reader, writer, "!drain")
                answer = (await asyncio.wait_for(
                    slow[0].readline(), timeout=5.0
                )).decode().strip()
                await asyncio.wait_for(server._drained.wait(), timeout=5.0)
                return ack, answer
            finally:
                slow[1].close()

        spec = FaultSpec(
            site="serve.worker.request", action="hang", task=0,
            times=1, token=str(tmp_path / "slow"), seconds=0.4,
        )
        with inject(spec):
            ack, answer = asyncio.run(
                _with_server(
                    artifact, scenario, workers=1, drain_deadline=3.0,
                )
            )
        assert ack.startswith("draining")
        assert wire.strip_cache_field(answer) in set(
            _expected_lines(artifact, SETTINGS)
        )

    def test_sigterm_drains_and_exits_zero(self, artifact):
        """The CLI contract a supervisor relies on: SIGTERM → drain → exit 0."""
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(artifact),
                "--port", "0", "--workers", "2", "--deterministic",
            ],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            host, port = banner.split()[2].split(":")
            responses = []
            with ServeClient(host, int(port), timeout=30.0) as client:
                for mu, eps in SETTINGS:
                    responses.append(client.request(f"{mu}:{eps:g}"))
            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=30.0)
            stderr = process.stderr.read()
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()
        assert returncode == 0, f"SIGTERM drain exited {returncode}: {stderr}"
        assert "drained" in stderr
        assert [wire.strip_cache_field(r) for r in responses] == \
            _expected_lines(artifact, SETTINGS)


# ----------------------------------------------------------------------
# Satellite: over-long request lines
# ----------------------------------------------------------------------
class TestOverlongLine:
    def test_overlong_line_answers_error_and_keeps_connection(self, artifact):
        async def scenario(server, host, port, reader, writer):
            writer.write(b"x" * 200_000 + b"\n")
            await writer.drain()
            lines = []
            # The oversized line may surface as one too-long error plus
            # parse errors for its later chunks; all inline, none fatal.
            for _ in range(8):
                line = (await asyncio.wait_for(
                    reader.readline(), timeout=5.0
                )).decode().strip()
                lines.append(line)
                if not line.startswith(wire.ERROR_PREFIX):
                    break
                writer.write(b"5:0.6\n")
                await writer.drain()
            return lines

        lines = asyncio.run(_with_server(artifact, scenario, workers=1))
        assert lines[0] == wire.format_error("request line too long")
        assert all(
            line.startswith(wire.ERROR_PREFIX) for line in lines[:-1]
        )
        # The connection survived: the follow-up request was answered.
        assert wire.strip_cache_field(lines[-1]) in set(
            _expected_lines(artifact, SETTINGS)
        )


# ----------------------------------------------------------------------
# Satellite: client failure wrapping + bounded retry
# ----------------------------------------------------------------------
class _StubServer(threading.Thread):
    """A scriptable one-shot TCP server for client failure-mode tests.

    ``behaviours`` is one callable per accepted connection; each receives
    the accepted socket and owns it.
    """

    def __init__(self, behaviours):
        super().__init__(daemon=True)
        self.behaviours = list(behaviours)
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]

    def run(self):
        for behaviour in self.behaviours:
            conn, _ = self.listener.accept()
            try:
                behaviour(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
        self.listener.close()


def _slam(conn):
    """Read one line, then close without answering (mid-request reset)."""
    conn.recv(1024)


def _echo_ok(conn):
    reader = conn.makefile("rb")
    while True:
        line = reader.readline()
        if not line:
            return
        conn.sendall(b"mu=5 epsilon=0.6 snapped=0.6 clusters=1 "
                     b"clustered=1 cores=1 cache=miss\n")


def _black_hole(conn):
    """Accept, read, never answer (timeout path)."""
    conn.recv(1024)
    time.sleep(5.0)


class TestServeClientErrors:
    def test_transport_failure_wrapped_with_context(self, artifact):
        stub = _StubServer([_slam])
        stub.start()
        with pytest.raises(ServeClientError) as info:
            with ServeClient("127.0.0.1", stub.port, timeout=5.0) as client:
                client.request("5:0.6")
        error = info.value
        assert error.host == "127.0.0.1" and error.port == stub.port
        assert error.request_line == "5:0.6"
        assert f"127.0.0.1:{stub.port}" in str(error)
        assert "5:0.6" in str(error)
        stub.join(timeout=5.0)

    def test_bounded_reconnect_retry_for_idempotent_requests(self):
        stub = _StubServer([_slam, _echo_ok])
        stub.start()
        with ServeClient("127.0.0.1", stub.port, timeout=5.0,
                         retries=1) as client:
            response = client.request("5:0.6")
        assert response.startswith("mu=5")
        stub.join(timeout=5.0)

    def test_control_lines_are_never_retried(self):
        stub = _StubServer([_slam, _echo_ok])
        stub.start()
        with ServeClient("127.0.0.1", stub.port, timeout=5.0,
                         retries=3) as client:
            with pytest.raises(ServeClientError) as info:
                client.request("!invalidate")
        assert info.value.request_line == "!invalidate"
        stub.join(timeout=5.0)

    def test_timeout_wrapped_with_pending_request(self):
        stub = _StubServer([_black_hole])
        stub.start()
        with pytest.raises(ServeClientError) as info:
            with ServeClient("127.0.0.1", stub.port, timeout=0.2) as client:
                client.request("3:0.45")
        assert info.value.request_line == "3:0.45"

    def test_refused_connection_wrapped(self):
        sacrificial = socket.create_server(("127.0.0.1", 0))
        port = sacrificial.getsockname()[1]
        sacrificial.close()
        with pytest.raises(ServeClientError, match="cannot connect"):
            ServeClient("127.0.0.1", port, timeout=1.0)


# ----------------------------------------------------------------------
# Satellite: control lines under degradation
# ----------------------------------------------------------------------
class TestControlLinesUnderDegradation:
    def test_invalidate_while_degraded_flips_fallback_generation(
        self, artifact, monkeypatch, tmp_path
    ):
        """The generation flip must reach the in-process fallback session."""
        import shutil

        swapped = tmp_path / "index.scanidx"
        shutil.copytree(artifact, swapped)
        graph = ScanIndex.load(swapped).graph
        deletion = (int(graph.edge_u[0]), int(graph.edge_v[0]))
        before = _expected_lines(swapped, [(3, 0.45)])[0]

        def refuse(self):
            raise OSError("fork refused by test")

        monkeypatch.setattr(_WorkerHandle, "spawn", refuse)

        async def scenario(server, host, port, reader, writer):
            stale = await _ask(reader, writer, "3:0.45")
            mutated = ScanIndex.load(swapped)
            mutated.apply_updates(deletions=[deletion])
            mutated.save(swapped)
            ack = await _ask(reader, writer, "!invalidate")
            fresh = await _ask(reader, writer, "3:0.45")
            return stale, ack, fresh, server.generation

        with pytest.warns(DegradedServingWarning):
            stale, ack, fresh, generation = asyncio.run(
                _with_server(swapped, scenario, workers=2, probe_interval=60.0)
            )
        after = _expected_lines(swapped, [(3, 0.45)])[0]
        assert after != before, "test update must change the answer"
        assert ack == "invalidated generation=1" and generation == 1
        assert wire.strip_cache_field(stale) == before
        assert wire.strip_cache_field(fresh) == after

    def test_stats_and_metrics_repeat_stable_across_degrade_recover(
        self, artifact, monkeypatch
    ):
        """Introspection is pure: asking twice never changes the answer."""
        _flaky_spawn(monkeypatch, failures=2)

        async def scenario(server, host, port, reader, writer):
            for mu, eps in SETTINGS[:3]:
                await _ask(reader, writer, f"{mu}:{eps:g}")
            degraded_stats = [
                await _ask(reader, writer, "!stats") for _ in range(2)
            ]
            degraded_metrics = [
                await _ask(reader, writer, "!metrics") for _ in range(2)
            ]
            await _await_recovery(server)
            for mu, eps in SETTINGS[:3]:
                await _ask(reader, writer, f"{mu}:{eps:g}")
            healthy_stats = [
                await _ask(reader, writer, "!stats") for _ in range(2)
            ]
            healthy_metrics = [
                await _ask(reader, writer, "!metrics") for _ in range(2)
            ]
            return degraded_stats, degraded_metrics, healthy_stats, \
                healthy_metrics

        with pytest.warns(DegradedServingWarning):
            degraded_stats, degraded_metrics, healthy_stats, \
                healthy_metrics = asyncio.run(
                    _with_server(
                        artifact, scenario, workers=2, probe_interval=0.05,
                    )
                )
        assert degraded_stats[0] == degraded_stats[1]
        assert degraded_metrics[0] == degraded_metrics[1]
        assert healthy_stats[0] == healthy_stats[1]
        assert healthy_metrics[0] == healthy_metrics[1]
        first = json.loads(degraded_stats[0])
        last = json.loads(healthy_stats[0])
        assert first["degraded"] is True and last["degraded"] is False
        counters = json.loads(healthy_metrics[0])["counters"]
        assert counters["serve.requests_total"] == 6
        assert counters["serve.recovered_total"] == 1
