"""Tests for the ε-snapping layer."""

import numpy as np
import pytest

from repro import ScanIndex
from repro.graphs import paper_example_graph, planted_partition
from repro.serve import EpsilonSnapper


@pytest.fixture(scope="module")
def index():
    return ScanIndex.build(paper_example_graph())


@pytest.fixture(scope="module")
def snapper(index):
    return EpsilonSnapper.from_index(index)


class TestBoundaries:
    def test_boundaries_are_sorted_and_distinct(self, snapper):
        boundaries = snapper.boundaries
        assert np.all(np.diff(boundaries) > 0)
        assert snapper.num_boundaries == boundaries.shape[0]

    def test_boundaries_are_frozen(self, snapper):
        with pytest.raises(ValueError):
            snapper.boundaries[0] = 0.5

    def test_boundaries_cover_both_orders(self, index, snapper):
        stored = set(np.unique(index.neighbor_order.similarities).tolist())
        stored |= set(np.unique(index.core_order.thresholds).tolist())
        assert set(snapper.boundaries.tolist()) == stored


class TestSnapContract:
    def test_snap_is_smallest_stored_value_at_least_epsilon(self, snapper):
        for epsilon in np.linspace(0.0, 1.0, 47):
            snapped = snapper.snap(float(epsilon))
            above = snapper.boundaries[snapper.boundaries >= epsilon]
            if above.size:
                assert snapped == above[0]
            else:
                assert snapped == float("inf")

    def test_stored_value_snaps_to_itself(self, snapper):
        for value in snapper.boundaries.tolist():
            assert snapper.snap(value) == value

    def test_rank_counts_values_strictly_below(self, snapper):
        boundaries = snapper.boundaries
        assert snapper.rank(0.0) == 0
        assert snapper.rank(float(boundaries[0])) == 0
        assert snapper.rank(float(boundaries[-1])) == boundaries.shape[0] - 1
        above_all = float(boundaries[-1]) + 1e-9
        assert snapper.rank(above_all) == boundaries.shape[0]
        assert snapper.snap(above_all) == float("inf")

    def test_same_rank_means_same_clustering(self, index, snapper):
        """The snapping contract: equal ranks give bit-identical queries."""
        rng = np.random.default_rng(3)
        epsilons = rng.uniform(0.0, 1.0, size=40)
        for epsilon in epsilons.tolist():
            snapped = snapper.snap(epsilon)
            if snapped == float("inf"):
                snapped = 1.0  # query upper bound; matches nothing either way
            for mu in (2, 3, 5):
                original = index.query(mu, epsilon, deterministic_borders=True)
                canonical = index.query(mu, snapped, deterministic_borders=True)
                assert np.array_equal(original.labels, canonical.labels)
                assert np.array_equal(original.core_mask, canonical.core_mask)


class TestLargerGraph:
    def test_ranks_partition_the_unit_interval(self):
        graph = planted_partition(3, 15, p_intra=0.5, p_inter=0.05, seed=5)
        snapper = EpsilonSnapper.from_index(ScanIndex.build(graph))
        boundaries = snapper.boundaries
        # Each boundary is the canonical representative of its own rank ...
        assert [snapper.rank(float(b)) for b in boundaries] == list(
            range(snapper.num_boundaries)
        )
        # ... and any ε strictly inside an interval snaps up to its top.
        midpoints = (boundaries[:-1] + boundaries[1:]) / 2.0
        for position, epsilon in enumerate(midpoints.tolist()):
            assert snapper.rank(epsilon) == position + 1
            assert snapper.snap(epsilon) == boundaries[position + 1]
