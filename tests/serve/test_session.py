"""Tests for the label-recycling serving session."""

import numpy as np
import pytest

from repro import ScanIndex, UNCLUSTERED
from repro.graphs import from_edge_list, paper_example_graph, planted_partition


@pytest.fixture(scope="module")
def index():
    graph = planted_partition(4, 25, p_intra=0.45, p_inter=0.02, seed=11)
    return ScanIndex.build(graph)


@pytest.fixture(scope="module")
def paper_index():
    return ScanIndex.build(paper_example_graph())


class TestServedResult:
    def test_compact_and_dense_agree(self, paper_index):
        session = paper_index.session()
        result = session.serve(3, 0.6)
        dense = result.to_clustering()
        reference = paper_index.query(3, 0.6)
        assert np.array_equal(dense.labels, reference.labels)
        assert np.array_equal(dense.core_mask, reference.core_mask)
        assert result.num_clusters == reference.num_clusters
        assert result.num_clustered_vertices == reference.num_clustered_vertices
        assert dense.mu == 3 and dense.epsilon == 0.6

    def test_compact_lists_cores_first(self, paper_index):
        result = paper_index.session().serve(3, 0.6)
        dense = result.to_clustering()
        cores = result.vertices[: result.num_cores]
        assert np.array_equal(np.sort(cores), dense.core_vertices())
        borders = result.vertices[result.num_cores:]
        assert not np.isin(borders, cores).any()

    def test_empty_result(self, paper_index):
        result = paper_index.session().serve(64, 0.9)
        assert result.num_clusters == 0
        assert result.num_clustered_vertices == 0
        assert result.to_clustering().num_clusters == 0

    def test_cached_payload_is_frozen(self, paper_index):
        result = paper_index.session().serve(3, 0.6)
        with pytest.raises(ValueError):
            result.labels[0] = 99
        with pytest.raises(ValueError):
            result.vertices[0] = 99


class TestCachingBehavior:
    def test_repeat_hits_cache_with_identical_payload(self, index):
        session = index.session()
        first = session.serve(5, 0.6)
        second = session.serve(5, 0.6)
        assert not first.from_cache and second.from_cache
        assert second.compact is first.compact
        assert session.stats()["hit_rate"] == 0.5

    def test_snapped_epsilons_share_entries(self, index):
        session = index.session()
        base = session.serve(5, 0.6123)
        snapped = base.snapped_epsilon
        assert snapped != float("inf")
        nearby = (0.6123 + snapped) / 2.0
        repeat = session.serve(5, nearby)
        assert repeat.from_cache
        assert repeat.compact is base.compact
        assert repeat.epsilon == nearby            # metadata keeps the request

    def test_border_modes_do_not_share_entries(self, index):
        session = index.session()
        session.serve(5, 0.6, deterministic_borders=False)
        result = session.serve(5, 0.6, deterministic_borders=True)
        assert not result.from_cache

    @pytest.mark.parametrize("cache_size", [0, -1])
    def test_cache_disabled(self, index, cache_size):
        session = index.session(cache_size=cache_size)
        assert session.cache is None
        session.serve(5, 0.6)
        repeat = session.serve(5, 0.6)
        assert not repeat.from_cache
        assert session.stats()["cache"] is None

    def test_snapper_is_shared_across_sessions_of_one_index(self, index):
        assert index.session().snapper is index.session().snapper

    def test_validation_happens_before_cache_lookup(self, index):
        session = index.session()
        with pytest.raises(ValueError):
            session.serve(1, 0.5)
        with pytest.raises(ValueError):
            session.serve(2, 1.5)


class TestBufferRecycling:
    def test_buffers_restored_between_queries(self, index):
        session = index.session(cache_size=0)
        n = index.graph.num_vertices
        for mu, epsilon in [(2, 0.3), (5, 0.6), (3, 0.45), (8, 0.9)]:
            session.serve(mu, epsilon)
            session.serve(mu, epsilon, deterministic_borders=True)
        buffers = session.buffers
        assert np.array_equal(buffers.forest._parent, np.arange(n))
        assert (buffers.forest._rank == 0).all()
        assert (buffers.labels == UNCLUSTERED).all()
        assert not buffers.member.any()

    def test_buffers_restored_when_a_serve_dies_mid_query(self, index, monkeypatch):
        """A request that raises mid-serve must not poison later queries."""
        from repro.parallel.unionfind import UnionFind

        session = index.session(cache_size=0)
        session.serve(5, 0.6)                       # warm, known-good

        def explode(self, scheduler, vertices):
            raise RuntimeError("injected mid-serve failure")

        monkeypatch.setattr(UnionFind, "find_batch", explode)
        with pytest.raises(RuntimeError):
            session.serve(2, 0.3)                   # dies after union_batch
        monkeypatch.undo()

        n = index.graph.num_vertices
        assert np.array_equal(session.buffers.forest._parent, np.arange(n))
        assert not session.buffers.member.any()
        after = session.serve(2, 0.3).to_clustering()
        cold = index.query(2, 0.3)
        assert np.array_equal(after.labels, cold.labels)

    def test_query_many_forest_restored_when_union_dies_mid_group(
        self, index, monkeypatch
    ):
        from repro.parallel.unionfind import UnionFind

        session = index.session()
        real_union = UnionFind.union_batch

        def union_then_die(self, scheduler, edges_u, edges_v):
            real_union(self, scheduler, edges_u, edges_v)  # parents written
            if edges_u.size:
                raise RuntimeError("injected mid-group failure")

        monkeypatch.setattr(UnionFind, "union_batch", union_then_die)
        with pytest.raises(RuntimeError):
            session.query_many([(2, 0.3), (5, 0.3)])
        monkeypatch.undo()

        n = index.graph.num_vertices
        assert np.array_equal(session.buffers.forest._parent, np.arange(n))
        batched = session.query_many([(2, 0.3)])
        assert np.array_equal(batched[0].labels, index.query(2, 0.3).labels)

    def test_invalidate_rebuilds_snapper_for_replaced_index_contents(self):
        """In-place index replacement must refresh the ε-snapping boundaries."""
        graph_a = planted_partition(3, 18, p_intra=0.5, p_inter=0.04, seed=3)
        graph_b = planted_partition(3, 18, p_intra=0.4, p_inter=0.08, seed=4)
        index = ScanIndex.build(graph_a)
        replacement = ScanIndex.build(graph_b)
        session = index.session()
        session.serve(2, 0.45)
        old_boundaries = session.snapper.boundaries

        # The documented rebuild-in-place: same ScanIndex object, new contents.
        index.graph = replacement.graph
        index.similarities = replacement.similarities
        index.neighbor_order = replacement.neighbor_order
        index.core_order = replacement.core_order
        session.invalidate()

        assert session.snapper.boundaries is not old_boundaries
        for epsilon in (0.3, 0.45, 0.6):
            served = session.serve(2, epsilon)
            cold = replacement.query(2, epsilon)
            assert np.array_equal(served.to_clustering().labels, cold.labels)

    def test_session_query_many_uses_planner_and_matches(self, index):
        session = index.session()
        pairs = [(2, 0.3), (5, 0.6), (5, 0.3), (3, 0.6)]
        batched = session.query_many(pairs, deterministic_borders=True)
        for (mu, epsilon), clustering in zip(pairs, batched):
            cold = index.query(mu, epsilon, deterministic_borders=True)
            assert np.array_equal(clustering.labels, cold.labels)

    def test_serve_after_query_many_still_identical(self, index):
        """Interleaving the planner and the serve path shares buffers safely."""
        session = index.session()
        session.query_many([(2, 0.3), (5, 0.7)])
        result = session.serve(5, 0.6)
        cold = index.query(5, 0.6)
        assert np.array_equal(result.to_clustering().labels, cold.labels)


class TestEdgeCases:
    def test_single_edge_graph(self):
        index = ScanIndex.build(from_edge_list([(0, 1)]))
        session = index.session()
        for epsilon in (0.0, 0.5, 1.0):
            dense = session.serve(2, epsilon).to_clustering()
            cold = index.query(2, epsilon)
            assert np.array_equal(dense.labels, cold.labels)

    def test_empty_graph(self):
        index = ScanIndex.build(from_edge_list([], num_vertices=4))
        session = index.session()
        assert session.serve(2, 0.5).num_clusters == 0

    def test_loaded_artifact_session(self, index, tmp_path):
        index.save(tmp_path / "served.scanidx")
        loaded = ScanIndex.load(tmp_path / "served.scanidx")
        session = loaded.session()
        result = session.serve(5, 0.6, deterministic_borders=True)
        cold = index.query(5, 0.6, deterministic_borders=True)
        assert np.array_equal(result.to_clustering().labels, cold.labels)
