"""Tests for the concurrent serving front end (`serve/server.py`).

The contracts under test, per the module's own charter: responses at any
worker count are bit-identical to a single in-process session; routing is
deterministic cache-affinity; a killed worker restarts transparently; a
pool that cannot be kept alive degrades to in-process serving with one
structured warning; and the ``!invalidate`` generation flip means every
request answered after the ack reflects the swapped on-disk artifact.
"""

import asyncio
import os
import signal

import pytest

from repro import ScanIndex
from repro.graphs import planted_partition
from repro.serve import ClusterServer, DegradedServingWarning, route, wire
from repro.serve.server import _WorkerHandle

#: Settings exercised by most tests (mirror the benchmark workload shape).
SETTINGS = [(2, 0.3), (3, 0.45), (5, 0.6), (8, 0.75), (2, 0.5), (4, 0.35)]


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = planted_partition(4, 20, p_intra=0.30, p_inter=0.02, seed=7)
    path = tmp_path_factory.mktemp("serve") / "index.scanidx"
    ScanIndex.build(graph).save(path)
    return path


async def _ask(reader, writer, line: str) -> str:
    writer.write((line + "\n").encode("utf-8"))
    await writer.drain()
    raw = await reader.readline()
    assert raw, "server closed the connection mid-conversation"
    return raw.decode("utf-8").strip()


async def _with_server(artifact, scenario, **server_kwargs):
    """Run ``scenario(server, reader, writer)`` against a started server."""
    server = ClusterServer(artifact, deterministic=True, **server_kwargs)
    host, port = await server.start()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await scenario(server, reader, writer)
    finally:
        writer.close()
        await server.close()


def _expected_lines(artifact, settings):
    """Single-session answers, cache field stripped (hit patterns differ)."""
    session = ScanIndex.load(artifact).session()
    return [
        wire.strip_cache_field(
            wire.format_response(session.serve(mu, eps, deterministic_borders=True))
        )
        for mu, eps in settings
    ]


class TestRouting:
    def test_route_is_deterministic_and_in_range(self):
        for workers in (1, 2, 3, 8):
            for mu in range(2, 12):
                for rank in range(0, 40, 7):
                    first = route(mu, rank, workers)
                    assert 0 <= first < workers
                    assert first == route(mu, rank, workers)

    def test_route_spreads_settings(self):
        hits = {route(mu, rank, 4) for mu in range(2, 10) for rank in range(16)}
        assert len(hits) == 4


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_single_session_at_any_worker_count(self, artifact, workers):
        stream = SETTINGS * 3  # repeats exercise each worker's cache
        expected = _expected_lines(artifact, stream)

        async def scenario(server, reader, writer):
            return [
                await _ask(reader, writer, f"{mu}:{eps:g}") for mu, eps in stream
            ]

        responses = asyncio.run(_with_server(artifact, scenario, workers=workers))
        assert [wire.strip_cache_field(r) for r in responses] == expected

    def test_repeat_is_a_cache_hit_on_its_affinity_worker(self, artifact):
        async def scenario(server, reader, writer):
            first = await _ask(reader, writer, "3:0.45")
            second = await _ask(reader, writer, "3:0.45")
            return first, second

        first, second = asyncio.run(_with_server(artifact, scenario, workers=2))
        assert first.endswith("cache=miss")
        assert second.endswith("cache=hit")
        assert wire.strip_cache_field(first) == wire.strip_cache_field(second)

    def test_affinity_pins_settings_to_workers(self, artifact):
        """Every request of one setting lands on its route() worker."""
        import json

        async def scenario(server, reader, writer):
            for _ in range(4):
                for mu, eps in SETTINGS:
                    await _ask(reader, writer, f"{mu}:{eps:g}")
            per_setting = {
                route(mu, server._snapper.rank(eps), 2) for mu, eps in SETTINGS
            }
            stats = json.loads(await _ask(reader, writer, "!stats"))
            return per_setting, stats

        routed, stats = asyncio.run(_with_server(artifact, scenario, workers=2))
        counts = [w["requests"] for w in stats["per_worker"]]
        assert sum(counts) == 4 * len(SETTINGS)
        # Workers that no setting routes to must have served nothing.
        for worker_id, count in enumerate(counts):
            if worker_id not in routed:
                assert count == 0
            else:
                assert count > 0


class TestErrors:
    def test_malformed_and_out_of_range_requests(self, artifact):
        async def scenario(server, reader, writer):
            return [
                await _ask(reader, writer, line)
                for line in ("nonsense", "1:0.5", "3:1.5", "3:-0.1", "2:zebra")
            ]

        responses = asyncio.run(_with_server(artifact, scenario, workers=1))
        assert all(r.startswith(wire.ERROR_PREFIX) for r in responses)

    def test_unknown_control_command(self, artifact):
        async def scenario(server, reader, writer):
            return await _ask(reader, writer, "!frobnicate")

        response = asyncio.run(_with_server(artifact, scenario, workers=1))
        assert response.startswith(wire.ERROR_PREFIX)


class TestSupervision:
    def test_killed_worker_restarts_and_request_succeeds(self, artifact):
        expected = _expected_lines(artifact, SETTINGS)

        async def scenario(server, reader, writer):
            warmup = [
                await _ask(reader, writer, f"{mu}:{eps:g}") for mu, eps in SETTINGS
            ]
            for handle in server._workers:
                os.kill(handle.process.pid, signal.SIGKILL)
            while any(h.process.is_alive() for h in server._workers):
                await asyncio.sleep(0.01)
            replies = [
                await _ask(reader, writer, f"{mu}:{eps:g}") for mu, eps in SETTINGS
            ]
            restarts = [h.restarts for h in server._workers]
            return warmup, replies, restarts

        warmup, replies, restarts = asyncio.run(
            _with_server(artifact, scenario, workers=2)
        )
        assert [wire.strip_cache_field(r) for r in warmup] == expected
        assert [wire.strip_cache_field(r) for r in replies] == expected
        # Each worker that got post-kill traffic was respawned exactly once.
        assert sum(restarts) >= 1
        # A restarted worker starts with a cold cache: repeats were misses.
        assert all(r.endswith("cache=miss") for r in replies)

    def test_unspawnable_pool_degrades_with_one_warning(self, artifact, monkeypatch):
        expected = _expected_lines(artifact, SETTINGS)

        def refuse(self):
            raise OSError("fork refused by test")

        monkeypatch.setattr(_WorkerHandle, "spawn", refuse)

        async def scenario(server, reader, writer):
            replies = [
                await _ask(reader, writer, f"{mu}:{eps:g}") for mu, eps in SETTINGS
            ]
            return replies, server.degraded, server.stats()

        with pytest.warns(DegradedServingWarning):
            replies, degraded, stats = asyncio.run(
                _with_server(artifact, scenario, workers=2)
            )
        assert degraded and stats["degraded"]
        assert [wire.strip_cache_field(r) for r in replies] == expected


class TestGenerationFlip:
    def test_invalidate_after_artifact_swap_reaches_every_worker(
        self, artifact, tmp_path
    ):
        """Every response after the !invalidate ack reflects the new artifact."""
        import shutil

        swapped = tmp_path / "index.scanidx"
        shutil.copytree(artifact, swapped)

        graph_edge = ScanIndex.load(swapped).graph
        deletion = (int(graph_edge.edge_u[0]), int(graph_edge.edge_v[0]))

        before = _expected_lines(swapped, [(3, 0.45)])[0]

        async def scenario(server, reader, writer):
            stale = [await _ask(reader, writer, "3:0.45") for _ in range(4)]
            # Swap the artifact on disk (crash-safe save), then flip.
            mutated = ScanIndex.load(swapped)
            mutated.apply_updates(deletions=[deletion])
            mutated.save(swapped)
            ack = await _ask(reader, writer, "!invalidate")
            fresh = [await _ask(reader, writer, "3:0.45") for _ in range(4)]
            return stale, ack, fresh, server.generation

        stale, ack, fresh, generation = asyncio.run(
            _with_server(swapped, scenario, workers=2)
        )
        after = _expected_lines(swapped, [(3, 0.45)])[0]
        assert after != before, "test update must change the answer"
        assert ack == "invalidated generation=1" and generation == 1
        assert all(wire.strip_cache_field(r) == before for r in stale)
        assert all(wire.strip_cache_field(r) == after for r in fresh)
