"""Tests for the serving tier's observability surface.

Three contracts from the front end's side: ``!metrics`` answers one JSON
registry snapshot with every worker's counters *merged* into the front
end's (pure merge -- asking twice never double-counts); ``!stats`` now
carries a per-worker ``lru`` block and the pool's cumulative
``restarts_total``; and degradation both warns once *and* increments
persistent counters on every trigger.  Traced servers additionally write
one schema-valid JSONL file per worker next to the front end's.
"""

import asyncio
import json
import os
import signal

import pytest

from repro import ScanIndex
from repro import obs
from repro.graphs import planted_partition
from repro.obs.schema import validate_trace_path
from repro.serve import ClusterServer, DegradedServingWarning
from repro.serve.server import _WorkerHandle

SETTINGS = [(2, 0.3), (3, 0.45), (5, 0.6), (8, 0.75), (2, 0.5), (4, 0.35)]


@pytest.fixture(autouse=True)
def fresh_obs_state():
    """The registry is process-global: earlier suite tests (benchmark
    smokes, property runs) leave counters behind, so every test here
    starts from a clean slate and restores one afterwards."""
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = planted_partition(4, 20, p_intra=0.30, p_inter=0.02, seed=7)
    path = tmp_path_factory.mktemp("serve_obs") / "index.scanidx"
    ScanIndex.build(graph).save(path)
    return path


async def _ask(reader, writer, line: str) -> str:
    writer.write((line + "\n").encode("utf-8"))
    await writer.drain()
    raw = await reader.readline()
    assert raw, "server closed the connection mid-conversation"
    return raw.decode("utf-8").strip()


async def _with_server(artifact, scenario, **server_kwargs):
    server = ClusterServer(artifact, deterministic=True, **server_kwargs)
    host, port = await server.start()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await scenario(server, reader, writer)
    finally:
        writer.close()
        await server.close()


class TestMetricsControlLine:
    def test_metrics_merges_worker_sessions(self, artifact):
        async def scenario(server, reader, writer):
            for mu, eps in SETTINGS + SETTINGS[:3]:  # repeats -> cache hits
                await _ask(reader, writer, f"{mu}:{eps}")
            return json.loads(await _ask(reader, writer, "!metrics"))

        snapshot = asyncio.run(_with_server(artifact, scenario, workers=2))
        counters = snapshot["counters"]
        assert counters["serve.requests_total"] == len(SETTINGS) + 3
        # Worker-side session counters arrive through the merge:
        assert counters["serve.session.served_total"] == len(SETTINGS) + 3
        assert counters["serve.cache.hits_total"] == 3
        assert counters["serve.cache.misses_total"] == len(SETTINGS)
        latency = snapshot["histograms"]["serve.request_seconds"]
        assert latency["count"] == len(SETTINGS) + 3
        assert latency["p99"] >= latency["p50"] >= 0.0

    def test_repeated_metrics_requests_do_not_double_count(self, artifact):
        async def scenario(server, reader, writer):
            for mu, eps in SETTINGS:
                await _ask(reader, writer, f"{mu}:{eps}")
            first = json.loads(await _ask(reader, writer, "!metrics"))
            second = json.loads(await _ask(reader, writer, "!metrics"))
            return first, second

        first, second = asyncio.run(_with_server(artifact, scenario, workers=2))
        assert second["counters"]["serve.session.served_total"] == \
            first["counters"]["serve.session.served_total"]
        assert second["counters"]["serve.cache.hits_total"] == \
            first["counters"]["serve.cache.hits_total"]

    def test_metrics_on_in_process_fallback(self, artifact, monkeypatch):
        def refuse(self):
            raise OSError("no forks today")

        monkeypatch.setattr(_WorkerHandle, "spawn", refuse)

        async def scenario(server, reader, writer):
            for mu, eps in SETTINGS[:3]:
                await _ask(reader, writer, f"{mu}:{eps}")
            return json.loads(await _ask(reader, writer, "!metrics"))

        with pytest.warns(DegradedServingWarning):
            snapshot = asyncio.run(_with_server(artifact, scenario, workers=2))
        assert snapshot["counters"]["serve.requests_degraded_total"] == 3
        assert snapshot["counters"]["serve.degraded_total"] >= 1
        assert snapshot["counters"]["serve.session.served_total"] == 3


class TestStatsExtensions:
    def test_stats_carries_lru_and_restart_totals(self, artifact):
        async def scenario(server, reader, writer):
            for mu, eps in SETTINGS + SETTINGS[:2]:
                await _ask(reader, writer, f"{mu}:{eps}")
            return json.loads(await _ask(reader, writer, "!stats"))

        stats = asyncio.run(_with_server(artifact, scenario, workers=2))
        assert stats["restarts_total"] == 0
        lru_blocks = [entry["lru"] for entry in stats["per_worker"]]
        assert all(block is not None for block in lru_blocks)
        assert sum(block["served"] for block in lru_blocks) == len(SETTINGS) + 2
        assert sum(block["cache_hits"] for block in lru_blocks) == 2
        for block in lru_blocks:
            assert {"hits", "misses", "evictions", "size", "capacity"} <= \
                set(block["cache"])

    def test_restart_shows_in_stats_and_metrics(self, artifact):
        async def scenario(server, reader, writer):
            await _ask(reader, writer, "5:0.6")
            for handle in server._workers:
                os.kill(handle.process.pid, signal.SIGKILL)
            while any(h.process.is_alive() for h in server._workers):
                await asyncio.sleep(0.01)
            for mu, eps in SETTINGS:
                await _ask(reader, writer, f"{mu}:{eps}")
            stats = json.loads(await _ask(reader, writer, "!stats"))
            metrics = json.loads(await _ask(reader, writer, "!metrics"))
            return stats, metrics

        stats, metrics = asyncio.run(_with_server(artifact, scenario, workers=2))
        assert stats["restarts_total"] >= 1
        assert metrics["counters"]["serve.worker_restarts_total"] == \
            stats["restarts_total"]


class TestTracedServer:
    def test_traced_server_writes_valid_worker_sidecars(self, artifact, tmp_path):
        trace = tmp_path / "serve.jsonl"
        obs.configure(trace)
        try:
            async def scenario(server, reader, writer):
                for mu, eps in SETTINGS + SETTINGS[:2]:
                    await _ask(reader, writer, f"{mu}:{eps}")

            asyncio.run(_with_server(artifact, scenario, workers=2))
        finally:
            obs.finalise()
        front = validate_trace_path(trace)
        assert front["span"] >= len(SETTINGS) + 2  # one serve.request each
        assert front["snapshot"] == 1
        sidecars = sorted(tmp_path.glob("serve.jsonl.worker*"))
        assert len(sidecars) == 2
        for sidecar in sidecars:
            counts = validate_trace_path(sidecar)
            assert counts["snapshot"] == 1  # worker_main finalises on exit

    def test_untraced_server_writes_nothing(self, artifact, tmp_path):
        async def scenario(server, reader, writer):
            for mu, eps in SETTINGS:
                await _ask(reader, writer, f"{mu}:{eps}")

        asyncio.run(_with_server(artifact, scenario, workers=2))
        assert list(tmp_path.glob("*.jsonl*")) == []
        assert obs.tracer().events_written == 0
