"""Tests for the (adjusted) Rand index."""

import numpy as np
import pytest

from repro.core import UNCLUSTERED, Clustering
from repro.quality import adjusted_rand_index, rand_index


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert adjusted_rand_index(labels, labels.copy()) == pytest.approx(1.0)

    def test_label_permutation_invariant(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([5, 5, 9, 9, 1, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_symmetric(self, rng):
        a = rng.integers(0, 4, size=60)
        b = rng.integers(0, 4, size=60)
        assert adjusted_rand_index(a, b) == pytest.approx(adjusted_rand_index(b, a))

    def test_known_textbook_value(self):
        # Hubert & Arabie style example.
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 2, 2])
        value = adjusted_rand_index(a, b)
        assert 0.0 < value < 1.0
        assert value == pytest.approx(0.2424, abs=1e-3)

    def test_independent_partitions_near_zero(self, rng):
        a = rng.integers(0, 5, size=2000)
        b = rng.integers(0, 5, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_opposite_structure_can_be_negative(self):
        a = np.array([0, 1, 0, 1])
        b = np.array([0, 0, 1, 1])
        assert adjusted_rand_index(a, b) <= 0.0

    def test_all_singletons_vs_itself(self):
        labels = np.arange(10)
        assert adjusted_rand_index(labels, labels.copy()) == 1.0

    def test_unclustered_as_singletons(self):
        a = np.array([0, 0, UNCLUSTERED, UNCLUSTERED])
        b = np.array([0, 0, 1, 2])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_unclustered_matters(self):
        a = np.array([0, 0, 0, 0])
        b = np.array([0, 0, UNCLUSTERED, UNCLUSTERED])
        assert adjusted_rand_index(a, b) < 1.0

    def test_accepts_clustering_objects(self):
        labels = np.array([0, 0, 1])
        clustering = Clustering(labels, np.zeros(3, dtype=bool))
        assert adjusted_rand_index(clustering, labels) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.array([0]), np.array([0, 1]))

    def test_empty_input(self):
        assert adjusted_rand_index(np.array([], dtype=np.int64),
                                   np.array([], dtype=np.int64)) == 1.0


class TestRandIndex:
    def test_identical(self):
        labels = np.array([0, 0, 1, 1])
        assert rand_index(labels, labels.copy()) == 1.0

    def test_bounded_by_one(self, rng):
        a = rng.integers(0, 3, size=50)
        b = rng.integers(0, 3, size=50)
        assert 0.0 <= rand_index(a, b) <= 1.0

    def test_rand_at_least_adjusted(self, rng):
        a = rng.integers(0, 3, size=80)
        b = rng.integers(0, 3, size=80)
        assert rand_index(a, b) >= adjusted_rand_index(a, b)

    def test_single_vertex(self):
        assert rand_index(np.array([0]), np.array([3])) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rand_index(np.array([0]), np.array([0, 1]))
