"""Tests for parameter grids and modularity sweeps."""

import pytest

from repro import ScanIndex
from repro.graphs import planted_partition, planted_partition_labels
from repro.quality import (
    adjusted_rand_index,
    best_clustering,
    epsilon_grid,
    modularity_sweep,
    mu_grid,
    parameter_grid,
)


class TestGrids:
    def test_mu_grid_powers_of_two(self):
        assert mu_grid(20) == [2, 4, 8, 16]

    def test_mu_grid_clipped_by_exponent(self):
        assert mu_grid(10 ** 9, upper_exponent=4) == [2, 4, 8, 16]

    def test_mu_grid_minimum(self):
        assert mu_grid(1) == [2]

    def test_epsilon_grid_default(self):
        grid = epsilon_grid()
        assert len(grid) == 99
        assert grid[0] == pytest.approx(0.01)
        assert grid[-1] == pytest.approx(0.99)

    def test_epsilon_grid_custom_step(self):
        grid = epsilon_grid(0.25)
        assert grid.tolist() == pytest.approx([0.25, 0.5, 0.75])

    def test_epsilon_grid_invalid_step(self):
        with pytest.raises(ValueError):
            epsilon_grid(0.0)

    def test_parameter_grid_is_product(self, paper_graph):
        grid = parameter_grid(paper_graph, epsilon_step=0.2)
        mus = {mu for mu, _ in grid}
        assert mus == {2, 4}  # max closed degree is 5
        assert len(grid) == 2 * 4


class TestSweep:
    @pytest.fixture(scope="class")
    def index(self):
        graph = planted_partition(4, 40, p_intra=0.4, p_inter=0.005, seed=2)
        return ScanIndex.build(graph)

    def test_sweep_visits_every_setting(self, index):
        parameters = [(2, 0.2), (2, 0.4), (4, 0.2)]
        result = modularity_sweep(index, parameters=parameters)
        assert [(e.mu, e.epsilon) for e in result.entries] == parameters

    def test_best_is_max_modularity(self, index):
        result = modularity_sweep(index, epsilon_step=0.1)
        assert result.best.modularity == max(e.modularity for e in result.entries)

    def test_best_parameters_tuple(self, index):
        result = modularity_sweep(index, epsilon_step=0.1)
        mu, epsilon = result.best_parameters()
        assert (mu, epsilon) == (result.best.mu, result.best.epsilon)

    def test_sweep_recovers_planted_communities(self, index):
        clustering, best = best_clustering(index, epsilon_step=0.1)
        truth = planted_partition_labels(4, 40)
        assert best.modularity > 0.5
        assert adjusted_rand_index(clustering, truth) > 0.9

    def test_empty_sweep_best_raises(self, index):
        result = modularity_sweep(index, parameters=[])
        with pytest.raises(ValueError):
            _ = result.best
