"""Tests for modularity and coverage."""

import numpy as np
import pytest

from repro.core import UNCLUSTERED
from repro.graphs import (
    complete_graph,
    from_edge_list,
    from_weighted_edge_list,
    planted_partition,
    planted_partition_labels,
)
from repro.quality import coverage, modularity


class TestModularity:
    def test_two_disjoint_triangles_perfectly_clustered(self):
        graph = from_edge_list([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        labels = np.array([0, 0, 0, 1, 1, 1])
        # Known value: 1/2 - 2 * (9/144) ... compute from the formula directly:
        # each cluster has 3 internal edges of 6 total and degree sum 6 of 12.
        expected = 2 * (3 / 6 - (6 / 12) ** 2)
        assert modularity(graph, labels) == pytest.approx(expected)

    def test_single_cluster_is_zero(self, paper_graph):
        labels = np.zeros(11, dtype=np.int64)
        assert modularity(paper_graph, labels) == pytest.approx(0.0)

    def test_all_singletons_negative(self, paper_graph):
        labels = np.arange(11)
        assert modularity(paper_graph, labels) < 0.0

    def test_never_exceeds_one(self, community_graph):
        labels = planted_partition_labels(4, 30)
        assert modularity(community_graph, labels) <= 1.0

    def test_planted_partition_ground_truth_scores_high(self):
        graph = planted_partition(5, 40, p_intra=0.4, p_inter=0.005, seed=1)
        labels = planted_partition_labels(5, 40)
        random_labels = np.random.default_rng(0).integers(0, 5, size=200)
        assert modularity(graph, labels) > 0.5
        assert modularity(graph, labels) > modularity(graph, random_labels) + 0.3

    def test_unclustered_as_singletons_vs_ignored(self, paper_graph):
        labels = np.array([0, 0, 0, 0, UNCLUSTERED, 1, 1, 1, UNCLUSTERED, UNCLUSTERED, 1])
        with_singletons = modularity(paper_graph, labels, unclustered_as_singletons=True)
        ignored = modularity(paper_graph, labels, unclustered_as_singletons=False)
        # Singleton clusters only subtract expected-edge mass, so they lower the score.
        assert with_singletons <= ignored

    def test_accepts_clustering_object(self, paper_graph):
        from repro import ScanIndex

        clustering = ScanIndex.build(paper_graph).query(3, 0.6)
        assert isinstance(modularity(paper_graph, clustering), float)

    def test_weighted_graph_uses_weights(self):
        # Two heavy edges inside "cluster 0", one light edge crossing.
        graph = from_weighted_edge_list([(0, 1, 10.0), (2, 3, 10.0), (1, 2, 0.1)])
        good = modularity(graph, np.array([0, 0, 1, 1]))
        bad = modularity(graph, np.array([0, 1, 0, 1]))
        assert good > bad

    def test_empty_graph_is_zero(self):
        graph = from_edge_list([], num_vertices=3)
        assert modularity(graph, np.zeros(3, dtype=np.int64)) == 0.0

    def test_wrong_length_labels(self, paper_graph):
        with pytest.raises(ValueError):
            modularity(paper_graph, np.zeros(5, dtype=np.int64))

    def test_complete_graph_split_is_negative_or_zero(self):
        graph = complete_graph(6)
        labels = np.array([0, 0, 0, 1, 1, 1])
        assert modularity(graph, labels) <= 0.0


class TestCoverage:
    def test_full_coverage(self):
        graph = from_edge_list([(0, 1), (1, 2), (0, 2)])
        assert coverage(graph, np.zeros(3, dtype=np.int64)) == 1.0

    def test_no_coverage_when_all_unclustered(self, paper_graph):
        labels = np.full(11, UNCLUSTERED)
        assert coverage(paper_graph, labels) == 0.0

    def test_partial_coverage(self):
        graph = from_edge_list([(0, 1), (1, 2), (2, 3)])
        labels = np.array([0, 0, 1, 1])
        assert coverage(graph, labels) == pytest.approx(2 / 3)

    def test_empty_graph(self):
        graph = from_edge_list([], num_vertices=2)
        assert coverage(graph, np.zeros(2, dtype=np.int64)) == 0.0
