"""Property tests for the serving loop: bit-identity under randomized streams.

The serving session layers three optimisations over the cold query path --
recycled buffers, ε-snapped cache keys, and LRU-cached compact payloads --
and each must be invisible in the answers.  These tests replay randomized
``(μ, ε)`` request streams (with deliberate repeats and ε values perturbed
inside one snapping interval, under a cache small enough to force evictions)
and require every served answer to be bit-identical to a cold
``ScanIndex.query``, in both border modes.  A second property pins the
generation contract: rebuilding the index and re-binding the session must
never surface a cached answer from the old index.
"""

import numpy as np
import pytest

from repro import ScanIndex
from repro.graphs import planted_partition


@pytest.fixture(scope="module")
def index():
    graph = planted_partition(4, 25, p_intra=0.45, p_inter=0.03, seed=23)
    return ScanIndex.build(graph)


def random_stream(rng, index, count):
    """Random (mu, epsilon) requests biased toward repeats and near-misses."""
    snapper_values = np.unique(index.neighbor_order.similarities)
    requests = []
    for _ in range(count):
        mu = int(rng.integers(2, index.graph.max_degree + 3))
        kind = rng.integers(0, 3)
        if kind == 0:
            epsilon = float(rng.uniform(0.0, 1.0))
        elif kind == 1:
            # Exactly a stored boundary: ties must snap up to themselves.
            epsilon = float(rng.choice(snapper_values))
        else:
            # Just below a boundary: must share the boundary's cache entry.
            epsilon = float(
                max(0.0, rng.choice(snapper_values) - rng.uniform(0, 1e-9))
            )
        requests.append((mu, min(epsilon, 1.0)))
    # Interleave near-term repeats so hits survive a small LRU capacity.
    stream = []
    for position, request in enumerate(requests):
        stream.append(request)
        if position >= 2 and rng.random() < 0.5:
            stream.append(requests[position - int(rng.integers(0, 3))])
    return stream


@pytest.mark.parametrize("deterministic", [False, True])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_served_stream_is_bit_identical_to_cold_queries(index, deterministic, seed):
    rng = np.random.default_rng(seed)
    session = index.session(cache_size=8)   # small: force evictions mid-stream
    stream = random_stream(rng, index, 36)
    hits = 0
    for mu, epsilon in stream:
        served = session.serve(mu, epsilon, deterministic_borders=deterministic)
        hits += int(served.from_cache)
        dense = served.to_clustering()
        cold = index.query(mu, epsilon, deterministic_borders=deterministic)
        assert np.array_equal(dense.labels, cold.labels), (mu, epsilon)
        assert np.array_equal(dense.core_mask, cold.core_mask), (mu, epsilon)
        assert dense.mu == mu and dense.epsilon == epsilon
    assert hits > 0                          # the stream did exercise the cache
    assert session.cache.evictions > 0       # ... and the LRU bound


@pytest.mark.parametrize("deterministic", [False, True])
def test_session_query_many_stream_identical(index, deterministic):
    rng = np.random.default_rng(7)
    session = index.session()
    pairs = [
        (int(rng.integers(2, 12)), float(rng.choice(np.linspace(0.0, 1.0, 9))))
        for _ in range(25)
    ]
    for _ in range(3):                       # repeated batches recycle buffers
        batched = session.query_many(pairs, deterministic_borders=deterministic)
        for (mu, epsilon), clustering in zip(pairs, batched):
            cold = index.query(mu, epsilon, deterministic_borders=deterministic)
            assert np.array_equal(clustering.labels, cold.labels), (mu, epsilon)


def test_cache_never_serves_a_stale_index_generation():
    """Same (mu, epsilon) keys against a changed index must recompute.

    A hit *within* one session's generation is legitimate (distinct ε values
    may share a snapped rank); what must never happen is a hit on an entry
    another generation cached -- so the first request of every fresh
    generation must miss, and every answer must match that session's own
    index cold.
    """
    from repro.serve import ResultCache

    cache_pressure = [(2, float(e)) for e in np.linspace(0.05, 0.95, 6)]
    graph_a = planted_partition(3, 20, p_intra=0.5, p_inter=0.05, seed=1)
    graph_b = planted_partition(3, 20, p_intra=0.5, p_inter=0.05, seed=2)
    index_a = ScanIndex.build(graph_a)
    index_b = ScanIndex.build(graph_b)
    shared = ResultCache(capacity=4)

    session_a = index_a.session(cache=shared)
    answers_a = {
        pair: session_a.serve(*pair).to_clustering().labels
        for pair in cache_pressure
    }
    # The "reload": a different index bound to the very same cache object.
    session_b = index_b.session(cache=shared)
    for position, pair in enumerate(cache_pressure):
        served = session_b.serve(*pair)
        if position == 0:
            assert not served.from_cache   # can never hit another generation
        cold = index_b.query(*pair)
        assert np.array_equal(served.to_clustering().labels, cold.labels)
    # And the old session, invalidated, recomputes rather than resurrecting.
    session_a.invalidate()
    for position, pair in enumerate(cache_pressure):
        served = session_a.serve(*pair)
        if position == 0:
            assert not served.from_cache
        assert np.array_equal(served.to_clustering().labels, answers_a[pair])
