"""Property-based tests for the trajectory store's lossless contract.

Two families: every committed ``BENCH_*.json`` file round-trips through
import -> query -> export without losing or renaming a cell, and
randomly generated payloads (valid and malformed) exercise the
validation boundary -- malformed ones must be rejected with
:class:`~repro.bench.store.BenchStoreError` before anything is written.
"""

import json
import math
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.report import TrajectoryReport
from repro.bench.store import BenchStore, BenchStoreError, flatten_payload

settings.register_profile("repro-bench-store", max_examples=50, deadline=None)
settings.load_profile("repro-bench-store")

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))


def _count_numbers(value) -> int:
    """Numeric leaves in a JSON document (bools count: they are stored)."""
    if isinstance(value, dict):
        return sum(_count_numbers(child) for child in value.values())
    if isinstance(value, list):
        return sum(_count_numbers(child) for child in value)
    return int(isinstance(value, (bool, int, float)))


# ----------------------------------------------------------------------
# Round-trip of every committed benchmark artifact
# ----------------------------------------------------------------------
def test_the_repo_ships_all_seven_artifacts():
    assert len(BENCH_FILES) == 7


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_committed_file_roundtrips_losslessly(path):
    payload = json.loads(path.read_text())
    with BenchStore() as store:
        run_id = store.import_file(path)
        assert store.export_run(run_id) == payload


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_committed_file_keeps_every_numeric_cell(path):
    payload = json.loads(path.read_text())
    with BenchStore() as store:
        run_id = store.import_file(path)
        cells = store.numeric_cells(run_id)
        assert len(cells) == _count_numbers(payload)
        # Normalised keys are unique: no two cells merged under one name.
        records = [r for r in store.cells(run_id) if r.value is not None]
        assert len(records) == len(cells)


def test_all_six_render_into_one_report():
    with BenchStore() as store:
        for path in BENCH_FILES:
            store.import_file(path, recorded_at="2026-08-08T00:00:00+00:00")
        rendered = TrajectoryReport(store).render()
    for path in BENCH_FILES:
        benchmark = json.loads(path.read_text())["benchmark"]
        assert f"\n## {benchmark}\n" in rendered


# ----------------------------------------------------------------------
# Randomised valid payloads round-trip
# ----------------------------------------------------------------------
# Reserved names are excluded: the top-level structural keys, and the
# list groups labeled by an identifying field (duplicate identifiers
# would legitimately merge normalised keys, which is not what this
# round-trip property is about).
_KEYS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
).filter(
    lambda k: k
    not in ("benchmark", "environment", "graphs", "jobs", "batches",
            "configs", "order_microbench")
)

_LEAVES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**9), 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

_VALUES = st.recursive(
    _LEAVES,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_KEYS, children, max_size=4),
    ),
    max_leaves=20,
)

_PAYLOADS = st.fixed_dictionaries(
    {"benchmark": st.sampled_from(["fuzz", "demo"]), "seconds": st.floats(0.001, 10)},
    optional={
        "graphs": st.lists(
            st.dictionaries(_KEYS, _VALUES, max_size=4), max_size=3
        ),
        "extra": _VALUES,
    },
)


@given(payload=_PAYLOADS)
def test_random_valid_payload_roundtrips(payload):
    with BenchStore() as store:
        run_id = store.record(payload)
        assert store.export_run(run_id) == payload
        assert len(store.numeric_cells(run_id)) == _count_numbers(payload)


# ----------------------------------------------------------------------
# Randomised malformed payloads are rejected cleanly
# ----------------------------------------------------------------------
_NOT_A_MAPPING = st.one_of(
    st.none(), st.booleans(), st.integers(), st.text(), st.lists(st.integers())
)


@given(payload=_NOT_A_MAPPING)
def test_non_mapping_payloads_rejected(payload):
    with pytest.raises(BenchStoreError):
        flatten_payload(payload)


@given(
    benchmark=st.one_of(st.none(), st.just(""), st.integers(), st.lists(st.text())),
    seconds=st.floats(0.001, 10),
)
def test_bad_benchmark_fields_rejected(benchmark, seconds):
    with pytest.raises(BenchStoreError):
        flatten_payload({"benchmark": benchmark, "seconds": seconds})


@given(bad=st.sampled_from([math.nan, math.inf, -math.inf]), depth=st.integers(0, 2))
def test_non_finite_numbers_rejected_at_any_depth(bad, depth):
    payload = {"benchmark": "fuzz", "seconds": 1.0, "bad": bad}
    for _ in range(depth):
        payload = {"benchmark": "fuzz", "seconds": 1.0, "nested": payload}
    with pytest.raises(BenchStoreError, match="non-finite"):
        flatten_payload(payload)


@given(values=st.dictionaries(_KEYS, st.one_of(st.none(), st.text()), max_size=5))
def test_numberless_payloads_rejected(values):
    payload = {"benchmark": "fuzz", **values}
    with pytest.raises(BenchStoreError, match="no numeric cells"):
        flatten_payload(payload)


@given(payload=_PAYLOADS, bad=st.sampled_from([math.nan, {1: 2}, object()]))
def test_rejection_leaves_the_store_empty(payload, bad):
    payload = dict(payload)
    payload["poison"] = [1.0, bad]
    with BenchStore() as store:
        with pytest.raises(BenchStoreError):
            store.record(payload)
        assert store.runs() == []
        assert store.benchmarks() == []
