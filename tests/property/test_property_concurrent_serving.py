"""Property tests for concurrent serving: many sessions, one mmapped artifact.

The serving tier's correctness story is that concurrency is *invisible in
the answers*: N workers each holding a :class:`ClusterSession` over their
own mmap of one saved artifact must answer exactly what a single serial
session answers, whatever the interleaving, and a mid-traffic
``apply_updates`` must invalidate every one of them at once -- no session,
however its requests interleave with the mutation, may serve a
pre-mutation answer afterwards.  These tests replay randomized streams
through M in-process sessions (the same object workers hold; the socket
tier adds transport, not semantics) and check both properties, plus the
O(cores) cluster-count shortcut against the sorting definition.
"""

import numpy as np
import pytest

from repro import ScanIndex
from repro.graphs import planted_partition


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    graph = planted_partition(4, 22, p_intra=0.40, p_inter=0.03, seed=31)
    path = tmp_path_factory.mktemp("concurrent") / "index.scanidx"
    ScanIndex.build(graph).save(path)
    return path


def random_stream(rng, max_degree, count):
    """Random (mu, epsilon) requests biased toward repeats."""
    settings = [
        (int(rng.integers(2, max_degree + 3)), float(rng.uniform(0.0, 1.0)))
        for _ in range(max(count // 3, 1))
    ]
    return [settings[int(rng.integers(0, len(settings)))] for _ in range(count)]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("num_sessions", [2, 4])
def test_interleaved_sessions_match_serial(artifact_path, num_sessions, seed):
    """M sessions over one mmap, arbitrarily interleaved == one serial session."""
    rng = np.random.default_rng(seed)
    shared = ScanIndex.load(artifact_path)
    sessions = [shared.session(cache_size=8) for _ in range(num_sessions)]
    serial = ScanIndex.load(artifact_path).session(cache_size=8)

    stream = random_stream(rng, shared.graph.max_degree, 60)
    deterministic = bool(seed % 2)
    for position, (mu, epsilon) in enumerate(stream):
        # The interleaving is random, not round-robin: any session may take
        # any request, which is what concurrent workers look like.
        session = sessions[int(rng.integers(0, num_sessions))]
        served = session.serve(mu, epsilon, deterministic_borders=deterministic)
        reference = serial.serve(mu, epsilon, deterministic_borders=deterministic)
        assert np.array_equal(served.vertices, reference.vertices), position
        assert np.array_equal(served.labels, reference.labels), position
        assert served.num_cores == reference.num_cores
        assert served.num_clusters == reference.num_clusters
        assert served.snapped_epsilon == reference.snapped_epsilon


@pytest.mark.parametrize("seed", [3, 4])
def test_mid_traffic_update_invalidates_every_session(artifact_path, seed):
    """After apply_updates, no session serves a pre-mutation answer."""
    rng = np.random.default_rng(seed)
    shared = ScanIndex.load(artifact_path)
    sessions = [shared.session(cache_size=16) for _ in range(3)]
    stream = random_stream(rng, shared.graph.max_degree, 24)

    # Warm every session's cache on pre-update traffic.
    for position, (mu, epsilon) in enumerate(stream):
        sessions[position % len(sessions)].serve(mu, epsilon)

    edge_u, edge_v = shared.graph.edge_list()
    pick = int(rng.integers(0, edge_u.shape[0]))
    shared.apply_updates(deletions=[(int(edge_u[pick]), int(edge_v[pick]))])

    # Every post-update serve, on every session, must be computed fresh and
    # match a cold post-update query -- cached pre-update entries included.
    for mu, epsilon in stream:
        cold = shared.query(mu, epsilon)
        for session in sessions:
            served = session.serve(mu, epsilon)
            dense = served.to_clustering()
            assert np.array_equal(dense.labels, cold.labels)
            assert np.array_equal(dense.core_mask, cold.core_mask)


@pytest.mark.parametrize("seed", [5, 6])
def test_num_clusters_shortcut_matches_sorting_definition(artifact_path, seed):
    """The O(cores) representative count equals np.unique over the labels."""
    rng = np.random.default_rng(seed)
    session = ScanIndex.load(artifact_path).session(cache_size=0)
    for mu, epsilon in random_stream(rng, session.index.graph.max_degree, 30):
        served = session.serve(mu, epsilon)
        if served.num_clustered_vertices:
            assert served.num_clusters == np.unique(served.labels).shape[0]
        else:
            assert served.num_clusters == 0
