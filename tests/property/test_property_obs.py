"""Property tests for the observability layer: instrumentation is invisible.

The whole layer rides on one promise -- turning tracing on changes *no
output byte* of any instrumented code path.  These tests run the same
randomized workloads twice, once with the null tracer and once streaming
to a real trace file, and require bit-identical results everywhere:
index construction (columns and metadata), served answers over a
randomized (μ, ε) stream, and dynamic update patches.  Every generated
trace must additionally pass the closed JSONL schema, whatever the
workload shape was.
"""

import json

import numpy as np
import pytest

from repro import ScanIndex
from repro import obs
from repro.graphs import planted_partition
from repro.obs.schema import validate_trace_path


@pytest.fixture
def traced(tmp_path):
    """Enable file tracing for one test; always restore the null tracer.

    Starts from a fresh registry too -- the registry is process-global,
    and earlier suite tests would otherwise leak counters into the
    exact-count assertions below."""
    obs.reset()
    path = tmp_path / "trace.jsonl"
    obs.configure(path)
    try:
        yield path
    finally:
        obs.finalise()
        obs.reset()


def build_graph(seed):
    return planted_partition(3, 18, p_intra=0.4, p_inter=0.05, seed=seed)


def index_fingerprint(index):
    """Every byte a saved artifact would carry, hashable for comparison."""
    from repro.storage.artifact import IndexArtifact

    artifact = IndexArtifact.from_index(index)
    return json.dumps(
        {name: column.tolist() for name, column in sorted(artifact.columns.items())}
        | {"measure": artifact.meta["measure"]},
        sort_keys=True,
    )


@pytest.mark.parametrize("seed", [3, 11])
def test_build_is_bit_identical_with_tracing(tmp_path, seed):
    graph = build_graph(seed)
    baseline = index_fingerprint(ScanIndex.build(graph))
    path = tmp_path / "build.jsonl"
    obs.configure(path)
    try:
        traced_fingerprint = index_fingerprint(ScanIndex.build(graph))
    finally:
        obs.finalise()
    assert traced_fingerprint == baseline
    counts = validate_trace_path(path)
    assert counts["span"] >= 2  # similarities + at least one order build


def test_serving_answers_are_bit_identical_with_tracing(traced):
    from repro.serve import wire

    index = ScanIndex.build(build_graph(7))
    rng = np.random.default_rng(7)
    requests = [
        (int(rng.integers(2, 7)), float(rng.uniform(0.1, 0.9)))
        for _ in range(30)
    ]
    requests += requests[:10]  # force cache hits under tracing too
    baseline_session = index.session(cache_size=8)
    baseline = [
        wire.format_response(
            baseline_session.serve(mu, eps, deterministic_borders=True)
        )
        for mu, eps in requests
    ]
    traced_session = index.session(cache_size=8)
    answers = [
        wire.format_response(
            traced_session.serve(mu, eps, deterministic_borders=True)
        )
        for mu, eps in requests
    ]
    assert answers == baseline


def test_updates_are_bit_identical_with_tracing(tmp_path):
    from repro.dynamic import UpdateBatch

    graph = build_graph(5)
    neighbors = set(graph.indices[graph.indptr[0]:graph.indptr[1]].tolist())
    existing_edge = (0, int(next(iter(sorted(neighbors)))))
    missing_edge = (0, next(v for v in range(1, graph.num_vertices)
                            if v not in neighbors))

    def patched_fingerprint():
        index = ScanIndex.build(build_graph(5))
        batch = UpdateBatch.from_edges(
            insertions=[missing_edge], deletions=[existing_edge]
        )
        index.apply_updates(batch)
        return index_fingerprint(index)

    baseline = patched_fingerprint()
    path = tmp_path / "update.jsonl"
    obs.configure(path)
    try:
        traced_fingerprint = patched_fingerprint()
    finally:
        obs.finalise()
    assert traced_fingerprint == baseline
    counts = validate_trace_path(path)
    assert counts["event"] >= 1  # dynamic.apply_updates
    assert counts["snapshot"] == 1


def test_generated_traces_validate_for_random_workloads(traced):
    rng = np.random.default_rng(13)
    for seed in rng.integers(0, 1000, size=3):
        index = ScanIndex.build(build_graph(int(seed)))
        session = index.session(cache_size=4)
        for _ in range(10):
            session.serve(
                int(rng.integers(2, 6)),
                float(rng.uniform(0.2, 0.8)),
                deterministic_borders=bool(rng.integers(0, 2)),
            )
    obs.finalise()
    counts = validate_trace_path(traced)
    assert counts["span"] > 0
    assert counts["snapshot"] == 1


def test_trace_snapshot_carries_cache_metrics(traced):
    index = ScanIndex.build(build_graph(9))
    session = index.session(cache_size=8)
    for mu, eps in [(3, 0.5), (3, 0.5), (4, 0.6), (3, 0.5)]:
        session.serve(mu, eps, deterministic_borders=True)
    session.sync_metrics()
    obs.finalise()
    lines = [json.loads(l) for l in traced.read_text().splitlines()]
    snapshot = lines[-1]
    assert snapshot["kind"] == "snapshot"
    counters = snapshot["metrics"]["counters"]
    assert counters["serve.session.served_total"] == 4
    assert counters["serve.cache.hits_total"] == 2
    assert counters["serve.cache.misses_total"] == 2
