"""Property-based tests for sorting, doubling search, similarities and queries."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import ScanIndex
from repro.baselines import scan_clustering
from repro.core import prefix_length_at_least
from repro.graphs import from_edge_list
from repro.parallel import (
    Scheduler,
    comparison_sort_permutation,
    integer_sort_permutation,
    segmented_sort_by_key,
)
from repro.quality import adjusted_rand_index, modularity
from repro.similarity import compute_similarities, edge_similarity_reference

settings.register_profile("repro-algorithms", max_examples=30, deadline=None)
settings.load_profile("repro-algorithms")


# ----------------------------------------------------------------------
# Sorting
# ----------------------------------------------------------------------
@given(st.lists(st.floats(0, 1, allow_nan=False), max_size=200))
def test_comparison_sort_matches_python_sorted(values):
    keys = np.array(values, dtype=np.float64)
    order = comparison_sort_permutation(Scheduler(), keys)
    assert keys[order].tolist() == sorted(values)


@given(st.lists(st.integers(0, 10_000), max_size=200))
def test_integer_sort_matches_python_sorted(values):
    keys = np.array(values, dtype=np.int64)
    order = integer_sort_permutation(Scheduler(), keys)
    assert keys[order].tolist() == sorted(values)


@given(
    st.lists(st.integers(0, 8), min_size=1, max_size=12),
    st.data(),
)
def test_segmented_sort_sorts_within_segments_only(lengths, data):
    offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    keys = np.array(data.draw(st.lists(st.floats(0, 1, allow_nan=False),
                                       min_size=total, max_size=total)))
    values = np.arange(total)
    out = segmented_sort_by_key(Scheduler(), offsets, values, keys,
                                descending=True, use_integer_sort=False)
    for i in range(len(lengths)):
        a, b = int(offsets[i]), int(offsets[i + 1])
        segment = out[a:b]
        assert sorted(segment.tolist()) == sorted(values[a:b].tolist())
        assert np.all(np.diff(keys[segment]) <= 1e-12)


# ----------------------------------------------------------------------
# Doubling search
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(0, 1, allow_nan=False), max_size=100),
    st.floats(0, 1, allow_nan=False),
)
def test_doubling_search_equals_linear_count(values, threshold):
    keys = np.sort(np.array(values, dtype=np.float64))[::-1]
    expected = int(np.count_nonzero(keys >= threshold))
    assert prefix_length_at_least(keys, threshold) == expected


# ----------------------------------------------------------------------
# Similarities
# ----------------------------------------------------------------------
edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=1, max_size=60
)


@given(edge_lists)
def test_similarities_in_unit_interval_and_match_reference(edges):
    graph = from_edge_list(edges, num_vertices=16)
    if graph.num_edges == 0:
        return
    similarities = compute_similarities(graph)
    assert float(similarities.values.min()) >= 0.0
    assert float(similarities.values.max()) <= 1.0 + 1e-9
    edge_u, edge_v = graph.edge_list()
    for edge in range(graph.num_edges):
        u, v = int(edge_u[edge]), int(edge_v[edge])
        assert abs(
            similarities.values[edge] - edge_similarity_reference(graph, u, v)
        ) < 1e-9


@given(edge_lists)
def test_hash_and_merge_backends_agree(edges):
    graph = from_edge_list(edges, num_vertices=16)
    if graph.num_edges == 0:
        return
    merge = compute_similarities(graph, backend="merge")
    hashed = compute_similarities(graph, backend="hash")
    assert np.allclose(merge.values, hashed.values)


# ----------------------------------------------------------------------
# Index queries vs. original SCAN
# ----------------------------------------------------------------------
@given(
    edge_lists,
    st.integers(2, 5),
    st.floats(0.05, 0.95),
)
def test_index_query_cores_match_scan(edges, mu, epsilon):
    graph = from_edge_list(edges, num_vertices=16)
    if graph.num_edges == 0:
        return
    index = ScanIndex.build(graph)
    ours = index.query(mu, epsilon)
    reference = scan_clustering(graph, mu, epsilon, similarities=index.similarities)
    assert np.array_equal(ours.core_mask, reference.core_mask)
    # Cores belong to the same clusters in both.
    mapping = {}
    for v in np.flatnonzero(ours.core_mask).tolist():
        assert mapping.setdefault(int(ours.labels[v]), int(reference.labels[v])) == int(
            reference.labels[v]
        )


# ----------------------------------------------------------------------
# Quality measures
# ----------------------------------------------------------------------
@given(
    edge_lists,
    st.lists(st.integers(-1, 4), min_size=16, max_size=16),
)
def test_modularity_bounded_above_by_one(edges, labels):
    graph = from_edge_list(edges, num_vertices=16)
    if graph.num_edges == 0:
        return
    assert modularity(graph, np.array(labels, dtype=np.int64)) <= 1.0 + 1e-9


@given(
    st.lists(st.integers(0, 5), min_size=2, max_size=80),
    st.lists(st.integers(0, 5), min_size=2, max_size=80),
)
def test_ari_symmetric_and_reflexive(a, b):
    size = min(len(a), len(b))
    labels_a = np.array(a[:size], dtype=np.int64)
    labels_b = np.array(b[:size], dtype=np.int64)
    assert adjusted_rand_index(labels_a, labels_a.copy()) == 1.0
    assert adjusted_rand_index(labels_a, labels_b) == adjusted_rand_index(labels_b, labels_a)
