"""Property tests for the dynamic-update subsystem.

Two properties over randomized mixed insert/delete streams:

1. **Bit-identity under evolution.**  After every batch of a random stream,
   the patched index's stored columns equal a from-scratch rebuild on the
   current edge set, and so do its clusterings for a random parameter grid
   in both border modes.  This is the subsystem's tentpole invariant -- if
   any merge position, similarity recompute, numerator delta or edge-id
   shift is off by one anywhere, some batch of some stream breaks it.

2. **No generation mixing across updates.**  A serving session that stays
   open while its index is mutated must never serve a pre-update cache
   entry afterwards: the first serve after every batch misses, and every
   answer equals a cold query against the *current* index state.
"""

import numpy as np
import pytest

from repro import ScanIndex
from repro.graphs import from_edge_list, planted_partition


def random_stream_batches(rng, graph, num_batches, max_ops):
    """Generator of (insertions, deletions, edge_set) evolving a graph."""
    edges = set(zip(*[a.tolist() for a in graph.edge_list()]))
    n = graph.num_vertices
    for _ in range(num_batches):
        current = sorted(edges)
        num_ops = int(rng.integers(1, max_ops + 1))
        num_del = min(int(rng.integers(0, num_ops + 1)), len(current))
        delete_ids = rng.choice(len(current), size=num_del, replace=False)
        deletions = [current[i] for i in delete_ids]
        insertions = []
        while len(insertions) < num_ops - num_del:
            u, v = sorted(rng.integers(0, n, size=2).tolist())
            if u == v or (u, v) in edges or (u, v) in insertions:
                continue
            insertions.append((u, v))
        edges = (edges - set(deletions)) | set(insertions)
        yield insertions, deletions, sorted(edges)


@pytest.mark.parametrize("seed,measure", [(0, "cosine"), (1, "jaccard"), (2, "dice")])
def test_patched_index_tracks_rebuild_through_random_streams(seed, measure):
    rng = np.random.default_rng(seed)
    graph = planted_partition(4, 15, p_intra=0.4, p_inter=0.04, seed=seed)
    index = ScanIndex.build(graph, measure=measure)
    n = graph.num_vertices
    for insertions, deletions, edges in random_stream_batches(rng, graph, 6, 12):
        index.apply_updates(insertions=insertions, deletions=deletions)
        rebuilt = ScanIndex.build(
            from_edge_list(edges, num_vertices=n), measure=measure
        )
        for name, a, b in [
            ("indptr", index.graph.indptr, rebuilt.graph.indptr),
            ("indices", index.graph.indices, rebuilt.graph.indices),
            ("arc_edge_ids", index.graph.arc_edge_ids, rebuilt.graph.arc_edge_ids),
            ("values", index.similarities.values, rebuilt.similarities.values),
            ("numerators", index.similarities.numerators,
             rebuilt.similarities.numerators),
            ("no_neighbors", index.neighbor_order.neighbors,
             rebuilt.neighbor_order.neighbors),
            ("no_similarities", index.neighbor_order.similarities,
             rebuilt.neighbor_order.similarities),
            ("co_indptr", index.core_order.indptr, rebuilt.core_order.indptr),
            ("co_vertices", index.core_order.vertices, rebuilt.core_order.vertices),
            ("co_thresholds", index.core_order.thresholds,
             rebuilt.core_order.thresholds),
        ]:
            assert np.array_equal(np.asarray(a), np.asarray(b)), name
        for _ in range(4):
            mu = int(rng.integers(2, 8))
            epsilon = float(rng.uniform(0.0, 1.0))
            for det in (False, True):
                ours = index.query(mu, epsilon, deterministic_borders=det)
                theirs = rebuilt.query(mu, epsilon, deterministic_borders=det)
                assert np.array_equal(ours.labels, theirs.labels), (mu, epsilon, det)
                assert np.array_equal(ours.core_mask, theirs.core_mask)


def test_served_results_never_mix_generations_across_updates():
    rng = np.random.default_rng(42)
    graph = planted_partition(3, 18, p_intra=0.5, p_inter=0.04, seed=9)
    index = ScanIndex.build(graph)
    session = index.session(cache_size=16)
    other = index.session(cache_size=16, cache=session.cache)
    requests = [(2, 0.35), (3, 0.5), (2, 0.35), (5, 0.65)]
    for mu, epsilon in requests:
        session.serve(mu, epsilon)

    for insertions, deletions, edges in random_stream_batches(rng, graph, 4, 6):
        index.apply_updates(insertions=insertions, deletions=deletions)
        rebuilt = ScanIndex.build(
            from_edge_list(edges, num_vertices=graph.num_vertices)
        )
        for position, (mu, epsilon) in enumerate(requests):
            served = session.serve(mu, epsilon)
            if position == 0:
                # The very first serve after a mutation can never hit: the
                # generation the old entries were keyed under is gone.
                assert not served.from_cache
            cold = rebuilt.query(mu, epsilon)
            assert np.array_equal(served.to_clustering().labels, cold.labels)
            # A sibling session sharing the cache serves the same state.
            sibling = other.serve(mu, epsilon)
            assert np.array_equal(sibling.to_clustering().labels, cold.labels)
        # Sweeps through the same session agree with the current state too.
        for clustering, (mu, epsilon) in zip(
            session.query_many(requests), requests
        ):
            assert np.array_equal(
                clustering.labels, rebuilt.query(mu, epsilon).labels
            )
