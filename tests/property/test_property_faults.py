"""Property tests for the durability and supervision claims, via fault injection.

The claims under test, each driven by seeded randomized faults:

1. **Old-or-new.**  A save killed at a random byte offset of the column
   archive, or at any named window of the commit protocol, leaves the
   target loading as *exactly* the complete old artifact or the complete
   new one -- proven by comparing every loaded column against both, and by
   deep verification passing afterwards.
2. **Crash-safe in-place update.**  The same, where "new" is a patched
   index re-saved over its ancestor: an interrupted ``repro update`` leaves
   the pre-update or post-update lineage, never a mix.
3. **Worker deaths never change the index.**  A build whose pool worker is
   killed (real ``os._exit``) on a randomly chosen task is bit-identical to
   the serial build.

Faults are deterministic: all randomness is drawn from seeded generators
*here* and passed in as concrete offsets/task indices, so any failure
replays from its seed.
"""

import warnings

import numpy as np
import pytest

from repro import ScanIndex
from repro.graphs import from_edge_list, planted_partition
from repro.parallel import execute
from repro.parallel.execute import active_shared_segments
from repro.parallel.supervise import DegradedExecutionWarning, SupervisionPolicy
from repro.storage import IndexArtifact, verify_artifact
from repro.storage.format import COLUMNS_FILE
from repro.storage.integrity import find_backups, find_scratch, scratch_path
from repro.testing import FaultSpec, SimulatedCrash, inject

#: Guaranteed-dead pid for fabricated leftover scratch directories.
DEAD_PID = 2**22 + 4242


def _graph():
    return planted_partition(3, 12, p_intra=0.5, p_inter=0.03, seed=5)


def _snapshot(path):
    """Every stored column of an artifact, materialised off the mmap."""
    artifact = IndexArtifact.load(path, mmap_mode=None)
    return {name: column.copy() for name, column in artifact.columns.items()}


def _assert_is_exactly(path, *candidates):
    """The artifact at ``path`` equals one candidate snapshot, column for column."""
    loaded = _snapshot(path)
    for candidate in candidates:
        if set(candidate) == set(loaded) and all(
            np.array_equal(candidate[name], loaded[name]) for name in candidate
        ):
            return
    raise AssertionError(
        "artifact is neither the complete old nor the complete new state"
    )


@pytest.fixture(scope="module")
def indexes():
    """One graph, two distinct indexes (old and new state of one path)."""
    graph = _graph()
    return ScanIndex.build(graph, measure="cosine"), ScanIndex.build(
        graph, measure="jaccard"
    )


# ----------------------------------------------------------------------
# 1. Old-or-new under randomized torn writes
# ----------------------------------------------------------------------
def test_save_torn_at_random_byte_offsets_leaves_old_or_new(tmp_path, indexes):
    old_index, new_index = indexes
    probe = tmp_path / "probe.scanidx"
    new_index.save(probe)
    archive_size = (probe / COLUMNS_FILE).stat().st_size
    rng = np.random.default_rng(20260808)
    offsets = sorted(
        {int(k) for k in rng.integers(1, archive_size + 4096, size=12)}
    )
    path = tmp_path / "artifact.scanidx"
    old_index.save(path)
    old = _snapshot(path)
    new = _snapshot(probe)
    for offset in offsets:
        try:
            with inject(FaultSpec(site="storage.columns.write",
                                  after_bytes=offset)):
                new_index.save(path)
        except SimulatedCrash:
            pass  # offsets beyond the written size let the save complete
        _assert_is_exactly(path, old, new)
        verify_artifact(path, deep=True)
        # reset to the old state for the next offset (cleans scratch too)
        old_index.save(path)


@pytest.mark.parametrize("site", [
    "storage.header.write",
    "storage.commit.fsync",
    "storage.commit.pre_backup",
    "storage.commit.pre_swap",
    "storage.commit.pre_cleanup",
])
def test_save_crashed_in_every_commit_window_leaves_old_or_new(
    tmp_path, indexes, site
):
    old_index, new_index = indexes
    path = tmp_path / "artifact.scanidx"
    old_index.save(path)
    old = _snapshot(path)
    with inject(FaultSpec(site=site)):
        with pytest.raises(SimulatedCrash):
            new_index.save(path)
    # A pre_swap death leaves the target missing with the old state parked;
    # loading recovers it -- which is exactly what _snapshot exercises.
    _assert_is_exactly(path, old, _snapshot_new(tmp_path, new_index))
    report = verify_artifact(path, deep=True)
    assert report.checksums_checked == report.num_columns


def _snapshot_new(tmp_path, new_index):
    reference = tmp_path / "reference-new.scanidx"
    if not reference.exists():
        new_index.save(reference)
    return _snapshot(reference)


def test_interrupted_save_leaves_no_torn_scratch_behind_next_save(
    tmp_path, indexes
):
    old_index, new_index = indexes
    path = tmp_path / "artifact.scanidx"
    old_index.save(path)
    with inject(FaultSpec(site="storage.columns.write", after_bytes=64)):
        with pytest.raises(SimulatedCrash):
            new_index.save(path)
    # the dead writer's scratch lingers (this process's own pid)...
    assert find_scratch(path)
    # ...is reported by verify...
    assert verify_artifact(path).stale_scratch
    # ...and the next save sweeps it and commits normally.
    new_index.save(path)
    assert find_scratch(path) == [] and find_backups(path) == []
    _assert_is_exactly(path, _snapshot_new(tmp_path, new_index))


def test_fabricated_dead_writer_scratch_is_cleaned(tmp_path, indexes):
    old_index, _ = indexes
    path = tmp_path / "artifact.scanidx"
    old_index.save(path)
    leftover = scratch_path(path, pid=DEAD_PID)
    leftover.mkdir()
    (leftover / COLUMNS_FILE).write_bytes(b"torn garbage")
    assert verify_artifact(path).stale_scratch == [leftover.name]
    old_index.save(path)
    assert not leftover.exists()
    assert verify_artifact(path).stale_scratch == []


# ----------------------------------------------------------------------
# 2. Crash-safe in-place update
# ----------------------------------------------------------------------
@pytest.mark.parametrize("site,expect", [
    ("storage.commit.pre_swap", "old"),      # rollback window
    ("storage.commit.pre_cleanup", "new"),   # commit already durable
])
def test_interrupted_in_place_update_is_old_or_new_by_window(
    tmp_path, site, expect
):
    graph = from_edge_list(
        [(u, v) for u in range(10) for v in range(u + 1, 10)
         if (u * 7 + v) % 3 != 0]
    )
    index = ScanIndex.build(graph, measure="cosine")
    path = tmp_path / "artifact.scanidx"
    index.save(path)
    old = _snapshot(path)
    index.apply_updates(deletions=[(0, 1)], insertions=[(0, 9)])
    with inject(FaultSpec(site=site)):
        with pytest.raises(SimulatedCrash):
            index.save(path)
    recovered = ScanIndex.load(path, verify=True)
    if expect == "old":
        assert recovered.update_lineage == []
        assert set(_snapshot(path)) == set(old)
    else:
        assert len(recovered.update_lineage) == 1
    # Either way the surviving artifact answers queries consistently with
    # its own lineage: a rebuild on the matching edge set agrees.
    reference = (
        ScanIndex.build(graph, measure="cosine") if expect == "old" else index
    )
    assert recovered.query(4, 0.5).labels.tolist() == \
        reference.query(4, 0.5).labels.tolist()


# ----------------------------------------------------------------------
# 3. Worker deaths never change the built index
# ----------------------------------------------------------------------
def test_randomly_killed_worker_leaves_build_bit_identical(
    tmp_path, monkeypatch
):
    monkeypatch.setattr(execute, "PARALLEL_FLOOR_ARCS", 0)
    monkeypatch.setattr(
        execute, "SupervisionPolicy",
        lambda: SupervisionPolicy(task_timeout=10.0, retries=2,
                                  backoff_base=0.01, backoff_cap=0.05),
    )
    graph = _graph()
    serial = ScanIndex.build(graph, jobs=1)
    rng = np.random.default_rng(97)
    task = int(rng.integers(0, 2))  # both stages dispatch >= 2 tasks
    token = tmp_path / f"kill-task-{task}"
    with inject(FaultSpec(site="parallel.worker.task", action="kill",
                          task=task, times=1, token=str(token))):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            survived = ScanIndex.build(graph, jobs=2)
    assert token.stat().st_size == 1
    assert not [w for w in caught
                if issubclass(w.category, DegradedExecutionWarning)]
    assert active_shared_segments() == 0
    for a, b in zip(
        (serial.similarities.values, serial.neighbor_order.neighbors,
         serial.core_order.vertices, serial.core_order.thresholds),
        (survived.similarities.values, survived.neighbor_order.neighbors,
         survived.core_order.vertices, survived.core_order.thresholds),
    ):
        assert np.array_equal(np.asarray(a), np.asarray(b))
