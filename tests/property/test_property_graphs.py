"""Property-based tests for the graph substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    connected_components_bfs,
    connected_components_unionfind,
    from_edge_list,
    read_edge_list,
    write_edge_list,
)

settings.register_profile("repro", max_examples=40, deadline=None)
settings.load_profile("repro")


edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    min_size=0,
    max_size=120,
)


@given(edge_lists)
def test_graph_is_simple_and_symmetric(edges):
    graph = from_edge_list(edges, num_vertices=31)
    # No self loops, neighbor lists strictly increasing.
    for v in range(graph.num_vertices):
        neighbors = graph.neighbors(v)
        assert v not in neighbors
        assert np.all(np.diff(neighbors) > 0)
    # Symmetry: u in N(v) iff v in N(u).
    for u, v in graph.edges():
        assert graph.has_edge(u, v) and graph.has_edge(v, u)


@given(edge_lists)
def test_edge_count_matches_unique_undirected_pairs(edges):
    graph = from_edge_list(edges, num_vertices=31)
    expected = {(min(u, v), max(u, v)) for u, v in edges if u != v}
    assert graph.num_edges == len(expected)
    assert graph.num_arcs == 2 * len(expected)
    assert int(graph.degrees.sum()) == graph.num_arcs


@given(edge_lists)
def test_edge_ids_are_a_bijection(edges):
    graph = from_edge_list(edges, num_vertices=31)
    seen = set()
    for u, v in graph.edges():
        edge = graph.edge_id(u, v)
        assert edge not in seen
        seen.add(edge)
    assert seen == set(range(graph.num_edges))


@given(edge_lists)
def test_degree_orientation_keeps_every_edge_once(edges):
    graph = from_edge_list(edges, num_vertices=31)
    oriented = graph.degree_oriented_csr()
    assert oriented.indices.shape[0] == graph.num_edges
    assert sorted(oriented.edge_ids.tolist()) == list(range(graph.num_edges))


@given(edge_lists)
def test_components_bfs_equals_unionfind(edges):
    graph = from_edge_list(edges, num_vertices=31)
    bfs = connected_components_bfs(graph)
    unionfind = connected_components_unionfind(graph)
    mapping = {}
    for a, b in zip(bfs.tolist(), unionfind.tolist()):
        assert mapping.setdefault(a, b) == b


@given(
    edge_lists,
    st.one_of(st.none(), st.floats(0.1, 5.0)),
)
def test_edge_list_io_roundtrip(tmp_path_factory, edges, weight):
    graph = from_edge_list(
        edges,
        num_vertices=31,
        weights=None if weight is None else [weight] * len(edges),
    )
    path = tmp_path_factory.mktemp("io") / "graph.txt"
    write_edge_list(graph, path)
    loaded = read_edge_list(path, num_vertices=31)
    if graph.num_edges == 0:
        # An edge list file cannot record "weighted" for a graph with no
        # edges, so only the structure is compared in that corner case.
        assert loaded.num_edges == 0 and loaded.num_vertices == graph.num_vertices
    else:
        assert loaded == graph
