"""Tests for ScanIndex construction, queries, and hub/outlier classification."""

import numpy as np
import pytest

from repro import ApproximationConfig, ScanIndex
from repro.baselines import scan_clustering
from repro.core import UNCLUSTERED, classify_unclustered, get_cores
from repro.graphs import empty_graph, from_edge_list, planted_partition
from repro.parallel import Scheduler
from repro.similarity import compute_similarities


@pytest.fixture(scope="module")
def paper_index():
    from repro.graphs import paper_example_graph

    return ScanIndex.build(paper_example_graph())


@pytest.fixture(scope="module")
def community_index():
    graph = planted_partition(4, 30, p_intra=0.4, p_inter=0.01, seed=7)
    return ScanIndex.build(graph)


class TestConstruction:
    def test_reports_costs(self, paper_index):
        report = paper_index.construction_report
        assert report.work > 0
        assert report.span > 0
        assert report.wall_seconds >= 0.0

    def test_measure_recorded(self, paper_index):
        assert paper_index.measure == "cosine"

    def test_index_size_linear_in_edges(self, paper_index):
        # NO stores 2m entries and CO stores Σ deg(v) = 2m entries.
        assert paper_index.index_size_entries() == 4 * paper_index.graph.num_edges

    def test_build_from_precomputed_similarities(self, paper_graph):
        similarities = compute_similarities(paper_graph)
        index = ScanIndex.build_from_similarities(paper_graph, similarities)
        assert index.query(3, 0.6).num_clusters == 2

    def test_backends_produce_same_clustering(self, paper_graph):
        for backend in ("merge", "hash", "matmul"):
            index = ScanIndex.build(paper_graph, backend=backend)
            clustering = index.query(3, 0.6)
            assert clustering.num_clusters == 2

    def test_jaccard_index(self, paper_graph):
        index = ScanIndex.build(paper_graph, measure="jaccard")
        assert index.measure == "jaccard"
        assert index.query(2, 0.5).num_clusters >= 1

    def test_approximate_build_label(self, community_index):
        graph = community_index.graph
        approx = ScanIndex.build(
            graph, approximate=ApproximationConfig(num_samples=64, degree_threshold=4)
        )
        assert approx.measure == "approx_cosine"

    def test_approximate_config_measure_mismatch_is_reconciled(self, paper_graph):
        index = ScanIndex.build(
            paper_graph,
            measure="jaccard",
            approximate=ApproximationConfig(measure="cosine", num_samples=16),
        )
        assert index.measure == "approx_jaccard"

    def test_weighted_graph(self, weighted_graph):
        index = ScanIndex.build(weighted_graph)
        clustering = index.query(2, 0.3)
        assert clustering.num_vertices == weighted_graph.num_vertices


class TestQueryCorrectness:
    def test_paper_example_clustering(self, paper_index):
        clustering = paper_index.query(3, 0.6, classify_hubs_and_outliers=True)
        assert clustering.num_clusters == 2
        clusters = {frozenset(v.tolist()) for v in clustering.clusters().values()}
        assert clusters == {frozenset({0, 1, 2, 3}), frozenset({5, 6, 7, 10})}
        assert set(clustering.core_vertices().tolist()) == {0, 1, 2, 3, 5, 6, 7}
        assert clustering.hubs().tolist() == [4]
        assert clustering.outliers().tolist() == [8, 9]

    def test_cores_match_scan_definition_across_grid(self, community_index):
        graph = community_index.graph
        similarities = community_index.similarities
        for mu in (2, 3, 5, 8, 16):
            for epsilon in (0.1, 0.3, 0.5, 0.7, 0.9):
                clustering = community_index.query(mu, epsilon)
                reference = scan_clustering(
                    graph, mu, epsilon, similarities=similarities
                )
                assert np.array_equal(clustering.core_mask, reference.core_mask)

    def test_core_partition_matches_scan(self, community_index):
        graph = community_index.graph
        for mu, epsilon in [(2, 0.3), (3, 0.25), (5, 0.2), (4, 0.5)]:
            ours = community_index.query(mu, epsilon)
            reference = scan_clustering(
                graph, mu, epsilon, similarities=community_index.similarities
            )
            # Restricted to core vertices the two partitions must be identical
            # (border vertices may legitimately differ).
            cores = ours.core_vertices()
            mapping = {}
            for v in cores.tolist():
                key = ours.labels[v]
                assert mapping.setdefault(key, reference.labels[v]) == reference.labels[v]

    def test_clustered_non_cores_are_adjacent_to_a_similar_core(self, community_index):
        graph = community_index.graph
        clustering = community_index.query(3, 0.3)
        similarities = community_index.similarities
        for v in range(graph.num_vertices):
            if clustering.labels[v] == UNCLUSTERED or clustering.core_mask[v]:
                continue
            neighbors = graph.neighbors(v)
            assert any(
                clustering.core_mask[int(u)]
                and similarities.of(v, int(u)) >= 0.3
                and clustering.labels[int(u)] == clustering.labels[v]
                for u in neighbors
            )

    def test_deterministic_borders_reproducible(self, community_index):
        a = community_index.query(2, 0.3, deterministic_borders=True)
        b = community_index.query(2, 0.3, deterministic_borders=True)
        assert np.array_equal(a.labels, b.labels)

    def test_epsilon_one_only_keeps_identical_neighborhoods(self, paper_index):
        clustering = paper_index.query(2, 1.0)
        assert clustering.num_clustered_vertices == 0

    def test_epsilon_zero_clusters_everything_connected(self, paper_index):
        clustering = paper_index.query(2, 0.0)
        assert clustering.num_clusters == 1
        assert clustering.num_clustered_vertices == 11

    def test_mu_above_max_degree_gives_no_cores(self, paper_index):
        clustering = paper_index.query(64, 0.1)
        assert clustering.num_clusters == 0
        assert not clustering.core_mask.any()

    def test_invalid_parameters(self, paper_index):
        with pytest.raises(ValueError):
            paper_index.query(1, 0.5)
        with pytest.raises(ValueError):
            paper_index.query(2, 1.5)

    def test_get_cores_helper(self, paper_index):
        cores = get_cores(paper_index.core_order, 3, 0.6)
        assert set(cores.tolist()) == {0, 1, 2, 3, 5, 6, 7}

    def test_query_charges_less_work_than_construction(self, community_index):
        query_scheduler = Scheduler()
        community_index.query(5, 0.5, scheduler=query_scheduler)
        assert query_scheduler.counter.work < community_index.construction_report.work / 10


class TestHubsAndOutliers:
    def test_isolated_vertex_is_outlier(self):
        graph = from_edge_list([(0, 1), (1, 2), (0, 2)], num_vertices=4)
        index = ScanIndex.build(graph)
        clustering = index.query(2, 0.5, classify_hubs_and_outliers=True)
        assert clustering.outlier_mask[3]

    def test_hub_requires_two_distinct_clusters(self, paper_index):
        clustering = paper_index.query(3, 0.6)
        classify_unclustered(paper_index.graph, clustering)
        # Vertex 4 (paper 5) borders both clusters; vertices 8, 9 border at most one.
        assert clustering.hub_mask[4]
        assert clustering.outlier_mask[8] and clustering.outlier_mask[9]

    def test_all_clustered_means_no_hubs_or_outliers(self, paper_index):
        clustering = paper_index.query(2, 0.0, classify_hubs_and_outliers=True)
        assert not clustering.hub_mask.any()
        assert not clustering.outlier_mask.any()

    def test_partition_of_unclustered(self, community_index):
        clustering = community_index.query(4, 0.4, classify_hubs_and_outliers=True)
        unclustered = clustering.labels == UNCLUSTERED
        assert np.array_equal(
            clustering.hub_mask | clustering.outlier_mask, unclustered
        )
        assert not (clustering.hub_mask & clustering.outlier_mask).any()


class TestEdgeCases:
    def test_empty_graph_index(self):
        index = ScanIndex.build(empty_graph(5))
        clustering = index.query(2, 0.5)
        assert clustering.num_clusters == 0

    def test_single_edge_graph(self):
        index = ScanIndex.build(from_edge_list([(0, 1)]))
        clustering = index.query(2, 0.5)
        # Both endpoints have identical closed neighborhoods (similarity 1).
        assert clustering.num_clusters == 1
        assert clustering.num_clustered_vertices == 2
