"""Tests for the batched multi-(mu, epsilon) query planner."""

import numpy as np
import pytest

from repro import ScanIndex
from repro.core.sweep_query import query_many
from repro.graphs import from_edge_list, paper_example_graph, planted_partition
from repro.parallel import Scheduler


@pytest.fixture(scope="module")
def paper_index():
    return ScanIndex.build(paper_example_graph())


@pytest.fixture(scope="module")
def community_index():
    graph = planted_partition(4, 25, p_intra=0.45, p_inter=0.02, seed=11)
    return ScanIndex.build(graph)


def random_grid(rng, max_mu, count):
    """Randomized (mu, epsilon) pairs with deliberately repeated epsilons."""
    mus = rng.integers(2, max_mu + 3, size=count)
    epsilons = rng.choice(np.round(np.linspace(0.0, 1.0, 12), 4), size=count)
    return [(int(mu), float(eps)) for mu, eps in zip(mus, epsilons)]


class TestIdentityWithPerPairQueries:
    @pytest.mark.parametrize("deterministic", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_per_pair_queries(self, community_index, deterministic, seed):
        rng = np.random.default_rng(seed)
        pairs = random_grid(rng, community_index.graph.max_degree + 1, 30)
        batched = community_index.query_many(
            pairs, deterministic_borders=deterministic
        )
        assert len(batched) == len(pairs)
        for (mu, epsilon), clustering in zip(pairs, batched):
            single = community_index.query(
                mu, epsilon, deterministic_borders=deterministic
            )
            assert np.array_equal(clustering.labels, single.labels), (mu, epsilon)
            assert np.array_equal(clustering.core_mask, single.core_mask)
            assert clustering.mu == mu
            assert clustering.epsilon == epsilon

    def test_paper_example(self, paper_index):
        pairs = [(3, 0.6), (2, 0.5), (3, 0.6), (64, 0.1), (2, 1.0), (2, 0.0)]
        batched = paper_index.query_many(pairs)
        assert batched[0].num_clusters == 2
        assert batched[2].num_clusters == 2
        assert batched[3].num_clusters == 0       # mu above max closed degree
        assert batched[4].num_clustered_vertices == 0
        assert batched[5].num_clusters == 1

    def test_duplicate_pairs_share_results(self, paper_index):
        batched = paper_index.query_many([(3, 0.6)] * 4)
        for clustering in batched[1:]:
            assert np.array_equal(batched[0].labels, clustering.labels)

    def test_classify_hubs_and_outliers(self, paper_index):
        [clustering] = paper_index.query_many(
            [(3, 0.6)], classify_hubs_and_outliers=True
        )
        assert clustering.hubs().tolist() == [4]
        assert clustering.outliers().tolist() == [8, 9]


class TestPlannerEfficiency:
    def test_sweep_charges_less_work_than_per_pair_queries(self, community_index):
        epsilons = np.round(np.linspace(0.05, 0.95, 10), 4)
        pairs = [(mu, float(eps)) for mu in (2, 3, 5, 8, 13) for eps in epsilons]
        batch_scheduler = Scheduler()
        community_index.query_many(pairs, scheduler=batch_scheduler)
        single_scheduler = Scheduler()
        for mu, epsilon in pairs:
            community_index.query(mu, epsilon, scheduler=single_scheduler)
        assert batch_scheduler.counter.work < single_scheduler.counter.work

    def test_arcs_gathered_once_per_distinct_epsilon(self, community_index):
        # Ten pairs sharing one epsilon must cost barely more than one pair.
        one = Scheduler()
        community_index.query_many([(2, 0.3)], scheduler=one)
        ten = Scheduler()
        community_index.query_many(
            [(mu, 0.3) for mu in (2, 2, 3, 3, 5, 5, 8, 8, 13, 13)], scheduler=ten
        )
        per_pair = Scheduler()
        for mu in (2, 2, 3, 3, 5, 5, 8, 8, 13, 13):
            community_index.query(mu, 0.3, scheduler=per_pair)
        assert ten.counter.work < per_pair.counter.work

    def test_module_level_entry_point(self, community_index):
        results = query_many(
            community_index.graph,
            community_index.neighbor_order,
            community_index.core_order,
            [(2, 0.4), (3, 0.4)],
        )
        singles = [community_index.query(2, 0.4), community_index.query(3, 0.4)]
        for ours, theirs in zip(results, singles):
            assert np.array_equal(ours.labels, theirs.labels)


class TestEdgeCases:
    def test_empty_batch(self, paper_index):
        assert paper_index.query_many([]) == []

    def test_invalid_mu(self, paper_index):
        with pytest.raises(ValueError):
            paper_index.query_many([(1, 0.5)])

    def test_invalid_epsilon(self, paper_index):
        with pytest.raises(ValueError):
            paper_index.query_many([(2, 1.5)])

    def test_empty_graph(self):
        index = ScanIndex.build(from_edge_list([], num_vertices=3))
        results = index.query_many([(2, 0.5), (4, 0.1)])
        for clustering in results:
            assert clustering.num_clusters == 0

    def test_single_edge(self):
        index = ScanIndex.build(from_edge_list([(0, 1)]))
        [a, b] = index.query_many([(2, 0.5), (2, 1.0)])
        assert a.num_clustered_vertices == 2
        assert np.array_equal(b.labels, index.query(2, 1.0).labels)
