"""Tests for doubling (galloping) search over non-increasing arrays."""

import numpy as np
import pytest

from repro.core import (
    prefix_length_at_least,
    prefix_length_greater_than,
    prefix_lengths_at_least,
)
from repro.parallel import Scheduler


def brute_at_least(keys, threshold):
    count = 0
    for key in keys:
        if key >= threshold:
            count += 1
        else:
            break
    return count


class TestPrefixAtLeast:
    def test_empty_array(self):
        assert prefix_length_at_least(np.array([]), 0.5) == 0

    def test_all_above(self):
        assert prefix_length_at_least(np.array([0.9, 0.8, 0.7]), 0.5) == 3

    def test_none_above(self):
        assert prefix_length_at_least(np.array([0.4, 0.3]), 0.5) == 0

    def test_boundary_inclusive(self):
        assert prefix_length_at_least(np.array([0.9, 0.5, 0.1]), 0.5) == 2

    def test_single_element(self):
        assert prefix_length_at_least(np.array([0.5]), 0.5) == 1
        assert prefix_length_at_least(np.array([0.4]), 0.5) == 0

    @pytest.mark.parametrize("threshold", [0.0, 0.25, 0.5, 0.75, 0.99, 1.0])
    def test_matches_linear_scan_on_random_arrays(self, rng, threshold):
        for _ in range(20):
            keys = np.sort(rng.random(rng.integers(1, 200)))[::-1]
            assert prefix_length_at_least(keys, threshold) == brute_at_least(keys, threshold)

    def test_matches_linear_scan_with_ties(self):
        keys = np.array([0.8, 0.8, 0.8, 0.5, 0.5, 0.2])
        for threshold in (0.9, 0.8, 0.5, 0.2, 0.1):
            assert prefix_length_at_least(keys, threshold) == brute_at_least(keys, threshold)

    def test_integer_keys(self):
        keys = np.array([9, 7, 7, 3, 1])
        assert prefix_length_at_least(keys, 7) == 3
        assert prefix_length_at_least(keys, 8) == 1

    def test_charges_logarithmic_work(self):
        scheduler = Scheduler()
        keys = np.sort(np.random.default_rng(0).random(10_000))[::-1]
        prefix_length_at_least(keys, keys[100], scheduler=scheduler)
        # Work should be on the order of log(answer), far below a linear scan.
        assert scheduler.counter.work < 100

    def test_charges_even_on_empty_prefix(self):
        scheduler = Scheduler()
        prefix_length_at_least(np.array([0.1]), 0.9, scheduler=scheduler)
        assert scheduler.counter.work >= 1


class TestPrefixGreaterThan:
    def test_strict_threshold(self):
        keys = np.array([0.9, 0.5, 0.5, 0.1])
        assert prefix_length_greater_than(keys, 0.5) == 1
        assert prefix_length_at_least(keys, 0.5) == 3

    def test_empty_and_all_below(self):
        assert prefix_length_greater_than(np.array([]), 0.5) == 0
        assert prefix_length_greater_than(np.array([0.5, 0.4]), 0.5) == 0

    def test_all_above(self):
        assert prefix_length_greater_than(np.array([3.0, 2.0, 1.0]), 0.5) == 3

    def test_matches_linear_scan(self, rng):
        for _ in range(20):
            keys = np.sort(rng.integers(0, 10, size=rng.integers(1, 100)))[::-1]
            threshold = int(rng.integers(0, 10))
            expected = 0
            for key in keys:
                if key > threshold:
                    expected += 1
                else:
                    break
            assert prefix_length_greater_than(keys, threshold) == expected


class TestBatchedPrefixAtLeast:
    """The vectorised segmented search must agree with the scalar doubling search."""

    @staticmethod
    def random_segments(rng, num_segments, max_length):
        lengths = rng.integers(0, max_length, size=num_segments)
        segments = [np.sort(rng.random(int(length)))[::-1] for length in lengths]
        keys = np.concatenate(segments) if segments else np.zeros(0)
        starts = np.cumsum(lengths) - lengths
        return keys, starts.astype(np.int64), lengths.astype(np.int64)

    @pytest.mark.parametrize("threshold", [0.0, 0.25, 0.5, 0.9, 1.0])
    def test_matches_scalar_on_random_segments(self, rng, threshold):
        keys, starts, lengths = self.random_segments(rng, 50, 40)
        batched = prefix_lengths_at_least(keys, threshold, starts, lengths)
        for i in range(starts.size):
            segment = keys[starts[i]:starts[i] + lengths[i]]
            assert batched[i] == prefix_length_at_least(segment, threshold)

    def test_with_ties_and_boundaries(self):
        keys = np.array([0.8, 0.8, 0.5, 0.5, 0.2, 1.0, 0.4, 0.4])
        starts = np.array([0, 5, 8])
        lengths = np.array([5, 3, 0])
        for threshold in (0.9, 0.8, 0.5, 0.4, 0.2, 0.1):
            batched = prefix_lengths_at_least(keys, threshold, starts, lengths)
            for i in range(3):
                segment = keys[starts[i]:starts[i] + lengths[i]]
                assert batched[i] == prefix_length_at_least(segment, threshold)

    def test_no_segments(self):
        result = prefix_lengths_at_least(
            np.zeros(0), 0.5, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert result.shape == (0,)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            prefix_lengths_at_least(np.zeros(3), 0.5, np.array([0]), np.array([1, 2]))

    def test_charges_match_scalar_sum(self, rng):
        keys, starts, lengths = self.random_segments(rng, 30, 64)
        batched_scheduler = Scheduler()
        prefix_lengths_at_least(keys, 0.5, starts, lengths, scheduler=batched_scheduler)
        scalar_probe = Scheduler()
        for i in range(starts.size):
            segment = keys[starts[i]:starts[i] + lengths[i]]
            prefix_length_at_least(segment, 0.5, scheduler=scalar_probe)
        # Work adds up across the independent searches exactly as in the
        # scalar loop; the batched span composes max + fork-tree, so it is
        # bounded by the scalar span sum.
        assert batched_scheduler.counter.work == scalar_probe.counter.work
        assert batched_scheduler.counter.span <= scalar_probe.counter.span
