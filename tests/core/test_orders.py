"""Tests for the neighbor order and core order index structures."""

import numpy as np
import pytest

from repro.core import build_core_order, build_neighbor_order
from repro.graphs import paper_example_graph
from repro.similarity import compute_similarities, edge_similarity_reference


@pytest.fixture
def paper_index_parts(paper_graph):
    similarities = compute_similarities(paper_graph)
    neighbor_order = build_neighbor_order(paper_graph, similarities)
    core_order = build_core_order(paper_graph, neighbor_order)
    return paper_graph, similarities, neighbor_order, core_order


class TestNeighborOrder:
    def test_neighbors_sorted_by_non_increasing_similarity(self, community_graph):
        similarities = compute_similarities(community_graph)
        order = build_neighbor_order(community_graph, similarities)
        for v in range(community_graph.num_vertices):
            values = order.similarities_of(v)
            assert np.all(np.diff(values) <= 1e-12)

    def test_same_neighbor_set_as_graph(self, paper_index_parts):
        graph, _, order, _ = paper_index_parts
        for v in range(graph.num_vertices):
            assert sorted(order.neighbors_of(v).tolist()) == graph.neighbors(v).tolist()

    def test_paper_figure2_order_for_vertex_4(self, paper_index_parts):
        # Paper vertex 5 (0-based 4): NO = [6 (.58), 4 (.52)] -> 0-based [5, 3].
        _, _, order, _ = paper_index_parts
        assert order.neighbors_of(4).tolist() == [5, 3]

    def test_paper_figure2_order_for_vertex_3(self, paper_index_parts):
        # Paper vertex 4: NO = [2 (.89), 1 (.77), 3 (.77), 5 (.52)] -> [1, 0, 2, 4].
        _, _, order, _ = paper_index_parts
        assert order.neighbors_of(3).tolist() == [1, 0, 2, 4]

    def test_similarities_match_scores(self, paper_index_parts):
        graph, similarities, order, _ = paper_index_parts
        for v in range(graph.num_vertices):
            for neighbor, value in zip(order.neighbors_of(v), order.similarities_of(v)):
                assert value == pytest.approx(similarities.of(v, int(neighbor)))

    def test_epsilon_neighborhood_size_matches_definition(self, paper_index_parts):
        graph, similarities, order, _ = paper_index_parts
        for v in range(graph.num_vertices):
            for epsilon in (0.3, 0.6, 0.75, 0.9):
                expected = sum(
                    1 for u in graph.neighbors(v)
                    if similarities.of(v, int(u)) >= epsilon
                )
                assert order.epsilon_neighborhood_size(v, epsilon) == expected

    def test_epsilon_neighbors_prefix(self, paper_index_parts):
        _, similarities, order, _ = paper_index_parts
        neighbors = order.epsilon_neighbors(3, 0.75)
        assert all(similarities.of(3, int(u)) >= 0.75 for u in neighbors)

    def test_core_threshold_values(self, paper_index_parts):
        # Paper vertex 6 (0-based 5): thresholds .75 (mu=2), .75 (mu=3), .58 (mu=4).
        _, _, order, _ = paper_index_parts
        assert order.core_threshold(5, 2) == pytest.approx(0.75, abs=0.01)
        assert order.core_threshold(5, 3) == pytest.approx(0.75, abs=0.01)
        assert order.core_threshold(5, 4) == pytest.approx(0.58, abs=0.01)

    def test_core_threshold_mu_one_is_one(self, paper_index_parts):
        _, _, order, _ = paper_index_parts
        assert order.core_threshold(9, 1) == 1.0

    def test_core_threshold_exceeding_degree_is_none(self, paper_index_parts):
        _, _, order, _ = paper_index_parts
        assert order.core_threshold(9, 4) is None  # vertex 10 has degree 1

    def test_integer_and_comparison_sort_agree(self, community_graph):
        # The integer sort quantises the similarity scores, so neighbors whose
        # scores differ by less than the quantisation step may swap; the
        # similarity *sequences* must still agree to within that step.
        similarities = compute_similarities(community_graph)
        a = build_neighbor_order(community_graph, similarities, use_integer_sort=True)
        b = build_neighbor_order(community_graph, similarities, use_integer_sort=False)
        assert np.allclose(a.similarities, b.similarities, atol=2.0 / (1 << 20))
        for v in range(0, community_graph.num_vertices, 7):
            assert sorted(a.neighbors_of(v).tolist()) == sorted(b.neighbors_of(v).tolist())


class TestCoreOrder:
    def test_max_mu_is_max_closed_degree(self, paper_index_parts):
        graph, _, _, core_order = paper_index_parts
        assert core_order.max_mu == graph.max_degree + 1

    def test_candidates_are_vertices_with_enough_neighbors(self, paper_index_parts):
        graph, _, _, core_order = paper_index_parts
        for mu in range(2, core_order.max_mu + 1):
            vertices, _ = core_order.candidates(mu)
            expected = {v for v in range(graph.num_vertices) if graph.degree(v) >= mu - 1}
            assert set(vertices.tolist()) == expected

    def test_paper_figure3_co3_membership(self, paper_index_parts):
        # CO[3] holds the nine vertices whose closed neighborhood has >= 3
        # members, i.e. paper vertices 1-9 (0-based 0-8).
        _, _, _, core_order = paper_index_parts
        vertices, _ = core_order.candidates(3)
        assert set(vertices.tolist()) == set(range(9))

    def test_thresholds_non_increasing(self, paper_index_parts):
        _, _, _, core_order = paper_index_parts
        for mu in range(2, core_order.max_mu + 1):
            _, thresholds = core_order.candidates(mu)
            assert np.all(np.diff(thresholds) <= 1e-12)

    def test_thresholds_match_neighbor_order(self, paper_index_parts):
        _, _, neighbor_order, core_order = paper_index_parts
        for mu in range(2, core_order.max_mu + 1):
            vertices, thresholds = core_order.candidates(mu)
            for v, threshold in zip(vertices.tolist(), thresholds.tolist()):
                assert threshold == pytest.approx(neighbor_order.core_threshold(v, mu))

    def test_out_of_range_mu_has_no_candidates(self, paper_index_parts):
        _, _, _, core_order = paper_index_parts
        assert core_order.candidates(1)[0].size == 0
        assert core_order.candidates(core_order.max_mu + 5)[0].size == 0

    def test_cores_match_brute_force(self, community_graph):
        similarities = compute_similarities(community_graph)
        neighbor_order = build_neighbor_order(community_graph, similarities)
        core_order = build_core_order(community_graph, neighbor_order)
        for mu in (2, 3, 5, 9):
            for epsilon in (0.2, 0.4, 0.6):
                expected = set()
                for v in range(community_graph.num_vertices):
                    similar = sum(
                        1 for u in community_graph.neighbors(v)
                        if similarities.of(v, int(u)) >= epsilon
                    )
                    if similar + 1 >= mu:
                        expected.add(v)
                cores = set(core_order.cores(mu, epsilon).tolist())
                assert cores == expected

    def test_paper_example_cores(self, paper_index_parts):
        # With (mu, eps) = (3, 0.6): cores are paper vertices 1,2,3,4,6,7,8
        # (0-based 0,1,2,3,5,6,7).
        _, _, _, core_order = paper_index_parts
        assert set(core_order.cores(3, 0.6).tolist()) == {0, 1, 2, 3, 5, 6, 7}

    def test_core_threshold_lookup(self, paper_index_parts):
        _, _, _, core_order = paper_index_parts
        assert core_order.core_threshold(5, 3) == pytest.approx(0.75, abs=0.01)
        assert core_order.core_threshold(9, 4) is None

    def test_integer_and_comparison_sort_agree(self, community_graph):
        similarities = compute_similarities(community_graph)
        order = build_neighbor_order(community_graph, similarities)
        a = build_core_order(community_graph, order, use_integer_sort=True)
        b = build_core_order(community_graph, order, use_integer_sort=False)
        for mu in (2, 4, 8):
            assert set(a.cores(mu, 0.5).tolist()) == set(b.cores(mu, 0.5).tolist())
