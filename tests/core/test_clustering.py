"""Tests for the Clustering result type."""

import numpy as np
import pytest

from repro.core import UNCLUSTERED, Clustering


def make(labels, cores=None, **kwargs):
    labels = np.asarray(labels)
    if cores is None:
        cores = labels != UNCLUSTERED
    return Clustering(labels, np.asarray(cores, dtype=bool), **kwargs)


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Clustering(np.array([0, 1]), np.array([True]))

    def test_masks_default_to_false(self):
        clustering = make([0, 0, UNCLUSTERED])
        assert not clustering.hub_mask.any()
        assert not clustering.outlier_mask.any()

    def test_parameters_recorded(self):
        clustering = make([0], mu=7, epsilon=0.3)
        assert clustering.mu == 7 and clustering.epsilon == 0.3


class TestQueries:
    def test_counts(self):
        clustering = make([0, 0, 1, UNCLUSTERED, 1])
        assert clustering.num_vertices == 5
        assert clustering.num_clusters == 2
        assert clustering.num_clustered_vertices == 4

    def test_no_clusters(self):
        clustering = make([UNCLUSTERED] * 3)
        assert clustering.num_clusters == 0
        assert clustering.num_clustered_vertices == 0

    def test_is_clustered_and_cluster_of(self):
        clustering = make([5, UNCLUSTERED])
        assert clustering.is_clustered(0)
        assert not clustering.is_clustered(1)
        assert clustering.cluster_of(0) == 5
        assert clustering.cluster_of(1) is None

    def test_core_vertices(self):
        clustering = make([0, 0, 0], cores=[True, False, True])
        assert clustering.core_vertices().tolist() == [0, 2]
        assert clustering.is_core(0) and not clustering.is_core(1)

    def test_unclustered_vertices(self):
        clustering = make([0, UNCLUSTERED, 1, UNCLUSTERED])
        assert clustering.unclustered_vertices().tolist() == [1, 3]

    def test_hubs_and_outliers_views(self):
        clustering = make([UNCLUSTERED, UNCLUSTERED, 0])
        clustering.hub_mask[0] = True
        clustering.outlier_mask[1] = True
        assert clustering.hubs().tolist() == [0]
        assert clustering.outliers().tolist() == [1]


class TestViews:
    def test_clusters_mapping(self):
        clustering = make([3, 3, 7, UNCLUSTERED])
        clusters = clustering.clusters()
        assert set(clusters.keys()) == {3, 7}
        assert clusters[3].tolist() == [0, 1]
        assert clusters[7].tolist() == [2]

    def test_cluster_sizes_sorted_descending(self):
        clustering = make([0, 0, 0, 1, 1, 2])
        assert clustering.cluster_sizes().tolist() == [3, 2, 1]

    def test_cluster_sizes_empty(self):
        assert make([UNCLUSTERED]).cluster_sizes().size == 0

    def test_canonical_labels_renumber_in_order(self):
        clustering = make([9, UNCLUSTERED, 9, 4])
        assert clustering.canonical_labels().tolist() == [0, UNCLUSTERED, 0, 1]

    def test_same_partition_ignores_label_values(self):
        a = make([5, 5, 8, UNCLUSTERED])
        b = make([1, 1, 0, UNCLUSTERED])
        assert a.same_partition_as(b)

    def test_different_partitions_detected(self):
        a = make([0, 0, 1])
        b = make([0, 1, 1])
        assert not a.same_partition_as(b)

    def test_same_partition_requires_equal_length(self):
        assert not make([0]).same_partition_as(make([0, 0]))
