"""Tests for the fault-injection harness itself (``repro.testing.faults``).

The chaos suite's conclusions are only as trustworthy as the harness that
injects its failures, so the harness gets its own proofs: arming round-trips
through the environment (how worker processes inherit plans), trigger
predicates (site, task, byte threshold, bounded count) fire exactly as
specified, and every fault point named in the registry is actually
instrumented in the library -- and vice versa.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.testing import (
    FAULT_SITES,
    FaultError,
    FaultSpec,
    SimulatedCrash,
    active_plan,
    fault_point,
    inject,
)
from repro.testing.faults import ENV_VAR

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultError, match="unknown fault site"):
            FaultSpec(site="storage.no.such.site").validate()

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultError, match="unknown fault action"):
            FaultSpec(site="parallel.dispatch", action="explode").validate()

    def test_unknown_error_type_rejected(self):
        with pytest.raises(FaultError, match="unknown error type"):
            FaultSpec(site="parallel.dispatch", action="raise",
                      error="KeyboardInterrupt").validate()

    def test_bounded_kill_requires_token(self):
        with pytest.raises(FaultError, match="token"):
            FaultSpec(site="parallel.worker.task", action="kill",
                      times=1).validate()

    def test_inject_validates_eagerly(self):
        with pytest.raises(FaultError):
            with inject(FaultSpec(site="typo.site")):
                pass  # pragma: no cover - arming must already have failed


# ----------------------------------------------------------------------
# Arming and the environment round-trip
# ----------------------------------------------------------------------
class TestInject:
    def test_noop_when_nothing_armed(self):
        assert active_plan() == ()
        fault_point("storage.commit.pre_swap")  # must not raise

    def test_plan_visible_and_mirrored_to_environ(self):
        spec = FaultSpec(site="storage.commit.pre_swap")
        assert ENV_VAR not in os.environ
        with inject(spec):
            assert active_plan() == (spec,)
            assert ENV_VAR in os.environ
        assert active_plan() == ()
        assert ENV_VAR not in os.environ

    def test_nesting_replaces_and_restores(self):
        outer = FaultSpec(site="storage.commit.pre_backup")
        inner = FaultSpec(site="storage.commit.pre_cleanup")
        with inject(outer):
            with inject(inner):
                assert active_plan() == (inner,)
            # The contextmanager restores the *environment*; the in-process
            # plan re-parses from it on the next fault_point/active_plan.
            assert active_plan() == (outer,)

    def test_child_process_inherits_plan_via_environment(self):
        # The real mechanism worker processes rely on: a subprocess that
        # only sees os.environ must fire the armed fault.
        code = (
            "from repro.testing import fault_point, SimulatedCrash\n"
            "try:\n"
            "    fault_point('storage.commit.pre_swap')\n"
            "except SimulatedCrash:\n"
            "    raise SystemExit(42)\n"
            "raise SystemExit(1)\n"
        )
        with inject(FaultSpec(site="storage.commit.pre_swap")):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(SRC.parent)
            result = subprocess.run([sys.executable, "-c", code], env=env)
        assert result.returncode == 42


# ----------------------------------------------------------------------
# Trigger predicates
# ----------------------------------------------------------------------
class TestTriggers:
    def test_crash_raises_simulated_crash_and_not_exception(self):
        with inject(FaultSpec(site="storage.commit.pre_swap")):
            with pytest.raises(SimulatedCrash) as info:
                fault_point("storage.commit.pre_swap")
        # The whole point: `except Exception` cleanup must not catch it.
        assert not isinstance(info.value, Exception)
        assert info.value.site == "storage.commit.pre_swap"

    def test_site_mismatch_never_fires(self):
        with inject(FaultSpec(site="storage.commit.pre_swap")):
            fault_point("storage.commit.pre_backup")  # must not raise

    def test_raise_action_raises_named_error(self):
        with inject(FaultSpec(site="parallel.dispatch", action="raise",
                              error="MemoryError")):
            with pytest.raises(MemoryError, match="injected"):
                fault_point("parallel.dispatch")

    def test_after_bytes_threshold(self):
        with inject(FaultSpec(site="storage.columns.write", after_bytes=100)):
            fault_point("storage.columns.write", bytes_written=99)
            with pytest.raises(SimulatedCrash, match="after 100 bytes"):
                fault_point("storage.columns.write", bytes_written=100)

    def test_byte_armed_fault_ignores_byteless_reaches(self):
        with inject(FaultSpec(site="storage.columns.write", after_bytes=1)):
            fault_point("storage.columns.write")  # no count -> no fire

    def test_task_gating(self):
        with inject(FaultSpec(site="parallel.worker.task", action="raise",
                              task=3)):
            fault_point("parallel.worker.task", task=2)
            with pytest.raises(OSError):
                fault_point("parallel.worker.task", task=3)

    def test_hang_action_sleeps_then_continues(self, monkeypatch):
        # A wedge is a delay, not a death: the reach sleeps the requested
        # seconds and then falls through so the caller proceeds normally.
        import repro.testing.faults as faults

        naps = []
        monkeypatch.setattr(faults.time, "sleep", naps.append)
        with inject(FaultSpec(site="serve.worker.request", action="hang",
                              seconds=0.25, times=1)):
            fault_point("serve.worker.request")  # wedged, then returns
            fault_point("serve.worker.request")  # spent: no second nap
        assert naps == [0.25]

    def test_hang_action_defaults_to_effectively_forever(self, monkeypatch):
        import repro.testing.faults as faults

        naps = []
        monkeypatch.setattr(faults.time, "sleep", naps.append)
        with inject(FaultSpec(site="serve.worker.request", action="hang")):
            fault_point("serve.worker.request")
        assert naps == [3600.0]

    def test_times_bounds_in_process_firings(self):
        with inject(FaultSpec(site="parallel.dispatch", action="raise",
                              times=2)):
            for _ in range(2):
                with pytest.raises(OSError):
                    fault_point("parallel.dispatch")
            fault_point("parallel.dispatch")  # spent: passes from now on
            fault_point("parallel.dispatch")

    def test_token_counts_firings_across_plans(self, tmp_path):
        # The cross-process counter: a fresh plan (fresh process stand-in)
        # sees the token file and knows the fault is spent.
        token = tmp_path / "fired"
        spec = FaultSpec(site="parallel.dispatch", action="raise",
                         times=1, token=str(token))
        with inject(spec):
            with pytest.raises(OSError):
                fault_point("parallel.dispatch")
        assert token.stat().st_size == 1
        with inject(spec):  # simulates the retry in a replacement process
            fault_point("parallel.dispatch")

    def test_rearming_resets_in_process_counts(self):
        spec = FaultSpec(site="parallel.dispatch", action="raise", times=1)
        for _ in range(2):
            with inject(spec):
                with pytest.raises(OSError):
                    fault_point("parallel.dispatch")


# ----------------------------------------------------------------------
# Registry <-> instrumentation cross-check
# ----------------------------------------------------------------------
def _instrumented_sites() -> set[str]:
    """Every registered site name quoted in library code under src/repro.

    A site reaches :func:`fault_point` either directly
    (``fault_point("storage.header.write")``) or through a wrapper holding
    the name (the byte-counting writer proxy), so the honest signal is the
    *quoted string literal* -- docstrings refer to sites in double backticks,
    never quotes.
    """
    import re

    sites = set()
    pattern = re.compile(
        "|".join('"' + re.escape(site) + '"' for site in FAULT_SITES)
    )
    for path in SRC.rglob("*.py"):
        if path.name == "faults.py":
            continue
        sites |= {match.strip('"') for match in pattern.findall(path.read_text())}
    return sites


def test_every_registered_site_is_instrumented():
    missing = set(FAULT_SITES) - _instrumented_sites()
    assert not missing, f"registered but never reached: {sorted(missing)}"


def test_every_instrumented_site_is_registered():
    # The converse direction scans literal fault_point("...") call sites:
    # an unregistered name there would validate-fail every plan arming it.
    import re

    unknown = set()
    for path in SRC.rglob("*.py"):
        if path.name == "faults.py":
            continue
        unknown |= set(
            re.findall(r"fault_point\(\s*\"([^\"]+)\"", path.read_text())
        ) - set(FAULT_SITES)
    assert not unknown, f"instrumented but unregistered: {sorted(unknown)}"
