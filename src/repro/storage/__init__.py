"""Durable storage of the SCAN index as a columnar artifact.

The build-once/serve-many separation of the paper only pays off if the index
survives the process that built it.  This package flattens a
:class:`~repro.core.index.ScanIndex` into named numpy columns
(:class:`~repro.storage.artifact.IndexArtifact`), persists them as an
uncompressed ``.npz`` plus a JSON header, and memory-maps them back on load
-- the single construction seam behind ``ScanIndex.save`` / ``ScanIndex.load``
and the CLI's ``index build`` / ``index query`` workflow.

Because that one artifact is also the thing every later session depends on,
persistence is crash-safe and verifiable (:mod:`repro.storage.integrity`):
saves commit through an fsynced rename protocol that can only ever leave the
old-valid or new-valid artifact, headers carry per-column CRC-32 checksums,
``verify_artifact`` proves a directory consistent (``repro index verify``),
and a load that finds the target missing mid-commit rolls back from the
parked backup with a lineage check.
"""

from .artifact import IndexArtifact, load_index, save_index
from .format import FORMAT_NAME, FORMAT_VERSION, ArtifactFormatError
from .integrity import (
    ArtifactIntegrityError,
    VerifyReport,
    clean_stale_scratch,
    recover_artifact,
    verify_artifact,
)

__all__ = [
    "IndexArtifact",
    "load_index",
    "save_index",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ArtifactFormatError",
    "ArtifactIntegrityError",
    "VerifyReport",
    "clean_stale_scratch",
    "recover_artifact",
    "verify_artifact",
]
