"""Durable storage of the SCAN index as a columnar artifact.

The build-once/serve-many separation of the paper only pays off if the index
survives the process that built it.  This package flattens a
:class:`~repro.core.index.ScanIndex` into named numpy columns
(:class:`~repro.storage.artifact.IndexArtifact`), persists them as an
uncompressed ``.npz`` plus a JSON header, and memory-maps them back on load
-- the single construction seam behind ``ScanIndex.save`` / ``ScanIndex.load``
and the CLI's ``index build`` / ``index query`` workflow.
"""

from .artifact import IndexArtifact, load_index, save_index
from .format import FORMAT_NAME, FORMAT_VERSION, ArtifactFormatError

__all__ = [
    "IndexArtifact",
    "load_index",
    "save_index",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ArtifactFormatError",
]
