"""The columnar index artifact: a durable, loadable form of :class:`ScanIndex`.

The whole point of the paper's index-based design is that one expensive build
amortises over many cheap ``(μ, ε)`` queries -- but an index that lives only
as in-process dataclasses amortises over one process at most.
:class:`IndexArtifact` flattens everything a query path needs (the graph's
CSR arrays and arc -> edge mapping, per-edge similarities, the neighbor order
``NO``, the core order ``CO``, and measure/backend metadata) into a set of
named numpy columns with save/load, so an index built once can be served by
any number of later processes without recomputing similarities or re-sorting
either order.

Typical usage goes through the :class:`~repro.core.index.ScanIndex` seam::

    index = ScanIndex.build(graph, measure="cosine")
    index.save("artifacts/orkut.scanidx")
    ...
    index = ScanIndex.load("artifacts/orkut.scanidx")   # columns memory-mapped
    clusterings = index.query_many([(5, 0.6), (5, 0.7), (8, 0.4)])

See :mod:`repro.storage.format` for the on-disk layout.  A loaded artifact
is also what the serving loop sits on: ``index.session()``
(:mod:`repro.serve`) keeps recycled buffers and an ε-snapped result cache
over exactly these memory-mapped columns, so many serving processes can
share one artifact's pages.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import obs
from ..core.core_order import CoreOrder
from ..core.index import ScanIndex
from ..core.neighbor_order import NeighborOrder
from ..graphs.graph import Graph
from ..parallel.metrics import CostReport
from ..similarity.exact import EdgeSimilarities
from .format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    check_column_shapes,
    read_columns,
    read_header,
    validate_columns,
    write_columns,
    write_header,
)
from .integrity import (
    clean_stale_scratch,
    column_checksum,
    commit_artifact,
    fsync_scratch,
    recover_artifact,
    scratch_path,
    verify_checksums,
)

__all__ = ["IndexArtifact", "save_index", "load_index"]


@dataclass
class IndexArtifact:
    """A :class:`ScanIndex` flattened into named numpy columns plus metadata.

    Attributes
    ----------
    columns:
        Mapping from column name to a 1-D numpy array; see
        :mod:`repro.storage.format` for the exact inventory.  Loaded columns
        are read-only ``np.memmap`` views into the archive.
    meta:
        The parsed (or to-be-written) JSON header.
    """

    columns: dict[str, np.ndarray]
    meta: dict

    # ------------------------------------------------------------------
    # Conversion to and from the in-process index
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, index: ScanIndex) -> "IndexArtifact":
        """Flatten an in-process index into its columnar form."""
        graph = index.graph
        columns: dict[str, np.ndarray] = {
            "graph_indptr": np.ascontiguousarray(graph.indptr, dtype=np.int64),
            "graph_indices": np.ascontiguousarray(graph.indices, dtype=np.int64),
            "graph_arc_edge_ids": np.ascontiguousarray(
                graph.arc_edge_ids, dtype=np.int64
            ),
            "edge_similarities": np.ascontiguousarray(
                index.similarities.values, dtype=np.float64
            ),
            "no_neighbors": np.ascontiguousarray(
                index.neighbor_order.neighbors, dtype=np.int64
            ),
            "no_similarities": np.ascontiguousarray(
                index.neighbor_order.similarities, dtype=np.float64
            ),
            "co_indptr": np.ascontiguousarray(index.core_order.indptr, dtype=np.int64),
            "co_vertices": np.ascontiguousarray(
                index.core_order.vertices, dtype=np.int64
            ),
            "co_thresholds": np.ascontiguousarray(
                index.core_order.thresholds, dtype=np.float64
            ),
        }
        if graph.arc_weights is not None:
            columns["graph_arc_weights"] = np.ascontiguousarray(
                graph.arc_weights, dtype=np.float64
            )
        if index.similarities.numerators is not None:
            columns["edge_numerators"] = np.ascontiguousarray(
                index.similarities.numerators, dtype=np.float64
            )
        report = index.construction_report
        meta = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "measure": index.measure,
            "backend": index.similarities.backend,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "weighted": graph.is_weighted,
            # Per-column CRC-32 (format version 3): deep verification can
            # prove the stored bytes are the ones this process computed.
            "columns": {
                name: {
                    "dtype": str(column.dtype),
                    "length": int(column.shape[0]),
                    "crc32": column_checksum(column),
                }
                for name, column in columns.items()
            },
            "construction": {
                "label": report.label,
                "work": report.work,
                "span": report.span,
                "wall_seconds": report.wall_seconds,
            },
            # Update lineage: one record per dynamic batch applied since the
            # original build (format version 2), so a re-saved patched
            # artifact carries its mutation history.
            "updates": [dict(record) for record in index.update_lineage],
        }
        return cls(columns=columns, meta=meta)

    def to_index(self) -> ScanIndex:
        """Reassemble a queryable :class:`ScanIndex` from the columns.

        Pure reconstruction: the graph's derived structures come straight
        from the stored columns (no validation pass, no edge-id search), the
        two orders are wrapped as-is (no re-sorting), and no similarity is
        ever recomputed.  The construction report of the original build is
        restored so benchmarks can still attribute the build cost.
        """
        columns = self.columns
        graph = Graph.from_index_columns(
            columns["graph_indptr"],
            columns["graph_indices"],
            columns.get("graph_arc_weights"),
            columns["graph_arc_edge_ids"],
        )
        similarities = EdgeSimilarities(
            graph,
            columns["edge_similarities"],
            self.meta["measure"],
            self.meta.get("backend", ""),
            numerators=self.columns.get("edge_numerators"),
        )
        neighbor_order = NeighborOrder(
            indptr=graph.indptr,
            neighbors=columns["no_neighbors"],
            similarities=columns["no_similarities"],
        )
        core_order = CoreOrder(
            indptr=columns["co_indptr"],
            vertices=columns["co_vertices"],
            thresholds=columns["co_thresholds"],
        )
        construction = self.meta.get("construction", {})
        report = CostReport(
            label=construction.get("label", f"index-construction[{self.meta['measure']}]"),
            work=float(construction.get("work", 0.0)),
            span=float(construction.get("span", 0.0)),
            wall_seconds=float(construction.get("wall_seconds", 0.0)),
            details={"loaded": True},
        )
        return ScanIndex(
            graph=graph,
            similarities=similarities,
            neighbor_order=neighbor_order,
            core_order=core_order,
            construction_report=report,
            # Version-1 artifacts predate lineage and load as lineage-free.
            update_lineage=[dict(record) for record in self.meta.get("updates", [])],
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the artifact directory (``header.json`` + ``columns.npz``).

        Crash-safe: both files land in a scratch sibling which is fsynced
        to stable storage *before* any rename, then swapped in through the
        backup-and-rename commit of :func:`repro.storage.integrity.
        commit_artifact`.  A save that dies at any instant -- mid-archive,
        between the renames, before cleanup -- leaves the target as either
        the complete old artifact, the complete new one, or (in the
        narrow between-renames window) the old artifact parked under a
        backup name from which the next load rolls back.  Never a torn mix,
        and never a directory mixing new columns with a stale header (which
        would pass validation and silently serve wrong scores).  Leftover
        scratch directories of dead writers are swept on entry.
        """
        directory = Path(path)
        directory.parent.mkdir(parents=True, exist_ok=True)
        started = time.perf_counter()
        with obs.span(
            "storage.save", columns=len(self.columns), bytes=self.nbytes()
        ):
            clean_stale_scratch(directory)
            scratch = scratch_path(directory)
            scratch.mkdir()
            try:
                write_columns(scratch, self.columns)
                write_header(scratch, self.meta)
                fsync_scratch(scratch)
                commit_artifact(scratch, directory)
            except Exception:
                # Ordinary failures (disk full, permission) tidy their
                # staging; simulated crashes are BaseExceptions and leave the
                # torn state on disk exactly as a real death would.
                shutil.rmtree(scratch, ignore_errors=True)
                raise
        obs.histogram("storage.save_seconds").observe(time.perf_counter() - started)
        return directory

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        mmap_mode: str | None = "r",
        verify: bool = False,
    ) -> "IndexArtifact":
        """Read an artifact directory, memory-mapping columns by default.

        Every load runs the fast integrity check: header parse, per-column
        dtype/length cross-check, and graph-shape consistency.
        ``verify=True`` additionally compares every column's CRC-32 against
        the header (the deep check; reads every byte).  A target directory
        missing because a previous writer died between its commit renames
        is first recovered from its parked backup
        (:func:`repro.storage.integrity.recover_artifact`), so an
        interrupted in-place ``repro update`` can never strand its readers.

        Raises :class:`~repro.storage.format.ArtifactFormatError` when the
        directory is not an artifact, the header is corrupt, the format
        version does not match, or the stored columns disagree with the
        header's dtype/length records -- and its subclass
        :class:`~repro.storage.integrity.ArtifactIntegrityError` when
        stored bytes fail their checksums or recovery is unsafe.
        """
        directory = Path(path)
        started = time.perf_counter()
        with obs.span("storage.load", verify=verify):
            if not directory.exists():
                recover_artifact(directory)
            header = read_header(directory)
            columns = read_columns(directory, mmap_mode=mmap_mode)
            validate_columns(header, columns)
            check_column_shapes(header, columns, directory)
            if verify:
                verify_checksums(header, columns, context=str(directory))
        obs.histogram("storage.load_seconds").observe(time.perf_counter() - started)
        return cls(columns=columns, meta=header)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices of the stored graph."""
        return int(self.meta["num_vertices"])

    @property
    def num_edges(self) -> int:
        """Number of undirected edges of the stored graph."""
        return int(self.meta["num_edges"])

    @property
    def measure(self) -> str:
        """Similarity measure the stored index was built with."""
        return str(self.meta["measure"])

    def nbytes(self) -> int:
        """Total payload size of the columns in bytes."""
        return int(sum(column.nbytes for column in self.columns.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexArtifact(n={self.num_vertices}, m={self.num_edges}, "
            f"measure={self.measure!r}, {len(self.columns)} columns, "
            f"{self.nbytes() / 1e6:.1f} MB)"
        )


def save_index(index: ScanIndex, path: str | Path) -> Path:
    """Flatten ``index`` and write it to ``path`` (see :class:`IndexArtifact`)."""
    return IndexArtifact.from_index(index).save(path)


def load_index(
    path: str | Path, *, mmap_mode: str | None = "r", verify: bool = False
) -> ScanIndex:
    """Load an artifact from ``path`` and reassemble the queryable index."""
    return IndexArtifact.load(path, mmap_mode=mmap_mode, verify=verify).to_index()
