"""On-disk format of the columnar SCAN index artifact.

An index artifact is a directory with exactly two entries:

``header.json``
    A small JSON document describing the payload.  Fields:

    * ``format`` -- the literal string ``"repro-scan-index"``;
    * ``version`` -- integer format version (:data:`FORMAT_VERSION`);
      readers accept any version in :data:`SUPPORTED_VERSIONS` and reject
      everything else.  Version 2 added the ``updates`` lineage field;
      version-1 artifacts load as lineage-free.  Version 3 added per-column
      ``crc32`` checksums; version-2 artifacts load but deep verification
      has nothing recorded to check;
    * ``measure`` / ``backend`` -- similarity measure and engine the index
      was built with (``backend`` is ``"lsh"`` for approximate indexes);
    * ``num_vertices`` / ``num_edges`` / ``weighted`` -- graph shape;
    * ``columns`` -- mapping from column name to ``{"dtype", "length",
      "crc32"}``; dtype/length are validated against the loaded arrays on
      every load, the CRC-32 of the raw column bytes on demand
      (:func:`repro.storage.integrity.verify_artifact` with ``deep=True``,
      or ``repro index verify --deep``);
    * ``construction`` -- the work/span/wall-clock record of the original
      construction (``label``, ``work``, ``span``, ``wall_seconds``);
    * ``updates`` (version ≥ 2, optional) -- the update lineage: one record
      per dynamic batch applied since the original build (``insertions``,
      ``deletions``, ``cancelled``, ``affected_edges``,
      ``affected_vertices``), in application order.  An artifact re-saved
      after ``repro update`` carries its full mutation history, staged and
      swapped in atomically like any other save.

``columns.npz``
    An *uncompressed* ``np.savez`` archive holding one named numpy column per
    index component.  With ``n`` vertices, ``m`` edges and ``max_mu`` the
    largest closed-neighborhood size, the columns are:

    ==========================  =========  ===========  =========================
    column                      dtype      length       contents
    ==========================  =========  ===========  =========================
    ``graph_indptr``            int64      ``n + 1``    CSR offsets
    ``graph_indices``           int64      ``2m``       CSR neighbor ids
    ``graph_arc_edge_ids``      int64      ``2m``       arc -> canonical edge id
    ``graph_arc_weights``       float64    ``2m``       per-arc weights
                                                        (weighted graphs only)
    ``edge_similarities``       float64    ``m``        per-edge similarity
    ``edge_numerators``         float64    ``m``        closed-neighborhood dot
                                                        products (optional;
                                                        version ≥ 2, exact
                                                        indexes only -- feeds
                                                        the dynamic updates)
    ``no_neighbors``            int64      ``2m``       neighbor order ``NO``
                                                        (offsets = graph_indptr)
    ``no_similarities``         float64    ``2m``       similarities along NO
    ``co_indptr``               int64      ``max_mu+2`` core order offsets by μ
    ``co_vertices``             int64      ``2m``       core order ``CO`` entries
    ``co_thresholds``           float64    ``2m``       core thresholds along CO
    ==========================  =========  ===========  =========================

Because the archive members are stored uncompressed, :func:`read_columns`
can memory-map each column straight out of the zip file (``mmap_mode="r"``
by default): loading an artifact touches no column data until a query reads
it, which is what makes one saved build cheap to share across many serving
processes.  Everything a query needs -- the sorted orders, the similarity
scores, the arc -> edge mapping -- is stored explicitly, so reconstruction
performs no similarity computation and no sorting of any kind (the
"mmap zero-recompute load" invariant; see ``docs/ARCHITECTURE.md``).
Readers must reject anything they cannot prove consistent -- wrong format
name or version, header/column disagreement, truncated archives -- by
raising :class:`ArtifactFormatError`, which the CLI surfaces as a clean
operator error rather than a traceback.  Durability of the files themselves
-- checksums, the fsynced rename commit, crash recovery -- lives in
:mod:`repro.storage.integrity`; the writers here expose the byte-level
fault points (``storage.columns.write``, ``storage.header.write``) that the
crash tests tear mid-write.
"""

from __future__ import annotations

import io
import json
import struct
import zipfile
from pathlib import Path

import numpy as np

from ..testing.faults import fault_point

#: Magic string identifying the artifact format.
FORMAT_NAME = "repro-scan-index"
#: Format version written by this build (2 added the update lineage,
#: 3 the per-column crc32 checksums).
FORMAT_VERSION = 3
#: Versions this build can read; version 1 lacks the ``updates`` field and
#: loads as a lineage-free artifact, version 2 lacks column checksums and
#: loads as deep-unverifiable -- everything else is identical.
SUPPORTED_VERSIONS = (1, 2, 3)

#: File names inside an artifact directory.
HEADER_FILE = "header.json"
COLUMNS_FILE = "columns.npz"

#: Column name -> expected dtype; every artifact must provide all of these.
REQUIRED_COLUMNS = {
    "graph_indptr": np.int64,
    "graph_indices": np.int64,
    "graph_arc_edge_ids": np.int64,
    "edge_similarities": np.float64,
    "no_neighbors": np.int64,
    "no_similarities": np.float64,
    "co_indptr": np.int64,
    "co_vertices": np.int64,
    "co_thresholds": np.float64,
}
#: Columns that may be absent (unweighted graphs store no weights; indexes
#: without stored numerators -- LSH estimates, version-1 artifacts -- omit
#: ``edge_numerators`` and dynamic updates fall back to a wider recompute).
OPTIONAL_COLUMNS = {
    "graph_arc_weights": np.float64,
    "edge_numerators": np.float64,
}

_LOCAL_HEADER_SIGNATURE = b"PK\x03\x04"
_LOCAL_HEADER_SIZE = 30


class ArtifactFormatError(ValueError):
    """A stored index artifact is missing, corrupt, or of the wrong version."""


def write_header(directory: Path, meta: dict) -> Path:
    """Write ``header.json`` for an artifact directory and return its path."""
    path = directory / HEADER_FILE
    fault_point("storage.header.write")
    path.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
    return path


def read_header(directory: Path) -> dict:
    """Read and validate ``header.json`` of an artifact directory."""
    path = Path(directory) / HEADER_FILE
    if not path.is_file():
        raise ArtifactFormatError(f"{directory}: not an index artifact (no {HEADER_FILE})")
    try:
        header = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ArtifactFormatError(f"{path}: corrupt header ({error})") from error
    validate_header(header)
    return header


def validate_header(header: dict) -> None:
    """Check a parsed header for format name, version, and required fields."""
    if not isinstance(header, dict):
        raise ArtifactFormatError(f"header must be a JSON object, got {type(header).__name__}")
    if header.get("format") != FORMAT_NAME:
        raise ArtifactFormatError(
            f"unrecognised artifact format {header.get('format')!r}; "
            f"expected {FORMAT_NAME!r}"
        )
    version = header.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ArtifactFormatError(
            f"unsupported artifact format version {version!r}; "
            f"this build reads versions {SUPPORTED_VERSIONS} only"
        )
    for key in ("measure", "num_vertices", "num_edges", "columns"):
        if key not in header:
            raise ArtifactFormatError(f"header is missing required field {key!r}")
    updates = header.get("updates", [])
    if not isinstance(updates, list) or any(
        not isinstance(record, dict) for record in updates
    ):
        raise ArtifactFormatError(
            "header field 'updates' must be a list of lineage records"
        )
    recorded = set(header["columns"])
    missing = set(REQUIRED_COLUMNS) - recorded
    if missing:
        raise ArtifactFormatError(f"header is missing required columns {sorted(missing)}")
    unknown = recorded - set(REQUIRED_COLUMNS) - set(OPTIONAL_COLUMNS)
    if unknown:
        raise ArtifactFormatError(f"header declares unknown columns {sorted(unknown)}")


def validate_columns(header: dict, columns: dict[str, np.ndarray]) -> None:
    """Cross-check loaded columns against the header's dtype/length records."""
    for name, spec in header["columns"].items():
        if name not in columns:
            raise ArtifactFormatError(f"column {name!r} declared in header but not stored")
        column = columns[name]
        if str(column.dtype) != spec["dtype"]:
            raise ArtifactFormatError(
                f"column {name!r}: stored dtype {column.dtype} != declared {spec['dtype']}"
            )
        if int(column.shape[0]) != int(spec["length"]):
            raise ArtifactFormatError(
                f"column {name!r}: stored length {column.shape[0]} != "
                f"declared {spec['length']}"
            )
    expected = dict(REQUIRED_COLUMNS)
    expected.update(OPTIONAL_COLUMNS)
    for name, column in columns.items():
        if name not in expected:
            raise ArtifactFormatError(f"archive stores unknown column {name!r}")
        if column.dtype != expected[name]:
            raise ArtifactFormatError(
                f"column {name!r} must have dtype {np.dtype(expected[name])}, "
                f"got {column.dtype}"
            )


def check_column_shapes(
    header: dict, columns: dict[str, np.ndarray], directory: Path
) -> None:
    """Structural consistency checks tying the columns to the graph shape."""
    n = int(header["num_vertices"])
    m = int(header["num_edges"])
    checks = {
        "graph_indptr": n + 1,
        "graph_indices": 2 * m,
        "graph_arc_edge_ids": 2 * m,
        "edge_similarities": m,
        "no_neighbors": 2 * m,
        "no_similarities": 2 * m,
    }
    if "edge_numerators" in columns:
        checks["edge_numerators"] = m
    for name, expected in checks.items():
        if int(columns[name].shape[0]) != expected:
            raise ArtifactFormatError(
                f"{Path(directory) / COLUMNS_FILE}: column {name!r} has length "
                f"{columns[name].shape[0]}, expected {expected} for a graph with "
                f"{n} vertices and {m} edges"
            )
    if int(columns["graph_indptr"][-1]) != 2 * m:
        raise ArtifactFormatError(
            f"{Path(directory) / COLUMNS_FILE}: graph_indptr[-1] != 2m "
            "(corrupt CSR offsets)"
        )


class _CountingWriter:
    """File proxy that counts written bytes and reports them to a fault point.

    Wraps the open archive file during :func:`write_columns` so the crash
    tests can tear the write after an exact byte offset -- the stand-in for
    a process dying (or the kernel dropping power) mid-``write``.  The
    fault point fires *after* each chunk lands, so the file really holds
    the partial prefix a torn write would leave.
    """

    def __init__(self, handle, site: str):
        self._handle = handle
        self._site = site
        self.written = 0

    def write(self, data) -> int:
        count = self._handle.write(data)
        self.written += len(data)
        fault_point(self._site, bytes_written=self.written)
        return count

    def __getattr__(self, name):
        return getattr(self._handle, name)


#: File-offset alignment of every column's raw data inside ``columns.npz``.
#: ``np.savez`` places member data at whatever offset the zip bookkeeping
#: lands on, which leaves the memory-mapped columns *unaligned* -- numpy then
#: routes every access through its buffered-cast slow path and ``np.take``
#: silently copies the whole source column per call.  Aligning the data to
#: the widest vector width keeps the mmapped views on the fast paths.
COLUMN_ALIGNMENT = 64


def _aligned_npy_bytes(column: np.ndarray, payload_offset: int) -> bytes:
    """Serialize ``column`` as ``.npy`` bytes whose data lands aligned.

    ``payload_offset`` is the file offset at which the ``.npy`` payload will
    begin.  The ``.npy`` header is grown with extra space padding (legal by
    the format: the header is space-padded up to its terminating newline) so
    that ``payload_offset + header_size`` is a multiple of
    :data:`COLUMN_ALIGNMENT` -- readers that parse the header normally are
    oblivious, and :func:`_mmap_member` hands back aligned views.
    """
    buffer = io.BytesIO()
    np.lib.format.write_array(buffer, column, version=(1, 0), allow_pickle=False)
    raw = bytearray(buffer.getvalue())
    # Version (1, 0): 6-byte magic, 2-byte version, little-endian uint16
    # header length, then the space-padded header ending in b"\n".
    (header_length,) = struct.unpack("<H", raw[8:10])
    data_offset = 10 + header_length
    padding = -(payload_offset + data_offset) % COLUMN_ALIGNMENT
    if padding:
        raw[8:10] = struct.pack("<H", header_length + padding)
        raw[data_offset - 1 : data_offset - 1] = b" " * padding
    return bytes(raw)


def write_columns(directory: Path, columns: dict[str, np.ndarray]) -> Path:
    """Write the columns as an uncompressed ``.npz`` archive (mmap-friendly).

    Member data is placed at :data:`COLUMN_ALIGNMENT`-aligned file offsets
    (via ``.npy`` header padding) so the memory-mapped reads of
    :func:`read_columns` stay on numpy's aligned fast paths.  The archive is
    deterministic: fixed member timestamps, insertion-ordered members.
    """
    path = directory / COLUMNS_FILE
    with path.open("wb") as handle:
        writer = _CountingWriter(handle, "storage.columns.write")
        with zipfile.ZipFile(writer, "w", zipfile.ZIP_STORED) as archive:
            for name, column in columns.items():
                arcname = f"{name}.npy"
                info = zipfile.ZipInfo(arcname, date_time=(1980, 1, 1, 0, 0, 0))
                info.compress_type = zipfile.ZIP_STORED
                payload_offset = (
                    handle.tell() + _LOCAL_HEADER_SIZE + len(arcname.encode("utf-8"))
                )
                archive.writestr(
                    info, _aligned_npy_bytes(np.ascontiguousarray(column), payload_offset)
                )
    return path


def read_columns(
    directory: Path, *, mmap_mode: str | None = "r"
) -> dict[str, np.ndarray]:
    """Load the columns of an artifact, memory-mapping them when possible.

    ``np.load`` ignores ``mmap_mode`` for ``.npz`` archives (it would have to
    decompress), but :func:`write_columns` stores members uncompressed, so
    each column's raw data sits contiguously inside the zip file at a known
    offset.  This reader parses the zip's local headers plus each member's
    ``.npy`` header and hands back ``np.memmap`` views directly into the
    archive -- no column is read into memory until something indexes it.
    Compressed members (from archives written by other tools) fall back to an
    in-memory read; ``mmap_mode=None`` forces in-memory reads for everything.
    """
    path = Path(directory) / COLUMNS_FILE
    if not path.is_file():
        raise ArtifactFormatError(f"{directory}: not an index artifact (no {COLUMNS_FILE})")
    if mmap_mode is None:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}

    columns: dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as archive:
            for info in archive.infolist():
                name = info.filename
                if name.endswith(".npy"):
                    name = name[: -len(".npy")]
                if info.compress_type != zipfile.ZIP_STORED:
                    with archive.open(info) as member:
                        columns[name] = np.lib.format.read_array(member)
                    continue
                columns[name] = _mmap_member(path, info, mmap_mode)
    except zipfile.BadZipFile as error:
        raise ArtifactFormatError(f"{path}: corrupt column archive ({error})") from error
    return columns


def _mmap_member(path: Path, info: zipfile.ZipInfo, mmap_mode: str) -> np.ndarray:
    """Memory-map one uncompressed ``.npy`` member of a zip archive."""
    with path.open("rb") as handle:
        handle.seek(info.header_offset)
        local_header = handle.read(_LOCAL_HEADER_SIZE)
        if len(local_header) != _LOCAL_HEADER_SIZE or (
            local_header[:4] != _LOCAL_HEADER_SIGNATURE
        ):
            raise ArtifactFormatError(f"{path}: corrupt local header for {info.filename}")
        name_length, extra_length = struct.unpack("<HH", local_header[26:30])
        payload_offset = (
            info.header_offset + _LOCAL_HEADER_SIZE + name_length + extra_length
        )
        handle.seek(payload_offset)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran_order, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran_order, dtype = np.lib.format.read_array_header_2_0(handle)
        else:  # pragma: no cover - numpy only writes 1.0/2.0 headers
            raise ArtifactFormatError(
                f"{path}: unsupported .npy header version {version} in {info.filename}"
            )
        data_offset = handle.tell()
    if dtype.hasobject:  # pragma: no cover - never written by this library
        raise ArtifactFormatError(f"{path}: object-dtype column {info.filename}")
    return np.memmap(
        path,
        dtype=dtype,
        mode=mmap_mode,
        offset=data_offset,
        shape=shape,
        order="F" if fortran_order else "C",
    )
