"""Artifact durability: checksums, the fsync'd commit protocol, verify, recovery.

One artifact typically outlives every process that touches it -- it is built
once, then served, patched by ``repro update``, and re-served across many
sessions.  That makes it the single point whose corruption no later run can
detect on its own.  This module closes the three holes the original
stage-and-swap save left open:

**Checksums** (:func:`column_checksum`, :func:`verify_checksums`).
Format version 3 records a CRC-32 per column in the header
(``columns[name]["crc32"]``).  A bit flipped by a torn write, a truncated
copy, or bad storage now fails :func:`verify_artifact` instead of silently
serving wrong similarity scores.  Version-2 artifacts (no checksums) still
load; deep verification reports them as unverifiable rather than wrong.

**The commit protocol** (:func:`commit_artifact`, used by
``IndexArtifact.save``).  A save writes ``columns.npz`` + ``header.json``
into a scratch sibling (``.<name>.tmp-<pid>``), fsyncs both files *and* the
scratch directory, then commits::

    [old artifact at target]            -- crash here: old intact
    rename target  -> .<name>.bak-<pid> -- crash here: rollback window
    rename scratch -> target            -- crash here: backup removal pending
    fsync parent directory
    remove backup (and any stale dead-pid leftovers)

Every window leaves the parent directory holding either a valid old
artifact, a valid new artifact, or a valid old artifact parked under the
backup name -- never a torn mix, because a rename is atomic and nothing is
renamed before it is fully fsynced.  The fault points armed by
``tests/property/test_property_faults.py`` crash a writer inside every one
of these windows and assert exactly that.

**Recovery** (:func:`recover_artifact`, invoked by ``IndexArtifact.load``
when the target is missing but a backup is parked).  Rollback is
*lineage-checked*: the backup must itself verify, and when the interrupted
scratch left a readable header, the backup's update lineage must be a
prefix of the scratch's -- proof that the parked directory really is the
direct ancestor of the write that died, not an unrelated artifact that
happens to share the name.  Scratch directories whose writer pid is dead
are stale and are swept by the next save (:func:`clean_stale_scratch`) and
reported by ``repro index verify``.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import obs
from ..testing.faults import fault_point
from .format import (
    COLUMNS_FILE,
    HEADER_FILE,
    ArtifactFormatError,
    check_column_shapes,
    read_columns,
    read_header,
    validate_columns,
)

__all__ = [
    "ArtifactIntegrityError",
    "VerifyReport",
    "backup_path",
    "clean_stale_scratch",
    "column_checksum",
    "commit_artifact",
    "find_backups",
    "find_scratch",
    "fsync_directory",
    "fsync_file",
    "recover_artifact",
    "scratch_path",
    "verify_artifact",
    "verify_checksums",
]

#: Checksum algorithm recorded in version-3 headers.
CHECKSUM_ALGORITHM = "crc32"


class ArtifactIntegrityError(ArtifactFormatError):
    """Stored bytes disagree with the header's checksums, or recovery failed.

    Subclasses :class:`~repro.storage.format.ArtifactFormatError` so every
    CLI path that already turns format errors into clean operator messages
    (``cluster --load``, ``index query``, ``serve``, ``update``) covers
    integrity failures with no extra handling.
    """


# ----------------------------------------------------------------------
# Checksums
# ----------------------------------------------------------------------
def column_checksum(column: np.ndarray) -> str:
    """CRC-32 of a column's raw bytes, as eight hex digits.

    CRC-32 (zlib) rather than a cryptographic hash: the adversary is bit
    rot and torn writes, not forgery, and crc32 runs at memory speed so
    deep verification stays cheap enough to run in CI on every artifact.
    """
    return format(zlib.crc32(np.ascontiguousarray(column).view(np.uint8).data)
                  & 0xFFFFFFFF, "08x")


def verify_checksums(header: dict, columns: dict[str, np.ndarray],
                     context: str = "artifact") -> int:
    """Compare every recorded column checksum against the stored bytes.

    Returns the number of columns actually checked (0 for pre-checksum
    headers).  Raises :class:`ArtifactIntegrityError` on the first mismatch.
    """
    checked = 0
    for name, spec in header["columns"].items():
        recorded = spec.get("crc32")
        if recorded is None:
            continue
        actual = column_checksum(columns[name])
        if actual != recorded:
            raise ArtifactIntegrityError(
                f"{context}: column {name!r} fails its checksum "
                f"(stored bytes crc32={actual}, header records {recorded}); "
                "the artifact is corrupt -- rebuild it or restore a backup"
            )
        checked += 1
    return checked


# ----------------------------------------------------------------------
# fsync helpers
# ----------------------------------------------------------------------
def fsync_file(path: Path) -> None:
    """Flush one file's bytes to stable storage (a rename must never beat them)."""
    fault_point("storage.commit.fsync")
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_directory(path: Path) -> None:
    """Flush a directory's entries (the renames themselves) to stable storage."""
    fault_point("storage.commit.fsync")
    fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - some filesystems refuse dir fsync
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Scratch / backup siblings
# ----------------------------------------------------------------------
def scratch_path(directory: Path, pid: int | None = None) -> Path:
    """The staging sibling a save by ``pid`` writes into."""
    pid = os.getpid() if pid is None else pid
    return directory.parent / f".{directory.name}.tmp-{pid}"


def backup_path(directory: Path, pid: int | None = None) -> Path:
    """The sibling the old artifact is parked under during a commit."""
    pid = os.getpid() if pid is None else pid
    return directory.parent / f".{directory.name}.bak-{pid}"


def _siblings(directory: Path, kind: str) -> list[Path]:
    if not directory.parent.is_dir():
        return []
    prefix = f".{directory.name}.{kind}-"
    return sorted(
        child for child in directory.parent.iterdir()
        if child.name.startswith(prefix) and child.is_dir()
    )


def find_scratch(directory: Path) -> list[Path]:
    """Every ``.tmp-<pid>`` scratch sibling of an artifact path."""
    return _siblings(Path(directory), "tmp")


def find_backups(directory: Path) -> list[Path]:
    """Every ``.bak-<pid>`` parked-old sibling of an artifact path."""
    return _siblings(Path(directory), "bak")


def _owner_pid(sibling: Path) -> int | None:
    try:
        return int(sibling.name.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return None


def _pid_alive(pid: int | None) -> bool:
    if pid is None or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    return True


def is_stale(sibling: Path) -> bool:
    """A scratch/backup sibling whose writer is this process or is dead."""
    pid = _owner_pid(sibling)
    return pid == os.getpid() or not _pid_alive(pid)


def clean_stale_scratch(directory: str | Path, *,
                        backups: bool = False) -> list[Path]:
    """Remove dead-writer scratch dirs (and, optionally, dead backups).

    Backups are only swept when ``backups=True`` -- a parked backup may be
    the *sole* valid copy of the artifact (the rollback window), so routine
    cleanup must never touch it; only a completed commit or a completed
    recovery may.
    """
    directory = Path(directory)
    removed = []
    candidates = find_scratch(directory)
    if backups:
        candidates += find_backups(directory)
    for sibling in candidates:
        if is_stale(sibling):
            shutil.rmtree(sibling, ignore_errors=True)
            removed.append(sibling)
    return removed


# ----------------------------------------------------------------------
# The commit protocol
# ----------------------------------------------------------------------
def fsync_scratch(scratch: Path) -> None:
    """Flush a fully written scratch dir before any rename points at it."""
    fsync_file(scratch / COLUMNS_FILE)
    fsync_file(scratch / HEADER_FILE)
    fsync_directory(scratch)


def commit_artifact(scratch: Path, directory: Path) -> None:
    """Atomically swap a fully fsynced scratch dir into the target path.

    See the module docstring for the window-by-window crash analysis.  The
    caller guarantees ``scratch`` holds a complete artifact and has been
    through :func:`fsync_scratch`.
    """
    backup = backup_path(directory)
    fault_point("storage.commit.pre_backup")
    if directory.exists():
        if backup.exists():  # earlier crashed commit by this same pid
            shutil.rmtree(backup)
        os.replace(directory, backup)
    fault_point("storage.commit.pre_swap")
    os.rename(scratch, directory)
    fsync_directory(directory.parent)
    fault_point("storage.commit.pre_cleanup")
    if backup.exists():
        shutil.rmtree(backup)
    # The new state is committed; any leftover dead-pid siblings from older
    # interrupted saves are superseded and safe to sweep now -- and only now.
    clean_stale_scratch(directory, backups=True)


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
def _read_lineage(directory: Path) -> list | None:
    """An artifact dir's update lineage, or None when the header is unreadable."""
    try:
        header = json.loads((directory / HEADER_FILE).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    updates = header.get("updates", []) if isinstance(header, dict) else None
    return updates if isinstance(updates, list) else None


def _lineage_is_prefix(old: list, new: list) -> bool:
    return len(old) <= len(new) and new[: len(old)] == old


def recover_artifact(path: str | Path) -> str | None:
    """Resolve the aftermath of a commit that died between its renames.

    Returns what happened: ``None`` when the target exists (nothing to
    recover -- staleness sweeping is the *save* path's job), ``"rolled-back"``
    when a parked backup was verified and restored to the target, and raises
    :class:`ArtifactIntegrityError` when a backup exists but cannot be
    proven to be the artifact's direct ancestor.

    The rollback is lineage-checked: when the interrupted scratch left a
    readable header, the backup's update lineage must be a prefix of the
    scratch's lineage.  A backup that fails this check is *not* the state
    the dying writer was replacing, and restoring it would resurrect an
    unrelated artifact under this name -- refusing loudly is the only safe
    move.
    """
    directory = Path(path)
    if directory.exists():
        return None
    backups = [b for b in find_backups(directory) if is_stale(b)]
    if not backups:
        return None
    # Newest parked state wins (several crashed commits can stack backups
    # only across different pids; each pid keeps at most one).
    backup = max(backups, key=lambda b: b.stat().st_mtime)
    try:
        header = read_header(backup)
        columns = read_columns(backup, mmap_mode="r")
        validate_columns(header, columns)
        check_column_shapes(header, columns, backup)
        verify_checksums(header, columns, context=str(backup))
        del columns
    except ArtifactFormatError as error:
        raise ArtifactIntegrityError(
            f"{directory}: missing, and the parked backup {backup.name!r} "
            f"does not verify ({error}); refusing to recover"
        ) from error
    backup_lineage = header.get("updates", [])
    for scratch in find_scratch(directory):
        scratch_lineage = _read_lineage(scratch)
        if scratch_lineage is not None and not _lineage_is_prefix(
            backup_lineage, scratch_lineage
        ):
            raise ArtifactIntegrityError(
                f"{directory}: parked backup {backup.name!r} is not the "
                f"ancestor of the interrupted write {scratch.name!r} "
                f"(lineage {len(backup_lineage)} records is no prefix of "
                f"{len(scratch_lineage)}); refusing to roll back"
            )
    os.replace(backup, directory)
    fsync_directory(directory.parent)
    clean_stale_scratch(directory, backups=True)
    obs.counter("storage.recoveries_total").inc()
    obs.event("storage.recovered", backup=backup.name)
    return "rolled-back"


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------
@dataclass
class VerifyReport:
    """What ``verify_artifact`` established about one artifact directory."""

    path: str
    version: int
    num_columns: int
    checksums_recorded: int
    checksums_checked: int
    deep: bool
    lineage_records: int
    stale_scratch: list[str] = field(default_factory=list)
    recovered: str | None = None

    def lines(self) -> list[str]:
        """Human-readable report, one fact per line (the CLI prints these)."""
        if self.deep:
            checks = (f"{self.checksums_checked}/{self.num_columns} columns "
                      "verified against stored bytes")
            if self.checksums_recorded == 0:
                checks += " (pre-checksum artifact: nothing recorded to check)"
        else:
            checks = (f"{self.checksums_recorded}/{self.num_columns} columns "
                      "carry checksums (fast mode: recorded, not recomputed)")
        out = [
            f"artifact: {self.path}",
            f"format: version {self.version}, {self.num_columns} columns, "
            f"header/column structure consistent",
            f"checksums: {checks}",
            f"lineage: {self.lineage_records} update batch(es)",
        ]
        if self.recovered:
            out.append(f"recovery: {self.recovered} from parked backup")
        if self.stale_scratch:
            out.append(
                "stale scratch: " + ", ".join(self.stale_scratch)
                + "  (leftover dead writers; the next save sweeps them, or "
                "pass --clean)"
            )
        else:
            out.append("stale scratch: none")
        return out


def verify_artifact(path: str | Path, *, deep: bool = False,
                    recover: bool = False) -> VerifyReport:
    """Prove an artifact directory internally consistent, or raise.

    The *fast* check (always on; also what every load performs) parses the
    header, cross-checks every column's dtype/length against it, and ties
    the column lengths to the declared graph shape.  The *deep* check
    additionally streams every column and compares CRC-32s against the
    header -- the check that catches a bit flipped after the header was
    written.  ``recover=True`` first resolves a crashed commit
    (:func:`recover_artifact`) instead of failing on the missing target.

    Raises :class:`~repro.storage.format.ArtifactFormatError` (structural)
    or :class:`ArtifactIntegrityError` (checksum/recovery) -- both of which
    the CLI renders as clean operator errors.
    """
    directory = Path(path)
    started = time.perf_counter()
    with obs.span("storage.verify", deep=deep):
        recovered = recover_artifact(directory) if recover else None
        header = read_header(directory)
        columns = read_columns(directory, mmap_mode="r")
        validate_columns(header, columns)
        check_column_shapes(header, columns, directory)
        recorded = sum(
            1 for spec in header["columns"].values() if spec.get("crc32") is not None
        )
        checked = 0
        if deep:
            checked = verify_checksums(header, columns, context=str(directory))
    obs.histogram("storage.verify_seconds").observe(time.perf_counter() - started)
    return VerifyReport(
        path=str(directory),
        version=int(header["version"]),
        num_columns=len(columns),
        checksums_recorded=recorded,
        checksums_checked=checked,
        deep=deep,
        lineage_records=len(header.get("updates", [])),
        stale_scratch=[s.name for s in find_scratch(directory) if is_stale(s)]
        + [b.name for b in find_backups(directory) if is_stale(b)],
        recovered=recovered,
    )
