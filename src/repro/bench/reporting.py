"""Plain-text table and series formatting for the experiment harness.

The paper reports its evaluation as bar charts (Figure 5, 8), line plots
(Figures 6, 7, 9, 10) and tables (Tables 1, 2).  The harness renders each of
them as aligned text tables -- one row per bar / point -- so the shape of the
result (who wins, by what factor, where curves cross) can be read directly
from the benchmark output.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_value(value) -> str:
    """Human-friendly rendering of one table cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence],
) -> str:
    """Render one figure's data: an x column plus one column per named series."""
    headers = [x_label] + list(series.keys())
    rows = []
    for position, x in enumerate(x_values):
        row = [x] + [values[position] for values in series.values()]
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"
