"""Sqlite results store for the repo's performance trajectory.

Six ``BENCH_*.json`` files with six ad-hoc schemas is how the trajectory
became unreadable; this store normalises all of them into one queryable
shape without losing a single cell.  A *run* is one execution of one
benchmark; every scalar the benchmark measured becomes a *cell* keyed by

``(benchmark, graph rung, cell, metric)``

where the rung is the ladder entry the number belongs to (``orkut-like-
large``, ``v1250``), the cell is the mode/config group inside the rung
(``jobs=4``, ``modes.cold``, ``durability``) and the metric is the leaf
name (``seconds``, ``requests_per_second``).  Runs additionally carry an
environment fingerprint (:mod:`repro.bench.environment`) -- the key the
regression gate refuses to compare across -- a timestamp, the git hash,
and a provenance ``source`` string.

Losslessness is a contract, not an aspiration: next to the normalised
key every cell stores its exact JSON path and value, and
:meth:`BenchStore.export_run` reconstructs the original payload
bit-for-bit.  The property suite round-trips every committed
``BENCH_*.json`` through import -> export and asserts equality.

Malformed payloads are rejected with :class:`BenchStoreError` before
anything is written: a benchmark result that cannot be keyed is a bug in
the producer, and a half-imported run would poison every later
comparison.
"""

from __future__ import annotations

import json
import math
import sqlite3
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from .environment import EnvironmentFingerprint, fingerprint_from_mapping

__all__ = ["BenchStore", "BenchStoreError", "CellRecord", "RunInfo"]


class BenchStoreError(ValueError):
    """A payload or query that the results store must reject cleanly."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS environments (
    id        INTEGER PRIMARY KEY,
    key       TEXT NOT NULL UNIQUE,
    cpu_count INTEGER,
    platform  TEXT,
    machine   TEXT,
    python    TEXT,
    numpy     TEXT
);
CREATE TABLE IF NOT EXISTS runs (
    id             INTEGER PRIMARY KEY,
    benchmark      TEXT NOT NULL,
    recorded_at    TEXT NOT NULL,
    environment_id INTEGER NOT NULL REFERENCES environments(id),
    git_hash       TEXT,
    source         TEXT,
    smoke          INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS cells (
    id      INTEGER PRIMARY KEY,
    run_id  INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    graph   TEXT NOT NULL,
    cell    TEXT NOT NULL,
    metric  TEXT NOT NULL,
    value   REAL,
    payload TEXT NOT NULL,
    path    TEXT NOT NULL,
    UNIQUE (run_id, path)
);
CREATE INDEX IF NOT EXISTS cells_by_run ON cells (run_id);
CREATE INDEX IF NOT EXISTS cells_by_key ON cells (graph, cell, metric);
"""


@dataclass(frozen=True)
class RunInfo:
    """One recorded benchmark run (without its cells)."""

    id: int
    benchmark: str
    recorded_at: str
    git_hash: str | None
    source: str | None
    smoke: bool
    fingerprint: EnvironmentFingerprint

    @property
    def fingerprint_key(self) -> str:
        return self.fingerprint.key()


@dataclass(frozen=True)
class CellRecord:
    """One measured scalar: normalised key plus the lossless original."""

    graph: str
    cell: str
    metric: str
    value: float | None
    payload: object
    path: tuple

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.graph, self.cell, self.metric)


# ----------------------------------------------------------------------
# Payload validation and flattening
# ----------------------------------------------------------------------

#: Identifying field used to label the entries of known list-shaped cell
#: groups -- ``jobs=4`` reads better than ``jobs[1]`` and stays stable
#: when a runner reorders or extends its grid.
_ELEMENT_ID_KEYS = {
    "jobs": "jobs",
    "order_microbench": "order",
    "batches": "fraction",
    "configs": "workers",
    "overload_configs": "max_inflight",
}


def _coerce_leaf(value, path):
    """Return ``value`` as a plain JSON scalar, or raise :class:`BenchStoreError`.

    Numpy scalars are unwrapped via ``item()`` -- runners hand the store
    their in-memory result dicts, which legitimately carry ``np.float64``
    timings.  Non-finite floats are rejected: a NaN cell can never be
    compared, so storing one only defers the error to gate time.
    """
    if hasattr(value, "item") and not isinstance(value, (bool, int, float, str)):
        try:
            value = value.item()
        except (TypeError, ValueError):
            pass
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise BenchStoreError(
                f"non-finite number at {_render_path(path)}: {value!r}"
            )
        return value
    raise BenchStoreError(
        f"unsupported value at {_render_path(path)}: {type(value).__name__}"
    )


def _render_path(path) -> str:
    return "".join(
        f"[{part}]" if isinstance(part, int) else ("." + part if rendered else part)
        for rendered, part in enumerate(path)
    ) or "<root>"


def _element_label(list_name: str, element, index: int) -> str:
    id_key = _ELEMENT_ID_KEYS.get(list_name)
    if id_key is not None and isinstance(element, dict):
        identifier = element.get(id_key)
        if isinstance(identifier, (bool, int, float, str)):
            return f"{id_key}={identifier}"
    return f"{list_name}[{index}]"


def _rung_label(entry, index: int) -> str:
    if isinstance(entry, dict):
        name = entry.get("name")
        if isinstance(name, str) and name:
            return name
        vertices = entry.get("num_vertices")
        if isinstance(vertices, int):
            return f"v{vertices}"
    return f"graphs[{index}]"


def _flatten_into(value, raw_path, parts, graph, out):
    """Walk ``value`` depth-first, emitting ``(path, graph, cell_parts, leaf)``."""
    if isinstance(value, dict) and value:
        for key, child in value.items():
            if not isinstance(key, str):
                raise BenchStoreError(
                    f"non-string key at {_render_path(raw_path)}: {key!r}"
                )
            if isinstance(child, list) and child:
                for index, element in enumerate(child):
                    _flatten_into(
                        element,
                        raw_path + (key, index),
                        parts + (_element_label(key, element, index),),
                        graph,
                        out,
                    )
            else:
                _flatten_into(child, raw_path + (key,), parts + (key,), graph, out)
    elif isinstance(value, list) and value:
        for index, element in enumerate(value):
            _flatten_into(
                element, raw_path + (index,), parts + (f"[{index}]",), graph, out
            )
    elif isinstance(value, (dict, list)):
        # Empty containers are leaves; the payload column keeps their type.
        out.append((raw_path, graph, parts, value))
    else:
        out.append((raw_path, graph, parts, _coerce_leaf(value, raw_path)))


def flatten_payload(payload) -> list[tuple]:
    """Flatten a benchmark payload into cell rows, validating as it goes.

    Entries of a top-level ``graphs`` list are the ladder rungs: their
    cells carry the rung's label in the ``graph`` column.  Everything
    else (environment blocks, single-graph summaries, config grids) is
    keyed at run level with an empty ``graph``.
    """
    if not isinstance(payload, dict):
        raise BenchStoreError(
            f"payload must be a mapping, got {type(payload).__name__}"
        )
    benchmark = payload.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise BenchStoreError(
            "payload must carry a non-empty string 'benchmark' field"
        )
    environment = payload.get("environment")
    if environment is not None and not isinstance(environment, dict):
        raise BenchStoreError("'environment' block must be a mapping")

    out: list[tuple] = []
    seen_labels: dict[str, int] = {}
    for key, child in payload.items():
        if key == "graphs" and isinstance(child, list) and child:
            for index, entry in enumerate(child):
                label = _rung_label(entry, index)
                # Two rungs must never merge: disambiguate repeats.
                repeats = seen_labels.get(label, 0)
                seen_labels[label] = repeats + 1
                if repeats:
                    label = f"{label}#{repeats + 1}"
                _flatten_into(entry, ("graphs", index), (), label, out)
        elif isinstance(child, list) and child:
            for index, element in enumerate(child):
                _flatten_into(
                    element,
                    (key, index),
                    (_element_label(key, element, index),),
                    "",
                    out,
                )
        else:
            _flatten_into(child, (key,), (key,), "", out)
    if not any(isinstance(leaf, (bool, int, float)) for _, _, _, leaf in out):
        raise BenchStoreError("payload contains no numeric cells")
    return out


def _unflatten(rows) -> dict:
    """Rebuild the original payload from ``(path, leaf)`` rows in order."""
    root: dict = {}
    for path, leaf in rows:
        container = root
        for position, part in enumerate(path):
            if position == len(path) - 1:
                if isinstance(container, list):
                    container.append(leaf)
                else:
                    container[part] = leaf
            else:
                child_type = list if isinstance(path[position + 1], int) else dict
                if isinstance(container, list):
                    if part == len(container):
                        container.append(child_type())
                    container = container[part]
                else:
                    container = container.setdefault(part, child_type())
    return root


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class BenchStore:
    """Sqlite-backed store of benchmark runs and their cells."""

    def __init__(self, path: str | Path = ":memory:"):
        self.path = str(path)
        self._connection = sqlite3.connect(self.path)
        self._connection.executescript(_SCHEMA)
        self._connection.commit()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "BenchStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing -------------------------------------------------------
    def record(
        self,
        payload: dict,
        *,
        source: str | None = None,
        recorded_at: str | None = None,
        git_hash: str | None = None,
        smoke: bool = False,
    ) -> int:
        """Validate and store one benchmark payload; return the run id.

        The environment fingerprint is derived from the payload's own
        ``environment`` block (partial blocks yield partial fingerprints
        that only match equally partial ones).  ``git_hash`` defaults to
        the block's ``git_hash`` field when present.
        """
        rows = flatten_payload(payload)
        environment = payload.get("environment") or {}
        fingerprint = fingerprint_from_mapping(environment)
        if git_hash is None:
            recorded = environment.get("git_hash")
            git_hash = recorded if isinstance(recorded, str) else None
        if recorded_at is None:
            recorded_at = datetime.now(timezone.utc).isoformat(timespec="seconds")

        cursor = self._connection.cursor()
        try:
            environment_id = self._environment_id(cursor, fingerprint)
            cursor.execute(
                "INSERT INTO runs (benchmark, recorded_at, environment_id,"
                " git_hash, source, smoke) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    payload["benchmark"],
                    recorded_at,
                    environment_id,
                    git_hash,
                    source,
                    int(bool(smoke)),
                ),
            )
            run_id = cursor.lastrowid
            cursor.executemany(
                "INSERT INTO cells (run_id, graph, cell, metric, value,"
                " payload, path) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        run_id,
                        graph,
                        ".".join(parts[:-1]),
                        parts[-1] if parts else "",
                        (
                            float(leaf)
                            if isinstance(leaf, (bool, int, float))
                            else None
                        ),
                        json.dumps(leaf),
                        json.dumps(list(path)),
                    )
                    for path, graph, parts, leaf in rows
                ],
            )
        except BaseException:
            self._connection.rollback()
            raise
        self._connection.commit()
        return run_id

    def import_file(self, path: str | Path, **kwargs) -> int:
        """Import one ``BENCH_*.json`` payload file; return the run id."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as error:
            raise BenchStoreError(f"cannot read {path}: {error}") from error
        except json.JSONDecodeError as error:
            raise BenchStoreError(f"{path} is not valid JSON: {error}") from error
        kwargs.setdefault("source", path.name)
        return self.record(payload, **kwargs)

    # -- reading -------------------------------------------------------
    def _environment_id(self, cursor, fingerprint: EnvironmentFingerprint) -> int:
        key = fingerprint.key()
        row = cursor.execute(
            "SELECT id FROM environments WHERE key = ?", (key,)
        ).fetchone()
        if row is not None:
            return row[0]
        cursor.execute(
            "INSERT INTO environments (key, cpu_count, platform, machine,"
            " python, numpy) VALUES (?, ?, ?, ?, ?, ?)",
            (
                key,
                fingerprint.cpu_count,
                fingerprint.platform,
                fingerprint.machine,
                fingerprint.python,
                fingerprint.numpy,
            ),
        )
        return cursor.lastrowid

    _RUN_QUERY = (
        "SELECT r.id, r.benchmark, r.recorded_at, r.git_hash, r.source,"
        " r.smoke, e.cpu_count, e.platform, e.machine, e.python, e.numpy"
        " FROM runs r JOIN environments e ON e.id = r.environment_id"
    )

    @staticmethod
    def _run_from_row(row) -> RunInfo:
        return RunInfo(
            id=row[0],
            benchmark=row[1],
            recorded_at=row[2],
            git_hash=row[3],
            source=row[4],
            smoke=bool(row[5]),
            fingerprint=EnvironmentFingerprint(
                cpu_count=row[6],
                platform=row[7],
                machine=row[8],
                python=row[9],
                numpy=row[10],
            ),
        )

    def runs(self, benchmark: str | None = None) -> list[RunInfo]:
        """All runs, oldest first, optionally restricted to one benchmark."""
        query = self._RUN_QUERY
        parameters: tuple = ()
        if benchmark is not None:
            query += " WHERE r.benchmark = ?"
            parameters = (benchmark,)
        query += " ORDER BY r.id"
        rows = self._connection.execute(query, parameters).fetchall()
        return [self._run_from_row(row) for row in rows]

    def run(self, run_id: int) -> RunInfo:
        row = self._connection.execute(
            self._RUN_QUERY + " WHERE r.id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise BenchStoreError(f"no run with id {run_id}")
        return self._run_from_row(row)

    def benchmarks(self) -> list[str]:
        """Distinct benchmark names, in first-recorded order."""
        rows = self._connection.execute(
            "SELECT benchmark FROM runs GROUP BY benchmark ORDER BY MIN(id)"
        ).fetchall()
        return [row[0] for row in rows]

    def cells(self, run_id: int) -> list[CellRecord]:
        """Every cell of one run, in original document order."""
        self.run(run_id)  # raise cleanly on unknown ids
        rows = self._connection.execute(
            "SELECT graph, cell, metric, value, payload, path FROM cells"
            " WHERE run_id = ? ORDER BY id",
            (run_id,),
        ).fetchall()
        return [
            CellRecord(
                graph=row[0],
                cell=row[1],
                metric=row[2],
                value=row[3],
                payload=json.loads(row[4]),
                path=tuple(json.loads(row[5])),
            )
            for row in rows
        ]

    def numeric_cells(self, run_id: int) -> dict[tuple[str, str, str], float]:
        """Mapping of ``(graph, cell, metric)`` to numeric value for one run."""
        return {
            record.key: record.value
            for record in self.cells(run_id)
            if record.value is not None
        }

    def export_run(self, run_id: int) -> dict:
        """Reconstruct the exact payload dict a run was recorded from."""
        return _unflatten(
            [(record.path, record.payload) for record in self.cells(run_id)]
        )
