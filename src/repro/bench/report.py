"""Cross-PR trajectory reports and regression gating over the results store.

The report follows the fuzzbench ``ExperimentResults`` pattern: a class
over the store whose expensive views (runs grouped by benchmark and
environment, per-group tables, pairwise comparisons) are lazy cached
properties, rendered to markdown only on demand.  Nothing here reads the
clock -- the same store renders byte-identical reports forever, which is
what the golden-output tests pin.

Gating semantics (the honest-comparison contract):

* two runs are compared cell-by-cell on the shared ``(graph, cell,
  metric)`` keys; a cell regresses when it moves against its metric's
  polarity by more than the noise threshold (15% by default);
* ``gate`` only ever *fails* on two runs whose environment fingerprints
  match.  Differing fingerprints -- the committed 1-CPU-container
  ``BENCH_construction.json`` numbers against an 8-core laptop run --
  produce a structured refusal, not a verdict, because neither "faster"
  nor "slower" means anything across machine classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from .environment import EnvironmentFingerprint
from .reporting import format_value
from .store import BenchStore, BenchStoreError, RunInfo

__all__ = [
    "CellDelta",
    "DEFAULT_NOISE_THRESHOLD",
    "GateResult",
    "RunComparison",
    "TrajectoryReport",
    "compare_runs",
    "gate_runs",
    "latest_pair",
    "metric_polarity",
]

#: Relative change below which a moved cell is considered timer noise.
DEFAULT_NOISE_THRESHOLD = 0.15

#: Substrings marking a metric as higher-is-better; checked before the
#: lower-is-better rules because ``requests_per_second`` contains
#: ``second``.
_HIGHER_BETTER = ("per_second", "speedup", "hit_rate", "rps", "identical")
#: Substrings marking a metric as lower-is-better.
_LOWER_BETTER = ("seconds", "_ms", "bytes", "mismatch", "failures")


def metric_polarity(metric: str) -> int:
    """``+1`` if higher is better, ``-1`` if lower is better, ``0`` neutral.

    Neutral metrics (sizes, counts, configuration echoes like
    ``num_vertices`` or ``cpu_count``) are reported in trajectories but
    never gated -- a graph growing is not a regression.
    """
    lowered = metric.lower()
    if any(token in lowered for token in _HIGHER_BETTER):
        return 1
    if any(token in lowered for token in _LOWER_BETTER):
        return -1
    return 0


@dataclass(frozen=True)
class CellDelta:
    """One shared cell's movement between two runs."""

    graph: str
    cell: str
    metric: str
    baseline: float
    candidate: float
    change: float  # relative: candidate / baseline - 1
    polarity: int

    @property
    def label(self) -> str:
        parts = [part for part in (self.graph, self.cell, self.metric) if part]
        return "/".join(parts)

    def describe(self) -> str:
        return (
            f"{self.label}: {format_value(self.baseline)} -> "
            f"{format_value(self.candidate)} ({self.change:+.1%})"
        )


@dataclass
class RunComparison:
    """Cell-level diff of two runs of the same benchmark."""

    baseline: RunInfo
    candidate: RunInfo
    threshold: float
    shared: int = 0
    regressions: list[CellDelta] = field(default_factory=list)
    improvements: list[CellDelta] = field(default_factory=list)

    @property
    def fingerprints_match(self) -> bool:
        return self.baseline.fingerprint_key == self.candidate.fingerprint_key


def compare_runs(
    store: BenchStore,
    baseline_id: int,
    candidate_id: int,
    threshold: float = DEFAULT_NOISE_THRESHOLD,
) -> RunComparison:
    """Compare every shared gated cell of two runs of one benchmark."""
    baseline = store.run(baseline_id)
    candidate = store.run(candidate_id)
    if baseline.benchmark != candidate.benchmark:
        raise BenchStoreError(
            f"runs {baseline_id} ({baseline.benchmark}) and {candidate_id} "
            f"({candidate.benchmark}) measure different benchmarks"
        )
    comparison = RunComparison(baseline, candidate, threshold)
    before = store.numeric_cells(baseline_id)
    after = store.numeric_cells(candidate_id)
    for key in before.keys() & after.keys():
        comparison.shared += 1
        polarity = metric_polarity(key[2])
        if polarity == 0:
            continue
        old, new = before[key], after[key]
        if old == 0:
            continue  # a relative threshold over zero is meaningless
        change = new / old - 1
        if abs(change) <= threshold:
            continue
        delta = CellDelta(*key, baseline=old, candidate=new,
                          change=change, polarity=polarity)
        # Moving against the polarity is a regression, with it a win.
        if change * polarity < 0:
            comparison.regressions.append(delta)
        else:
            comparison.improvements.append(delta)
    ranked = lambda delta: -abs(delta.change)
    comparison.regressions.sort(key=ranked)
    comparison.improvements.sort(key=ranked)
    return comparison


@dataclass(frozen=True)
class GateResult:
    """Outcome of one gate evaluation: PASS, FAIL, or a refusal (SKIP)."""

    status: str  # "pass" | "fail" | "skip"
    lines: tuple[str, ...]
    comparison: RunComparison | None = None

    @property
    def exit_code(self) -> int:
        return 1 if self.status == "fail" else 0

    def render(self) -> str:
        return "\n".join(self.lines)


def _describe_run(run: RunInfo) -> str:
    source = f" source={run.source}" if run.source else ""
    return (
        f"run {run.id} [{run.benchmark}] recorded {run.recorded_at}"
        f" git={run.git_hash or '?'}{source}"
    )


def gate_runs(
    store: BenchStore,
    baseline_id: int,
    candidate_id: int,
    threshold: float = DEFAULT_NOISE_THRESHOLD,
) -> GateResult:
    """Gate ``candidate`` against ``baseline``; never fail across machines."""
    comparison = compare_runs(store, baseline_id, candidate_id, threshold)
    baseline, candidate = comparison.baseline, comparison.candidate
    if not comparison.fingerprints_match:
        lines = (
            "bench-gate: SKIP -- environment fingerprints differ;"
            " refusing to compare across machine classes",
            f"  baseline : {_describe_run(baseline)}",
            f"             environment {baseline.fingerprint.describe()}",
            f"  candidate: {_describe_run(candidate)}",
            f"             environment {candidate.fingerprint.describe()}",
        )
        return GateResult("skip", lines, comparison)
    header = (
        f"environment {baseline.fingerprint.key()},"
        f" {comparison.shared} shared cells,"
        f" noise threshold {threshold:.0%}"
    )
    if comparison.regressions:
        lines = [
            f"bench-gate: FAIL -- {len(comparison.regressions)} regression(s)"
            f" ({header})",
            f"  baseline : {_describe_run(baseline)}",
            f"  candidate: {_describe_run(candidate)}",
        ]
        lines += [f"  REGRESSED {delta.describe()}" for delta in comparison.regressions]
        return GateResult("fail", tuple(lines), comparison)
    lines = [
        f"bench-gate: PASS -- no regressions ({header},"
        f" {len(comparison.improvements)} improvement(s))",
        f"  baseline : {_describe_run(baseline)}",
        f"  candidate: {_describe_run(candidate)}",
    ]
    lines += [f"  improved {delta.describe()}" for delta in comparison.improvements]
    return GateResult("pass", tuple(lines), comparison)


def latest_pair(
    store: BenchStore, benchmark: str
) -> tuple[RunInfo | None, RunInfo | None]:
    """The newest run of ``benchmark`` and its most recent same-environment
    predecessor (``None`` when either does not exist)."""
    runs = store.runs(benchmark)
    if not runs:
        return None, None
    candidate = runs[-1]
    for run in reversed(runs[:-1]):
        if run.fingerprint_key == candidate.fingerprint_key:
            return run, candidate
    return None, candidate


# ----------------------------------------------------------------------
# The markdown trajectory report
# ----------------------------------------------------------------------
class TrajectoryReport:
    """Lazy markdown view of the whole store, grouped for honest reading.

    Runs are grouped per benchmark and, inside a benchmark, per
    environment fingerprint: trajectory tables only ever place
    same-machine-class runs side by side, and the newest run of each
    group is diffed against its predecessor with regressions flagged
    inline.  Everything is a :func:`functools.cached_property` so a CLI
    call that renders one benchmark never pays for the rest.
    """

    def __init__(
        self,
        store: BenchStore,
        benchmarks: list[str] | None = None,
        threshold: float = DEFAULT_NOISE_THRESHOLD,
    ):
        self._store = store
        self._benchmarks = benchmarks
        self.threshold = threshold

    @cached_property
    def benchmarks(self) -> list[str]:
        known = self._store.benchmarks()
        if self._benchmarks is None:
            return known
        missing = sorted(set(self._benchmarks) - set(known))
        if missing:
            raise BenchStoreError(
                f"no recorded runs for benchmark(s): {', '.join(missing)}"
            )
        return [name for name in known if name in set(self._benchmarks)]

    @cached_property
    def runs_by_benchmark(self) -> dict[str, list[RunInfo]]:
        return {name: self._store.runs(name) for name in self.benchmarks}

    @cached_property
    def groups(self) -> dict[str, list[tuple[EnvironmentFingerprint, list[RunInfo]]]]:
        """Per benchmark: fingerprint groups in first-recorded order."""
        grouped: dict[str, list[tuple[EnvironmentFingerprint, list[RunInfo]]]] = {}
        for name, runs in self.runs_by_benchmark.items():
            ordered: dict[str, tuple[EnvironmentFingerprint, list[RunInfo]]] = {}
            for run in runs:
                entry = ordered.setdefault(
                    run.fingerprint_key, (run.fingerprint, [])
                )
                entry[1].append(run)
            grouped[name] = list(ordered.values())
        return grouped

    # -- rendering -----------------------------------------------------
    @staticmethod
    def _markdown_table(headers: list[str], rows: list[list[str]]) -> str:
        lines = [
            "| " + " | ".join(headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        lines += ["| " + " | ".join(row) + " |" for row in rows]
        return "\n".join(lines)

    def _runs_table(self, runs: list[RunInfo]) -> str:
        rows = [
            [
                str(run.id),
                run.recorded_at,
                run.fingerprint_key,
                run.git_hash or "?",
                run.source or "?",
                "yes" if run.smoke else "no",
            ]
            for run in runs
        ]
        return self._markdown_table(
            ["run", "recorded (UTC)", "environment", "git", "source", "smoke"],
            rows,
        )

    def _group_table(self, runs: list[RunInfo]) -> str:
        """One fingerprint group's cells as columns-per-run, flags inline."""
        per_run = [self._store.numeric_cells(run.id) for run in runs]
        # Row order: first run's document order, then later-run additions.
        keys: dict[tuple, None] = {}
        for run, cells in zip(runs, per_run):
            for record in self._store.cells(run.id):
                if record.value is not None:
                    keys.setdefault(record.key, None)
        flagged: set[tuple] = set()
        if len(runs) >= 2:
            comparison = compare_runs(
                self._store, runs[-2].id, runs[-1].id, self.threshold
            )
            flagged = {
                (delta.graph, delta.cell, delta.metric)
                for delta in comparison.regressions
            }
        rows = []
        for key in keys:
            row = [key[0] or "-", key[1] or "-", key[2]]
            for position, cells in enumerate(per_run):
                if key not in cells:
                    row.append("")
                    continue
                rendered = format_value(cells[key])
                if position == len(per_run) - 1 and key in flagged:
                    rendered = f"**{rendered}** (regressed)"
                row.append(rendered)
            rows.append(row)
        headers = ["graph", "cell", "metric"] + [f"run {run.id}" for run in runs]
        return self._markdown_table(headers, rows)

    def render(self) -> str:
        """The full markdown report (deterministic for a given store)."""
        sections = ["# Performance trajectory"]
        total_runs = sum(len(runs) for runs in self.runs_by_benchmark.values())
        environments = {
            run.fingerprint_key
            for runs in self.runs_by_benchmark.values()
            for run in runs
        }
        sections.append(
            f"{total_runs} run(s) across {len(self.benchmarks)} benchmark(s)"
            f" and {len(environments)} environment class(es);"
            f" noise threshold {self.threshold:.0%}."
        )
        for name in self.benchmarks:
            runs = self.runs_by_benchmark[name]
            sections.append(f"\n## {name}\n")
            sections.append(self._runs_table(runs))
            for fingerprint, group in self.groups[name]:
                sections.append(
                    f"\n### trajectory -- environment {fingerprint.describe()}\n"
                )
                sections.append(self._group_table(group))
                if len(group) >= 2:
                    result = gate_runs(
                        self._store, group[-2].id, group[-1].id, self.threshold
                    )
                    sections.append("\n```\n" + result.render() + "\n```")
        return "\n".join(sections) + "\n"
