"""Experiment drivers: one function per table / figure of the paper's evaluation.

Every driver returns an :class:`ExperimentResult` whose rows mirror the data
points of the corresponding plot or table.  Absolute numbers differ from the
paper (the substrate is a simulated work-span runtime on synthetic stand-in
graphs, not a 48-core machine on billion-edge graphs), but the *shape* of
each result -- which variant wins, by roughly what factor, how curves move
with the parameters -- is what the reproduction checks and what
``EXPERIMENTS.md`` records.

Figure/table inventory:

* :func:`table1_work_scaling`   -- empirical check of the construction work bounds
* :func:`table2_datasets`       -- dataset summary
* :func:`figure5_index_construction` -- exact index construction times
* :func:`figure6_query_vs_epsilon`   -- query times, μ = 5, varying ε
* :func:`figure7_query_vs_mu`        -- query times, ε = 0.6, varying μ
* :func:`figure8_approx_construction` -- LSH index construction vs sample count
* :func:`figure9_modularity_tradeoff` -- construction time vs best modularity
* :func:`figure10_ari_tradeoff`       -- construction time vs ARI against exact
* :func:`sweep_throughput`            -- batched vs per-pair parameter sweeps
  (not a paper figure; tracks the repo's own multi-query planner)
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines.gs_index import GsStarIndex
from ..core.index import ScanIndex
from ..graphs.generators import planted_partition
from ..graphs.properties import arboricity_upper_bound
from ..lsh.approximate import ApproximationConfig
from ..parallel.scheduler import Scheduler
from ..quality.ari import adjusted_rand_index
from ..quality.modularity import modularity
from ..quality.sweep import epsilon_grid, modularity_sweep, mu_grid
from .datasets import DATASETS, UNWEIGHTED_DATASETS, dataset_summaries, load_dataset
from .harness import (
    PARALLEL_WORKERS,
    ROW_HEADERS,
    VARIANT_GS_INDEX,
    VARIANT_PARALLEL,
    VARIANT_SEQUENTIAL,
    MeasurementRow,
    measure,
    measure_index_construction,
    measure_query,
)
from .reporting import format_table

#: Datasets used by default in every experiment (all six stand-ins).
DEFAULT_DATASETS = tuple(DATASETS)
#: ε values of Figure 6.
FIGURE6_EPSILONS = tuple(round(0.1 * i, 2) for i in range(1, 10))
#: μ used by Figure 6.
FIGURE6_MU = 5
#: ε used by Figure 7.
FIGURE7_EPSILON = 0.6
#: Sample counts used by Figures 8-10 (scaled down from the paper's 2^5..2^15).
DEFAULT_SAMPLE_COUNTS = (16, 32, 64, 128, 256)


@dataclass
class ExperimentResult:
    """Rows of one reproduced table or figure plus a formatted report."""

    experiment: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def report(self) -> str:
        """Human-readable rendering of the result."""
        body = format_table(self.headers, self.rows)
        if self.notes:
            return f"== {self.experiment} ==\n{self.notes}\n{body}"
        return f"== {self.experiment} ==\n{body}"


# ----------------------------------------------------------------------
# Table 1: construction work scaling
# ----------------------------------------------------------------------
def table1_work_scaling(
    *,
    sizes: tuple[int, ...] = (40, 80, 160, 320),
    cluster_size: int = 25,
    num_samples: int = 32,
    seed: int = 0,
) -> ExperimentResult:
    """Empirical check of the index-construction work bounds of Table 1.

    For a family of planted-partition graphs of growing size the measured
    construction work is divided by the bound predicted by Table 1
    (``(α + log n) m`` for the exact index, ``(k + log log n) m`` for the
    approximate index).  The ratios should stay roughly flat as the graph
    grows, showing the implementation tracks the claimed bounds.
    """
    rows: list[list] = []
    for num_clusters in sizes:
        graph = planted_partition(
            num_clusters, cluster_size, p_intra=0.3, p_inter=0.005, seed=seed
        )
        n, m = graph.num_vertices, graph.num_edges
        alpha = arboricity_upper_bound(graph)
        log_n = math.log2(max(n, 2))

        scheduler = Scheduler(PARALLEL_WORKERS)
        ScanIndex.build(graph, measure="cosine", scheduler=scheduler)
        exact_work = scheduler.counter.work
        exact_bound = (alpha + log_n) * m

        scheduler = Scheduler(PARALLEL_WORKERS)
        ScanIndex.build(
            graph,
            approximate=ApproximationConfig(measure="cosine", num_samples=num_samples),
            scheduler=scheduler,
        )
        approx_work = scheduler.counter.work
        approx_bound = (num_samples + math.log2(max(log_n, 2))) * m

        rows.append(
            [
                n,
                m,
                alpha,
                exact_work,
                exact_work / exact_bound,
                approx_work,
                approx_work / approx_bound,
            ]
        )
    headers = [
        "n",
        "m",
        "arboricity<=",
        "exact_work",
        "exact_work/(a+log n)m",
        "approx_work",
        "approx_work/(k+loglog n)m",
    ]
    notes = (
        "Work ratios against the Table 1 bounds should stay roughly constant "
        "as the graph grows."
    )
    return ExperimentResult("Table 1: construction work scaling", headers, rows, notes)


# ----------------------------------------------------------------------
# Table 2: dataset summary
# ----------------------------------------------------------------------
def table2_datasets(scale: str = "bench") -> ExperimentResult:
    """Summary of the stand-in datasets next to the originals they model."""
    rows = []
    for summary in dataset_summaries(scale):
        spec = DATASETS[summary.name]
        rows.append(
            [
                summary.name,
                spec.paper_name,
                summary.num_vertices,
                summary.num_edges,
                "weighted" if summary.weighted else "unweighted",
                summary.max_degree,
                round(summary.average_degree, 1),
                summary.degeneracy,
            ]
        )
    headers = [
        "dataset",
        "stands in for",
        "vertices",
        "edges",
        "type",
        "max deg",
        "avg deg",
        "degeneracy",
    ]
    return ExperimentResult("Table 2: datasets", headers, rows)


# ----------------------------------------------------------------------
# Figure 5: exact index construction times
# ----------------------------------------------------------------------
def figure5_index_construction(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    scale: str = "bench",
) -> ExperimentResult:
    """Index construction times with exact cosine similarity (Figure 5)."""
    rows: list[list] = []
    all_rows: list[MeasurementRow] = []
    for name in datasets:
        graph = load_dataset(name, scale)
        measured = measure_index_construction(name, graph, measure_name="cosine")
        all_rows.extend(measured)
        rows.extend(row.as_row() for row in measured)

    # Headline speedups matching the paper's summary numbers.
    speedups = []
    for name in datasets:
        dataset_rows = [row for row in all_rows if row.dataset == name]
        by_variant = {row.variant: row for row in dataset_rows}
        if VARIANT_GS_INDEX in by_variant:
            ratio = (
                by_variant[VARIANT_GS_INDEX].simulated_seconds
                / max(by_variant[VARIANT_PARALLEL].simulated_seconds, 1e-12)
            )
            speedups.append(f"{name}: {ratio:.0f}x over GS*-Index")
    notes = "Parallel-vs-GS*-Index construction speedups -- " + "; ".join(speedups)
    return ExperimentResult(
        "Figure 5: index construction time (exact cosine)",
        ROW_HEADERS,
        rows,
        notes,
        extras={"measurements": all_rows},
    )


# ----------------------------------------------------------------------
# Figures 6 and 7: query times
# ----------------------------------------------------------------------
def _query_experiment(
    datasets: tuple[str, ...],
    scale: str,
    settings: list[tuple[int, float]] | None,
    vary: str,
) -> ExperimentResult:
    rows: list[list] = []
    all_rows: list[MeasurementRow] = []
    headers = ["dataset", "mu", "epsilon", "variant", "simulated_s", "wall_s"]
    for name in datasets:
        graph = load_dataset(name, scale)
        spec = DATASETS[name]
        index = ScanIndex.build(graph, measure="cosine")
        # As in the paper, GS*-Index and ppSCAN are only run on unweighted graphs.
        gs_index = None if spec.weighted else GsStarIndex.build(graph, measure="cosine")
        include_ppscan = not spec.weighted

        if settings is None:
            if vary == "epsilon":
                dataset_settings = [(FIGURE6_MU, eps) for eps in FIGURE6_EPSILONS]
            else:
                max_mu = graph.max_degree + 1
                mus = [2 ** i for i in range(1, 15) if 2 ** i <= max_mu]
                dataset_settings = [(mu, FIGURE7_EPSILON) for mu in mus]
        else:
            dataset_settings = settings

        for mu, epsilon in dataset_settings:
            measured = measure_query(
                name, graph, index, gs_index, mu, epsilon, include_ppscan=include_ppscan
            )
            all_rows.extend(measured)
            for row in measured:
                rows.append(
                    [name, mu, epsilon, row.variant, row.simulated_seconds, row.wall_seconds]
                )
    title = (
        "Figure 6: query time vs epsilon (mu=5)"
        if vary == "epsilon"
        else "Figure 7: query time vs mu (epsilon=0.6)"
    )
    return ExperimentResult(title, headers, rows, extras={"measurements": all_rows})


def figure6_query_vs_epsilon(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    scale: str = "bench",
    epsilons: tuple[float, ...] | None = None,
) -> ExperimentResult:
    """Clustering query times with μ=5 and varying ε (Figure 6)."""
    settings = None if epsilons is None else [(FIGURE6_MU, eps) for eps in epsilons]
    return _query_experiment(datasets, scale, settings, vary="epsilon")


def figure7_query_vs_mu(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    scale: str = "bench",
    mus: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Clustering query times with ε=0.6 and varying μ (Figure 7)."""
    settings = None if mus is None else [(mu, FIGURE7_EPSILON) for mu in mus]
    return _query_experiment(datasets, scale, settings, vary="mu")


# ----------------------------------------------------------------------
# Figure 8: approximate index construction times
# ----------------------------------------------------------------------
def figure8_approx_construction(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    scale: str = "bench",
    sample_counts: tuple[int, ...] = DEFAULT_SAMPLE_COUNTS,
    seed: int = 0,
) -> ExperimentResult:
    """Approximate index construction time vs number of samples (Figure 8)."""
    headers = ["dataset", "similarity", "samples", "simulated_s", "wall_s", "work"]
    rows: list[list] = []
    for name in datasets:
        graph = load_dataset(name, scale)
        spec = DATASETS[name]

        exact = measure(
            name,
            "exact cosine",
            PARALLEL_WORKERS,
            lambda scheduler: ScanIndex.build(graph, measure="cosine", scheduler=scheduler),
        )
        rows.append([name, "exact cosine", "-", exact.simulated_seconds,
                     exact.wall_seconds, exact.work])

        measures = ["cosine"] if spec.weighted else ["cosine", "jaccard"]
        for measure_name in measures:
            for samples in sample_counts:
                config = ApproximationConfig(
                    measure=measure_name, num_samples=samples, seed=seed
                )
                approx = measure(
                    name,
                    f"approx {measure_name}",
                    PARALLEL_WORKERS,
                    lambda scheduler, config=config: ScanIndex.build(
                        graph, measure=measure_name, approximate=config, scheduler=scheduler
                    ),
                )
                rows.append(
                    [name, f"approx {measure_name}", samples,
                     approx.simulated_seconds, approx.wall_seconds, approx.work]
                )
    notes = (
        "Approximate Jaccard (k-partition MinHash) should be consistently cheaper than "
        "approximate cosine (SimHash) at equal sample counts; both flatten once the "
        "low-degree heuristic reverts most vertices to exact computation."
    )
    return ExperimentResult(
        "Figure 8: approximate index construction time vs samples", headers, rows, notes
    )


# ----------------------------------------------------------------------
# Figures 9 and 10: quality/time trade-offs
# ----------------------------------------------------------------------
def figure9_modularity_tradeoff(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    scale: str = "bench",
    sample_counts: tuple[int, ...] = (16, 64, 256),
    num_trials: int = 2,
    epsilon_step: float = 0.05,
) -> ExperimentResult:
    """Best modularity found over the grid Σ vs index construction time (Figure 9)."""
    headers = [
        "dataset", "similarity", "samples", "construction_simulated_s", "best_modularity",
        "best_mu", "best_epsilon",
    ]
    rows: list[list] = []
    for name in datasets:
        graph = load_dataset(name, scale)
        spec = DATASETS[name]
        measures = ["cosine"] if spec.weighted else ["cosine", "jaccard"]

        for measure_name in measures:
            exact_row = measure(
                name,
                f"exact {measure_name}",
                PARALLEL_WORKERS,
                lambda scheduler, m=measure_name: ScanIndex.build(
                    graph, measure=m, scheduler=scheduler
                ),
            )
            exact_index: ScanIndex = exact_row.details["result"]
            sweep = modularity_sweep(exact_index, epsilon_step=epsilon_step)
            best = sweep.best
            rows.append(
                [name, f"exact {measure_name}", "-", exact_row.simulated_seconds,
                 best.modularity, best.mu, best.epsilon]
            )

            for samples in sample_counts:
                scores, times, best_mus, best_epsilons = [], [], [], []
                for trial in range(num_trials):
                    config = ApproximationConfig(
                        measure=measure_name, num_samples=samples, seed=trial
                    )
                    approx_row = measure(
                        name,
                        f"approx {measure_name}",
                        PARALLEL_WORKERS,
                        lambda scheduler, c=config, m=measure_name: ScanIndex.build(
                            graph, measure=m, approximate=c, scheduler=scheduler
                        ),
                    )
                    approx_index: ScanIndex = approx_row.details["result"]
                    approx_sweep = modularity_sweep(approx_index, epsilon_step=epsilon_step)
                    approx_best = approx_sweep.best
                    scores.append(approx_best.modularity)
                    times.append(approx_row.simulated_seconds)
                    best_mus.append(approx_best.mu)
                    best_epsilons.append(approx_best.epsilon)
                rows.append(
                    [name, f"approx {measure_name}", samples, float(np.mean(times)),
                     float(np.mean(scores)), best_mus[0], best_epsilons[0]]
                )
    notes = (
        "The best modularity reachable with approximate similarities should approach the "
        "exact value as the sample count grows, at a fraction of the construction time "
        "on the dense graphs."
    )
    return ExperimentResult(
        "Figure 9: modularity vs approximate construction time", headers, rows, notes
    )


def figure10_ari_tradeoff(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    scale: str = "bench",
    sample_counts: tuple[int, ...] = (16, 64, 256),
    num_trials: int = 2,
    epsilon_step: float = 0.05,
) -> ExperimentResult:
    """ARI of approximate clusterings against the exact clustering (Figure 10).

    For each dataset the modularity-maximising parameters of the *exact*
    index define the ground-truth clustering; the approximate index's
    clustering at the same parameters is compared against it with the ARI.
    """
    headers = [
        "dataset", "similarity", "samples", "construction_simulated_s", "ari", "mu", "epsilon",
    ]
    rows: list[list] = []
    for name in datasets:
        graph = load_dataset(name, scale)
        spec = DATASETS[name]
        measures = ["cosine"] if spec.weighted else ["cosine", "jaccard"]
        for measure_name in measures:
            exact_index = ScanIndex.build(graph, measure=measure_name)
            sweep = modularity_sweep(exact_index, epsilon_step=epsilon_step)
            best_mu, best_epsilon = sweep.best_parameters()
            ground_truth = exact_index.query(
                best_mu, best_epsilon, deterministic_borders=True
            )
            rows.append([name, f"exact {measure_name}", "-", 0.0, 1.0, best_mu, best_epsilon])

            for samples in sample_counts:
                scores, times = [], []
                for trial in range(num_trials):
                    config = ApproximationConfig(
                        measure=measure_name, num_samples=samples, seed=trial
                    )
                    approx_row = measure(
                        name,
                        f"approx {measure_name}",
                        PARALLEL_WORKERS,
                        lambda scheduler, c=config, m=measure_name: ScanIndex.build(
                            graph, measure=m, approximate=c, scheduler=scheduler
                        ),
                    )
                    approx_index: ScanIndex = approx_row.details["result"]
                    approx_clustering = approx_index.query(
                        best_mu, best_epsilon, deterministic_borders=True
                    )
                    scores.append(adjusted_rand_index(approx_clustering, ground_truth))
                    times.append(approx_row.simulated_seconds)
                rows.append(
                    [name, f"approx {measure_name}", samples, float(np.mean(times)),
                     float(np.mean(scores)), best_mu, best_epsilon]
                )
    notes = (
        "ARI against the exact clustering at the exact index's best parameters should "
        "increase toward 1 with the sample count."
    )
    return ExperimentResult(
        "Figure 10: ARI vs approximate construction time", headers, rows, notes
    )


# ----------------------------------------------------------------------
# Sweep throughput: the batched multi-(μ, ε) planner vs per-pair queries
# ----------------------------------------------------------------------
def sweep_throughput(
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    scale: str = "bench",
    epsilon_step: float = 0.05,
) -> ExperimentResult:
    """Batched parameter sweeps against one-query-at-a-time execution.

    For every dataset the full (clipped) grid Σ is answered twice -- once
    through :meth:`ScanIndex.query_many` and once as individual
    :meth:`ScanIndex.query` calls -- and both the charged work and the wall
    clock are compared.  The batched planner shares the core-prefix doubling
    search across all settings and gathers each distinct ε's arcs once, so
    its advantage grows with the density of the ε grid.
    """
    headers = [
        "dataset", "settings", "batched_s", "per_pair_s", "wall_speedup",
        "batched_work", "per_pair_work", "work_ratio",
    ]
    rows: list[list] = []
    for name in datasets:
        graph = load_dataset(name, scale)
        index = ScanIndex.build(graph, measure="cosine")
        pairs = [
            (mu, float(eps))
            for mu in mu_grid(graph.max_degree + 1)
            for eps in epsilon_grid(epsilon_step)
        ]

        batch_scheduler = Scheduler(PARALLEL_WORKERS)
        started = time.perf_counter()
        index.query_many(pairs, scheduler=batch_scheduler, deterministic_borders=True)
        batched_wall = time.perf_counter() - started

        single_scheduler = Scheduler(PARALLEL_WORKERS)
        started = time.perf_counter()
        for mu, epsilon in pairs:
            index.query(
                mu, epsilon, scheduler=single_scheduler, deterministic_borders=True
            )
        per_pair_wall = time.perf_counter() - started

        rows.append(
            [
                name,
                len(pairs),
                batched_wall,
                per_pair_wall,
                per_pair_wall / max(batched_wall, 1e-12),
                batch_scheduler.counter.work,
                single_scheduler.counter.work,
                single_scheduler.counter.work / max(batch_scheduler.counter.work, 1e-12),
            ]
        )
    notes = (
        "query_many answers the whole grid in one planned batch; work_ratio > 1 "
        "is the index-probe redundancy the planner removes."
    )
    return ExperimentResult("Sweep throughput: batched multi-(mu, eps) queries",
                            headers, rows, notes)


#: Registry used by the command-line entry point and the benchmarks.
ALL_EXPERIMENTS = {
    "table1": table1_work_scaling,
    "table2": table2_datasets,
    "figure5": figure5_index_construction,
    "figure6": figure6_query_vs_epsilon,
    "figure7": figure7_query_vs_mu,
    "figure8": figure8_approx_construction,
    "figure9": figure9_modularity_tradeoff,
    "figure10": figure10_ari_tradeoff,
    "sweep": sweep_throughput,
}
