"""Measurement harness shared by all benchmark drivers.

The harness runs one algorithm variant, records both the measured wall-clock
time and the work/span charged to its scheduler, and converts the latter into
the *simulated running time* on a given number of processors (Brent's bound,
see :mod:`repro.parallel.metrics`).  The variant names follow the paper's
plots:

* ``GBBSIndexSCAN (48 cores)`` -- the parallel index algorithm on the paper's
  machine size (96 hyper-threads are modelled as 48 two-way cores; we use the
  hyper-thread count as the worker count, as the paper's speedups do);
* ``GBBSIndexSCAN (1 thread)`` -- the same algorithm restricted to a single
  worker;
* ``GBBSIndexSCAN-MM`` -- the matrix-multiplication similarity backend;
* ``GS*-Index (1 thread)`` -- the sequential baseline;
* ``ppSCAN (48 cores)`` -- the pruning-based per-query parallel baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..baselines.gs_index import GsStarIndex
from ..baselines.pscan import pscan_clustering
from ..core.index import ScanIndex
from ..graphs.graph import Graph
from ..lsh.approximate import ApproximationConfig
from ..parallel.scheduler import PAPER_NUM_THREADS, Scheduler

#: Worker count modelling the paper's 48-core / 96-hyper-thread machine.
PARALLEL_WORKERS = PAPER_NUM_THREADS
#: Worker count of the sequential runs.
SEQUENTIAL_WORKERS = 1

VARIANT_PARALLEL = "GBBSIndexSCAN (48 cores)"
VARIANT_SEQUENTIAL = "GBBSIndexSCAN (1 thread)"
VARIANT_MATMUL = "GBBSIndexSCAN-MM (48 cores)"
VARIANT_GS_INDEX = "GS*-Index (1 thread)"
VARIANT_PPSCAN = "ppSCAN (48 cores)"


@dataclass
class MeasurementRow:
    """One measured (dataset, variant) data point."""

    dataset: str
    variant: str
    simulated_seconds: float
    wall_seconds: float
    work: float
    span: float
    details: dict = field(default_factory=dict)

    def as_row(self) -> list:
        """Row used by the text reports."""
        return [
            self.dataset,
            self.variant,
            self.simulated_seconds,
            self.wall_seconds,
            self.work,
            self.span,
        ]


ROW_HEADERS = ["dataset", "variant", "simulated_s", "wall_s", "work", "span"]


def measure(
    dataset: str,
    variant: str,
    num_workers: int,
    run: Callable[[Scheduler], object],
    **details,
) -> MeasurementRow:
    """Run ``run`` with a fresh scheduler and record its costs."""
    scheduler = Scheduler(num_workers)
    started = time.perf_counter()
    result = run(scheduler)
    wall = time.perf_counter() - started
    row = MeasurementRow(
        dataset=dataset,
        variant=variant,
        simulated_seconds=scheduler.simulated_time(),
        wall_seconds=wall,
        work=scheduler.counter.work,
        span=scheduler.counter.span,
        details={"result": result, **details},
    )
    return row


# ----------------------------------------------------------------------
# Index construction measurements (Figure 5, Figure 8)
# ----------------------------------------------------------------------
def measure_index_construction(
    dataset: str,
    graph: Graph,
    *,
    measure_name: str = "cosine",
    include_matmul: bool | None = None,
    approximate: ApproximationConfig | None = None,
) -> list[MeasurementRow]:
    """Construction-time rows for the paper's index-construction comparison.

    ``include_matmul`` defaults to running the matrix-multiplication variant
    only when the graph is small enough for its dense adjacency matrix to be
    reasonable (the paper likewise only runs it on the two small dense
    graphs).
    """
    if include_matmul is None:
        include_matmul = graph.num_vertices <= 2000

    rows: list[MeasurementRow] = []

    def build_parallel(scheduler: Scheduler) -> ScanIndex:
        return ScanIndex.build(
            graph,
            measure=measure_name,
            backend="batch",
            approximate=approximate,
            scheduler=scheduler,
        )

    rows.append(measure(dataset, VARIANT_PARALLEL, PARALLEL_WORKERS, build_parallel))
    rows.append(measure(dataset, VARIANT_SEQUENTIAL, SEQUENTIAL_WORKERS, build_parallel))

    if approximate is None:
        def build_gs(scheduler: Scheduler) -> GsStarIndex:
            return GsStarIndex.build(graph, measure=measure_name, scheduler=scheduler)

        rows.append(measure(dataset, VARIANT_GS_INDEX, SEQUENTIAL_WORKERS, build_gs))

        if include_matmul:
            def build_matmul(scheduler: Scheduler) -> ScanIndex:
                return ScanIndex.build(
                    graph, measure=measure_name, backend="matmul", scheduler=scheduler
                )

            rows.append(measure(dataset, VARIANT_MATMUL, PARALLEL_WORKERS, build_matmul))
    return rows


# ----------------------------------------------------------------------
# Query measurements (Figures 6 and 7)
# ----------------------------------------------------------------------
def measure_query(
    dataset: str,
    graph: Graph,
    index: ScanIndex,
    gs_index: GsStarIndex | None,
    mu: int,
    epsilon: float,
    *,
    include_ppscan: bool = True,
) -> list[MeasurementRow]:
    """Query-time rows for one ``(μ, ε)`` setting."""
    rows: list[MeasurementRow] = []

    def run_index(scheduler: Scheduler):
        return index.query(mu, epsilon, scheduler=scheduler)

    rows.append(
        measure(dataset, VARIANT_PARALLEL, PARALLEL_WORKERS, run_index, mu=mu, epsilon=epsilon)
    )
    rows.append(
        measure(dataset, VARIANT_SEQUENTIAL, SEQUENTIAL_WORKERS, run_index, mu=mu, epsilon=epsilon)
    )

    if gs_index is not None:
        def run_gs(scheduler: Scheduler):
            return gs_index.query(mu, epsilon, scheduler=scheduler)

        rows.append(
            measure(dataset, VARIANT_GS_INDEX, SEQUENTIAL_WORKERS, run_gs, mu=mu, epsilon=epsilon)
        )

    if include_ppscan:
        def run_ppscan(scheduler: Scheduler):
            return pscan_clustering(graph, mu, epsilon, scheduler=scheduler)

        rows.append(
            measure(dataset, VARIANT_PPSCAN, PARALLEL_WORKERS, run_ppscan, mu=mu, epsilon=epsilon)
        )
    return rows


# ----------------------------------------------------------------------
# Aggregation helpers
# ----------------------------------------------------------------------
def speedup(rows: list[MeasurementRow], baseline_variant: str, target_variant: str) -> float:
    """Simulated-time speedup of ``target_variant`` over ``baseline_variant``."""
    baseline = [row for row in rows if row.variant == baseline_variant]
    target = [row for row in rows if row.variant == target_variant]
    if not baseline or not target:
        raise ValueError("both variants must be present in the rows")
    return baseline[0].simulated_seconds / max(target[0].simulated_seconds, 1e-12)


def rows_as_table(rows: list[MeasurementRow]) -> tuple[list[str], list[list]]:
    """Headers plus plain rows for :func:`repro.bench.reporting.format_table`."""
    return ROW_HEADERS, [row.as_row() for row in rows]
