"""Synthetic stand-ins for the paper's six evaluation graphs (Table 2).

The paper's graphs range from 70 million to 1.8 billion edges; at that size a
pure-Python reproduction is not feasible, so the benchmark harness runs on
synthetic graphs that preserve the *structural regime* of each original:

==================  ============================  ==========================
paper graph         structural regime             stand-in generator
==================  ============================  ==========================
Orkut               social network, strong        planted partition
                    communities, moderate degree
brain               extremely dense neighborhoods  dense planted partition
                    (large arboricity)
WebBase             web crawl, hub-dominated       hub-and-spoke web graph
                    heavy-tailed degrees
Friendster          social network, larger and     planted partition (sparser
                    sparser than Orkut             intra-cluster)
blood vessel        dense weighted functional      dense weighted association
                    association network
cochlea             denser weighted functional     dense weighted association
                    association network            (higher density)
==================  ============================  ==========================

Two scales are provided: ``"tiny"`` for unit/integration tests and
``"bench"`` (default) for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graphs.generators import (
    dense_clustered_graph,
    dense_weighted_association,
    hub_and_spoke_web,
    paper_example_graph,
    planted_partition,
)
from ..graphs.graph import Graph
from ..graphs.properties import GraphSummary

#: Scales accepted by the dataset loaders.
SCALES = ("tiny", "bench")


@dataclass(frozen=True)
class DatasetSpec:
    """One benchmark dataset: how to build it and what it stands in for."""

    name: str
    paper_name: str
    paper_vertices: int
    paper_edges: int
    weighted: bool
    description: str
    _loader: Callable[[str], Graph]

    def load(self, scale: str = "bench") -> Graph:
        """Build the stand-in graph at the requested scale."""
        if scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
        return self._loader(scale)


def _orkut_like(scale: str) -> Graph:
    if scale == "tiny":
        return planted_partition(5, 30, p_intra=0.3, p_inter=0.01, seed=11)
    return planted_partition(20, 100, p_intra=0.3, p_inter=0.003, seed=11)


def _brain_like(scale: str) -> Graph:
    if scale == "tiny":
        return dense_clustered_graph(4, 25, p_intra=0.8, p_inter=0.02, seed=12)
    return dense_clustered_graph(8, 60, p_intra=0.8, p_inter=0.02, seed=12)


def _webbase_like(scale: str) -> Graph:
    if scale == "tiny":
        return hub_and_spoke_web(10, 15, cross_link_probability=0.002,
                                 intra_hub_probability=0.15, seed=13)
    return hub_and_spoke_web(40, 40, cross_link_probability=0.0005,
                             intra_hub_probability=0.12, seed=13)


def _friendster_like(scale: str) -> Graph:
    if scale == "tiny":
        return planted_partition(6, 25, p_intra=0.25, p_inter=0.01, seed=14)
    return planted_partition(30, 80, p_intra=0.25, p_inter=0.002, seed=14)


def _blood_vessel_like(scale: str) -> Graph:
    if scale == "tiny":
        return dense_weighted_association(80, num_modules=4, density=0.35, seed=15)
    return dense_weighted_association(300, num_modules=5, density=0.35, seed=15)


def _cochlea_like(scale: str) -> Graph:
    if scale == "tiny":
        return dense_weighted_association(90, num_modules=5, density=0.5, seed=16)
    return dense_weighted_association(350, num_modules=6, density=0.5, seed=16)


#: Registry of the six stand-in datasets, keyed by their short names.
DATASETS: dict[str, DatasetSpec] = {
    "orkut-like": DatasetSpec(
        name="orkut-like",
        paper_name="Orkut",
        paper_vertices=3_072_441,
        paper_edges=117_185_083,
        weighted=False,
        description="social network with pronounced communities",
        _loader=_orkut_like,
    ),
    "brain-like": DatasetSpec(
        name="brain-like",
        paper_name="brain",
        paper_vertices=784_262,
        paper_edges=267_844_669,
        weighted=False,
        description="very dense neighborhoods, large arboricity",
        _loader=_brain_like,
    ),
    "webbase-like": DatasetSpec(
        name="webbase-like",
        paper_name="WebBase",
        paper_vertices=118_142_155,
        paper_edges=854_809_761,
        weighted=False,
        description="web crawl, hub-dominated heavy-tailed degrees",
        _loader=_webbase_like,
    ),
    "friendster-like": DatasetSpec(
        name="friendster-like",
        paper_name="Friendster",
        paper_vertices=65_608_366,
        paper_edges=1_806_067_135,
        weighted=False,
        description="larger, sparser social network",
        _loader=_friendster_like,
    ),
    "blood-vessel-like": DatasetSpec(
        name="blood-vessel-like",
        paper_name="blood vessel",
        paper_vertices=25_825,
        paper_edges=70_240_269,
        weighted=True,
        description="dense weighted functional association network",
        _loader=_blood_vessel_like,
    ),
    "cochlea-like": DatasetSpec(
        name="cochlea-like",
        paper_name="cochlea",
        paper_vertices=25_825,
        paper_edges=282_977_319,
        weighted=True,
        description="denser weighted functional association network",
        _loader=_cochlea_like,
    ),
}

#: The unweighted datasets (GS*-Index and ppSCAN only run on these, as in the paper).
UNWEIGHTED_DATASETS = tuple(
    name for name, spec in DATASETS.items() if not spec.weighted
)
#: The weighted datasets.
WEIGHTED_DATASETS = tuple(name for name, spec in DATASETS.items() if spec.weighted)


def load_dataset(name: str, scale: str = "bench") -> Graph:
    """Load a stand-in dataset by short name."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    return DATASETS[name].load(scale)


def dataset_summaries(scale: str = "bench") -> list[GraphSummary]:
    """Table-2-style summary of every stand-in dataset at the given scale."""
    return [
        GraphSummary.of(spec.name, spec.load(scale)) for spec in DATASETS.values()
    ]


def paper_example() -> Graph:
    """The 11-vertex worked example of Figures 1-3."""
    return paper_example_graph()
