"""Glue between the benchmark runners and the results store.

Every standalone runner keeps writing its ``BENCH_*.json`` (the
compatibility surface earlier PRs and the docs point at) and *also*
gains ``--record [DB]``: the same payload, stamped with the shared
environment block, appended to the sqlite trajectory store.  The helper
is one place so fifteen runners cannot drift into fifteen recording
conventions the way they drifted into six JSON schemas.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .environment import capture_environment
from .store import BenchStore

__all__ = [
    "DEFAULT_DB_NAME",
    "add_record_argument",
    "record_payload",
    "with_environment",
]

#: Default trajectory-store filename, created next to the BENCH_*.json files.
DEFAULT_DB_NAME = "BENCH_trajectory.sqlite"


def add_record_argument(parser: argparse.ArgumentParser, repo_root: Path) -> None:
    """Install the shared ``--record [DB]`` flag on a runner's parser."""
    parser.add_argument(
        "--record",
        metavar="DB",
        type=Path,
        nargs="?",
        const=repo_root / DEFAULT_DB_NAME,
        default=None,
        help="append this run to the sqlite trajectory store "
             f"(default store: {repo_root / DEFAULT_DB_NAME})",
    )


def with_environment(results: dict) -> dict:
    """Merge the shared environment block into a runner's payload.

    Runner-specific fields already present (``pool_startup_seconds``,
    ``parallel_floor_arcs``) win over nothing -- they are kept verbatim;
    only the shared fingerprint fields and ``git_hash`` are added.
    """
    environment = capture_environment()
    environment.update(results.get("environment") or {})
    merged = dict(results)
    merged["environment"] = environment
    return merged


def record_payload(
    db_path: Path,
    results: dict,
    *,
    source: str,
    smoke: bool = False,
) -> int:
    """Append one runner payload to the store at ``db_path``; return run id.

    The payload is stamped with the shared environment block first, so a
    recorded run always carries a complete fingerprint even when the
    runner's JSON schema predates environment capture.
    """
    payload = with_environment(results)
    with BenchStore(db_path) as store:
        run_id = store.record(payload, source=source, smoke=smoke)
    print(f"recorded run {run_id} ({payload['benchmark']}) in {db_path}")
    return run_id
