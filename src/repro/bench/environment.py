"""Environment capture and fingerprinting for benchmark runs.

Every performance number in the trajectory store is only comparable to
numbers recorded on the same *class* of machine: the committed
``BENCH_construction.json`` was captured on a 1-CPU container where the
``jobs > 1`` cells are honest slowdowns, and comparing them against an
8-core run would read as a 4x regression (or improvement) that never
happened.  The fingerprint pins down the fields that decide
comparability:

* ``cpu_count``   -- the affinity-mask core count (what ``jobs=0``
  resolves to), not the host's count: a cgroup-pinned container must
  not pretend its host's cores are available;
* ``platform`` / ``machine`` -- OS family and ISA;
* ``python`` / ``numpy``     -- the interpreter and kernel library the
  hot paths run on.

The git hash is captured *alongside* the fingerprint but deliberately
kept out of its key: the whole point of the trajectory is comparing
different commits on the same machine class.  Two runs compare iff
their fingerprint :meth:`~EnvironmentFingerprint.key` values are equal;
``repro bench gate`` refuses (with a structured warning, not a failure)
otherwise.

The benchmark runners previously each captured their own ad-hoc
environment blocks (``bench_construction.py`` the affinity count,
``bench_serve_concurrent.py`` ``os.cpu_count()`` plus the python
version, the rest nothing); :func:`capture_environment` is the one
shared implementation they all embed now.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as platform_module
import subprocess
import sys
from dataclasses import dataclass, fields

__all__ = [
    "EnvironmentFingerprint",
    "FINGERPRINT_FIELDS",
    "capture_environment",
    "capture_fingerprint",
    "fingerprint_from_mapping",
    "git_revision",
    "visible_cpu_count",
]


@dataclass(frozen=True)
class EnvironmentFingerprint:
    """The fields that decide whether two benchmark runs may be compared.

    Any field may be ``None``: payloads imported from the older ad-hoc
    ``BENCH_*.json`` environment blocks only recorded a subset (or
    nothing at all), and an unknown field must not silently match a
    known one -- ``None`` hashes as its own value, so a partial
    fingerprint only ever matches an equally partial one.
    """

    cpu_count: int | None = None
    platform: str | None = None
    machine: str | None = None
    python: str | None = None
    numpy: str | None = None

    def key(self) -> str:
        """Stable 12-hex-digit digest of the fingerprint fields."""
        canonical = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha1(canonical.encode()).hexdigest()[:12]

    def as_dict(self) -> dict:
        return {field.name: getattr(self, field.name) for field in fields(self)}

    def describe(self) -> str:
        """One-line human rendering, e.g. for gate-refusal warnings."""
        parts = [
            f"{name}={value if value is not None else '?'}"
            for name, value in self.as_dict().items()
        ]
        return f"{self.key()} ({', '.join(parts)})"

    @property
    def complete(self) -> bool:
        return all(value is not None for value in self.as_dict().values())


#: Field names of :class:`EnvironmentFingerprint`, in declaration order.
FINGERPRINT_FIELDS = tuple(field.name for field in fields(EnvironmentFingerprint))


def visible_cpu_count() -> int:
    """Cores this process may actually use (affinity mask, not host count)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def git_revision() -> str | None:
    """The working tree's short commit hash, or ``None`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):  # pragma: no cover - no git
        return None
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else None


def capture_fingerprint() -> EnvironmentFingerprint:
    """Fingerprint of the running interpreter's environment."""
    import numpy

    return EnvironmentFingerprint(
        cpu_count=visible_cpu_count(),
        platform=platform_module.system(),
        machine=platform_module.machine(),
        python=sys.version.split()[0],
        numpy=numpy.__version__,
    )


def capture_environment() -> dict:
    """The environment block benchmark runners embed in their payloads.

    The fingerprint fields plus the run-scoped ``git_hash`` (kept out of
    the fingerprint key on purpose; see the module docstring).
    """
    environment = capture_fingerprint().as_dict()
    environment["git_hash"] = git_revision()
    return environment


def fingerprint_from_mapping(environment) -> EnvironmentFingerprint:
    """Fingerprint from a payload's ``environment`` block (may be partial).

    Unknown keys are ignored (the old blocks carried run-scoped extras
    like ``pool_startup_seconds``); missing keys stay ``None`` so a
    partially-recorded environment only matches an equally partial one.
    """
    if environment is None:
        environment = {}
    if not isinstance(environment, dict):
        raise TypeError(
            f"environment block must be a mapping, got {type(environment).__name__}"
        )
    return EnvironmentFingerprint(
        **{name: environment.get(name) for name in FINGERPRINT_FIELDS}
    )
