"""The dynamic-update subsystem: batched edge mutations on a built index.

The index of this library (similarity scores + the two sorted orders) is
built once and queried many times -- but real graphs change.  A full
rebuild after every change pays the ``O(m^{3/2})`` triangle work and the
global sorts again; ``repro.dynamic`` repairs the index instead, in work
proportional to the *affected neighborhoods*: inserting or deleting edge
``(u, v)`` can only change similarities of edges incident to ``u`` or
``v``, and only the sorted runs of those edges' endpoints.

Three pieces:

* :class:`~repro.dynamic.updates.UpdateBatch` -- a validated, deduplicated
  delta (opposing ops cancel) that knows its touched vertices and, per
  graph, its affected edge set;
* :func:`~repro.dynamic.patch.apply_updates` -- the patcher: splices the
  CSR graph and the canonical edge numbering, recomputes only the affected
  similarities (via the subset engine of :mod:`repro.similarity.batch`),
  and repairs both orders by merging sorted runs -- **bit-identical** to a
  from-scratch rebuild on the mutated graph;
* :func:`~repro.dynamic.updates.load_delta_file` -- the ``+ u v`` /
  ``- u v`` delta format of the ``repro update`` CLI.

Entry points: :meth:`ScanIndex.apply_updates
<repro.core.index.ScanIndex.apply_updates>` in code, ``python -m repro
update ARTIFACT DELTA`` against a saved artifact, and
``benchmarks/bench_updates.py`` for the incremental-vs-rebuild numbers
(``BENCH_updates.json``).
"""

from .patch import apply_updates
from .updates import UpdateBatch, UpdateReport, load_delta_file

__all__ = ["UpdateBatch", "UpdateReport", "apply_updates", "load_delta_file"]
