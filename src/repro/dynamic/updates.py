"""Update batches: validated, canonicalized edge insert/delete deltas.

An :class:`UpdateBatch` is the unit of mutation the dynamic subsystem
applies to a built index.  Raw ``(u, v)`` pairs arrive in whatever shape a
caller produces -- unordered endpoints, duplicates, opposing insert/delete
ops for the same edge -- and the batch constructor normalises them once so
the patcher (:mod:`repro.dynamic.patch`) can assume a clean delta:

* endpoints are canonicalized to ``u < v`` (self-loops are rejected -- the
  library indexes simple graphs only);
* duplicate insertions collapse keeping the *last* weight seen, matching
  the edge-list builder convention of :mod:`repro.graphs.builders`;
  duplicate deletions collapse to one;
* an edge appearing on **both** sides cancels to a no-op and is dropped
  from both (the count is kept in :attr:`UpdateBatch.num_cancelled`) --
  unless the insertions carry explicit weights, in which case the pair is
  kept and applied as an atomic **reweight** (delete + re-insert is the
  only way to change a weighted edge's weight, since inserting a present
  edge is otherwise rejected).

The batch also answers the *affected-set* question the whole subsystem is
built around: inserting or deleting edge ``(u, v)`` changes the closed
neighborhood of ``u`` and ``v`` only, so the similarity score of an edge
can change **iff** it is incident to a touched endpoint
(:meth:`UpdateBatch.touched_vertices`, :meth:`UpdateBatch.affected_edges`).
Everything downstream -- the subset similarity recompute, the order
patchers, the benchmark's work accounting -- keys off that contract.

:func:`load_delta_file` reads the on-disk delta format the ``repro
update`` CLI consumes: one op per line, ``+ u v [weight]`` to insert and
``- u v`` to delete, with ``#``/``%`` comment lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["UpdateBatch", "UpdateReport", "load_delta_file"]

_EMPTY_IDS = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class UpdateBatch:
    """A canonicalized batch of edge insertions and deletions.

    Build instances with :meth:`from_edges`; the constructor fields are the
    already-normalised arrays (``u < v``, lexicographically sorted, unique,
    no edge on both sides).

    Attributes
    ----------
    insert_u, insert_v:
        Endpoints of the edges to insert, canonical and lex-sorted.
    insert_weights:
        Per-insertion weights aligned with the endpoints, or ``None`` when
        no insertion carried an explicit weight.
    delete_u, delete_v:
        Endpoints of the edges to delete, canonical and lex-sorted.
    num_cancelled:
        Number of edges that appeared on both sides and cancelled out.
    """

    insert_u: np.ndarray
    insert_v: np.ndarray
    insert_weights: np.ndarray | None
    delete_u: np.ndarray
    delete_v: np.ndarray
    num_cancelled: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        insertions=(),
        deletions=(),
    ) -> "UpdateBatch":
        """Canonicalize raw insertion/deletion pairs into a batch.

        Parameters
        ----------
        insertions:
            Iterable of ``(u, v)`` or ``(u, v, weight)`` items (mixing the
            two is allowed; missing weights default to 1.0 once any item
            carries one).
        deletions:
            Iterable of ``(u, v)`` pairs.

        Raises ``ValueError`` on self-loops or negative vertex ids.
        """
        ins_u, ins_v, ins_w, explicit = _canonical_insertions(insertions)
        del_u, del_v = _canonical_deletions(deletions)

        # Opposing ops on the same edge cancel: the batch's net effect on
        # that edge is nothing, so it is dropped from both sides.  Not so
        # when the *insertion itself* carries an explicit weight -- there a
        # delete + re-insert pair is the (only) way to express a reweight,
        # so both ops are kept and applied as one atomic replace.  The
        # explicitness is tracked per insertion: an unrelated weighted op
        # elsewhere in the batch must not turn an opposing pair into an
        # accidental reweight-to-default.
        cancelled = 0
        if ins_u.size and del_u.size:
            span = np.int64(max(int(ins_v.max(initial=0)), int(del_v.max(initial=0))) + 1)
            ins_keys = ins_u * span + ins_v
            del_keys = del_u * span + del_v
            cancels = np.isin(ins_keys, del_keys, assume_unique=True) & ~explicit
            cancelled = int(np.count_nonzero(cancels))
            if cancelled:
                keep_del = ~np.isin(del_keys, ins_keys[cancels], assume_unique=True)
                ins_u, ins_v = ins_u[~cancels], ins_v[~cancels]
                if ins_w is not None:
                    ins_w = ins_w[~cancels]
                del_u, del_v = del_u[keep_del], del_v[keep_del]
        return cls(
            insert_u=ins_u,
            insert_v=ins_v,
            insert_weights=ins_w,
            delete_u=del_u,
            delete_v=del_v,
            num_cancelled=cancelled,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_insertions(self) -> int:
        """Number of (surviving) edge insertions in the batch."""
        return int(self.insert_u.shape[0])

    @property
    def num_deletions(self) -> int:
        """Number of (surviving) edge deletions in the batch."""
        return int(self.delete_u.shape[0])

    @property
    def is_empty(self) -> bool:
        """True when the batch performs no mutation at all."""
        return self.num_insertions == 0 and self.num_deletions == 0

    def touched_vertices(self) -> np.ndarray:
        """Sorted distinct endpoints of every op in the batch.

        These are the vertices whose closed neighborhood the batch changes;
        an edge's similarity can change only if one of its endpoints is in
        this set (the affected-set contract of the dynamic subsystem).
        """
        if self.is_empty:
            return _EMPTY_IDS.copy()
        return np.unique(
            np.concatenate([self.insert_u, self.insert_v, self.delete_u, self.delete_v])
        )

    def affected_edges(self, graph) -> np.ndarray:
        """Ids of ``graph``'s edges incident to a touched endpoint.

        Works against either the pre- or post-update graph; the patcher
        evaluates it on the *patched* graph, where it lists exactly the
        edges whose similarity must be recomputed (every other edge keeps
        its stored score bit for bit).
        """
        touched = self.touched_vertices()
        if touched.size == 0 or graph.num_edges == 0:
            return _EMPTY_IDS.copy()
        mask = np.zeros(graph.num_vertices, dtype=bool)
        mask[touched] = True
        edge_u, edge_v = graph.edge_list()
        return np.flatnonzero(mask[edge_u] | mask[edge_v])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UpdateBatch(+{self.num_insertions}, -{self.num_deletions}, "
            f"cancelled={self.num_cancelled})"
        )


@dataclass(frozen=True)
class UpdateReport:
    """What one :func:`repro.dynamic.patch.apply_updates` call did.

    Attributes
    ----------
    insertions, deletions:
        Ops actually applied (after batch canonicalization).
    cancelled:
        Opposing ops that cancelled inside the batch.
    affected_edges:
        Edges of the patched graph whose similarity was recomputed.
    affected_vertices:
        Vertices whose neighbor-order segment (and core-order entries)
        were respliced -- the touched endpoints plus their new neighbors.
    wall_seconds:
        Wall-clock time of the whole patch.
    order_strategy:
        How the sorted orders were repaired: ``"merge"`` (sorted-run
        merges, the low-churn default) or ``"resort"`` (construction-path
        segmented sorts, chosen past the measured churn crossover); the
        empty string for a no-op batch.  Output is bit-identical either
        way.
    """

    insertions: int
    deletions: int
    cancelled: int
    affected_edges: int
    affected_vertices: int
    wall_seconds: float
    order_strategy: str = ""


def _canonical_insertions(insertions):
    """Normalise insertions into ``(u, v, weights-or-None, explicit)`` arrays.

    ``explicit`` flags, per surviving insertion, whether the item itself
    carried a weight (a reweight request) as opposed to inheriting the 1.0
    default because some *other* item in the batch was weighted.
    """
    items = list(insertions)
    if not items:
        return _EMPTY_IDS.copy(), _EMPTY_IDS.copy(), None, np.zeros(0, dtype=bool)
    us = np.array([int(item[0]) for item in items], dtype=np.int64)
    vs = np.array([int(item[1]) for item in items], dtype=np.int64)
    explicit = np.array([len(item) > 2 for item in items], dtype=bool)
    weights = (
        np.array(
            [float(item[2]) if len(item) > 2 else 1.0 for item in items],
            dtype=np.float64,
        )
        if explicit.any()
        else None
    )
    us, vs = _canonicalize_endpoints(us, vs, kind="insertion")
    # Dedupe keeping the last occurrence (the builders' last-weight-wins
    # convention); its weight and explicitness travel together.
    span = np.int64(int(vs.max()) + 1)
    keys = us * span + vs
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    us, vs, explicit = us[order], vs[order], explicit[order]
    if weights is not None:
        weights = weights[order]
    is_last = np.ones(keys.shape[0], dtype=bool)
    is_last[:-1] = keys[1:] != keys[:-1]
    us, vs, explicit = us[is_last], vs[is_last], explicit[is_last]
    if weights is not None:
        weights = weights[is_last]
    return us, vs, weights, explicit


def _canonical_deletions(deletions):
    """Normalise deletion pairs into unique, lex-sorted (u, v) arrays."""
    items = list(deletions)
    if not items:
        return _EMPTY_IDS.copy(), _EMPTY_IDS.copy()
    us = np.array([int(u) for u, _ in items], dtype=np.int64)
    vs = np.array([int(v) for _, v in items], dtype=np.int64)
    us, vs = _canonicalize_endpoints(us, vs, kind="deletion")
    span = np.int64(int(vs.max()) + 1)
    keys = np.unique(us * span + vs)
    return keys // span, keys % span


def _canonicalize_endpoints(us, vs, *, kind):
    """Swap to ``u < v``; reject self-loops and negative ids."""
    if us.size and int(min(us.min(), vs.min())) < 0:
        raise ValueError(f"{kind} endpoints must be non-negative vertex ids")
    loops = us == vs
    if loops.any():
        offender = int(us[loops][0])
        raise ValueError(
            f"{kind} ({offender}, {offender}) is a self-loop; "
            "the index covers simple graphs only"
        )
    return np.minimum(us, vs), np.maximum(us, vs)


def load_delta_file(path: str | Path) -> UpdateBatch:
    """Read an edge-delta text file into an :class:`UpdateBatch`.

    One op per line: ``+ u v`` or ``+ u v weight`` inserts, ``- u v``
    deletes; blank lines and lines starting with ``#`` or ``%`` are
    ignored.  This is the format ``repro update`` consumes.
    """
    path = Path(path)
    insertions: list[tuple] = []
    deletions: list[tuple[int, int]] = []
    with path.open() as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            op = parts[0]
            try:
                if op == "+" and len(parts) in (3, 4):
                    if len(parts) == 4:
                        insertions.append(
                            (int(parts[1]), int(parts[2]), float(parts[3]))
                        )
                    else:
                        insertions.append((int(parts[1]), int(parts[2])))
                elif op == "-" and len(parts) == 3:
                    deletions.append((int(parts[1]), int(parts[2])))
                else:
                    raise ValueError("unrecognised op")
            except ValueError:
                # One message for malformed ops and unparsable numbers alike,
                # located -- a typo in a thousand-line delta must be findable.
                raise ValueError(
                    f"{path}:{line_number}: expected '+ u v [weight]' or '- u v', "
                    f"got {line!r}"
                ) from None
    return UpdateBatch.from_edges(insertions, deletions)
