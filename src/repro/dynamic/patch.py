"""The index patcher: apply an :class:`UpdateBatch` with localized repair.

A full rebuild after a batch of edge updates pays the whole construction
again: ``O(m^{3/2})`` triangle work for the similarities plus global
segmented sorts for both orders.  This module repairs a built
:class:`~repro.core.index.ScanIndex` instead, doing similarity work only on
the *affected* edges and sorting work only on the *affected* vertices'
runs, while producing output **bit-identical** to a from-scratch rebuild on
the mutated graph (for exactly built indexes of unweighted graphs; weighted
cosine scores agree up to float summation order, exactly the tolerance the
similarity backends already grant each other).

The patch runs in four localized stages:

1. **Graph splice** (:func:`_splice_graph`): the CSR arrays, canonical edge
   list and arc -> edge-id mapping are respliced around the deleted/inserted
   positions -- pure memcpy-scale passes plus ``O(b log b)`` searches for a
   batch of ``b`` ops; no adjacency list is re-sorted (inserted neighbors
   merge into already-sorted rows at their binary-searched positions).
2. **Affected similarity recompute** (:func:`_recompute_affected`): an edge's
   closed-neighborhood intersection changes only if one endpoint's
   neighborhood changed, so exactly the edges incident to a *touched*
   endpoint (an endpoint of some op) are recomputed, through the same
   vectorised subset engine (:func:`~repro.similarity.batch.
   edge_numerators_for_subset`) the LSH fallback batches with.  Every other
   edge keeps its stored score verbatim.
3. **Neighbor-order patch** (:func:`_patch_neighbor_order`): only vertices
   in ``T ∪ N(T)`` (touched plus their new neighbors) can see their sorted
   segment change.  Each such segment is rebuilt as a **merge of two sorted
   runs** -- the surviving entries, already in order, and the
   changed/inserted entries, sorted among themselves -- via simultaneous
   segmented binary searches; untouched segments are copied verbatim to
   their shifted offsets.  No global argsort is performed.
4. **Core-order patch** (:func:`_patch_core_order`): the same merge treatment
   for every ``CO[μ]`` segment: surviving entries of unaffected vertices
   keep their relative order (their thresholds and the degree/id tie keys
   are unchanged), and the affected vertices' re-derived ``(vertex, μ)``
   entries are merged in at their searched positions.

Bit-identity rests on the orders being *value-determined*: the construction
sorts are stable sorts by exact similarity rank keys, so ``NO[v]`` is
exactly "neighbors by (similarity desc, id asc)" and ``CO[μ]`` exactly
"candidates by (threshold desc, degree desc, id asc)" -- deterministic
total orders the merge reproduces without re-running the sorts.  The
randomized stream tests in ``tests/property/`` enforce equality of every
stored column against a rebuild after every batch.

Approximate (LSH-built) indexes are rejected: their scores come from global
random sketches, so no localized recompute can match a re-sketch.
"""

from __future__ import annotations

import time

import numpy as np

from .. import obs
from ..core.core_order import CoreOrder, build_core_order
from ..core.neighbor_order import NeighborOrder, build_neighbor_order
from ..graphs.graph import Graph
from ..parallel.metrics import ceil_log2
from ..parallel.primitives import (
    segmented_arange,
    segmented_ranges,
    segmented_searchsorted,
)
from ..parallel.scheduler import Scheduler
from ..similarity.batch import edge_numerators_for_subset
from ..similarity.exact import EdgeSimilarities, finalise_numerators
from .updates import UpdateBatch, UpdateReport

__all__ = ["apply_updates"]

#: When the batch's changed arcs exceed this fraction of the graph, the
#: patch re-sorts both orders outright (the same construction code a full
#: build runs, on the patched similarities -- identical output by
#: definition) instead of merging runs: at that churn the changed runs
#: rival the kept runs and the C-speed packed segmented argsort beats the
#: merge's search-and-splice passes.  Measured crossover on the
#: ``bench_updates`` ladder (merge wins below ~3% churn, resort above ~8%).
ORDER_REBUILD_CHURN = 0.05


def _cumsum0(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums with the total appended (CSR-style offsets)."""
    offsets = np.zeros(counts.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def _descending_keys(values: np.ndarray) -> np.ndarray:
    """Int64 keys whose ascending order is the *descending* order of ``values``.

    The classic radix transform for IEEE-754 doubles: flip every bit of a
    negative, only the sign bit of a non-negative -- ascending uint64 then
    equals ascending float -- and a final sign-bit flip reinterprets that
    as ascending int64; negation turns it descending.  Exact (no
    quantisation, no rank pass) and total over any non-NaN float64, so the
    merge path stays correct even for exotic score sets such as negative
    weighted-cosine values from negative edge weights.
    """
    bits = np.ascontiguousarray(values, dtype=np.float64).view(np.uint64)
    sign = np.uint64(1) << np.uint64(63)
    ascending = (np.where(bits & sign, ~bits, bits | sign) ^ sign).view(np.int64)
    return -ascending


# ----------------------------------------------------------------------
# Stage 1: graph splice
# ----------------------------------------------------------------------
def _validate_batch(graph: Graph, batch: UpdateBatch) -> None:
    """Reject out-of-range, already-present, or absent ops with clear errors."""
    n = graph.num_vertices
    for kind, us, vs in (
        ("insertion", batch.insert_u, batch.insert_v),
        ("deletion", batch.delete_u, batch.delete_v),
    ):
        if us.size and int(vs.max()) >= n:
            offender = int(vs.max())
            raise ValueError(
                f"{kind} endpoint {offender} is out of range for a graph of "
                f"{n} vertices (the index's vertex set is fixed)"
            )
    if batch.insert_weights is not None and not graph.is_weighted:
        raise ValueError(
            "insertions carry explicit weights but the indexed graph is "
            "unweighted; drop the weights or rebuild a weighted index"
        )
    if batch.delete_u.size:
        _, found = graph.locate_neighbors(batch.delete_u, batch.delete_v)
        if not found.all():
            missing = int(np.flatnonzero(~found)[0])
            raise ValueError(
                f"cannot delete edge ({int(batch.delete_u[missing])}, "
                f"{int(batch.delete_v[missing])}): not in the graph"
            )
    if batch.insert_u.size:
        _, found = graph.locate_neighbors(batch.insert_u, batch.insert_v)
        if found.any():
            # Inserting a present edge is allowed only as the insert half
            # of a delete + re-insert reweight pair (weighted batches keep
            # such pairs instead of cancelling them).
            span = np.int64(max(n, 1))
            deleted_too = np.isin(
                batch.insert_u * span + batch.insert_v,
                batch.delete_u * span + batch.delete_v,
            )
            offending = found & ~deleted_too
            if offending.any():
                present = int(np.flatnonzero(offending)[0])
                raise ValueError(
                    f"cannot insert edge ({int(batch.insert_u[present])}, "
                    f"{int(batch.insert_v[present])}): already in the graph"
                )


def _splice_graph(
    graph: Graph, batch: UpdateBatch, scheduler: Scheduler
) -> tuple[Graph, np.ndarray, np.ndarray]:
    """Apply the batch to the CSR arrays and the canonical edge numbering.

    Returns ``(new_graph, old_to_new, inserted_edge_ids)`` where
    ``old_to_new`` maps every old canonical edge id to its id in the new
    graph (``-1`` for deleted edges) and ``inserted_edge_ids`` lists the new
    ids of the batch's insertions, aligned with ``batch.insert_u``.

    Canonical edge ids are positions in the lexicographic ``(u, v)`` edge
    list, so a delete/insert shifts every later id; the shift is computed
    with two binary searches over the (tiny, sorted) op arrays and applied
    as one gather -- the arrays are rewritten, but nothing is re-sorted.
    """
    n = graph.num_vertices
    num_old = graph.num_edges
    ins_u, ins_v, del_u, del_v = (
        batch.insert_u, batch.insert_v, batch.delete_u, batch.delete_v,
    )
    num_ins, num_del = int(ins_u.size), int(del_u.size)
    span = np.int64(max(n, 1))
    old_keys = graph.edge_u * span + graph.edge_v

    # --- Canonical edge numbering: survivors shift by the net op count
    # before them; insertions slot in at their searched rank.
    survive = np.ones(num_old, dtype=bool)
    if num_del:
        survive[np.searchsorted(old_keys, del_u * span + del_v)] = False
    ins_keys = ins_u * span + ins_v
    rank_within_survivors = np.cumsum(survive) - 1
    old_to_new = np.where(
        survive,
        rank_within_survivors + np.searchsorted(ins_keys, old_keys),
        np.int64(-1),
    )
    surviving_keys = old_keys[survive]
    inserted_edge_ids = (
        np.searchsorted(surviving_keys, ins_keys) + np.arange(num_ins, dtype=np.int64)
    )

    # --- Arc splice: locate the two arcs of every op, then rewrite the CSR
    # payload arrays in one scatter per side (kept arcs keep their relative
    # order; inserted arcs land at their binary-searched in-row positions).
    if num_del:
        del_pos_uv, _ = graph.locate_neighbors(del_u, del_v)
        del_pos_vu, _ = graph.locate_neighbors(del_v, del_u)
        deleted_arc_pos = np.concatenate([del_pos_uv, del_pos_vu])
    else:
        deleted_arc_pos = np.zeros(0, dtype=np.int64)
    keep = np.ones(graph.num_arcs, dtype=bool)
    keep[deleted_arc_pos] = False

    if num_ins:
        ins_pos_uv, _ = graph.locate_neighbors(ins_u, ins_v)
        ins_pos_vu, _ = graph.locate_neighbors(ins_v, ins_u)
        points = np.concatenate([ins_pos_uv, ins_pos_vu])
        arc_sources = np.concatenate([ins_u, ins_v])
        arc_targets = np.concatenate([ins_v, ins_u])
        arc_edge_ids_ins = np.concatenate([inserted_edge_ids, inserted_edge_ids])
        if graph.is_weighted:
            weights = (
                batch.insert_weights
                if batch.insert_weights is not None
                else np.ones(num_ins, dtype=np.float64)
            )
            arc_weights_ins = np.concatenate([weights, weights])
        else:
            arc_weights_ins = None
        # Final CSR order is (source, target); insertion points are
        # non-decreasing under that order, so after this sort the k-th
        # inserted arc has exactly k inserted arcs before it.
        order = np.lexsort((arc_targets, arc_sources))
        points = points[order]
        arc_targets = arc_targets[order]
        arc_edge_ids_ins = arc_edge_ids_ins[order]
        if arc_weights_ins is not None:
            arc_weights_ins = arc_weights_ins[order]
    else:
        points = np.zeros(0, dtype=np.int64)
        arc_targets = np.zeros(0, dtype=np.int64)
        arc_edge_ids_ins = np.zeros(0, dtype=np.int64)
        arc_weights_ins = None

    kept_old_pos = np.flatnonzero(keep)
    # kept arc at old position p lands after the kept arcs before it plus
    # the inserted arcs whose insertion point is ≤ p.
    new_pos_kept = (
        np.arange(kept_old_pos.shape[0], dtype=np.int64)
        + np.searchsorted(points, kept_old_pos, side="right")
    )
    # inserted arc k lands after the kept arcs strictly before its point
    # plus the k inserted arcs sorted before it.
    kept_before = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(keep, dtype=np.int64)]
    )
    new_pos_ins = kept_before[points] + np.arange(points.shape[0], dtype=np.int64)

    num_new_arcs = graph.num_arcs - 2 * num_del + 2 * num_ins
    new_indices = np.empty(num_new_arcs, dtype=np.int64)
    new_indices[new_pos_kept] = graph.indices[kept_old_pos]
    new_indices[new_pos_ins] = arc_targets
    new_arc_edge_ids = np.empty(num_new_arcs, dtype=np.int64)
    new_arc_edge_ids[new_pos_kept] = old_to_new[graph.arc_edge_ids[kept_old_pos]]
    new_arc_edge_ids[new_pos_ins] = arc_edge_ids_ins
    if graph.is_weighted:
        new_arc_weights = np.empty(num_new_arcs, dtype=np.float64)
        new_arc_weights[new_pos_kept] = graph.arc_weights[kept_old_pos]
        new_arc_weights[new_pos_ins] = (
            arc_weights_ins
            if arc_weights_ins is not None
            else np.ones(points.shape[0], dtype=np.float64)
        )
    else:
        new_arc_weights = None

    degree_delta = np.zeros(n, dtype=np.int64)
    if num_ins:
        np.add.at(degree_delta, ins_u, 1)
        np.add.at(degree_delta, ins_v, 1)
    if num_del:
        np.add.at(degree_delta, del_u, -1)
        np.add.at(degree_delta, del_v, -1)
    new_indptr = _cumsum0(graph.degrees + degree_delta)

    # Splice cost: linear passes over the arc arrays plus O(b log) searches.
    scheduler.charge(
        graph.num_arcs + num_new_arcs + (num_ins + num_del) * (ceil_log2(max(num_old, 1)) + 1.0),
        ceil_log2(max(num_new_arcs, 1)) + 1.0,
    )
    new_graph = Graph.from_index_columns(
        new_indptr, new_indices, new_arc_weights, new_arc_edge_ids
    )
    return new_graph, old_to_new, inserted_edge_ids


# ----------------------------------------------------------------------
# Stage 2: affected similarity recompute
# ----------------------------------------------------------------------
def _triangle_sides(
    graph: Graph, op_u: np.ndarray, op_v: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Triangles through each op edge: ``(op_index, side1_ids, side2_ids)``.

    For every op edge ``(u, v)``, the edges whose closed-neighborhood dot
    product gains or loses a term when ``(u, v)`` appears or disappears are
    exactly the two side edges ``(u, x)``/``(v, x)`` of each triangle
    through ``(u, v)`` (the op edge itself is handled by the caller).  One
    batched probe of the lower-degree endpoint's neighbors against the
    other endpoint's list -- ``O(Σ min(deg u, deg v))`` work for the whole
    batch -- enumerates them, one row per triangle.
    """
    degrees = graph.degrees
    swap = degrees[op_u] > degrees[op_v]
    op_u, op_v = np.where(swap, op_v, op_u), np.where(swap, op_u, op_v)
    counts = degrees[op_u]
    if int(counts.sum()) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    candidate_pos = segmented_ranges(graph.indptr[op_u], counts)
    candidates = graph.indices[candidate_pos]
    positions, found = graph.locate_neighbors(np.repeat(op_v, counts), candidates)
    op_index = np.repeat(np.arange(op_u.shape[0], dtype=np.int64), counts)
    return (
        op_index[found],
        graph.arc_edge_ids[candidate_pos[found]],  # edges (u, x)
        graph.arc_edge_ids[positions[found]],      # edges (v, x)
    )


def _rank_among(sorted_ids: np.ndarray, edge_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rank of each id within a sorted id array, plus a membership mask."""
    rank = np.searchsorted(sorted_ids, edge_ids)
    member = np.zeros(edge_ids.shape[0], dtype=bool)
    in_range = rank < sorted_ids.shape[0]
    member[in_range] = sorted_ids[rank[in_range]] == edge_ids[in_range]
    return rank, member


def _triangle_deltas(
    graph: Graph,
    op_u: np.ndarray,
    op_v: np.ndarray,
    op_edge_ids: np.ndarray,
    num_edges_out: int,
    map_ids,
) -> np.ndarray:
    """Per-edge triangle-count deltas caused by the given op edges.

    Enumerates every triangle through an op edge in ``graph`` and adds one
    to both side edges -- attributing each triangle to its lowest-ranked op
    edge so a triangle closed by several ops of one batch counts exactly
    once, and skipping side edges that are ops themselves (their numerators
    are computed fresh).  ``map_ids`` translates ``graph``'s edge ids into
    the output numbering (identity for insertions enumerated on the new
    graph; the old-to-new map for deletions enumerated on the old one).
    Returns a dense delta array over ``num_edges_out`` edges.
    """
    delta = np.zeros(num_edges_out, dtype=np.float64)
    op_index, side1, side2 = _triangle_sides(graph, op_u, op_v)
    if op_index.size == 0:
        return delta
    rank1, is_op1 = _rank_among(op_edge_ids, side1)
    rank2, is_op2 = _rank_among(op_edge_ids, side2)
    sentinel = np.int64(op_edge_ids.shape[0] + 1)
    lowest_other = np.minimum(
        np.where(is_op1, rank1, sentinel), np.where(is_op2, rank2, sentinel)
    )
    attributed = lowest_other > op_index
    for side, is_op in ((side1, is_op1), (side2, is_op2)):
        contribute = map_ids(side[attributed & ~is_op])
        if contribute.size:
            delta += np.bincount(contribute, minlength=num_edges_out)
    return delta


def _numerator_affected_edges(
    old_graph: Graph,
    new_graph: Graph,
    batch: UpdateBatch,
    old_to_new: np.ndarray,
    inserted_edge_ids: np.ndarray,
) -> np.ndarray:
    """New-graph edge ids whose closed-neighborhood numerator changed.

    A term ``(a, b, x)`` of ``num(a, b)`` appears or disappears only when
    an edge of the triangle ``{a, b, x}`` was inserted or deleted, so the
    changed numerators are the op edges themselves plus the side edges of
    every triangle through an op edge -- enumerated on the *new* graph for
    insertions and the *old* graph (then id-mapped) for deletions.  This is
    typically far smaller than "all edges incident to a touched endpoint",
    which only bounds where the *denominators* change.
    """
    pieces = [inserted_edge_ids]
    if batch.insert_u.size:
        _, side1, side2 = _triangle_sides(new_graph, batch.insert_u, batch.insert_v)
        pieces.extend([side1, side2])
    if batch.delete_u.size:
        _, side1, side2 = _triangle_sides(old_graph, batch.delete_u, batch.delete_v)
        mapped = old_to_new[np.concatenate([side1, side2])]
        pieces.append(mapped[mapped >= 0])
    return np.unique(np.concatenate(pieces))




# ----------------------------------------------------------------------
# The segmented merge-of-sorted-runs machinery shared by both patchers
# ----------------------------------------------------------------------
def _lexicographic_lower_bound(
    haystack_k1: np.ndarray,
    haystack_k2: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    query_k1: np.ndarray,
    query_k2: np.ndarray,
    *,
    segment_offsets: np.ndarray | None = None,
    query_segments: np.ndarray | None = None,
) -> np.ndarray:
    """Per-query lower bound under the key pair ``(k1, k2)``, segment-bounded.

    Each haystack segment is sorted ascending by ``(k1, k2)``; the result
    is the absolute position of the first entry ``>= (query_k1, query_k2)``
    lexicographically.  Two strategies locate the ``k1`` tie range, picked
    by the measured crossover (the same constant-factor trade-off as the
    batch similarity engine's probe strategies):

    * **bounded rounds** (few queries): two simultaneous segmented binary
      searches -- a ``k1`` lower bound and a ``k1`` upper bound via
      ``k1 + 1`` (the keys are int64) -- costing ``O(log max_segment)``
      whole-array rounds over the query set;
    * **global rank pack** (query count rivals the haystack): ``k1`` values
      are rank-reduced over the haystack once, packed with the segment id
      into one int64, and both bounds resolve with single C-speed
      ``np.searchsorted`` calls over the packed haystack.  Requires
      ``segment_offsets``/``query_segments``; queries whose value is absent
      get an empty tie range, exactly like the rounds strategy.

    Either way a final segmented ``k2`` lower bound inside the (short) tie
    range finishes the lexicographic comparison.
    """
    if query_k1.size == 0:
        return np.asarray(starts, dtype=np.int64).copy()
    rounds = ceil_log2(int(np.max(ends - starts, initial=1)) + 1) + 1.0
    packable = (
        segment_offsets is not None
        and haystack_k1.size > 0
        and int(segment_offsets.shape[0] - 1)
        * (2 * int(haystack_k1.shape[0]) + 2) < (1 << 62)
    )
    if packable and query_k1.size * rounds >= haystack_k1.size:
        distinct, rank = np.unique(haystack_k1, return_inverse=True)
        num_distinct = int(distinct.shape[0])
        span = np.int64(2 * num_distinct + 2)
        segment_ids = np.repeat(
            np.arange(segment_offsets.shape[0] - 1, dtype=np.int64),
            np.diff(segment_offsets),
        )
        packed = segment_ids * span + (2 * rank.astype(np.int64) + 1)
        query_rank = np.searchsorted(distinct, query_k1)
        matched = (query_rank < num_distinct) & (
            distinct[np.minimum(query_rank, num_distinct - 1)] == query_k1
        )
        base = query_segments * span + 2 * query_rank
        lo = np.searchsorted(packed, base)
        hi = np.searchsorted(packed, base + matched, side="right")
    else:
        lo = segmented_searchsorted(haystack_k1, query_k1, starts, ends)
        hi = segmented_searchsorted(haystack_k1, query_k1 + 1, starts, ends)
    return segmented_searchsorted(haystack_k2, query_k2, lo, hi)


def _merge_into(
    total: int,
    kept_positions: np.ndarray,
    inserted_positions: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Destination slots for a segmented merge of kept and inserted runs.

    ``inserted_positions`` are the (absolute, precomputed) output slots of
    the inserted run; the kept run fills the remaining slots in order --
    which is exactly a merge: the kept run is never re-sorted.  Returns
    ``(kept_slots, inserted_positions)`` with ``kept_slots`` aligned to
    ``kept_positions``.
    """
    taken = np.zeros(total, dtype=bool)
    taken[inserted_positions] = True
    kept_slots = np.flatnonzero(~taken)
    if kept_slots.shape[0] != kept_positions.shape[0]:  # pragma: no cover
        raise AssertionError("merge slot accounting out of balance")
    return kept_slots, inserted_positions


# ----------------------------------------------------------------------
# Stage 3: neighbor-order patch
# ----------------------------------------------------------------------
def _patch_neighbor_order(
    old_order: NeighborOrder,
    old_graph: Graph,
    new_graph: Graph,
    new_values: np.ndarray,
    touched_mask: np.ndarray,
    changed_arc_mask: np.ndarray,
    scheduler: Scheduler,
) -> NeighborOrder:
    """Resplice ``NO`` so it equals a rebuild on the patched graph.

    ``NO[v]`` is "neighbors of ``v`` by (similarity desc, id asc)" -- a
    value-determined order.  Exactly the arcs incident to a touched
    endpoint changed (score, existence, or both); every other entry is a
    *kept* entry whose relative order is already correct.  The changed
    arcs, re-read from the patched graph with their new scores and sorted
    among themselves, are positioned by a lexicographic lower-bound search
    against the **old** sorted segments -- counting only kept entries via a
    removed-prefix correction -- and the kept entries stream into the
    remaining slots in order.  One merge, no re-sort of anything kept.
    """
    n = new_graph.num_vertices
    old_indptr = np.asarray(old_order.indptr)
    new_indptr = new_graph.indptr
    total_arcs = new_graph.num_arcs
    old_neighbors = np.asarray(old_order.neighbors)
    old_sims = np.asarray(old_order.similarities)

    # Removed entries of the old order: arcs incident to T on either side
    # (deleted arcs have both endpoints in T, so they are covered too).
    removed = touched_mask[old_neighbors] | touched_mask[old_graph.arc_sources()]
    kept_positions = np.flatnonzero(~removed)
    removed_before = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(removed, dtype=np.int64)]
    )

    # The changed run: new arcs incident to T, with their patched scores,
    # sorted within each source segment by (similarity desc, neighbor asc).
    changed_pos = np.flatnonzero(changed_arc_mask)
    new_sources = new_graph.arc_sources()
    q_source = new_sources[changed_pos]
    q_neighbor = new_graph.indices[changed_pos]
    q_sims = new_values[new_graph.arc_edge_ids[changed_pos]]
    q_k1 = _descending_keys(q_sims)
    order = np.lexsort((q_neighbor, q_k1, q_source))
    q_source = q_source[order]
    q_neighbor = q_neighbor[order]
    q_sims = q_sims[order]
    q_k1 = q_k1[order]

    # Lower bound of every changed entry in its old segment, corrected to
    # count kept entries only; its in-segment rank among the changed run
    # then pins the output slot.
    starts = old_indptr[q_source]
    position = _lexicographic_lower_bound(
        _descending_keys(old_sims), old_neighbors, starts,
        old_indptr[q_source + 1], q_k1, q_neighbor,
        segment_offsets=old_indptr, query_segments=q_source,
    )
    kept_before = (position - starts) - (
        removed_before[position] - removed_before[starts]
    )
    counts = np.bincount(q_source, minlength=n).astype(np.int64)
    rank_within = np.arange(q_source.shape[0], dtype=np.int64) - _cumsum0(counts)[q_source]
    inserted_slots = new_indptr[q_source] + kept_before + rank_within

    neighbors = np.empty(total_arcs, dtype=np.int64)
    similarities = np.empty(total_arcs, dtype=np.float64)
    kept_slots, _ = _merge_into(total_arcs, kept_positions, inserted_slots)
    neighbors[kept_slots] = old_neighbors[kept_positions]
    similarities[kept_slots] = old_sims[kept_positions]
    neighbors[inserted_slots] = q_neighbor
    similarities[inserted_slots] = q_sims

    max_segment = int(old_graph.max_degree)
    scheduler.charge(
        total_arcs + int(q_source.size) * (ceil_log2(max(max_segment, 1)) + 1.0),
        2 * ceil_log2(max(total_arcs, 1)) + 1.0,
    )
    return NeighborOrder(
        indptr=new_indptr.copy(),
        neighbors=neighbors,
        similarities=similarities,
    )


# ----------------------------------------------------------------------
# Stage 4: core-order patch
# ----------------------------------------------------------------------
def _patch_core_order(
    old_order: CoreOrder,
    old_graph: Graph,
    new_graph: Graph,
    new_neighbor_order: NeighborOrder,
    touched_mask: np.ndarray,
    scheduler: Scheduler,
) -> CoreOrder:
    """Resplice ``CO`` so it equals a rebuild on the patched graph.

    ``CO[μ]`` is "candidate cores by (threshold desc, degree desc, id asc)"
    -- also value-determined.  An entry ``(v, μ)`` keeps its relative order
    in its segment whenever its sort key is unchanged, which holds for the
    (typical) majority of entries: only every entry of a *touched* vertex
    (degree changed) plus the entries whose threshold ``NO[v][μ]`` actually
    moved are dropped and re-derived.  The re-derived entries are
    positioned by the same lexicographic search against the old segments
    with removed-prefix correction; the tie key packs ``(n - degree, id)``
    into one int64, mirroring the stable degree-sorted construction order.
    """
    n = new_graph.num_vertices
    degrees = new_graph.degrees
    max_mu = int(degrees.max(initial=0)) + 1 if n else 1
    num_segments = max(max_mu - 1, 0)  # one segment per μ in 2..max_mu
    new_sims = np.asarray(new_neighbor_order.similarities)
    old_co_indptr = np.asarray(old_order.indptr)
    old_vertices = np.asarray(old_order.vertices)
    old_thresholds = np.asarray(old_order.thresholds)
    old_max_mu = old_order.max_mu

    # Removed entries: every entry of a touched vertex, plus entries whose
    # threshold moved (compared against the patched neighbor order at the
    # same (v, μ) position -- valid for non-touched vertices, whose degree
    # is unchanged; touched positions are clamped and dropped regardless).
    # Entries of vertices outside the affected halo compare bit-equal
    # automatically, since their NO segments were kept verbatim.
    old_mu = np.repeat(
        np.arange(old_co_indptr.shape[0] - 1, dtype=np.int64),
        np.diff(old_co_indptr),
    )
    entry_touched = touched_mask[old_vertices]
    if new_sims.size:
        compare_pos = np.where(
            entry_touched,
            0,
            new_neighbor_order.indptr[old_vertices] + (old_mu - 2),
        )
        removed = entry_touched | (old_thresholds != new_sims[compare_pos])
    else:
        removed = np.ones(old_vertices.shape[0], dtype=bool)
    kept_positions = np.flatnonzero(~removed)
    removed_before = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(removed, dtype=np.int64)]
    )

    # Re-derived entries: the dropped non-touched (v, μ) keys, one for one,
    # plus every (v, μ) of a touched vertex at its new degree.
    moved_positions = np.flatnonzero(removed & ~entry_touched)
    touched_vertices = np.flatnonzero(touched_mask)
    touched_counts = degrees[touched_vertices]
    q_vertex = np.concatenate(
        [old_vertices[moved_positions], np.repeat(touched_vertices, touched_counts)]
    )
    q_mu = np.concatenate(
        [old_mu[moved_positions], segmented_arange(touched_counts) + 2]
    )
    q_thresholds = (
        new_sims[new_neighbor_order.indptr[q_vertex] + (q_mu - 2)]
        if q_vertex.size
        else np.zeros(0, dtype=np.float64)
    )
    q_k1 = _descending_keys(q_thresholds)
    q_k2 = (np.int64(n) - degrees[q_vertex]) * np.int64(n + 1) + q_vertex
    order = np.lexsort((q_k2, q_k1, q_mu))
    q_vertex = q_vertex[order]
    q_mu = q_mu[order]
    q_thresholds = q_thresholds[order]
    q_k1 = q_k1[order]
    q_k2 = q_k2[order]

    # Search against the OLD segments (sorted by their own keys; removed
    # entries are subtracted by position, so their stale keys are
    # irrelevant).  Haystack tie keys use old degrees for exactly that
    # reason.  μ segments beyond the old max have an empty haystack.
    safe_mu = np.minimum(q_mu, old_max_mu)
    exists = q_mu <= old_max_mu
    starts = np.where(exists, old_co_indptr[safe_mu], 0)
    ends = np.where(exists, old_co_indptr[safe_mu + 1], 0)
    old_degrees = old_graph.degrees
    haystack_k2 = (
        (np.int64(n) - old_degrees[old_vertices]) * np.int64(n + 1) + old_vertices
    )
    position = _lexicographic_lower_bound(
        _descending_keys(old_thresholds), haystack_k2, starts, ends, q_k1, q_k2,
        segment_offsets=old_co_indptr, query_segments=safe_mu,
    )
    # μ segments beyond the old max have no haystack; their entries are all
    # "first of their kind" (the rounds strategy returns starts == 0 there,
    # the packed strategy needs the override).
    position = np.where(exists, position, np.int64(0))
    kept_before = (position - starts) - (
        removed_before[position] - removed_before[starts]
    )

    # New segment offsets: kept counts plus re-derived counts per μ.
    kept_counts = np.bincount(
        old_mu[kept_positions] - 2, minlength=num_segments
    ).astype(np.int64)
    q_counts = np.bincount(q_mu - 2, minlength=num_segments).astype(np.int64)
    indptr = np.zeros(max_mu + 2, dtype=np.int64)
    lengths_by_mu = np.zeros(max_mu + 1, dtype=np.int64)
    if num_segments:
        lengths_by_mu[2:] = kept_counts + q_counts
    np.cumsum(lengths_by_mu, out=indptr[1:])
    total = int(indptr[-1])

    rank_within = (
        np.arange(q_mu.shape[0], dtype=np.int64) - _cumsum0(q_counts)[q_mu - 2]
    )
    inserted_slots = indptr[q_mu] + kept_before + rank_within
    vertices = np.empty(total, dtype=np.int64)
    thresholds = np.empty(total, dtype=np.float64)
    kept_slots, _ = _merge_into(total, kept_positions, inserted_slots)
    vertices[kept_slots] = old_vertices[kept_positions]
    thresholds[kept_slots] = old_thresholds[kept_positions]
    vertices[inserted_slots] = q_vertex
    thresholds[inserted_slots] = q_thresholds

    max_segment = int(np.diff(old_co_indptr).max(initial=0))
    scheduler.charge(
        total + int(q_mu.size) * (ceil_log2(max(max_segment, 1)) + 1.0),
        2 * ceil_log2(max(total, 1)) + 1.0,
    )
    return CoreOrder(indptr=indptr, vertices=vertices, thresholds=thresholds)


# ----------------------------------------------------------------------
# The public entry point
# ----------------------------------------------------------------------
def apply_updates(
    index,
    batch: UpdateBatch,
    *,
    scheduler: Scheduler | None = None,
    jobs: int = 1,
) -> UpdateReport:
    """Apply ``batch`` to ``index`` **in place**, repairing every component.

    After this returns, ``index`` answers queries exactly as an index
    rebuilt from scratch on the mutated graph would -- same graph columns,
    same per-edge scores, same neighbor and core orders, same clusterings
    in both border modes -- while the similarity and sorting work done is
    proportional to the affected neighborhoods only.

    Side effects beyond the index components: an entry is appended to
    ``index.update_lineage`` (persisted by :meth:`ScanIndex.save
    <repro.core.index.ScanIndex.save>`), the index's mutation epoch is
    bumped and every serving generation bound to it is invalidated, so all
    open :class:`~repro.serve.session.ClusterSession`\\ s stop serving
    pre-update cache entries (see ``docs/ARCHITECTURE.md``).

    ``jobs`` applies only past the churn crossover, where the repair runs
    the construction-path segmented re-sorts: those shard across worker
    processes exactly as :meth:`ScanIndex.build
    <repro.core.index.ScanIndex.build>` does (bit-identical at any worker
    count).  The merge strategy below the crossover is memory-bound
    splicing and stays serial.

    Raises ``ValueError`` for LSH-approximate indexes (sketches are global;
    no localized recompute can reproduce a rebuild), for insertions of
    present edges, deletions of absent edges, out-of-range endpoints, or
    weighted insertions into an unweighted index.
    """
    scheduler = scheduler if scheduler is not None else Scheduler()
    started = time.perf_counter()
    if index.similarities.backend == "lsh" or index.measure.startswith("approx_"):
        raise ValueError(
            "dynamic updates require an exactly built index; LSH-approximate "
            "similarities come from global sketches and must be rebuilt"
        )
    graph = index.graph
    _validate_batch(graph, batch)
    if batch.is_empty:
        return UpdateReport(
            insertions=0,
            deletions=0,
            cancelled=batch.num_cancelled,
            affected_edges=0,
            affected_vertices=0,
            wall_seconds=time.perf_counter() - started,
        )

    new_graph, old_to_new, inserted_edge_ids = _splice_graph(graph, batch, scheduler)

    # Affected similarity recompute.  Denominators (degrees / norms) change
    # for every edge incident to a touched endpoint; numerators only for
    # the triangle-affected subset.  With stored numerators the former are
    # re-finalised elementwise and only the latter pay intersection work;
    # without them (hand-assembled scores, version-1 artifacts) every
    # affected edge recomputes its numerator.
    touched = batch.touched_vertices()
    touched_mask = np.zeros(new_graph.num_vertices, dtype=bool)
    touched_mask[touched] = True
    values = np.empty(new_graph.num_edges, dtype=np.float64)
    survivors = old_to_new >= 0
    values[old_to_new[survivors]] = np.asarray(index.similarities.values)[survivors]
    affected_edges = batch.affected_edges(new_graph)
    old_numerators = index.similarities.numerators
    if old_numerators is not None:
        numerators = np.empty(new_graph.num_edges, dtype=np.float64)
        numerators[old_to_new[survivors]] = np.asarray(old_numerators)[survivors]
        if new_graph.arc_weights is None:
            # Unweighted: every triangle term is exactly 1, so surviving
            # numerators delta-update with integer adds -- bit-equal to a
            # fresh count, in work proportional to the triangles through
            # the op edges.  Only the inserted edges compute from scratch.
            if batch.insert_u.size:
                numerators += _triangle_deltas(
                    new_graph, batch.insert_u, batch.insert_v,
                    inserted_edge_ids, new_graph.num_edges, lambda ids: ids,
                )
            if batch.delete_u.size:
                deleted_old_ids = np.flatnonzero(old_to_new < 0)

                def _surviving(ids: np.ndarray) -> np.ndarray:
                    mapped = old_to_new[ids]
                    return mapped[mapped >= 0]

                numerators -= _triangle_deltas(
                    graph, batch.delete_u, batch.delete_v,
                    deleted_old_ids, new_graph.num_edges, _surviving,
                )
            if inserted_edge_ids.size:
                numerators[inserted_edge_ids] = edge_numerators_for_subset(
                    new_graph, inserted_edge_ids, scheduler
                )
        else:
            # Weighted: float triangle terms would drift under repeated
            # deltas, so the triangle-affected subset recomputes fresh.
            recompute = _numerator_affected_edges(
                graph, new_graph, batch, old_to_new, inserted_edge_ids
            )
            if recompute.size:
                numerators[recompute] = edge_numerators_for_subset(
                    new_graph, recompute, scheduler
                )
        if affected_edges.size:
            values[affected_edges] = finalise_numerators(
                new_graph, numerators[affected_edges], index.measure,
                edge_ids=affected_edges, scheduler=scheduler,
            )
    else:
        numerators = None
        if affected_edges.size:
            values[affected_edges] = finalise_numerators(
                new_graph,
                edge_numerators_for_subset(new_graph, affected_edges, scheduler),
                index.measure,
                edge_ids=affected_edges,
                scheduler=scheduler,
            )
    similarities = EdgeSimilarities(
        new_graph, values, index.measure, index.similarities.backend,
        numerators=numerators,
    )

    # Affected vertices: touched endpoints plus their (new) neighbors --
    # every vertex whose NO segment or CO entries can differ from before
    # (reported; the patchers derive their own change masks arc-by-arc).
    if touched.size:
        degree_new = new_graph.degrees[touched]
        neighbor_pos = segmented_ranges(new_graph.indptr[touched], degree_new)
        affected_vertices = np.unique(
            np.concatenate([touched, new_graph.indices[neighbor_pos]])
        )
    else:
        affected_vertices = touched
    # Order repair: merge sorted runs at low churn; past the measured
    # crossover the changed runs cover most of every segment, and the
    # construction-path segmented sorts (bit-identical by definition --
    # they ARE what a rebuild runs) are simply faster.
    changed_arc_mask = (
        touched_mask[new_graph.indices] | touched_mask[new_graph.arc_sources()]
    )
    changed_arcs = int(np.count_nonzero(changed_arc_mask))
    if changed_arcs > ORDER_REBUILD_CHURN * max(new_graph.num_arcs, 1):
        order_strategy = "resort"
        obs.counter("dynamic.order_repair.resort_total").inc()
        from ..parallel.execute import executor_for

        with obs.span(
            "dynamic.order_repair", strategy="resort", changed_arcs=changed_arcs
        ):
            with executor_for(jobs, num_arcs=new_graph.num_arcs) as executor:
                neighbor_order = build_neighbor_order(
                    new_graph, similarities, scheduler=scheduler, executor=executor
                )
                core_order = build_core_order(
                    new_graph, neighbor_order, scheduler=scheduler, executor=executor
                )
    else:
        order_strategy = "merge"
        obs.counter("dynamic.order_repair.merge_total").inc()
        with obs.span(
            "dynamic.order_repair", strategy="merge", changed_arcs=changed_arcs
        ):
            neighbor_order = _patch_neighbor_order(
                index.neighbor_order, graph, new_graph, values, touched_mask,
                changed_arc_mask, scheduler,
            )
            core_order = _patch_core_order(
                index.core_order,
                graph,
                new_graph,
                neighbor_order,
                touched_mask,
                scheduler,
            )

    report = UpdateReport(
        insertions=batch.num_insertions,
        deletions=batch.num_deletions,
        cancelled=batch.num_cancelled,
        affected_edges=int(affected_edges.size),
        affected_vertices=int(affected_vertices.size),
        wall_seconds=time.perf_counter() - started,
        order_strategy=order_strategy,
    )
    # Always-on update metrics (one batch = one observation, a cold path):
    # the affected-set size distributions and the churn decision are the
    # post-hoc record of how incremental the workload actually was.
    from ..obs.metrics import SIZE_BOUNDS

    obs.histogram("dynamic.affected_edges", SIZE_BOUNDS).observe(
        int(affected_edges.size)
    )
    obs.histogram("dynamic.affected_vertices", SIZE_BOUNDS).observe(
        int(affected_vertices.size)
    )
    obs.histogram("dynamic.update_seconds").observe(report.wall_seconds)
    obs.event(
        "dynamic.apply_updates",
        insertions=report.insertions,
        deletions=report.deletions,
        affected_edges=report.affected_edges,
        affected_vertices=report.affected_vertices,
        strategy=order_strategy,
    )

    # Commit, then tell the world: lineage for persistence, an epoch bump
    # plus fresh serving generations so every open session misses, and a
    # dropped ε-snapper memo (the similarity boundaries just changed).
    index.graph = new_graph
    index.similarities = similarities
    index.neighbor_order = neighbor_order
    index.core_order = core_order
    index.update_lineage.append(
        {
            "insertions": report.insertions,
            "deletions": report.deletions,
            "cancelled": report.cancelled,
            "affected_edges": report.affected_edges,
            "affected_vertices": report.affected_vertices,
            "order_strategy": report.order_strategy,
        }
    )
    from ..serve.session import invalidate_index_generations

    invalidate_index_generations(index)
    return report
