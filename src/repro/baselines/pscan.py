"""pSCAN / ppSCAN-style pruning-based SCAN for a fixed parameter setting.

pSCAN (Chang et al. 2017) and its parallelisation ppSCAN (Che et al. 2018)
answer a *single* ``(μ, ε)`` query quickly by avoiding similarity
computations that cannot change the outcome.  Two counters are kept per
vertex:

* ``effective_degree`` -- an upper bound on the size of the closed
  ε-neighborhood (starts at ``degree + 1`` and decreases every time an
  incident edge is found to be dissimilar);
* ``similar_degree`` -- a lower bound (starts at 1 for the vertex itself and
  increases every time an incident edge is found to be ε-similar).

A vertex's core-ness is decided as soon as ``similar_degree >= μ`` or
``effective_degree < μ``, so many edges are never evaluated.  Cores are then
clustered with union-find over the ε-similar core-core edges, and border
vertices are attached to a neighboring core's cluster.

The implementation below keeps a per-edge cache of evaluated similarities so
each edge is computed at most once, records how many evaluations were
actually performed (``stats.similarity_evaluations``), and charges its work to
the supplied scheduler; the outer per-vertex loops are the part ppSCAN runs
in parallel, so they are charged as parallel loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.clustering import UNCLUSTERED, Clustering
from ..graphs.graph import Graph
from ..parallel.metrics import ceil_log2
from ..parallel.scheduler import Scheduler
from ..parallel.unionfind import UnionFind
from ..similarity.measures import edge_similarity_reference


@dataclass
class PScanStats:
    """Counters describing how much work the pruning avoided."""

    similarity_evaluations: int = 0
    total_edges: int = 0

    @property
    def evaluated_fraction(self) -> float:
        """Fraction of edges whose similarity was actually computed."""
        if self.total_edges == 0:
            return 0.0
        return self.similarity_evaluations / self.total_edges


@dataclass
class PScanResult:
    """Clustering plus pruning statistics returned by :func:`pscan_clustering`."""

    clustering: Clustering
    stats: PScanStats = field(default_factory=PScanStats)


class _SimilarityOracle:
    """Lazily evaluated, cached per-edge similarity with work accounting."""

    def __init__(self, graph: Graph, measure: str, scheduler: Scheduler) -> None:
        self._graph = graph
        self._measure = measure
        self._scheduler = scheduler
        self._cache: dict[int, float] = {}
        self.evaluations = 0
        if measure == "cosine" and not graph.is_weighted:
            self._norms = np.sqrt(graph.degrees.astype(np.float64) + 1.0)
        else:
            self._norms = None

    def similarity(self, u: int, v: int) -> float:
        edge = self._graph.edge_id(u, v)
        cached = self._cache.get(edge)
        if cached is not None:
            return cached
        cost = min(self._graph.degree(u), self._graph.degree(v)) + 1
        self._scheduler.charge(cost, ceil_log2(max(cost, 1)) + 1.0)
        if self._norms is not None:
            # Fast path for the common case (unweighted cosine): intersect the
            # sorted neighbor lists and add the two closed-neighborhood terms.
            shared = np.intersect1d(
                self._graph.neighbors(u), self._graph.neighbors(v), assume_unique=True
            ).shape[0]
            value = (shared + 2.0) / (self._norms[u] * self._norms[v])
        else:
            value = edge_similarity_reference(self._graph, u, v, self._measure)
        self._cache[edge] = value
        self.evaluations += 1
        return value


def pscan_clustering(
    graph: Graph,
    mu: int,
    epsilon: float,
    *,
    measure: str = "cosine",
    scheduler: Scheduler | None = None,
) -> PScanResult:
    """Pruning-based SCAN clustering for a single ``(mu, epsilon)`` setting."""
    if mu < 2:
        raise ValueError(f"mu must be at least 2, got {mu}")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
    scheduler = scheduler if scheduler is not None else Scheduler()
    n = graph.num_vertices
    oracle = _SimilarityOracle(graph, measure, scheduler)

    effective_degree = graph.degrees.astype(np.int64) + 1
    similar_degree = np.ones(n, dtype=np.int64)
    core_known = np.zeros(n, dtype=bool)
    is_core = np.zeros(n, dtype=bool)
    # Evaluation state per arc position avoids re-checking decided edges.
    evaluated = np.zeros(graph.num_arcs, dtype=bool)

    def check_core(vertex: int) -> None:
        """Evaluate incident edges of ``vertex`` until its core-ness is decided."""
        if core_known[vertex]:
            return
        if similar_degree[vertex] >= mu:
            core_known[vertex] = True
            is_core[vertex] = True
            return
        if effective_degree[vertex] < mu:
            core_known[vertex] = True
            return
        start, end = graph.arc_range(vertex)
        for position in range(start, end):
            if evaluated[position]:
                continue
            neighbor = int(graph.indices[position])
            value = oracle.similarity(vertex, neighbor)
            evaluated[position] = True
            if value >= epsilon:
                similar_degree[vertex] += 1
            else:
                effective_degree[vertex] -= 1
            if similar_degree[vertex] >= mu:
                core_known[vertex] = True
                is_core[vertex] = True
                return
            if effective_degree[vertex] < mu:
                core_known[vertex] = True
                return
        core_known[vertex] = True
        is_core[vertex] = similar_degree[vertex] >= mu

    # Phase 1 (parallel in ppSCAN): decide core-ness of every vertex.
    scheduler.parallel_for(n, check_core)

    # Phase 2: cluster cores with union-find over ε-similar core-core edges.
    forest = UnionFind(n)
    edge_u, edge_v = graph.edge_list()
    core_core = is_core[edge_u] & is_core[edge_v]
    core_edges = np.flatnonzero(core_core)
    scheduler.charge(int(core_edges.size), ceil_log2(max(int(core_edges.size), 1)) + 1.0)
    for edge in core_edges:
        u, v = int(edge_u[edge]), int(edge_v[edge])
        # Pruning: skip the similarity evaluation when already clustered together.
        if forest.connected(u, v):
            continue
        if oracle.similarity(u, v) >= epsilon:
            forest.union(u, v)

    labels = np.full(n, UNCLUSTERED, dtype=np.int64)
    cores = np.flatnonzero(is_core)
    if cores.size:
        labels[cores] = forest.find_batch(scheduler, cores)

    # Phase 3: attach border (non-core) vertices to a neighboring core's cluster.
    def attach_border(position: int) -> None:
        core = int(cores[position])
        for neighbor in graph.neighbors(core):
            neighbor = int(neighbor)
            if is_core[neighbor] or labels[neighbor] != UNCLUSTERED:
                continue
            if oracle.similarity(core, neighbor) >= epsilon:
                labels[neighbor] = labels[core]

    scheduler.parallel_for(int(cores.size), attach_border)

    clustering = Clustering(labels, is_core, mu=mu, epsilon=epsilon)
    stats = PScanStats(
        similarity_evaluations=oracle.evaluations, total_edges=graph.num_edges
    )
    return PScanResult(clustering=clustering, stats=stats)
