"""The original SCAN algorithm (Xu et al., KDD 2007).

SCAN computes the structural similarity of every pair of adjacent vertices
and then performs a modified breadth-first search from core vertices,
expanding only along ε-similar edges and never expanding *through* a
non-core.  Every query recomputes everything, which is exactly the cost the
index-based algorithms amortise away; this implementation is the semantic
reference the index query is tested against (for fixed parameters both must
produce the same clusters, up to the arbitrary assignment of ambiguous border
vertices).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.clustering import UNCLUSTERED, Clustering
from ..graphs.graph import Graph
from ..parallel.scheduler import Scheduler, sequential_scheduler
from ..similarity.exact import EdgeSimilarities, compute_similarities


def find_core_vertices(
    graph: Graph,
    similarities: EdgeSimilarities,
    mu: int,
    epsilon: float,
) -> np.ndarray:
    """Boolean mask of core vertices straight from the SCAN definition.

    A vertex is a core when its closed ε-neighborhood (itself plus its
    neighbors with similarity at least ε) has at least μ members.
    """
    arc_similarities = similarities.arc_values()
    arc_is_similar = arc_similarities >= epsilon
    similar_neighbor_counts = np.zeros(graph.num_vertices, dtype=np.int64)
    np.add.at(similar_neighbor_counts, graph.arc_sources(), arc_is_similar)
    return (similar_neighbor_counts + 1) >= mu


def scan_clustering(
    graph: Graph,
    mu: int,
    epsilon: float,
    *,
    measure: str = "cosine",
    similarities: EdgeSimilarities | None = None,
    scheduler: Scheduler | None = None,
) -> Clustering:
    """Run original SCAN for one ``(mu, epsilon)`` setting.

    ``similarities`` may be supplied to skip the similarity computation (the
    dominant cost); otherwise they are computed from scratch, as the original
    algorithm does on every run.
    """
    if mu < 2:
        raise ValueError(f"mu must be at least 2, got {mu}")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
    scheduler = scheduler if scheduler is not None else sequential_scheduler()
    if similarities is None:
        similarities = compute_similarities(
            graph, measure=measure, backend="merge", scheduler=scheduler
        )

    core_mask = find_core_vertices(graph, similarities, mu, epsilon)
    arc_similarities = similarities.arc_values()
    labels = np.full(graph.num_vertices, UNCLUSTERED, dtype=np.int64)
    scheduler.charge(graph.num_arcs + graph.num_vertices)

    next_cluster = 0
    for source in range(graph.num_vertices):
        if not core_mask[source] or labels[source] != UNCLUSTERED:
            continue
        cluster_id = next_cluster
        next_cluster += 1
        labels[source] = cluster_id
        queue: deque[int] = deque([source])
        while queue:
            vertex = queue.popleft()
            start, end = graph.arc_range(vertex)
            for position in range(start, end):
                if arc_similarities[position] < epsilon:
                    continue
                neighbor = int(graph.indices[position])
                if core_mask[neighbor]:
                    if labels[neighbor] == UNCLUSTERED:
                        labels[neighbor] = cluster_id
                        queue.append(neighbor)
                else:
                    # Border vertex: joins the cluster but is never expanded.
                    if labels[neighbor] == UNCLUSTERED:
                        labels[neighbor] = cluster_id
            scheduler.charge(end - start)

    return Clustering(labels, core_mask, mu=mu, epsilon=epsilon)
