"""Sequential GS*-Index (Wen et al., VLDB 2017), the paper's main baseline.

GS*-Index builds the same neighbor order / core order structure as the
parallel algorithm, but sequentially:

* similarity scores are computed one edge at a time by intersecting the two
  closed neighborhoods (no work sharing between the edges of a triangle, no
  degree orientation), costing ``Σ_{u,v} min(d_u, d_v)`` dictionary probes;
* each neighbor list and each ``CO[μ]`` list is sorted with an ordinary
  comparison sort, adding the ``O(m log n)`` term of the original analysis;
* queries run a sequential breadth-first search over the ε-similar core
  subgraph, reading prefixes of the sorted orders.

Everything is charged to a *sequential* scheduler (span = work), so that the
benchmark harness can compare its simulated running time against the parallel
index on equal footing, exactly as Figure 5 and Figures 6-7 of the paper do.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.clustering import UNCLUSTERED, Clustering
from ..graphs.graph import Graph
from ..parallel.metrics import CostReport
from ..parallel.scheduler import Scheduler, sequential_scheduler
from ..similarity.exact import EdgeSimilarities
from ..similarity.measures import MEASURES


@dataclass
class GsStarIndex:
    """Sequentially constructed SCAN index (neighbor order + core order)."""

    graph: Graph
    similarities: EdgeSimilarities
    #: neighbor_order[v] is an array of (neighbor, similarity) sorted by
    #: non-increasing similarity.
    neighbor_ids: list[np.ndarray]
    neighbor_similarities: list[np.ndarray]
    #: core_order[mu] is (vertices, thresholds) sorted by non-increasing threshold.
    core_vertices_by_mu: list[np.ndarray]
    core_thresholds_by_mu: list[np.ndarray]
    construction_report: CostReport

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        *,
        measure: str = "cosine",
        scheduler: Scheduler | None = None,
    ) -> "GsStarIndex":
        """Build the index sequentially, mirroring the original algorithm."""
        if measure not in MEASURES:
            raise ValueError(f"unknown measure {measure!r}; expected one of {MEASURES}")
        if graph.is_weighted and measure != "cosine":
            raise ValueError("weighted graphs only support the (weighted) cosine measure")
        scheduler = scheduler if scheduler is not None else sequential_scheduler()
        started = time.perf_counter()

        similarities = cls._sequential_similarities(graph, measure, scheduler)
        arc_similarities = similarities.arc_values()

        neighbor_ids: list[np.ndarray] = []
        neighbor_similarities: list[np.ndarray] = []
        for v in range(graph.num_vertices):
            start, end = graph.arc_range(v)
            values = arc_similarities[start:end]
            neighbors = graph.indices[start:end]
            # Sequential comparison sort of each list (O(d log d)).
            order = np.lexsort((neighbors, -values))
            degree = end - start
            scheduler.charge(degree * (np.log2(degree) + 1.0) if degree else 1.0)
            neighbor_ids.append(neighbors[order])
            neighbor_similarities.append(values[order])

        degrees = graph.degrees
        max_mu = int(degrees.max(initial=0)) + 1 if graph.num_vertices else 1
        core_vertices_by_mu: list[np.ndarray] = [np.zeros(0, dtype=np.int64)] * 2
        core_thresholds_by_mu: list[np.ndarray] = [np.zeros(0, dtype=np.float64)] * 2
        for mu in range(2, max_mu + 1):
            members = np.flatnonzero(degrees >= mu - 1)
            thresholds = np.array(
                [neighbor_similarities[int(v)][mu - 2] for v in members], dtype=np.float64
            )
            order = np.lexsort((members, -thresholds))
            count = members.shape[0]
            scheduler.charge(count * (np.log2(count) + 1.0) if count else 1.0)
            core_vertices_by_mu.append(members[order])
            core_thresholds_by_mu.append(thresholds[order])

        elapsed = time.perf_counter() - started
        report = CostReport.from_counter(
            label=f"gs*-index-construction[{measure}]",
            counter=scheduler.counter,
            wall_seconds=elapsed,
            measure=measure,
        )
        return cls(
            graph=graph,
            similarities=similarities,
            neighbor_ids=neighbor_ids,
            neighbor_similarities=neighbor_similarities,
            core_vertices_by_mu=core_vertices_by_mu,
            core_thresholds_by_mu=core_thresholds_by_mu,
            construction_report=report,
        )

    @staticmethod
    def _sequential_similarities(
        graph: Graph, measure: str, scheduler: Scheduler
    ) -> EdgeSimilarities:
        """Per-edge similarity computation without any cross-edge work sharing."""
        neighbor_maps = [
            dict(zip(graph.neighbors(v).tolist(), graph.neighbor_weights(v).tolist()))
            for v in range(graph.num_vertices)
        ]
        scheduler.charge(graph.num_arcs)
        if graph.arc_weights is None:
            norms = np.sqrt(graph.degrees.astype(np.float64) + 1.0)
        else:
            squared = np.zeros(graph.num_vertices, dtype=np.float64)
            np.add.at(squared, graph.arc_sources(), graph.arc_weights ** 2)
            norms = np.sqrt(squared + 1.0)
        scheduler.charge(graph.num_arcs + graph.num_vertices)

        edge_u, edge_v = graph.edge_list()
        values = np.zeros(graph.num_edges, dtype=np.float64)
        weighted = graph.arc_weights is not None
        for edge in range(graph.num_edges):
            u, v = int(edge_u[edge]), int(edge_v[edge])
            if graph.degree(u) > graph.degree(v):
                u, v = v, u
            table_v = neighbor_maps[v]
            scheduler.charge(graph.degree(u) + 1)
            numerator = 0.0
            for x, w_ux in zip(graph.neighbors(u).tolist(), graph.neighbor_weights(u).tolist()):
                w_vx = table_v.get(x)
                if w_vx is not None:
                    numerator += w_ux * w_vx
            weight_uv = graph.edge_weight(u, v) if weighted else 1.0
            numerator += 2.0 * weight_uv
            if measure == "cosine":
                values[edge] = numerator / (norms[u] * norms[v])
            elif measure == "jaccard":
                closed = (graph.degree(u) + 1) + (graph.degree(v) + 1)
                values[edge] = numerator / (closed - numerator)
            else:  # dice
                closed = (graph.degree(u) + 1) + (graph.degree(v) + 1)
                values[edge] = 2.0 * numerator / closed
        return EdgeSimilarities(graph, values, measure)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def core_vertices(self, mu: int, epsilon: float, *, scheduler: Scheduler | None = None) -> np.ndarray:
        """Core vertices under ``(mu, epsilon)`` via a scan of the CO[μ] prefix."""
        if mu < 2:
            raise ValueError(f"mu must be at least 2, got {mu}")
        if mu >= len(self.core_vertices_by_mu):
            return np.zeros(0, dtype=np.int64)
        thresholds = self.core_thresholds_by_mu[mu]
        count = int(np.searchsorted(-thresholds, -epsilon, side="right"))
        if scheduler is not None:
            scheduler.charge(count + np.log2(max(count, 2)))
        return self.core_vertices_by_mu[mu][:count]

    def query(
        self,
        mu: int,
        epsilon: float,
        *,
        scheduler: Scheduler | None = None,
    ) -> Clustering:
        """Sequential BFS clustering query, as in the original GS*-Index."""
        scheduler = scheduler if scheduler is not None else sequential_scheduler()
        n = self.graph.num_vertices
        labels = np.full(n, UNCLUSTERED, dtype=np.int64)
        core_mask = np.zeros(n, dtype=bool)

        cores = self.core_vertices(mu, epsilon, scheduler=scheduler)
        if cores.size == 0:
            return Clustering(labels, core_mask, mu=mu, epsilon=epsilon)
        core_mask[cores] = True

        next_cluster = 0
        for source in cores:
            source = int(source)
            if labels[source] != UNCLUSTERED:
                continue
            cluster_id = next_cluster
            next_cluster += 1
            labels[source] = cluster_id
            queue: deque[int] = deque([source])
            while queue:
                vertex = queue.popleft()
                neighbors = self.neighbor_ids[vertex]
                values = self.neighbor_similarities[vertex]
                count = int(np.searchsorted(-values, -epsilon, side="right"))
                scheduler.charge(count + 1)
                for neighbor in neighbors[:count]:
                    neighbor = int(neighbor)
                    if labels[neighbor] != UNCLUSTERED:
                        continue
                    labels[neighbor] = cluster_id
                    if core_mask[neighbor]:
                        queue.append(neighbor)
        return Clustering(labels, core_mask, mu=mu, epsilon=epsilon)
