"""Baseline SCAN algorithms the paper compares against."""

from .scan import find_core_vertices, scan_clustering
from .gs_index import GsStarIndex
from .pscan import PScanResult, PScanStats, pscan_clustering

__all__ = [
    "find_core_vertices",
    "scan_clustering",
    "GsStarIndex",
    "PScanResult",
    "PScanStats",
    "pscan_clustering",
]
