"""Compressed-sparse-row representation of simple undirected graphs.

The :class:`Graph` class is the data structure every algorithm in this
library operates on.  It stores an undirected, simple (no self-loops, no
parallel edges) graph in CSR form with neighbor lists sorted by vertex id,
exactly the representation the GBBS framework used by the paper assumes.

Two index spaces are exposed:

* *arcs*: the ``2m`` directed half-edges of the CSR arrays (``indptr``,
  ``indices``, ``arc_weights``);
* *edges*: the ``m`` canonical undirected edges, listed with
  ``edge_u[i] < edge_v[i]``.  ``arc_edge_ids`` maps every arc to the id of
  its canonical edge, which lets per-edge quantities (similarity scores)
  be gathered into per-arc order in one vectorised step.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np


class DegreeOrientedCsr(NamedTuple):
    """Degree orientation of a graph in CSR form.

    Every undirected edge is kept once, directed toward the endpoint of
    higher degree (ties toward the higher vertex id).  ``edge_ids`` and
    ``weights`` are aligned with ``indices`` and refer back to the canonical
    undirected edges of the originating :class:`Graph`.
    """

    indptr: np.ndarray
    indices: np.ndarray
    edge_ids: np.ndarray
    weights: np.ndarray


class Graph:
    """Simple undirected graph in CSR form.

    Instances are normally built through :mod:`repro.graphs.builders` or the
    generators rather than by calling this constructor directly.

    Parameters
    ----------
    indptr:
        int64 array of length ``n + 1``; neighbor list of vertex ``v`` is
        ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        int64 array of length ``2m`` with neighbor ids, sorted within each
        neighbor list.
    arc_weights:
        Optional float64 array of length ``2m`` aligned with ``indices``.
        ``None`` means the graph is unweighted (all weights treated as 1).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        arc_weights: np.ndarray | None = None,
        *,
        validate: bool = True,
        arc_edge_ids: np.ndarray | None = None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.arc_weights = (
            None if arc_weights is None else np.asarray(arc_weights, dtype=np.float64)
        )
        if validate:
            self._validate()
        self._build_edge_index(arc_edge_ids)
        # Memoised derived structures.  The similarity engines, the neighbor
        # order and the finalise step all re-derive the degree orientation
        # (and the LSH split re-reads the degrees), so both are computed once
        # on first use and cached for the lifetime of the graph.  Graphs are
        # immutable after construction, which makes the caching safe.
        self._degrees: np.ndarray | None = None
        self._degree_oriented_csr: DegreeOrientedCsr | None = None
        self._arc_search_keys: np.ndarray | None = None
        self._oriented_sources: np.ndarray | None = None
        self._oriented_search_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise ValueError("indptr must be a non-empty 1-D array")
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise ValueError("indptr[-1] must equal len(indices)")
        n = self.indptr.size - 1
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n):
            raise ValueError("neighbor ids out of range")
        if self.arc_weights is not None and self.arc_weights.shape != self.indices.shape:
            raise ValueError("arc_weights must align with indices")
        for v in range(n):
            start, end = self.indptr[v], self.indptr[v + 1]
            neighbors = self.indices[start:end]
            if np.any(neighbors == v):
                raise ValueError(f"self-loop at vertex {v}")
            if np.any(np.diff(neighbors) <= 0):
                raise ValueError(
                    f"neighbor list of vertex {v} must be strictly increasing "
                    "(sorted, no duplicates)"
                )

    def _build_edge_index(self, arc_edge_ids: np.ndarray | None = None) -> None:
        """Derive the canonical edge list and the arc -> edge id mapping.

        When ``arc_edge_ids`` is supplied (a loaded index artifact handing the
        mapping back), the lexicographic sort/search below is skipped entirely
        -- reconstruction from stored columns must not redo any ordering work.
        """
        n = self.num_vertices
        sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        targets = self.indices
        forward = sources < targets
        self.edge_u = sources[forward]
        self.edge_v = targets[forward]
        if self.arc_weights is not None:
            self.edge_weights = self.arc_weights[forward]
        else:
            self.edge_weights = None
        num_edges = int(self.edge_u.shape[0])
        if arc_edge_ids is not None:
            self.arc_edge_ids = np.asarray(arc_edge_ids, dtype=np.int64)
            if self.arc_edge_ids.shape != self.indices.shape:
                raise ValueError("arc_edge_ids must align with indices")
        elif num_edges:
            # Canonical edge ids are assigned in the order forward arcs appear
            # in the CSR arrays, i.e. sorted by (u, v).  Every arc (x -> y)
            # maps to the id of edge (min(x,y), max(x,y)) via a lexicographic
            # search.
            arc_min = np.minimum(sources, targets)
            arc_max = np.maximum(sources, targets)
            order = np.lexsort((self.edge_v, self.edge_u))
            # Edges are already produced in lexicographic (u, v) order by the
            # CSR scan, so `order` is the identity; keep the general code path
            # for safety when subclasses override construction.
            sorted_u = self.edge_u[order]
            sorted_v = self.edge_v[order]
            positions = np.searchsorted(
                sorted_u * np.int64(self.num_vertices) + sorted_v,
                arc_min * np.int64(self.num_vertices) + arc_max,
            )
            self.arc_edge_ids = order[positions]
        else:
            self.arc_edge_ids = np.zeros(0, dtype=np.int64)
        self._arc_sources = sources

    @classmethod
    def from_index_columns(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        arc_weights: np.ndarray | None,
        arc_edge_ids: np.ndarray,
    ) -> "Graph":
        """Reconstruct a graph from the columns of a stored index artifact.

        Skips validation (the artifact was written from a validated graph)
        and reuses the stored arc -> edge id mapping, so no sorting or
        searching happens on the load path.
        """
        return cls(
            indptr, indices, arc_weights, validate=False, arc_edge_ids=arc_edge_ids
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return int(self.edge_u.shape[0])

    @property
    def num_arcs(self) -> int:
        """Number of directed half-edges, ``2m``."""
        return int(self.indices.shape[0])

    @property
    def is_weighted(self) -> bool:
        """True when explicit edge weights are stored."""
        return self.arc_weights is not None

    @property
    def degrees(self) -> np.ndarray:
        """Array of vertex degrees (memoised; do not mutate)."""
        if self._degrees is None:
            self._degrees = np.diff(self.indptr)
        return self._degrees

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def max_degree(self) -> int:
        """Largest vertex degree (0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees.max(initial=0))

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of vertex ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`; ones when unweighted."""
        if self.arc_weights is None:
            return np.ones(self.degree(v), dtype=np.float64)
        return self.arc_weights[self.indptr[v]:self.indptr[v + 1]]

    def arc_range(self, v: int) -> tuple[int, int]:
        """Half-open range of arc positions belonging to vertex ``v``."""
        return int(self.indptr[v]), int(self.indptr[v + 1])

    def arc_sources(self) -> np.ndarray:
        """Source vertex of every arc (length ``2m``)."""
        return self._arc_sources

    def locate_neighbors(
        self, us: np.ndarray, vs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched adjacency probes: position of ``vs[i]`` in ``us[i]``'s list.

        Returns ``(positions, found)`` where ``positions[i]`` is the absolute
        arc position at which ``vs[i]`` sits (or would be inserted) in the
        neighbor list of ``us[i]``, and ``found[i]`` says whether the edge
        exists.  All probes run as one simultaneous bounded binary search over
        the CSR arrays -- ``O(log max_degree)`` rounds for the whole batch
        instead of one scalar ``np.searchsorted`` call per probe.  Every
        scalar adjacency probe (:meth:`has_edge`, :meth:`edge_id`,
        :meth:`closed_neighborhood`, the reference similarity measures) routes
        through this helper.
        """
        from ..parallel.primitives import segmented_searchsorted

        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.size <= 4:
            # Tiny batches (the scalar accessors): one C-speed bounded
            # search per probe beats the simultaneous-rounds machinery.
            positions = np.empty(us.shape, dtype=np.int64)
            for i, (u, v) in enumerate(zip(us.tolist(), vs.tolist())):
                start, end = int(self.indptr[u]), int(self.indptr[u + 1])
                positions[i] = start + int(
                    np.searchsorted(self.indices[start:end], v)
                )
        else:
            positions = segmented_searchsorted(
                self.indices, vs, self.indptr[us], self.indptr[us + 1]
            )
        in_range = positions < self.indptr[us + 1]
        found = np.zeros(us.shape, dtype=bool)
        if in_range.any():
            hits = np.flatnonzero(in_range)
            found[hits] = self.indices[positions[hits]] == vs[hits]
        return positions, found

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``{u, v}`` is an edge of the graph."""
        if u == v:
            return False
        _, found = self.locate_neighbors(np.array([u]), np.array([v]))
        return bool(found[0])

    def edge_id(self, u: int, v: int) -> int:
        """Canonical edge id of ``{u, v}``; raises ``KeyError`` if absent."""
        if u > v:
            u, v = v, u
        positions, found = self.locate_neighbors(np.array([u]), np.array([v]))
        if not found[0]:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        return int(self.arc_edge_ids[positions[0]])

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}`` (1.0 for unweighted graphs)."""
        edge = self.edge_id(u, v)
        if self.edge_weights is None:
            return 1.0
        return float(self.edge_weights[edge])

    def edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """Canonical edge endpoints ``(edge_u, edge_v)`` with ``u < v``.

        Returns the arrays stored at construction time (no recomputation);
        callers must not mutate them.
        """
        return self.edge_u, self.edge_v

    def edges(self):
        """Iterate canonical edges as ``(u, v)`` Python ints."""
        for u, v in zip(self.edge_u.tolist(), self.edge_v.tolist()):
            yield u, v

    # ------------------------------------------------------------------
    # Derived graphs and matrices
    # ------------------------------------------------------------------
    def closed_neighborhood(self, v: int) -> np.ndarray:
        """Sorted closed neighborhood ``N(v) ∪ {v}`` of vertex ``v``."""
        neighbors = self.neighbors(v)
        positions, _ = self.locate_neighbors(np.array([v]), np.array([v]))
        return np.insert(neighbors, int(positions[0]) - int(self.indptr[v]), v)

    def adjacency_matrix(self, *, include_self_loops: bool = False) -> np.ndarray:
        """Dense adjacency (or weight) matrix as float64.

        ``include_self_loops`` adds a unit diagonal, matching the paper's
        convention ``w(x, x) = 1`` used by the weighted cosine similarity.
        Intended only for small/dense graphs (the matmul backend).
        """
        n = self.num_vertices
        matrix = np.zeros((n, n), dtype=np.float64)
        sources = self._arc_sources
        if self.arc_weights is None:
            matrix[sources, self.indices] = 1.0
        else:
            matrix[sources, self.indices] = self.arc_weights
        if include_self_loops:
            np.fill_diagonal(matrix, 1.0)
        return matrix

    def degree_oriented_csr(self) -> DegreeOrientedCsr:
        """Degree orientation with per-arc canonical edge ids and weights.

        This is the structure the merge-based similarity engine iterates
        over: each triangle of the graph appears exactly once as an arc
        ``u -> v`` plus a shared out-neighbor ``x`` of ``u`` and ``v``.
        The result is memoised on the graph; callers must not mutate it.
        """
        if self._degree_oriented_csr is not None:
            return self._degree_oriented_csr
        degrees = self.degrees
        n = self.num_vertices
        sources = self._arc_sources
        targets = self.indices
        rank_source = degrees[sources] * np.int64(n) + sources
        rank_target = degrees[targets] * np.int64(n) + targets
        keep = rank_source < rank_target
        out_sources = sources[keep]
        out_targets = targets[keep]
        out_edge_ids = self.arc_edge_ids[keep]
        if self.arc_weights is not None:
            out_weights = self.arc_weights[keep]
        else:
            out_weights = np.ones(out_targets.shape[0], dtype=np.float64)
        out_degrees = np.bincount(out_sources, minlength=n).astype(np.int64)
        out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(out_degrees, out=out_indptr[1:])
        self._degree_oriented_csr = DegreeOrientedCsr(
            out_indptr, out_targets, out_edge_ids, out_weights
        )
        self._oriented_sources = out_sources
        return self._degree_oriented_csr

    def oriented_arc_sources(self) -> np.ndarray:
        """Source vertex of every arc of the degree orientation (memoised)."""
        if self._oriented_sources is None:
            self.degree_oriented_csr()
        return self._oriented_sources

    def oriented_search_keys(self) -> np.ndarray:
        """Composite ``source * n + target`` key of every oriented arc.

        Strictly increasing (sources non-decreasing, targets strictly
        increasing per source), with a trailing ``-1`` sentinel so a
        ``searchsorted`` miss past the end compares unequal without bounds
        checks.  Memoised; the batch similarity engine probes this array.
        """
        if self._oriented_search_keys is None:
            oriented = self.degree_oriented_csr()
            keys = self._oriented_sources * np.int64(self.num_vertices) + oriented.indices
            self._oriented_search_keys = np.append(keys, np.int64(-1))
        return self._oriented_search_keys

    def arc_search_keys(self) -> np.ndarray:
        """Composite ``source * n + target`` key of every arc (memoised).

        The CSR arrays list arcs sorted by source and, within a source, by
        target, so the composite keys are strictly increasing: a single
        ``np.searchsorted`` over them answers batched adjacency probes for
        arbitrary ``(vertex, neighbor)`` pairs, which is what the vectorised
        similarity engines build their intersections from.  A trailing ``-1``
        sentinel lets a miss past the end compare unequal without bounds
        checks (search against ``[:num_arcs]``, gather from the full array).
        """
        if self._arc_search_keys is None:
            keys = self._arc_sources * np.int64(self.num_vertices) + self.indices
            self._arc_search_keys = np.append(keys, np.int64(-1))
        return self._arc_search_keys

    def degree_ordered_arcs(self) -> tuple[np.ndarray, np.ndarray]:
        """Arcs of the degree orientation used by merge-based triangle counting.

        Every undirected edge is directed toward the endpoint of higher degree
        (ties broken toward the higher vertex id), as in Section 6.1.  Returns
        ``(out_indptr, out_indices)`` of the resulting DAG; out-neighbor lists
        are sorted by vertex id.  A view of the memoised
        :meth:`degree_oriented_csr` structure.
        """
        oriented = self.degree_oriented_csr()
        return oriented.indptr, oriented.indices

    def subgraph_edge_mask(self, vertex_mask: np.ndarray) -> np.ndarray:
        """Boolean mask over canonical edges with both endpoints selected."""
        vertex_mask = np.asarray(vertex_mask, dtype=bool)
        if vertex_mask.shape[0] != self.num_vertices:
            raise ValueError("vertex_mask must have one entry per vertex")
        return vertex_mask[self.edge_u] & vertex_mask[self.edge_v]

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "weighted" if self.is_weighted else "unweighted"
        return f"Graph(n={self.num_vertices}, m={self.num_edges}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        same_structure = (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )
        if not same_structure:
            return False
        if (self.arc_weights is None) != (other.arc_weights is None):
            return False
        if self.arc_weights is None:
            return True
        return np.allclose(self.arc_weights, other.arc_weights)

    def __hash__(self) -> int:  # pragma: no cover - Graphs are not dict keys
        return id(self)
