"""Connected components of undirected graphs and edge-induced subgraphs.

The query algorithm (Algorithm 5) clusters core vertices by running a
connectivity computation on the subgraph of ε-similar core-core edges.  The
paper's theoretical variant uses the Gazit connectivity algorithm
(``O(m + n)`` expected work, ``O(log n)`` span); the implementation uses a
concurrent union-find instead.  Both entry points are provided here: a
sequential BFS labelling (used by the GS*-Index baseline) and a union-find
batch labelling charged with the parallel bound (used by the index query).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..parallel.metrics import ceil_log2
from ..parallel.scheduler import Scheduler
from ..parallel.unionfind import UnionFind
from .graph import Graph

#: Label used for vertices that are not part of the labelled vertex set.
UNLABELLED = -1


def connected_components_bfs(graph: Graph) -> np.ndarray:
    """Component label of every vertex, computed by sequential BFS.

    Labels are the smallest vertex id in each component.
    """
    n = graph.num_vertices
    labels = np.full(n, UNLABELLED, dtype=np.int64)
    for source in range(n):
        if labels[source] != UNLABELLED:
            continue
        labels[source] = source
        queue: deque[int] = deque([source])
        while queue:
            vertex = queue.popleft()
            for neighbor in graph.neighbors(vertex):
                neighbor = int(neighbor)
                if labels[neighbor] == UNLABELLED:
                    labels[neighbor] = source
                    queue.append(neighbor)
    return labels


def connected_components_unionfind(
    graph: Graph,
    scheduler: Scheduler | None = None,
) -> np.ndarray:
    """Component labels via batched union-find with parallel cost accounting."""
    scheduler = scheduler if scheduler is not None else Scheduler()
    forest = UnionFind(graph.num_vertices)
    edge_u, edge_v = graph.edge_list()
    forest.union_batch(scheduler, edge_u, edge_v)
    return forest.component_labels(scheduler)


def components_of_edge_set(
    num_vertices: int,
    edges_u: np.ndarray,
    edges_v: np.ndarray,
    scheduler: Scheduler | None = None,
) -> np.ndarray:
    """Component labels induced by an explicit edge set over ``num_vertices`` ids.

    Vertices untouched by any edge keep themselves as singleton labels.  This
    is the exact shape of the connectivity step in Algorithm 5: only the
    ε-similar core-core edges participate.
    """
    scheduler = scheduler if scheduler is not None else Scheduler()
    forest = UnionFind(num_vertices)
    forest.union_batch(scheduler, np.asarray(edges_u), np.asarray(edges_v))
    return forest.component_labels(scheduler)


def num_components(labels: np.ndarray) -> int:
    """Number of distinct component labels."""
    if labels.size == 0:
        return 0
    return int(np.unique(labels).shape[0])


def largest_component_size(labels: np.ndarray) -> int:
    """Size of the largest component given a label array."""
    if labels.size == 0:
        return 0
    _, counts = np.unique(labels, return_counts=True)
    return int(counts.max())


def relabel_components(labels: np.ndarray, scheduler: Scheduler | None = None) -> np.ndarray:
    """Map arbitrary component labels to dense ids ``0 .. k-1`` (stable order)."""
    if scheduler is not None:
        n = int(labels.shape[0])
        scheduler.charge(n, ceil_log2(max(n, 1)) + 1.0)
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)
