"""Triangle counting on the degree-oriented graph.

Computing SCAN similarities reduces to counting, for every edge, the number
of triangles it participates in (the size of the common neighborhood of its
endpoints).  This module provides the global and per-edge counts via the
merge-based strategy of Shun and Tangwongsan that the paper's implementation
adopts (Section 6.1): orient every edge toward its higher-degree endpoint,
then for each remaining arc intersect the two out-neighbor lists.
"""

from __future__ import annotations

import numpy as np

from ..parallel.metrics import ceil_log2
from ..parallel.scheduler import Scheduler
from .graph import Graph


def _intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted integer arrays (values, sorted)."""
    return np.intersect1d(a, b, assume_unique=True)


def count_triangles(graph: Graph, scheduler: Scheduler | None = None) -> int:
    """Total number of triangles in the graph.

    Uses the degree orientation so each triangle is counted exactly once, in
    ``O(α m)`` work; when a scheduler is supplied the merge cost of each edge
    is charged to it.
    """
    scheduler = scheduler if scheduler is not None else Scheduler()
    out_indptr, out_indices = graph.degree_ordered_arcs()
    total = 0
    total_work = 0.0
    max_span = 0.0
    n = graph.num_vertices
    for u in range(n):
        out_u = out_indices[out_indptr[u]:out_indptr[u + 1]]
        for v in out_u:
            out_v = out_indices[out_indptr[v]:out_indptr[v + 1]]
            cost = out_u.shape[0] + out_v.shape[0]
            total_work += cost
            max_span = max(max_span, ceil_log2(max(cost, 1)) + 1.0)
            total += int(_intersect_sorted(out_u, out_v).shape[0])
    # The merges form one flat parallel loop over the oriented arcs.
    scheduler.charge(total_work, max_span + ceil_log2(max(graph.num_edges, 1)) + 1.0)
    return total


def per_edge_triangle_counts(
    graph: Graph,
    scheduler: Scheduler | None = None,
) -> np.ndarray:
    """Number of triangles through each canonical edge.

    For edge ``{u, v}`` this equals ``|N(u) ∩ N(v)|`` (open neighborhoods),
    the quantity SCAN's structural similarity is built from.  Computed by
    enumerating triangles once on the degree-oriented graph and incrementing
    an atomic-style counter for each of the three edges of every triangle
    found, as in the paper's implementation.
    """
    scheduler = scheduler if scheduler is not None else Scheduler()
    out_indptr, out_indices = graph.degree_ordered_arcs()
    counts = np.zeros(graph.num_edges, dtype=np.int64)
    total_work = 0.0
    max_span = 0.0
    n = graph.num_vertices
    for u in range(n):
        out_u = out_indices[out_indptr[u]:out_indptr[u + 1]]
        for v in out_u:
            v = int(v)
            out_v = out_indices[out_indptr[v]:out_indptr[v + 1]]
            cost = out_u.shape[0] + out_v.shape[0]
            total_work += cost
            max_span = max(max_span, ceil_log2(max(cost, 1)) + 1.0)
            shared = _intersect_sorted(out_u, out_v)
            if shared.shape[0] == 0:
                continue
            counts[graph.edge_id(u, v)] += shared.shape[0]
            for x in shared:
                x = int(x)
                counts[graph.edge_id(u, x)] += 1
                counts[graph.edge_id(v, x)] += 1
    scheduler.charge(total_work, max_span + ceil_log2(max(graph.num_edges, 1)) + 1.0)
    return counts


def local_clustering_coefficient(graph: Graph) -> np.ndarray:
    """Per-vertex local clustering coefficient (triangles over wedge count)."""
    edge_counts = per_edge_triangle_counts(graph)
    per_vertex = np.zeros(graph.num_vertices, dtype=np.float64)
    edge_u, edge_v = graph.edge_list()
    np.add.at(per_vertex, edge_u, edge_counts)
    np.add.at(per_vertex, edge_v, edge_counts)
    degrees = graph.degrees.astype(np.float64)
    wedges = degrees * (degrees - 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        coefficients = np.where(wedges > 0, per_vertex / wedges, 0.0)
    return coefficients
