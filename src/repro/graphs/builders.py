"""Constructors that turn edge lists and adjacency maps into :class:`Graph`.

All builders normalise the input into a simple undirected graph: duplicate
edges are collapsed (keeping the last weight seen), self-loops are dropped,
and neighbor lists end up sorted by vertex id, as the rest of the library
assumes.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .graph import Graph


def from_edge_list(
    edges: Iterable[tuple[int, int]] | np.ndarray,
    *,
    num_vertices: int | None = None,
    weights: Sequence[float] | np.ndarray | None = None,
) -> Graph:
    """Build a graph from an iterable of ``(u, v)`` pairs.

    Parameters
    ----------
    edges:
        Pairs of vertex ids.  Orientation and duplicates are ignored; self
        loops are dropped.
    num_vertices:
        Total vertex count.  Defaults to ``max id + 1`` (isolated trailing
        vertices must be declared explicitly).
    weights:
        Optional per-edge weights aligned with ``edges``.  When a duplicate
        edge appears, the last weight wins.
    """
    edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if edge_array.size == 0:
        edge_array = edge_array.reshape(0, 2)
    if edge_array.ndim != 2 or edge_array.shape[1] != 2:
        raise ValueError("edges must be an iterable of (u, v) pairs")
    edge_array = edge_array.astype(np.int64)
    if edge_array.size and edge_array.min() < 0:
        raise ValueError("vertex ids must be non-negative")

    weight_array: np.ndarray | None = None
    if weights is not None:
        weight_array = np.asarray(weights, dtype=np.float64)
        if weight_array.shape[0] != edge_array.shape[0]:
            raise ValueError("weights must align with edges")

    inferred = int(edge_array.max()) + 1 if edge_array.size else 0
    n = inferred if num_vertices is None else int(num_vertices)
    if n < inferred:
        raise ValueError(
            f"num_vertices={n} is smaller than the largest referenced vertex id {inferred - 1}"
        )

    # Canonicalise: drop self loops, order endpoints, deduplicate.
    u = np.minimum(edge_array[:, 0], edge_array[:, 1])
    v = np.maximum(edge_array[:, 0], edge_array[:, 1])
    not_loop = u != v
    u, v = u[not_loop], v[not_loop]
    if weight_array is not None:
        weight_array = weight_array[not_loop]

    if u.size:
        keys = u * np.int64(max(n, 1)) + v
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        u, v = u[order], v[order]
        if weight_array is not None:
            weight_array = weight_array[order]
        # Keep the *last* occurrence of each duplicate so later weights win.
        is_last = np.ones(keys.shape[0], dtype=bool)
        is_last[:-1] = keys[1:] != keys[:-1]
        u, v = u[is_last], v[is_last]
        if weight_array is not None:
            weight_array = weight_array[is_last]

    return _from_canonical_edges(n, u, v, weight_array)


def _from_canonical_edges(
    n: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    edge_weights: np.ndarray | None,
) -> Graph:
    """Assemble CSR arrays from deduplicated edges with ``u < v``."""
    sources = np.concatenate([edge_u, edge_v])
    targets = np.concatenate([edge_v, edge_u])
    if edge_weights is not None:
        arc_weights = np.concatenate([edge_weights, edge_weights])
    else:
        arc_weights = None

    order = np.lexsort((targets, sources))
    sources = sources[order]
    targets = targets[order]
    if arc_weights is not None:
        arc_weights = arc_weights[order]

    counts = np.bincount(sources, minlength=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return Graph(indptr, targets, arc_weights)


def from_adjacency(
    adjacency: Mapping[int, Iterable[int]],
    *,
    num_vertices: int | None = None,
) -> Graph:
    """Build an unweighted graph from a vertex -> neighbors mapping.

    The mapping does not need to be symmetric; an edge is added whenever it
    appears in either direction.
    """
    pairs = [(int(u), int(v)) for u, neighbors in adjacency.items() for v in neighbors]
    if num_vertices is None and adjacency:
        num_vertices = max(
            max(adjacency.keys(), default=-1),
            max((v for _, v in pairs), default=-1),
        ) + 1
    return from_edge_list(pairs, num_vertices=num_vertices)


def from_weighted_edge_list(
    weighted_edges: Iterable[tuple[int, int, float]],
    *,
    num_vertices: int | None = None,
) -> Graph:
    """Build a weighted graph from ``(u, v, weight)`` triples."""
    triples = list(weighted_edges)
    edges = [(u, v) for u, v, _ in triples]
    weights = [w for _, _, w in triples]
    return from_edge_list(edges, num_vertices=num_vertices, weights=weights)


def empty_graph(num_vertices: int) -> Graph:
    """Graph with ``num_vertices`` vertices and no edges."""
    return from_edge_list(np.zeros((0, 2), dtype=np.int64), num_vertices=num_vertices)


def complete_graph(num_vertices: int, *, weight: float | None = None) -> Graph:
    """Complete graph on ``num_vertices`` vertices (optionally uniform-weighted)."""
    pairs = [(u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)]
    weights = None if weight is None else [weight] * len(pairs)
    return from_edge_list(pairs, num_vertices=num_vertices, weights=weights)


def relabel_to_contiguous(graph: Graph, *, drop_isolated: bool = True) -> tuple[Graph, np.ndarray]:
    """Compact vertex ids so they are contiguous, optionally dropping isolated vertices.

    Mirrors the preprocessing the paper applies to the brain / Friendster /
    HumanBase graphs.  Returns the new graph and an array mapping new ids to
    the original ids.
    """
    degrees = graph.degrees
    if drop_isolated:
        keep = np.flatnonzero(degrees > 0)
    else:
        keep = np.arange(graph.num_vertices, dtype=np.int64)
    new_id = -np.ones(graph.num_vertices, dtype=np.int64)
    new_id[keep] = np.arange(keep.shape[0], dtype=np.int64)
    edge_u, edge_v = graph.edge_list()
    weights = graph.edge_weights
    remapped = from_edge_list(
        np.column_stack([new_id[edge_u], new_id[edge_v]]),
        num_vertices=int(keep.shape[0]),
        weights=weights,
    )
    return remapped, keep
