"""Synthetic graph generators used as stand-ins for the paper's datasets.

The paper evaluates on six real-world graphs between 70 million and
1.8 billion edges (Table 2).  Those graphs cannot be shipped or processed at
laptop scale in pure Python, so the benchmark harness substitutes synthetic
graphs that preserve the structural features the algorithms are sensitive to:

* **planted-partition social graphs** (Orkut / Friendster stand-ins):
  pronounced community structure plus background noise edges;
* **dense clustered graphs** (brain stand-in): very high average degree and
  large arboricity, the regime where LSH approximation pays off;
* **hub-and-spoke web graphs** (WebBase stand-in): heavy-tailed degrees with
  a few massive hubs and many low-degree pages;
* **dense weighted association graphs** (blood vessel / cochlea stand-ins):
  near-complete weighted graphs whose weights encode relationship confidence.

Every generator takes a ``seed`` and is fully deterministic given it.
"""

from __future__ import annotations

import numpy as np

from .builders import from_edge_list
from .graph import Graph

#: Edges of the worked example of Figure 1 (0-based vertex ids; the paper
#: numbers the same vertices 1..11).
PAPER_EXAMPLE_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 3),
    (1, 2), (1, 3),
    (2, 3),
    (3, 4),
    (4, 5),
    (5, 6), (5, 7),
    (6, 7), (6, 10),
    (7, 8),
    (8, 9),
)


def paper_example_graph() -> Graph:
    """The 11-vertex, 13-edge example graph of Figure 1 (0-based ids)."""
    return from_edge_list(PAPER_EXAMPLE_EDGES, num_vertices=11)


def _dedup_pairs(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Stack, canonicalise and deduplicate endpoint arrays into an edge array."""
    low = np.minimum(u, v)
    high = np.maximum(u, v)
    keep = low != high
    edges = np.unique(np.column_stack([low[keep], high[keep]]), axis=0)
    return edges


def erdos_renyi(
    num_vertices: int,
    edge_probability: float,
    *,
    seed: int = 0,
) -> Graph:
    """G(n, p) random graph."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    expected = edge_probability * num_vertices * (num_vertices - 1) / 2
    if num_vertices <= 2048 or expected > num_vertices * (num_vertices - 1) / 8:
        upper_u, upper_v = np.triu_indices(num_vertices, k=1)
        keep = rng.random(upper_u.shape[0]) < edge_probability
        edges = np.column_stack([upper_u[keep], upper_v[keep]])
    else:
        # Sparse case: sample with replacement and deduplicate.
        count = rng.poisson(expected)
        u = rng.integers(0, num_vertices, size=count)
        v = rng.integers(0, num_vertices, size=count)
        edges = _dedup_pairs(u, v)
    return from_edge_list(edges, num_vertices=num_vertices)


def planted_partition(
    num_clusters: int,
    cluster_size: int,
    *,
    p_intra: float = 0.3,
    p_inter: float = 0.005,
    seed: int = 0,
) -> Graph:
    """Planted-partition (stochastic block model) graph with equal-size clusters.

    Vertices ``[c * cluster_size, (c + 1) * cluster_size)`` form ground-truth
    cluster ``c``.  Intra-cluster pairs are connected with probability
    ``p_intra`` and inter-cluster pairs with probability ``p_inter``.
    """
    if num_clusters < 1 or cluster_size < 1:
        raise ValueError("num_clusters and cluster_size must be positive")
    rng = np.random.default_rng(seed)
    n = num_clusters * cluster_size
    chunks: list[np.ndarray] = []

    for cluster in range(num_clusters):
        offset = cluster * cluster_size
        upper_u, upper_v = np.triu_indices(cluster_size, k=1)
        keep = rng.random(upper_u.shape[0]) < p_intra
        if keep.any():
            chunks.append(np.column_stack([upper_u[keep] + offset, upper_v[keep] + offset]))

    expected_inter = p_inter * (n * (n - 1) / 2)
    count = rng.poisson(max(expected_inter, 0.0))
    if count:
        u = rng.integers(0, n, size=count)
        v = rng.integers(0, n, size=count)
        different = (u // cluster_size) != (v // cluster_size)
        chunks.append(_dedup_pairs(u[different], v[different]))

    edges = np.concatenate(chunks) if chunks else np.zeros((0, 2), dtype=np.int64)
    return from_edge_list(edges, num_vertices=n)


def planted_partition_labels(num_clusters: int, cluster_size: int) -> np.ndarray:
    """Ground-truth cluster labels matching :func:`planted_partition`."""
    return np.repeat(np.arange(num_clusters, dtype=np.int64), cluster_size)


def preferential_attachment(
    num_vertices: int,
    edges_per_vertex: int,
    *,
    seed: int = 0,
) -> Graph:
    """Barabási–Albert preferential-attachment graph (heavy-tailed degrees)."""
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be positive")
    if num_vertices <= edges_per_vertex:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    rng = np.random.default_rng(seed)
    targets: list[int] = list(range(edges_per_vertex))
    repeated: list[int] = list(range(edges_per_vertex))
    edges: list[tuple[int, int]] = []
    for source in range(edges_per_vertex, num_vertices):
        chosen = rng.choice(repeated, size=edges_per_vertex, replace=False) if len(
            repeated
        ) >= edges_per_vertex else rng.choice(targets, size=edges_per_vertex, replace=True)
        for target in np.unique(chosen):
            edges.append((source, int(target)))
            repeated.append(int(target))
            repeated.append(source)
    return from_edge_list(edges, num_vertices=num_vertices)


def hub_and_spoke_web(
    num_hubs: int,
    pages_per_hub: int,
    *,
    cross_link_probability: float = 0.001,
    intra_hub_probability: float = 0.15,
    seed: int = 0,
) -> Graph:
    """Web-crawl-like graph: hub pages with dense local link neighborhoods.

    Each hub is connected to all of its pages; pages within the same hub link
    to each other with ``intra_hub_probability``; random cross links connect
    different hubs' pages with ``cross_link_probability``.
    """
    rng = np.random.default_rng(seed)
    group = 1 + pages_per_hub
    n = num_hubs * group
    chunks: list[np.ndarray] = []
    for hub in range(num_hubs):
        hub_vertex = hub * group
        pages = np.arange(hub_vertex + 1, hub_vertex + group)
        chunks.append(np.column_stack([np.full(pages.shape[0], hub_vertex), pages]))
        upper_u, upper_v = np.triu_indices(pages.shape[0], k=1)
        keep = rng.random(upper_u.shape[0]) < intra_hub_probability
        if keep.any():
            chunks.append(np.column_stack([pages[upper_u[keep]], pages[upper_v[keep]]]))
    expected_cross = cross_link_probability * n * (n - 1) / 2
    count = rng.poisson(max(expected_cross, 0.0))
    if count:
        u = rng.integers(0, n, size=count)
        v = rng.integers(0, n, size=count)
        chunks.append(_dedup_pairs(u, v))
    edges = np.concatenate(chunks) if chunks else np.zeros((0, 2), dtype=np.int64)
    return from_edge_list(edges, num_vertices=n)


def dense_weighted_association(
    num_vertices: int,
    *,
    num_modules: int = 4,
    density: float = 0.5,
    seed: int = 0,
) -> Graph:
    """Dense weighted graph mimicking HumanBase functional-association networks.

    Vertices are split into ``num_modules`` functional modules.  Every pair of
    vertices is connected with probability ``density``; edges inside a module
    receive high confidence weights (0.6-1.0) and edges across modules receive
    low confidence weights (0.01-0.3), mirroring how tissue networks encode
    relationship probability on the edges.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    module = rng.integers(0, num_modules, size=num_vertices)
    upper_u, upper_v = np.triu_indices(num_vertices, k=1)
    keep = rng.random(upper_u.shape[0]) < density
    u, v = upper_u[keep], upper_v[keep]
    same_module = module[u] == module[v]
    weights = np.where(
        same_module,
        rng.uniform(0.6, 1.0, size=u.shape[0]),
        rng.uniform(0.01, 0.3, size=u.shape[0]),
    )
    return from_edge_list(
        np.column_stack([u, v]), num_vertices=num_vertices, weights=weights
    )


def dense_clustered_graph(
    num_clusters: int,
    cluster_size: int,
    *,
    p_intra: float = 0.8,
    p_inter: float = 0.02,
    seed: int = 0,
) -> Graph:
    """Very dense planted-partition graph (brain-connectome stand-in).

    High intra-cluster density produces the large-arboricity regime in which
    exact similarity computation is expensive and LSH approximation pays off.
    """
    return planted_partition(
        num_clusters,
        cluster_size,
        p_intra=p_intra,
        p_inter=p_inter,
        seed=seed,
    )


def with_random_weights(
    graph: Graph,
    *,
    low: float = 0.05,
    high: float = 1.0,
    seed: int = 0,
) -> Graph:
    """Copy of ``graph`` with uniformly random edge weights in ``[low, high)``."""
    rng = np.random.default_rng(seed)
    edge_u, edge_v = graph.edge_list()
    weights = rng.uniform(low, high, size=graph.num_edges)
    return from_edge_list(
        np.column_stack([edge_u, edge_v]),
        num_vertices=graph.num_vertices,
        weights=weights,
    )
