"""Structural graph properties: degeneracy, arboricity bounds, density.

The paper's work bounds are phrased in terms of the *arboricity* α of the
input graph (the minimum number of spanning forests needed to cover all
edges).  Computing α exactly is expensive, but two standard facts give tight
practical handles on it:

* ``ceil(m / (n - 1)) <= α`` (each forest covers at most ``n - 1`` edges);
* ``α <= degeneracy <= 2α - 1`` (Nash-Williams), where the degeneracy is the
  largest minimum degree of any subgraph and is computable in linear time by
  repeatedly peeling a minimum-degree vertex.

The benchmark that validates Table 1 uses these bounds to relate measured
work to the ``O((α + log n) m)`` expression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph


def degeneracy_ordering(graph: Graph) -> tuple[np.ndarray, int]:
    """Peel vertices in order of minimum remaining degree.

    Returns ``(order, degeneracy)`` where ``order`` lists the vertices in the
    order they were removed and ``degeneracy`` is the largest degree observed
    at removal time.  Runs in ``O(n + m)`` using bucketed degrees.
    """
    n = graph.num_vertices
    degrees = graph.degrees.copy()
    max_degree = int(degrees.max(initial=0))

    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for vertex in range(n):
        buckets[int(degrees[vertex])].append(vertex)

    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    degeneracy = 0
    current = 0
    for position in range(n):
        while current <= max_degree and not buckets[current]:
            current += 1
        # The bucket queue is lazily cleaned: skip vertices whose degree has
        # since decreased (they appear again in a lower bucket) or that were
        # already removed.
        while True:
            vertex = buckets[current].pop()
            if not removed[vertex] and degrees[vertex] == current:
                break
            while current <= max_degree and not buckets[current]:
                current += 1
        removed[vertex] = True
        order[position] = vertex
        degeneracy = max(degeneracy, current)
        for neighbor in graph.neighbors(vertex):
            neighbor = int(neighbor)
            if not removed[neighbor] and degrees[neighbor] > 0:
                degrees[neighbor] -= 1
                buckets[int(degrees[neighbor])].append(neighbor)
                if degrees[neighbor] < current:
                    current = int(degrees[neighbor])
    return order, degeneracy


def degeneracy(graph: Graph) -> int:
    """The degeneracy (maximum core number) of the graph."""
    _, value = degeneracy_ordering(graph)
    return value


def arboricity_lower_bound(graph: Graph) -> int:
    """``ceil(m / (n - 1))``, a lower bound on the arboricity."""
    n, m = graph.num_vertices, graph.num_edges
    if n <= 1 or m == 0:
        return 0 if m == 0 else 1
    return int(np.ceil(m / (n - 1)))


def arboricity_upper_bound(graph: Graph) -> int:
    """The degeneracy, an upper bound on ``2α - 1`` and hence within 2x of α."""
    return degeneracy(graph)


def arboricity_estimate(graph: Graph) -> float:
    """Point estimate of the arboricity: midpoint of the lower/upper bounds."""
    lower = arboricity_lower_bound(graph)
    upper = max(arboricity_upper_bound(graph), lower)
    return (lower + upper) / 2.0


def average_degree(graph: Graph) -> float:
    """Average vertex degree ``2m / n`` (0 for the empty graph)."""
    if graph.num_vertices == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_vertices


def density(graph: Graph) -> float:
    """Fraction of possible edges present."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2)


@dataclass(frozen=True)
class GraphSummary:
    """Row of the paper's Table 2 plus the structural quantities we report."""

    name: str
    num_vertices: int
    num_edges: int
    weighted: bool
    max_degree: int
    average_degree: float
    degeneracy: int
    arboricity_lower: int

    @classmethod
    def of(cls, name: str, graph: Graph) -> "GraphSummary":
        """Summarise ``graph`` under the label ``name``."""
        return cls(
            name=name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            weighted=graph.is_weighted,
            max_degree=graph.max_degree,
            average_degree=average_degree(graph),
            degeneracy=degeneracy(graph),
            arboricity_lower=arboricity_lower_bound(graph),
        )
