"""Reading and writing graphs in simple text formats.

Two formats are supported:

* **edge list**: one edge per line, ``u v`` or ``u v weight``; lines starting
  with ``#`` or ``%`` are comments.  This covers the SNAP datasets (Orkut,
  Friendster) and the HumanBase "top edges" files the paper uses.
* **adjacency**: a GBBS-style flat adjacency format -- a header line
  (``AdjacencyGraph`` or ``WeightedAdjacencyGraph``), then ``n``, ``2m``,
  ``n`` offsets, ``2m`` neighbor ids, and for weighted graphs ``2m`` weights,
  one number per line.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .builders import from_edge_list
from .graph import Graph

_COMMENT_PREFIXES = ("#", "%")
ADJACENCY_HEADER = "AdjacencyGraph"
WEIGHTED_ADJACENCY_HEADER = "WeightedAdjacencyGraph"


def read_edge_list(path: str | Path, *, num_vertices: int | None = None) -> Graph:
    """Read an (optionally weighted) edge-list text file into a graph."""
    path = Path(path)
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    saw_weight = False
    with path.open() as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_number}: expected 'u v [weight]', got {line!r}")
            edges.append((int(parts[0]), int(parts[1])))
            if len(parts) >= 3:
                saw_weight = True
                weights.append(float(parts[2]))
            else:
                weights.append(1.0)
    return from_edge_list(
        edges,
        num_vertices=num_vertices,
        weights=weights if saw_weight else None,
    )


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write the graph as an edge list (with weights when present)."""
    path = Path(path)
    edge_u, edge_v = graph.edge_list()
    with path.open("w") as handle:
        handle.write(f"# undirected simple graph: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        if graph.is_weighted:
            for u, v, w in zip(edge_u.tolist(), edge_v.tolist(), graph.edge_weights.tolist()):
                handle.write(f"{u} {v} {w:.10g}\n")
        else:
            for u, v in zip(edge_u.tolist(), edge_v.tolist()):
                handle.write(f"{u} {v}\n")


def write_adjacency(graph: Graph, path: str | Path) -> None:
    """Write the graph in the GBBS-style flat adjacency format."""
    path = Path(path)
    lines: list[str] = []
    if graph.is_weighted:
        lines.append(WEIGHTED_ADJACENCY_HEADER)
    else:
        lines.append(ADJACENCY_HEADER)
    lines.append(str(graph.num_vertices))
    lines.append(str(graph.num_arcs))
    lines.extend(str(int(offset)) for offset in graph.indptr[:-1])
    lines.extend(str(int(neighbor)) for neighbor in graph.indices)
    if graph.is_weighted:
        lines.extend(f"{float(weight):.10g}" for weight in graph.arc_weights)
    path.write_text("\n".join(lines) + "\n")


def read_adjacency(path: str | Path) -> Graph:
    """Read a graph written by :func:`write_adjacency`."""
    path = Path(path)
    tokens = path.read_text().split()
    if not tokens:
        raise ValueError(f"{path}: empty adjacency file")
    header = tokens[0]
    if header not in (ADJACENCY_HEADER, WEIGHTED_ADJACENCY_HEADER):
        raise ValueError(f"{path}: unrecognised header {header!r}")
    weighted = header == WEIGHTED_ADJACENCY_HEADER
    cursor = 1
    n = int(tokens[cursor]); cursor += 1
    num_arcs = int(tokens[cursor]); cursor += 1
    offsets = np.array(tokens[cursor:cursor + n], dtype=np.int64); cursor += n
    indices = np.array(tokens[cursor:cursor + num_arcs], dtype=np.int64); cursor += num_arcs
    weights = None
    if weighted:
        weights = np.array(tokens[cursor:cursor + num_arcs], dtype=np.float64); cursor += num_arcs
    indptr = np.empty(n + 1, dtype=np.int64)
    indptr[:-1] = offsets
    indptr[-1] = num_arcs
    return Graph(indptr, indices, weights)
