"""Command-line interface: inspect datasets and regenerate the paper's experiments.

Usage (after installation)::

    python -m repro datasets                 # Table-2-style summary of the stand-ins
    python -m repro experiments              # list available experiment drivers
    python -m repro run figure5              # regenerate one table/figure
    python -m repro run figure6 --scale tiny --datasets orkut-like webbase-like
    python -m repro cluster edges.txt --mu 5 --epsilon 0.6   # cluster your own graph

The ``run`` subcommand prints the same rows the benchmark suite produces, so
a single figure can be reproduced without going through pytest.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .bench.datasets import DATASETS, SCALES, dataset_summaries
from .bench.experiments import ALL_EXPERIMENTS
from .bench.reporting import format_table
from .core.index import ScanIndex
from .graphs.io import read_edge_list
from .similarity.exact import BACKENDS


def _command_datasets(args: argparse.Namespace) -> int:
    rows = [
        [
            summary.name,
            DATASETS[summary.name].paper_name,
            summary.num_vertices,
            summary.num_edges,
            "weighted" if summary.weighted else "unweighted",
            summary.max_degree,
            round(summary.average_degree, 1),
        ]
        for summary in dataset_summaries(args.scale)
    ]
    print(format_table(
        ["dataset", "stands in for", "vertices", "edges", "type", "max deg", "avg deg"],
        rows,
    ))
    return 0


def _command_experiments(_: argparse.Namespace) -> int:
    rows = [
        [name, (driver.__doc__ or "").strip().splitlines()[0]]
        for name, driver in sorted(ALL_EXPERIMENTS.items())
    ]
    print(format_table(["experiment", "description"], rows))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    driver = ALL_EXPERIMENTS.get(args.experiment)
    if driver is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"available: {', '.join(sorted(ALL_EXPERIMENTS))}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.experiment not in ("table1",):
        kwargs["scale"] = args.scale
    if args.datasets and args.experiment not in ("table1", "table2"):
        kwargs["datasets"] = tuple(args.datasets)
    result = driver(**kwargs)
    print(result.report())
    return 0


def _command_cluster(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    index = ScanIndex.build(graph, measure=args.measure, backend=args.backend)
    clustering = index.query(
        args.mu, args.epsilon, deterministic_borders=True, classify_hubs_and_outliers=True
    )
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"parameters: mu={args.mu}, epsilon={args.epsilon}, measure={args.measure}")
    print(f"clusters: {clustering.num_clusters}  "
          f"clustered vertices: {clustering.num_clustered_vertices}  "
          f"hubs: {clustering.hubs().size}  outliers: {clustering.outliers().size}")
    rows = [
        [cluster_id, members.size, " ".join(map(str, members[:12].tolist()))
         + (" ..." if members.size > 12 else "")]
        for cluster_id, members in sorted(clustering.clusters().items())
    ]
    print(format_table(["cluster", "size", "members"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser behind ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel index-based structural graph clustering (SCAN) reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser("datasets", help="summarise the stand-in datasets")
    datasets.add_argument("--scale", choices=SCALES, default="bench")
    datasets.set_defaults(handler=_command_datasets)

    experiments = subparsers.add_parser("experiments", help="list experiment drivers")
    experiments.set_defaults(handler=_command_experiments)

    run = subparsers.add_parser("run", help="run one table/figure experiment")
    run.add_argument("experiment", help="experiment name, e.g. figure5")
    run.add_argument("--scale", choices=SCALES, default="bench")
    run.add_argument("--datasets", nargs="*", default=None,
                     help="subset of dataset names (default: all six)")
    run.set_defaults(handler=_command_run)

    cluster = subparsers.add_parser("cluster", help="cluster an edge-list file with SCAN")
    cluster.add_argument("graph", help="path to an edge-list file (u v [weight] per line)")
    cluster.add_argument("--mu", type=int, default=5)
    cluster.add_argument("--epsilon", type=float, default=0.6)
    cluster.add_argument("--measure", choices=("cosine", "jaccard", "dice"), default="cosine")
    cluster.add_argument("--backend", choices=BACKENDS, default="batch",
                         help="exact similarity engine (default: the vectorised batch engine)")
    cluster.set_defaults(handler=_command_cluster)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
