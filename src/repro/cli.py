"""Command-line interface: inspect datasets and regenerate the paper's experiments.

Usage (after installation)::

    python -m repro datasets                 # Table-2-style summary of the stand-ins
    python -m repro experiments              # list available experiment drivers
    python -m repro run figure5              # regenerate one table/figure
    python -m repro run figure6 --scale tiny --datasets orkut-like webbase-like
    python -m repro cluster edges.txt --mu 5 --epsilon 0.6   # cluster your own graph

The index-artifact workflow separates the expensive build from the cheap
queries (the point of the paper's design): build once, save the columnar
artifact, then answer any number of ``(μ, ε)`` settings -- singly or as one
batched sweep -- from the saved artifact without recomputing similarities or
re-sorting the orders::

    python -m repro index build edges.txt my.scanidx --measure cosine
    python -m repro index query my.scanidx --mu 5 --epsilon 0.6
    python -m repro index query my.scanidx --pairs 3:0.4 5:0.6 5:0.7 8:0.6
    python -m repro cluster edges.txt --mu 5 --epsilon 0.6 --save my.scanidx
    python -m repro cluster --load my.scanidx --mu 8 --epsilon 0.7

Artifacts are committed crash-safely (fsync-then-rename; an interrupted
save or update leaves the old or the new artifact, never a torn mix) and
carry per-column checksums; ``index verify`` proves a saved artifact
consistent -- ``--deep`` recomputes every checksum, ``--clean`` sweeps
scratch directories left by dead writers::

    python -m repro index verify my.scanidx
    python -m repro index verify my.scanidx --deep

The ``serve`` subcommand keeps one :class:`~repro.serve.session.
ClusterSession` alive over a saved artifact and answers newline-delimited
``MU:EPSILON`` requests from stdin or a file -- repeats hit the ε-snapped
result cache, misses run on recycled buffers::

    printf '5:0.6\n5:0.7\n5:0.6\n' | python -m repro serve my.scanidx
    python -m repro serve my.scanidx --requests workload.txt --deterministic

When the graph changes, ``update`` applies an edge-list delta file
(``+ u v [w]`` inserts, ``- u v`` deletes) to a saved artifact and re-saves
it -- the index is *patched* in work proportional to the affected
neighborhoods, bit-identical to rebuilding from scratch on the mutated
graph, and the artifact header records the update lineage::

    printf -- '+ 3 17\n- 0 9\n' > delta.txt
    python -m repro update my.scanidx delta.txt
    python -m repro update my.scanidx delta.txt --output patched.scanidx

The ``run`` subcommand prints the same rows the benchmark suite produces, so
a single figure can be reproduced without going through pytest; with
``--record`` the rows also land in the sqlite trajectory store.  The
``bench`` subcommand fronts that store: ``record`` imports benchmark
payload JSONs, ``runs`` lists what is recorded, ``report`` renders the
cross-PR markdown trajectory, ``compare`` diffs two runs cell-by-cell,
and ``gate`` exits non-zero on regressions beyond the noise threshold --
but only between runs whose environment fingerprints match::

    python -m repro bench record BENCH_*.json --db traj.sqlite
    python -m repro bench report --db traj.sqlite
    python -m repro bench gate --benchmark serving --db traj.sqlite

Every long-running command (``serve``, ``index build``, ``update``) takes
``--trace FILE`` to stream schema-validated JSONL spans and a final metrics
snapshot to ``FILE`` (the network serve tier writes one sidecar per worker,
``FILE.workerN``).  The ``obs`` subcommand consumes those traces offline:
``validate`` proves every line against the span schema, ``report`` renders
per-span latency tables plus the embedded metrics snapshot, and
``report --record`` bridges the snapshot into the same sqlite trajectory
store the benchmarks use::

    python -m repro serve my.scanidx --requests workload.txt --trace serve.jsonl
    python -m repro obs validate serve.jsonl
    python -m repro obs report serve.jsonl --record traj.sqlite
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence, TextIO

from . import obs
from .bench.datasets import DATASETS, SCALES, dataset_summaries
from .bench.experiments import ALL_EXPERIMENTS
from .bench.recording import DEFAULT_DB_NAME, record_payload
from .bench.report import (
    DEFAULT_NOISE_THRESHOLD,
    TrajectoryReport,
    compare_runs,
    gate_runs,
    latest_pair,
)
from .bench.reporting import format_table
from .bench.store import BenchStore, BenchStoreError
from .core.index import ScanIndex
from .dynamic import load_delta_file
from .graphs.io import read_edge_list
from .lsh.approximate import ApproximationConfig
from .similarity.exact import BACKENDS
from .storage.format import ArtifactFormatError
from .storage.integrity import clean_stale_scratch, verify_artifact


def _load_artifact(path: str) -> ScanIndex | None:
    """Load an index artifact, turning format errors into a clean message.

    A missing, truncated, or version-mismatched artifact is an operator
    mistake, not a bug -- report it on stderr (no traceback) and let the
    command exit with status 2.
    """
    try:
        return ScanIndex.load(path)
    except (ArtifactFormatError, OSError) as error:
        print(f"error: cannot load index artifact {path!r}: {error}", file=sys.stderr)
        return None


def _command_datasets(args: argparse.Namespace) -> int:
    rows = [
        [
            summary.name,
            DATASETS[summary.name].paper_name,
            summary.num_vertices,
            summary.num_edges,
            "weighted" if summary.weighted else "unweighted",
            summary.max_degree,
            round(summary.average_degree, 1),
        ]
        for summary in dataset_summaries(args.scale)
    ]
    print(format_table(
        ["dataset", "stands in for", "vertices", "edges", "type", "max deg", "avg deg"],
        rows,
    ))
    return 0


def _command_experiments(_: argparse.Namespace) -> int:
    rows = [
        [name, (driver.__doc__ or "").strip().splitlines()[0]]
        for name, driver in sorted(ALL_EXPERIMENTS.items())
    ]
    print(format_table(["experiment", "description"], rows))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    driver = ALL_EXPERIMENTS.get(args.experiment)
    if driver is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"available: {', '.join(sorted(ALL_EXPERIMENTS))}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.experiment not in ("table1",):
        kwargs["scale"] = args.scale
    if args.datasets and args.experiment not in ("table1", "table2"):
        kwargs["datasets"] = tuple(args.datasets)
    result = driver(**kwargs)
    print(result.report())
    if args.record is not None:
        payload = experiment_payload(result, args.experiment)
        record_payload(args.record, payload, source=f"repro run {args.experiment}")
    return 0


def experiment_payload(result, name: str) -> dict:
    """A storable payload from an :class:`ExperimentResult`'s table rows."""
    return {
        "benchmark": f"experiment_{name}",
        "title": result.experiment,
        "rows": [
            dict(zip(result.headers, row)) for row in result.rows
        ],
    }


def _command_cluster(args: argparse.Namespace) -> int:
    if args.load is not None:
        conflicts = []
        if args.graph is not None:
            conflicts.append(f"edge-list file {args.graph!r}")
        if args.measure != "cosine":
            conflicts.append("--measure")
        if args.backend != "batch":
            conflicts.append("--backend")
        if conflicts:
            print(
                "cluster: --load reads the saved artifact's graph and measure; "
                f"drop {', '.join(conflicts)} or build fresh without --load",
                file=sys.stderr,
            )
            return 2
        index = _load_artifact(args.load)
        if index is None:
            return 2
        graph = index.graph
    elif args.graph is not None:
        graph = read_edge_list(args.graph)
        index = ScanIndex.build(graph, measure=args.measure, backend=args.backend)
    else:
        print("cluster: provide an edge-list file or --load ARTIFACT", file=sys.stderr)
        return 2
    if args.save is not None:
        path = index.save(args.save)
        print(f"saved index artifact to {path}")
    clustering = index.query(
        args.mu, args.epsilon, deterministic_borders=True, classify_hubs_and_outliers=True
    )
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"parameters: mu={args.mu}, epsilon={args.epsilon}, measure={index.measure}")
    print(f"clusters: {clustering.num_clusters}  "
          f"clustered vertices: {clustering.num_clustered_vertices}  "
          f"hubs: {clustering.hubs().size}  outliers: {clustering.outliers().size}")
    rows = [
        [cluster_id, members.size, " ".join(map(str, members[:12].tolist()))
         + (" ..." if members.size > 12 else "")]
        for cluster_id, members in sorted(clustering.clusters().items())
    ]
    print(format_table(["cluster", "size", "members"], rows))
    return 0


def _command_index_build(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    approximate = None
    if args.approx_samples is not None:
        if args.measure not in ("cosine", "jaccard"):
            print(
                f"index build: --approx-samples supports cosine (SimHash) and "
                f"jaccard (MinHash) only, not {args.measure!r}",
                file=sys.stderr,
            )
            return 2
        approximate = ApproximationConfig(
            measure=args.measure, num_samples=args.approx_samples, seed=args.seed
        )
    index = ScanIndex.build(
        graph,
        measure=args.measure,
        backend=args.backend,
        approximate=approximate,
        jobs=args.jobs,
    )
    path = index.save(args.artifact)
    report = index.construction_report
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"built {index.measure} index: work={report.work:.3g} span={report.span:.3g} "
          f"wall={report.wall_seconds:.3f}s")
    print(f"saved index artifact to {path}")
    return 0


def _parse_pairs(tokens: Sequence[str]) -> list[tuple[int, float]]:
    """Parse ``mu:epsilon`` tokens into ``(mu, epsilon)`` pairs."""
    pairs = []
    for token in tokens:
        try:
            mu_text, epsilon_text = token.split(":", 1)
            pairs.append((int(mu_text), float(epsilon_text)))
        except ValueError:
            raise SystemExit(f"invalid pair {token!r}; expected MU:EPSILON, e.g. 5:0.6")
    return pairs


def _command_index_query(args: argparse.Namespace) -> int:
    index = _load_artifact(args.artifact)
    if index is None:
        return 2
    print(f"loaded {index.measure} index: {index.graph.num_vertices} vertices, "
          f"{index.graph.num_edges} edges")
    if args.pairs:
        pairs = _parse_pairs(args.pairs)
    else:
        pairs = [(args.mu, args.epsilon)]
    clusterings = index.query_many(pairs, deterministic_borders=True)
    rows = [
        [mu, epsilon, clustering.num_clusters, clustering.num_clustered_vertices]
        for (mu, epsilon), clustering in zip(pairs, clusterings)
    ]
    print(format_table(["mu", "epsilon", "clusters", "clustered vertices"], rows))
    return 0


def _command_index_verify(args: argparse.Namespace) -> int:
    if args.clean:
        removed = clean_stale_scratch(Path(args.artifact))
        for sibling in removed:
            print(f"removed stale scratch {sibling.name}")
    try:
        report = verify_artifact(args.artifact, deep=args.deep, recover=True)
    except (ArtifactFormatError, OSError) as error:
        print(f"error: artifact {args.artifact!r} fails verification: {error}",
              file=sys.stderr)
        return 2
    for line in report.lines():
        print(line)
    return 0


def _command_update(args: argparse.Namespace) -> int:
    index = _load_artifact(args.artifact)
    if index is None:
        return 2
    try:
        batch = load_delta_file(args.delta)
    except OSError as error:
        print(f"error: cannot read delta file {args.delta!r}: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        report = index.apply_updates(batch, jobs=args.jobs)
    except ValueError as error:
        # A delta that does not fit the artifact (edge already present /
        # absent, out-of-range vertex, LSH index) is an operator mistake.
        print(f"error: cannot apply delta to {args.artifact!r}: {error}", file=sys.stderr)
        return 2
    try:
        path = index.save(args.output if args.output is not None else args.artifact)
    except (ArtifactFormatError, OSError) as error:
        print(f"error: cannot save updated artifact: {error}", file=sys.stderr)
        return 2
    print(
        f"applied {report.insertions} insertions, {report.deletions} deletions"
        + (f" ({report.cancelled} opposing ops cancelled)" if report.cancelled else "")
    )
    print(
        f"recomputed {report.affected_edges} affected edges across "
        f"{report.affected_vertices} vertices in {report.wall_seconds:.3f}s"
    )
    print(
        f"graph now: {index.graph.num_vertices} vertices, {index.graph.num_edges} "
        f"edges ({len(index.update_lineage)} update batches in lineage)"
    )
    print(f"saved updated artifact to {path}")
    return 0


def _parse_request(line: str) -> tuple[int, float]:
    """Parse one serve request line (``MU:EPSILON`` or ``MU EPSILON``)."""
    from .serve import wire

    return wire.parse_request(line)


def _serve_network(args: argparse.Namespace) -> int:
    """The concurrent serving tier behind ``repro serve --port``.

    SIGTERM triggers a graceful drain: the listener closes, in-flight
    requests finish inside the drain deadline, worker metric snapshots are
    flushed, and the process exits 0 -- the contract a supervisor
    (systemd, Kubernetes) relies on for zero-dropped-request restarts.
    """
    import asyncio
    import signal

    from .serve.server import ClusterServer

    index = _load_artifact(args.artifact)
    if index is None:
        return 2
    del index  # validation only; the server and workers mmap it themselves
    overrides = {
        name: value
        for name, value in (
            ("request_deadline", args.deadline),
            ("max_inflight", args.max_inflight),
            ("max_queue_depth", args.max_queue_depth),
            ("drain_deadline", args.drain_deadline),
            ("probe_interval", args.probe_interval),
        )
        if value is not None
    }
    server = ClusterServer(
        args.artifact,
        workers=args.workers,
        cache_size=args.cache_size,
        deterministic=args.deterministic,
        **overrides,
    )

    async def run() -> None:
        host, port = await server.start(args.host, args.port)
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, server.request_drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without signal handler support still serve
        print(
            f"listening on {host}:{port} ({server.num_workers} workers)",
            file=sys.stderr,
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            # serve_forever is cancelled when the listener closes -- which
            # is exactly what a drain (SIGTERM or !drain) does first.
            pass
        finally:
            if server._drain_task is not None:
                await server._drain_task
                print(
                    f"drained: served {server.served} requests, exiting",
                    file=sys.stderr,
                )
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _command_serve_client(args: argparse.Namespace) -> int:
    """Replay request lines against a running server (``repro serve-client``)."""
    from .serve.client import ServeClient, ServeClientError

    host, separator, port_text = args.address.rpartition(":")
    if not separator or not port_text.isdigit():
        print(f"error: expected HOST:PORT, got {args.address!r}", file=sys.stderr)
        return 2
    if args.requests is not None:
        try:
            stream: TextIO = open(args.requests)
        except OSError as error:
            print(f"error: cannot read requests from {args.requests!r}: {error}",
                  file=sys.stderr)
            return 2
    else:
        stream = sys.stdin
    try:
        with ServeClient(host, int(port_text), timeout=args.timeout,
                         retries=args.retries) as client:
            for line in stream:
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                print(client.request(stripped), flush=True)
    except ServeClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if stream is not sys.stdin:
            stream.close()
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.port is not None:
        return _serve_network(args)
    if args.workers != 1:
        print("error: --workers requires --port (the stdin loop is one process)",
              file=sys.stderr)
        return 2
    index = _load_artifact(args.artifact)
    if index is None:
        return 2
    session = index.session(cache_size=args.cache_size)
    capacity = args.cache_size if args.cache_size > 0 else "disabled"
    print(
        f"serving {index.measure} index: {index.graph.num_vertices} vertices, "
        f"{index.graph.num_edges} edges, cache capacity {capacity}",
        file=sys.stderr,
    )
    if args.requests is not None:
        try:
            stream: TextIO = open(args.requests)
        except OSError as error:
            print(f"error: cannot read requests from {args.requests!r}: {error}",
                  file=sys.stderr)
            return 2
    else:
        stream = sys.stdin
    failures = 0
    try:
        for line in stream:
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            try:
                mu, epsilon = _parse_request(line)
                result = session.serve(
                    mu, epsilon, deterministic_borders=args.deterministic
                )
            except ValueError as error:
                failures += 1
                print(f"error: {error}", file=sys.stderr)
                continue
            # flush per response: an interactive client driving the loop over
            # a pipe waits for each answer before sending the next request.
            # The line format is owned by serve.wire so the network tier
            # answers with the exact same bytes.
            from .serve import wire

            print(wire.format_response(result), flush=True)
    finally:
        if stream is not sys.stdin:
            stream.close()
        # The final snapshot (written by main()'s finalise) should carry the
        # session's request/cache totals, exactly as the worker loop does.
        if obs.on():
            session.sync_metrics()
    stats = session.stats()
    print(
        f"served {stats['served']} requests: {stats['cache_hits']} cache hits "
        f"({stats['hit_rate']:.0%})",
        file=sys.stderr,
    )
    return 1 if failures else 0


def _open_store(args: argparse.Namespace, *, must_exist: bool) -> BenchStore | None:
    """Open the trajectory store, refusing to invent one for read commands."""
    if must_exist and not Path(args.db).exists():
        print(
            f"error: no trajectory store at {args.db!r}; record or import "
            "runs first (repro bench record BENCH_*.json)",
            file=sys.stderr,
        )
        return None
    return BenchStore(args.db)


def _command_bench_record(args: argparse.Namespace) -> int:
    with BenchStore(args.db) as store:
        for path in args.files:
            try:
                run_id = store.import_file(
                    path, source=args.source or Path(path).name, smoke=args.smoke
                )
            except BenchStoreError as error:
                print(f"error: cannot record {path!r}: {error}", file=sys.stderr)
                return 2
            run = store.run(run_id)
            print(
                f"recorded run {run_id} [{run.benchmark}] environment "
                f"{run.fingerprint_key} from {path}"
            )
    return 0


def _command_bench_runs(args: argparse.Namespace) -> int:
    store = _open_store(args, must_exist=True)
    if store is None:
        return 2
    with store:
        runs = store.runs(args.benchmark)
    rows = [
        [
            run.id,
            run.benchmark,
            run.recorded_at,
            run.fingerprint_key,
            run.git_hash or "?",
            run.source or "?",
            run.smoke,
        ]
        for run in runs
    ]
    print(format_table(
        ["run", "benchmark", "recorded (UTC)", "environment", "git",
         "source", "smoke"],
        rows,
    ))
    return 0


def _command_bench_report(args: argparse.Namespace) -> int:
    store = _open_store(args, must_exist=True)
    if store is None:
        return 2
    with store:
        report = TrajectoryReport(
            store,
            benchmarks=args.benchmark or None,
            threshold=args.threshold,
        )
        try:
            rendered = report.render()
        except BenchStoreError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.output is not None:
        Path(args.output).write_text(rendered)
        print(f"wrote {args.output}")
    else:
        print(rendered, end="")
    return 0


def _command_bench_compare(args: argparse.Namespace) -> int:
    store = _open_store(args, must_exist=True)
    if store is None:
        return 2
    with store:
        try:
            comparison = compare_runs(
                store, args.baseline, args.candidate, args.threshold
            )
        except BenchStoreError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if not comparison.fingerprints_match:
        print(
            "warning: environment fingerprints differ -- these numbers come "
            "from different machine classes and the gate would refuse them:\n"
            f"  baseline : {comparison.baseline.fingerprint.describe()}\n"
            f"  candidate: {comparison.candidate.fingerprint.describe()}"
        )
    moved = comparison.regressions + comparison.improvements
    rows = [
        [
            delta.graph or "-",
            delta.cell or "-",
            delta.metric,
            delta.baseline,
            delta.candidate,
            f"{delta.change:+.1%}",
            "regressed" if delta in comparison.regressions else "improved",
        ]
        for delta in sorted(moved, key=lambda d: -abs(d.change))
    ]
    print(
        f"{comparison.shared} shared cells between run {args.baseline} and "
        f"run {args.candidate}; {len(moved)} moved beyond "
        f"{args.threshold:.0%}"
    )
    if rows:
        print(format_table(
            ["graph", "cell", "metric", "baseline", "candidate", "change",
             "verdict"],
            rows,
        ))
    return 0


def _command_bench_gate(args: argparse.Namespace) -> int:
    if (args.baseline is None) != (args.candidate is None):
        print("error: gate takes either two run ids or --benchmark",
              file=sys.stderr)
        return 2
    store = _open_store(args, must_exist=True)
    if store is None:
        return 2
    with store:
        if args.baseline is not None:
            baseline_id, candidate_id = args.baseline, args.candidate
        elif args.benchmark:
            baseline, candidate = latest_pair(store, args.benchmark)
            if candidate is None:
                print(f"error: no recorded runs for {args.benchmark!r}",
                      file=sys.stderr)
                return 2
            if baseline is None:
                print(
                    "bench-gate: SKIP -- no prior run with a matching "
                    f"environment fingerprint for {args.benchmark!r}\n"
                    f"  candidate: run {candidate.id} environment "
                    f"{candidate.fingerprint.describe()}"
                )
                return 0
            baseline_id, candidate_id = baseline.id, candidate.id
        else:
            print("error: gate takes either two run ids or --benchmark",
                  file=sys.stderr)
            return 2
        try:
            result = gate_runs(store, baseline_id, candidate_id, args.threshold)
        except BenchStoreError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    print(result.render())
    return result.exit_code


def _command_obs_report(args: argparse.Namespace) -> int:
    # Submodule import: repro.obs deliberately does not re-export report /
    # bridge (they reach through repro.bench, which imports back into the
    # instrumented core during package init).
    from .obs import report as obs_report
    from .obs.schema import TraceSchemaError

    try:
        rendered = obs_report.render_trace_report(args.trace_file)
    except OSError as error:
        print(f"error: cannot read trace {args.trace_file!r}: {error}",
              file=sys.stderr)
        return 2
    except TraceSchemaError as error:
        print(f"error: invalid trace: {error}", file=sys.stderr)
        return 2
    print(rendered)
    if args.record is not None:
        from .obs import bridge as obs_bridge

        obs_bridge.record_trace(
            args.record, args.trace_file,
            source=f"repro obs report {args.trace_file}",
        )
    return 0


def _command_obs_validate(args: argparse.Namespace) -> int:
    from .obs.schema import TraceSchemaError, validate_trace_path

    try:
        counts = validate_trace_path(args.trace_file)
    except OSError as error:
        print(f"error: cannot read trace {args.trace_file!r}: {error}",
              file=sys.stderr)
        return 2
    except TraceSchemaError as error:
        print(f"invalid: {error}", file=sys.stderr)
        return 1
    total = sum(counts.values())
    breakdown = ", ".join(
        f"{counts[kind]} {kind}s" for kind in ("span", "event", "snapshot")
        if counts.get(kind)
    )
    print(f"valid: {args.trace_file} ({total} lines: {breakdown or 'empty'})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser behind ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel index-based structural graph clustering (SCAN) reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_trace_argument(subparser):
        subparser.add_argument(
            "--trace", metavar="FILE", default=None,
            help="write schema-validated JSONL spans/events plus a final "
                 "metrics snapshot to FILE (inspect with 'repro obs report')",
        )

    datasets = subparsers.add_parser("datasets", help="summarise the stand-in datasets")
    datasets.add_argument("--scale", choices=SCALES, default="bench")
    datasets.set_defaults(handler=_command_datasets)

    experiments = subparsers.add_parser("experiments", help="list experiment drivers")
    experiments.set_defaults(handler=_command_experiments)

    run = subparsers.add_parser("run", help="run one table/figure experiment")
    run.add_argument("experiment", help="experiment name, e.g. figure5")
    run.add_argument("--scale", choices=SCALES, default="bench")
    run.add_argument("--datasets", nargs="*", default=None,
                     help="subset of dataset names (default: all six)")
    run.add_argument("--record", metavar="DB", type=Path, nargs="?",
                     const=Path(DEFAULT_DB_NAME), default=None,
                     help="append the experiment's rows to the sqlite "
                          f"trajectory store (default: ./{DEFAULT_DB_NAME})")
    run.set_defaults(handler=_command_run)

    bench = subparsers.add_parser(
        "bench",
        help="record, report, compare and gate the performance trajectory",
    )
    bench_subparsers = bench.add_subparsers(dest="bench_command", required=True)

    def add_db_argument(subparser):
        subparser.add_argument(
            "--db", type=Path, default=Path(DEFAULT_DB_NAME),
            help=f"trajectory store path (default: ./{DEFAULT_DB_NAME})",
        )

    def add_threshold_argument(subparser):
        subparser.add_argument(
            "--threshold", type=float, default=DEFAULT_NOISE_THRESHOLD,
            help="relative change below which a moved cell is timer noise "
                 f"(default: {DEFAULT_NOISE_THRESHOLD})",
        )

    bench_record = bench_subparsers.add_parser(
        "record", help="import benchmark payload JSON files into the store"
    )
    bench_record.add_argument("files", nargs="+", metavar="FILE",
                              help="payload files, e.g. BENCH_serving.json")
    bench_record.add_argument("--source", default=None,
                              help="provenance label (default: the file name)")
    bench_record.add_argument("--smoke", action="store_true",
                              help="mark the run(s) as CI-sized smoke runs")
    add_db_argument(bench_record)
    bench_record.set_defaults(handler=_command_bench_record)

    bench_runs = bench_subparsers.add_parser(
        "runs", help="list recorded runs with their environment fingerprints"
    )
    bench_runs.add_argument("--benchmark", default=None,
                            help="restrict to one benchmark name")
    add_db_argument(bench_runs)
    bench_runs.set_defaults(handler=_command_bench_runs)

    bench_report = bench_subparsers.add_parser(
        "report", help="render the cross-PR markdown trajectory report"
    )
    bench_report.add_argument("--benchmark", nargs="*", default=None,
                              help="subset of benchmark names (default: all)")
    bench_report.add_argument("--output", metavar="FILE", default=None,
                              help="write the markdown here instead of stdout")
    add_db_argument(bench_report)
    add_threshold_argument(bench_report)
    bench_report.set_defaults(handler=_command_bench_report)

    bench_compare = bench_subparsers.add_parser(
        "compare", help="cell-level diff of two runs (informational; always "
                        "exits 0)"
    )
    bench_compare.add_argument("baseline", type=int, help="baseline run id")
    bench_compare.add_argument("candidate", type=int, help="candidate run id")
    add_db_argument(bench_compare)
    add_threshold_argument(bench_compare)
    bench_compare.set_defaults(handler=_command_bench_compare)

    bench_gate = bench_subparsers.add_parser(
        "gate",
        help="fail (exit 1) on regressions between two same-environment "
             "runs; refuse with a warning (exit 0) across machine classes",
    )
    bench_gate.add_argument("baseline", type=int, nargs="?", default=None,
                            help="baseline run id")
    bench_gate.add_argument("candidate", type=int, nargs="?", default=None,
                            help="candidate run id")
    bench_gate.add_argument("--benchmark", default=None,
                            help="gate the newest run of this benchmark "
                                 "against its most recent same-environment "
                                 "predecessor")
    add_db_argument(bench_gate)
    add_threshold_argument(bench_gate)
    bench_gate.set_defaults(handler=_command_bench_gate)

    cluster = subparsers.add_parser("cluster", help="cluster an edge-list file with SCAN")
    cluster.add_argument("graph", nargs="?", default=None,
                         help="path to an edge-list file (u v [weight] per line); "
                              "omit when loading a saved artifact with --load")
    cluster.add_argument("--mu", type=int, default=5)
    cluster.add_argument("--epsilon", type=float, default=0.6)
    cluster.add_argument("--measure", choices=("cosine", "jaccard", "dice"), default="cosine")
    cluster.add_argument("--backend", choices=BACKENDS, default="batch",
                         help="exact similarity engine (default: the vectorised batch engine)")
    cluster.add_argument("--save", metavar="ARTIFACT", default=None,
                         help="save the built index as a columnar artifact directory")
    cluster.add_argument("--load", metavar="ARTIFACT", default=None,
                         help="load a saved index artifact instead of building")
    cluster.set_defaults(handler=_command_cluster)

    index = subparsers.add_parser(
        "index", help="build or query a persistent columnar index artifact"
    )
    index_subparsers = index.add_subparsers(dest="index_command", required=True)

    index_build = index_subparsers.add_parser(
        "build", help="build a SCAN index from an edge list and save it"
    )
    index_build.add_argument("graph", help="path to an edge-list file")
    index_build.add_argument("artifact", help="output artifact directory")
    index_build.add_argument("--measure", choices=("cosine", "jaccard", "dice"),
                             default="cosine")
    index_build.add_argument("--backend", choices=BACKENDS, default="batch")
    index_build.add_argument("--approx-samples", type=int, default=None,
                             help="approximate similarities with this many LSH samples")
    index_build.add_argument("--seed", type=int, default=0,
                             help="seed of the LSH sketching randomness")
    index_build.add_argument("--jobs", type=int, default=1,
                             help="worker processes for the construction hot "
                                  "spots (0 = all cores; default 1 = serial; "
                                  "any count builds a bit-identical index)")
    add_trace_argument(index_build)
    index_build.set_defaults(handler=_command_index_build)

    index_query = index_subparsers.add_parser(
        "query", help="answer (mu, epsilon) queries from a saved artifact"
    )
    index_query.add_argument("artifact", help="artifact directory written by 'index build'")
    index_query.add_argument("--mu", type=int, default=5)
    index_query.add_argument("--epsilon", type=float, default=0.6)
    index_query.add_argument("--pairs", nargs="+", metavar="MU:EPSILON", default=None,
                             help="batch of settings answered by one planned sweep, "
                                  "e.g. --pairs 3:0.4 5:0.6 5:0.7")
    index_query.set_defaults(handler=_command_index_query)

    index_verify = index_subparsers.add_parser(
        "verify", help="prove a saved artifact consistent (header, shapes, "
                       "checksums) and report stale scratch"
    )
    index_verify.add_argument("artifact", help="artifact directory to verify")
    index_verify.add_argument("--deep", action="store_true",
                              help="recompute every column's CRC-32 against "
                                   "the header (reads all stored bytes)")
    index_verify.add_argument("--clean", action="store_true",
                              help="remove stale scratch directories left by "
                                   "dead writers before verifying")
    index_verify.set_defaults(handler=_command_index_verify)

    update = subparsers.add_parser(
        "update",
        help="apply an edge insert/delete delta to a saved artifact in place",
    )
    update.add_argument("artifact", help="artifact directory written by 'index build'")
    update.add_argument("delta", help="delta file: '+ u v [weight]' inserts, '- u v' deletes")
    update.add_argument("--output", metavar="ARTIFACT", default=None,
                        help="write the patched artifact here instead of in place")
    update.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the high-churn re-sort "
                             "fallback (0 = all cores; default 1 = serial)")
    add_trace_argument(update)
    update.set_defaults(handler=_command_update)

    serve = subparsers.add_parser(
        "serve",
        help="answer a stream of (mu, epsilon) requests from a saved artifact",
    )
    serve.add_argument("artifact", help="artifact directory written by 'index build'")
    serve.add_argument("--requests", metavar="FILE", default=None,
                       help="newline-delimited MU:EPSILON requests "
                            "(default: read from stdin)")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="result-cache capacity; zero or negative disables "
                            "caching (default: 256)")
    serve.add_argument("--deterministic", action="store_true",
                       help="deterministic border attachment "
                            "(most similar core, ties to lower id)")
    serve.add_argument("--port", type=int, default=None, metavar="PORT",
                       help="serve over TCP instead of stdin: listen on PORT "
                            "(0 = ephemeral) with a pool of worker processes")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port (default: 127.0.0.1)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes for --port mode, each holding "
                            "a session over the same mmapped artifact "
                            "(default: 1)")
    serve.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="per-request deadline before dispatch hedges to "
                            "the next worker (--port mode; default: 5)")
    serve.add_argument("--max-inflight", type=int, default=None, metavar="N",
                       help="concurrent-request high-water mark; past it "
                            "requests answer 'error: overloaded (shed)' "
                            "(--port mode; default: 64)")
    serve.add_argument("--max-queue-depth", type=int, default=None, metavar="N",
                       help="outstanding requests allowed per worker pipe "
                            "before it is skipped (--port mode; default: 8)")
    serve.add_argument("--drain-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="seconds granted to in-flight requests on SIGTERM "
                            "or !drain (--port mode; default: 5)")
    serve.add_argument("--probe-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="first recovery-probe delay while degraded, "
                            "doubling per failed probe (--port mode; "
                            "default: 1)")
    add_trace_argument(serve)
    serve.set_defaults(handler=_command_serve)

    serve_client = subparsers.add_parser(
        "serve-client",
        help="replay MU:EPSILON request lines against a running serve --port "
             "server",
    )
    serve_client.add_argument("address", metavar="HOST:PORT",
                              help="address of a running 'repro serve --port' "
                                   "server")
    serve_client.add_argument("--requests", metavar="FILE", default=None,
                              help="newline-delimited request lines "
                                   "(default: read from stdin)")
    serve_client.add_argument("--timeout", type=float, default=60.0,
                              metavar="SECONDS",
                              help="socket timeout per request (default: 60)")
    serve_client.add_argument("--retries", type=int, default=0, metavar="N",
                              help="reconnect-and-resend attempts for "
                                   "idempotent requests; control lines are "
                                   "never retried (default: 0)")
    serve_client.set_defaults(handler=_command_serve_client)

    obs_parser = subparsers.add_parser(
        "obs", help="validate and report JSONL traces written with --trace"
    )
    obs_subparsers = obs_parser.add_subparsers(dest="obs_command", required=True)

    obs_report = obs_subparsers.add_parser(
        "report", help="render per-span latency tables and the final metrics "
                       "snapshot of a trace file"
    )
    obs_report.add_argument("trace_file", metavar="TRACE",
                            help="JSONL trace written with --trace")
    obs_report.add_argument("--record", metavar="DB", type=Path, nargs="?",
                            const=Path(DEFAULT_DB_NAME), default=None,
                            help="also bridge the trace's metrics snapshot "
                                 "into the sqlite trajectory store "
                                 f"(default: ./{DEFAULT_DB_NAME})")
    obs_report.set_defaults(handler=_command_obs_report)

    obs_validate = obs_subparsers.add_parser(
        "validate", help="check every trace line against the span schema "
                         "(exit 1 on the first violation)"
    )
    obs_validate.add_argument("trace_file", metavar="TRACE",
                              help="JSONL trace written with --trace")
    obs_validate.set_defaults(handler=_command_obs_validate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return args.handler(args)
    # One tracer for the whole command: the handler (and, through the
    # process-global runtime, every instrumented layer beneath it) streams
    # into trace_path, and finalise() appends the final metrics snapshot so
    # the file is self-contained even if the command failed midway.
    obs.configure(trace_path)
    try:
        return args.handler(args)
    finally:
        obs.finalise()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
