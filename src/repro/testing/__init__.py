"""Test-facing machinery shipped with the library: deterministic fault injection.

Lives under ``src/`` rather than ``tests/`` because production code is
instrumented against it: the storage commit protocol and the supervised
parallel executor call :func:`~repro.testing.faults.fault_point` at their
crash-interesting instants, and those calls must resolve wherever the
library is imported from -- including inside forked pool workers, which
never see the test tree.  See :mod:`repro.testing.faults` for the model.
"""

from .faults import (
    FAULT_SITES,
    FaultError,
    FaultSpec,
    SimulatedCrash,
    active_plan,
    fault_point,
    inject,
)

__all__ = [
    "FAULT_SITES",
    "FaultError",
    "FaultSpec",
    "SimulatedCrash",
    "active_plan",
    "fault_point",
    "inject",
]
