"""Deterministic fault injection: every durability claim ships with a crash test.

The robustness layer makes claims of the shape "no interrupted write ever
leaves a torn artifact" and "a dying pool worker never changes the built
index".  Claims like these cannot be tested by hoping the failure happens --
they need failures that are *injectable and replayable*.  This module is the
single registry of fault points the storage commit protocol and the
supervised parallel executor expose, plus the machinery to arm them
deterministically from tests.

Design:

* **Fault points are named sites.**  Production code calls
  :func:`fault_point` at the instants a crash or transient error is
  interesting -- after every chunk of bytes written to the column archive,
  between the renames of the commit protocol, at worker task entry.  The
  call is a no-op (one attribute load and an ``is None`` check) unless a
  plan is armed, so shipping the instrumentation costs nothing.
* **Plans are explicit and deterministic.**  A :class:`FaultSpec` says
  exactly what happens and when: crash after N bytes at a write site, kill
  the worker executing task j, raise ``OSError`` the first k times a site is
  reached.  Nothing is sampled inside the library; tests that want
  randomised offsets draw them from their own seeded generator and pass the
  concrete numbers in, which makes every failing case replayable from its
  seed.
* **Plans cross process boundaries.**  The supervised executor runs tasks
  in forked/spawned workers; :func:`inject` therefore mirrors the armed plan
  into the ``REPRO_FAULTS`` environment variable, which child processes
  parse lazily on their first :func:`fault_point` call.  One-shot faults
  that must fire *exactly once across processes* (kill worker k on task j,
  then let the retried task succeed) coordinate through a ``token`` file
  created with ``O_CREAT | O_EXCL`` -- the filesystem is the only state the
  dying process and its replacement share.

Typical test usage::

    from repro.testing import FaultSpec, SimulatedCrash, inject

    with inject(FaultSpec(site="storage.columns.write", action="crash",
                          after_bytes=4096)):
        with pytest.raises(SimulatedCrash):
            index.save(path)          # dies mid-archive, like a power cut
    # the target is still the old artifact, or absent -- never torn
    verify_artifact(path)

The known sites are listed in :data:`FAULT_SITES`; arming an unknown site is
an error (a typo must fail the test arming it, not silently never fire).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "FAULT_SITES",
    "FaultError",
    "FaultSpec",
    "SimulatedCrash",
    "active_plan",
    "fault_point",
    "inject",
]

#: Environment variable carrying the armed plan into worker processes.
ENV_VAR = "REPRO_FAULTS"

#: Registry of every fault point the library exposes, site -> description.
#: Tests arm these; production code never adds a site without listing it
#: here (``tests/testing/test_faults.py`` cross-checks instrumentation).
FAULT_SITES = {
    # storage/: the artifact commit protocol (see storage/integrity.py)
    "storage.columns.write": "after each chunk of bytes written to columns.npz "
                             "(arm with after_bytes to tear the archive)",
    "storage.header.write": "before header.json bytes reach the scratch dir",
    "storage.commit.fsync": "each fsync of the commit protocol (transients)",
    "storage.commit.pre_backup": "before the old artifact is renamed aside",
    "storage.commit.pre_swap": "old artifact renamed aside, new not yet in place "
                               "(the rollback window)",
    "storage.commit.pre_cleanup": "new artifact in place, backup not yet removed",
    # parallel/: the supervised executor (see parallel/supervise.py)
    "parallel.worker.task": "worker task entry (arm action='kill' with task=j)",
    "parallel.dispatch": "master-side task submission (transients)",
    # serve/: the concurrent serving tier (see serve/worker.py, serve/server.py)
    "serve.worker.request": "serving-worker request entry "
                            "(arm action='kill' with task=worker_id, or "
                            "action='hang' to wedge a worker mid-request)",
    "serve.worker.reload": "serving-worker artifact reload on a generation "
                           "bump (arm with task=worker_id)",
    "serve.worker.spawn": "front-end worker fork, before the process starts "
                          "(arm action='raise' with times=N to refuse the "
                          "pool N times and drive the degrade→recover path)",
    "serve.dispatch": "front-end dispatch, before a request is written to a "
                      "worker pipe (arm action='raise' for transients)",
    "serve.drain": "entry of the graceful-drain window, after draining "
                   "starts and before in-flight requests are awaited",
    "serve.recovery.probe": "each recovery-probe attempt while the pool is "
                            "degraded (arm action='raise' to pin the "
                            "circuit open)",
}


class FaultError(ValueError):
    """An injected plan is malformed (unknown site, missing parameter)."""


class SimulatedCrash(BaseException):
    """An injected process death.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) on purpose:
    a real crash runs no ``except Exception`` cleanup handlers, so code
    under test must not get to tidy up the very state whose crash-survival
    is being proven.  ``finally`` blocks still run -- acceptable, since a
    torn *file* state is what the storage tests probe, and file state is
    untouched by in-process ``finally`` release of OS handles.
    """

    def __init__(self, site: str, detail: str = ""):
        super().__init__(f"simulated crash at fault point {site!r}"
                         + (f" ({detail})" if detail else ""))
        self.site = site
        self.detail = detail


_ERROR_TYPES = {
    "OSError": OSError,
    "MemoryError": MemoryError,
    "TimeoutError": TimeoutError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: what happens when execution reaches ``site``.

    Parameters
    ----------
    site:
        A key of :data:`FAULT_SITES`.
    action:
        ``"crash"`` raises :class:`SimulatedCrash` (process-death stand-in),
        ``"raise"`` raises the exception named by ``error`` (transient
        failure stand-in), ``"kill"`` calls ``os._exit(70)`` -- a *real*
        process death for pool workers, no Python unwinding at all --
        and ``"hang"`` sleeps for ``seconds`` (default effectively
        forever) before letting execution continue: the wedged-worker /
        straggler stand-in that deadline and watchdog contracts are
        proven against.
    after_bytes:
        For byte-counting write sites: trigger only once at least this many
        bytes have been written.  ``None`` triggers on first reach.
    task:
        For worker sites: trigger only for this task index.  ``None``
        matches every task.
    times:
        Trigger at most this many times, then let execution pass -- the
        transient-failure model.  ``None`` means every time.
    token:
        Path used to count firings *across processes* (a worker that was
        killed cannot remember it already fired).  Each firing appends one
        byte under ``O_APPEND``; a file already holding ``times`` bytes
        means the fault is spent.  Required for ``kill`` specs with
        ``times`` (the supervisor's retry runs in a fresh worker).
    error:
        Exception type name for ``action="raise"`` (one of ``OSError``,
        ``MemoryError``, ``TimeoutError``).
    seconds:
        Sleep duration for ``action="hang"``.  ``None`` means 3600 s --
        far beyond any supervision timeout, i.e. wedged for the purposes
        of every contract under test, while still unwinding eventually if
        the test harness itself leaks the process.
    """

    site: str
    action: str = "crash"
    after_bytes: int | None = None
    task: int | None = None
    times: int | None = None
    token: str | None = None
    error: str = "OSError"
    seconds: float | None = None

    def validate(self) -> None:
        if self.site not in FAULT_SITES:
            raise FaultError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{sorted(FAULT_SITES)}"
            )
        if self.action not in ("crash", "raise", "kill", "hang"):
            raise FaultError(f"unknown fault action {self.action!r}")
        if self.action == "raise" and self.error not in _ERROR_TYPES:
            raise FaultError(
                f"unknown error type {self.error!r}; known: {sorted(_ERROR_TYPES)}"
            )
        if self.action == "kill" and self.times is not None and self.token is None:
            raise FaultError(
                "a bounded kill needs a token file: the killed worker cannot "
                "carry an in-memory count across its own death"
            )


@dataclass
class _Plan:
    """The armed specs plus in-process firing counters."""

    specs: tuple[FaultSpec, ...]
    raw: str
    counts: dict[int, int] = field(default_factory=dict)


#: The plan armed in this process (parsed from ENV_VAR or set by inject()).
_active: _Plan | None = None
#: Raw env string _active was parsed from, to detect inherited changes.
_active_raw: str | None = None


def active_plan() -> tuple[FaultSpec, ...]:
    """The specs currently armed in this process (diagnostics/tests)."""
    plan = _refresh()
    return plan.specs if plan is not None else ()


def _refresh() -> _Plan | None:
    """Re-parse the environment when it changed (worker processes inherit it)."""
    global _active, _active_raw
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        _active = None
        _active_raw = None
        return None
    if _active is None or _active_raw != raw:
        specs = tuple(FaultSpec(**record) for record in json.loads(raw))
        for spec in specs:
            spec.validate()
        _active = _Plan(specs=specs, raw=raw)
        _active_raw = raw
    return _active


def _spent(spec: FaultSpec, plan: _Plan, index: int) -> bool:
    """True when a bounded fault already fired ``times`` times; else count one."""
    if spec.times is None:
        return False
    if spec.token is not None:
        # Cross-process counter: one byte per firing, O_APPEND is atomic.
        try:
            fired = os.path.getsize(spec.token)
        except OSError:
            fired = 0
        if fired >= spec.times:
            return True
        fd = os.open(spec.token, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, b"x")
        finally:
            os.close(fd)
        return False
    fired = plan.counts.get(index, 0)
    if fired >= spec.times:
        return True
    plan.counts[index] = fired + 1
    return False


def fault_point(site: str, *, bytes_written: int | None = None,
                task: int | None = None) -> None:
    """Production-code hook: trigger any armed fault matching ``site``.

    No-op unless a plan is armed (in-process via :func:`inject`, or
    inherited through the environment by a worker process).
    """
    if _active is None and ENV_VAR not in os.environ:
        return
    plan = _refresh()
    if plan is None:
        return
    for index, spec in enumerate(plan.specs):
        if spec.site != site:
            continue
        if spec.task is not None and spec.task != task:
            continue
        if spec.after_bytes is not None and (
            bytes_written is None or bytes_written < spec.after_bytes
        ):
            continue
        if _spent(spec, plan, index):
            continue
        if spec.action == "kill":
            os._exit(70)
        if spec.action == "hang":
            time.sleep(spec.seconds if spec.seconds is not None else 3600.0)
            continue
        if spec.action == "raise":
            raise _ERROR_TYPES[spec.error](
                f"injected {spec.error} at fault point {site!r}"
            )
        raise SimulatedCrash(site, detail=(
            f"after {bytes_written} bytes" if bytes_written is not None else ""
        ))


@contextmanager
def inject(*specs: FaultSpec):
    """Arm ``specs`` for the duration of a ``with`` block.

    The plan is armed both in-process (fast path) and in ``os.environ`` so
    that worker processes forked or spawned inside the block inherit it.
    Nesting replaces the outer plan for the inner block and restores it on
    exit.  Firing counters reset on entry, so a plan armed twice fires
    twice -- determinism across test repetitions.
    """
    global _active, _active_raw
    for spec in specs:
        spec.validate()
    raw = json.dumps([vars(spec) for spec in specs])
    previous_raw = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = raw
    _active = _Plan(specs=tuple(specs), raw=raw)
    _active_raw = raw
    try:
        yield
    finally:
        if previous_raw is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous_raw
        _active = None
        _active_raw = None
