"""The paper's core contribution: the parallel index-based SCAN algorithm."""

from .clustering import UNCLUSTERED, Clustering
from .doubling import (
    prefix_length_at_least,
    prefix_length_greater_than,
    prefix_lengths_at_least,
)
from .neighbor_order import NeighborOrder, build_neighbor_order
from .core_order import CoreOrder, build_core_order
from .query import cluster, cluster_from_arcs, get_cores
from .sweep_query import query_many
from .hubs import classify_unclustered
from .index import ScanIndex

__all__ = [
    "UNCLUSTERED",
    "Clustering",
    "prefix_length_at_least",
    "prefix_length_greater_than",
    "prefix_lengths_at_least",
    "NeighborOrder",
    "build_neighbor_order",
    "CoreOrder",
    "build_core_order",
    "cluster",
    "cluster_from_arcs",
    "query_many",
    "get_cores",
    "classify_unclustered",
    "ScanIndex",
]
