"""Doubling (galloping) search over non-increasing key arrays.

Both index queries in the paper lean on doubling search to stay
work-efficient: the cores for parameter μ are a *prefix* of ``CO[μ]`` and the
ε-similar neighbors of a vertex are a *prefix* of ``NO[v]``, because both are
sorted by non-increasing similarity.  A binary search would cost ``O(log n)``
per probe regardless of the answer, which adds up to an ``O(n log n)`` term;
doubling search costs ``O(log j)`` where ``j`` is the length of the returned
prefix, which is what keeps the query work proportional to the output size
(Theorem 4.3).
"""

from __future__ import annotations

import numpy as np

from ..parallel.metrics import ceil_log2
from ..parallel.scheduler import Scheduler


def prefix_length_at_least(
    keys: np.ndarray,
    threshold: float,
    *,
    scheduler: Scheduler | None = None,
) -> int:
    """Length of the prefix of ``keys`` whose entries are ``>= threshold``.

    ``keys`` must be sorted in non-increasing order (this is asserted only in
    debug-level tests, not at runtime, to keep the query path lean).  Charges
    ``O(log j)`` work where ``j`` is the returned prefix length.
    """
    keys = np.asarray(keys)
    n = int(keys.shape[0])
    if n == 0 or keys[0] < threshold:
        if scheduler is not None:
            scheduler.charge(1, 1)
        return 0

    # Doubling phase: find the first probe position whose key drops below the
    # threshold; the answer then lies in (bound/2, bound].
    bound = 1
    while bound < n and keys[bound] >= threshold:
        bound <<= 1
    low = bound >> 1          # keys[low] >= threshold
    high = min(bound, n - 1)  # first candidate position that may fail

    # Binary search within (low, high] for the first failing position.
    if keys[high] >= threshold:
        result = high + 1
    else:
        left, right = low, high  # keys[left] >= threshold > keys[right]
        while right - left > 1:
            middle = (left + right) // 2
            if keys[middle] >= threshold:
                left = middle
            else:
                right = middle
        result = right

    if scheduler is not None:
        scheduler.charge(2 * (ceil_log2(max(result, 1)) + 1.0), ceil_log2(max(result, 1)) + 1.0)
    return result


def prefix_length_greater_than(
    keys: np.ndarray,
    threshold: float,
    *,
    scheduler: Scheduler | None = None,
) -> int:
    """Length of the prefix of ``keys`` whose entries are strictly ``> threshold``."""
    keys = np.asarray(keys)
    n = int(keys.shape[0])
    if n == 0 or keys[0] <= threshold:
        if scheduler is not None:
            scheduler.charge(1, 1)
        return 0
    bound = 1
    while bound < n and keys[bound] > threshold:
        bound <<= 1
    low = bound >> 1
    high = min(bound, n - 1)
    if keys[high] > threshold:
        result = high + 1
    else:
        left, right = low, high
        while right - left > 1:
            middle = (left + right) // 2
            if keys[middle] > threshold:
                left = middle
            else:
                right = middle
        result = right
    if scheduler is not None:
        scheduler.charge(2 * (ceil_log2(max(result, 1)) + 1.0), ceil_log2(max(result, 1)) + 1.0)
    return result
