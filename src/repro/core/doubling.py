"""Doubling (galloping) search over non-increasing key arrays.

Both index queries in the paper lean on doubling search to stay
work-efficient: the cores for parameter μ are a *prefix* of ``CO[μ]`` and the
ε-similar neighbors of a vertex are a *prefix* of ``NO[v]``, because both are
sorted by non-increasing similarity.  A binary search would cost ``O(log n)``
per probe regardless of the answer, which adds up to an ``O(n log n)`` term;
doubling search costs ``O(log j)`` where ``j`` is the length of the returned
prefix, which is what keeps the query work proportional to the output size
(Theorem 4.3).
"""

from __future__ import annotations

import numpy as np

from ..parallel.metrics import ceil_log2, ceil_log2_array
from ..parallel.scheduler import Scheduler


def prefix_length_at_least(
    keys: np.ndarray,
    threshold: float,
    *,
    scheduler: Scheduler | None = None,
) -> int:
    """Length of the prefix of ``keys`` whose entries are ``>= threshold``.

    ``keys`` must be sorted in non-increasing order (this is asserted only in
    debug-level tests, not at runtime, to keep the query path lean).  Charges
    ``O(log j)`` work where ``j`` is the returned prefix length.
    """
    keys = np.asarray(keys)
    n = int(keys.shape[0])
    if n == 0 or keys[0] < threshold:
        if scheduler is not None:
            scheduler.charge(1, 1)
        return 0

    # Doubling phase: find the first probe position whose key drops below the
    # threshold; the answer then lies in (bound/2, bound].
    bound = 1
    while bound < n and keys[bound] >= threshold:
        bound <<= 1
    low = bound >> 1          # keys[low] >= threshold
    high = min(bound, n - 1)  # first candidate position that may fail

    # Binary search within (low, high] for the first failing position.
    if keys[high] >= threshold:
        result = high + 1
    else:
        left, right = low, high  # keys[left] >= threshold > keys[right]
        while right - left > 1:
            middle = (left + right) // 2
            if keys[middle] >= threshold:
                left = middle
            else:
                right = middle
        result = right

    if scheduler is not None:
        scheduler.charge(2 * (ceil_log2(max(result, 1)) + 1.0), ceil_log2(max(result, 1)) + 1.0)
    return result


def prefix_lengths_at_least(
    keys: np.ndarray,
    threshold: float | np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    *,
    scheduler: Scheduler | None = None,
) -> np.ndarray:
    """Per-segment prefix lengths with entries ``>= threshold``, batched.

    The vectorised counterpart of :func:`prefix_length_at_least`: ``keys``
    holds many non-increasing segments, ``starts[i]``/``lengths[i]`` delimit
    segment ``i``, and the result is the prefix length of every segment.
    ``threshold`` is a scalar applied to every segment or an array with one
    threshold per segment (segments may overlap, e.g. many thresholds probed
    against one shared array).  All segments are searched *simultaneously* --
    the Python loop below runs ``O(log max_length)`` rounds of whole-array
    gathers, never one iteration per segment, which is what removes the
    per-core interpreter loop from the query path.

    The charges match the scalar searches exactly: segments whose first key
    already fails charge ``(1, 1)``; the rest charge ``2 (log2(j) + 1)`` work
    and ``log2(j) + 1`` span for a result of ``j``, composed as one parallel
    batch (work adds up, span is the maximum search plus the fork-tree depth
    over the segments).
    """
    keys = np.asarray(keys)
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have equal shape")
    num_segments = int(starts.shape[0])
    if num_segments == 0:
        return np.zeros(0, dtype=np.int64)
    threshold = np.broadcast_to(np.asarray(threshold), (num_segments,))

    nonempty = np.flatnonzero(lengths > 0)
    first_passes = np.zeros(num_segments, dtype=bool)
    if nonempty.size:
        first_passes[nonempty] = keys[starts[nonempty]] >= threshold[nonempty]

    # Simultaneous binary search for the first failing position of every
    # segment whose position 0 passes; everything before ``low`` passes and
    # everything at/after ``high`` is no better than the first failure.
    low = first_passes.astype(np.int64)
    high = np.where(first_passes, lengths, 0)
    active = np.flatnonzero(low < high)
    while active.size:
        middle = (low[active] + high[active]) >> 1
        passes = keys[starts[active] + middle] >= threshold[active]
        low[active] = np.where(passes, middle + 1, low[active])
        high[active] = np.where(passes, high[active], middle)
        active = active[low[active] < high[active]]
    results = low

    if scheduler is not None:
        num_failed_immediately = num_segments - int(np.count_nonzero(first_passes))
        work = float(num_failed_immediately)
        max_span = 1.0 if num_failed_immediately else 0.0
        if first_passes.any():
            search_spans = ceil_log2_array(results[first_passes]) + 1.0
            work += float(np.sum(2.0 * search_spans))
            max_span = max(max_span, float(np.max(search_spans)))
        scheduler.charge(work, max_span + ceil_log2(max(num_segments, 1)) + 1.0)
    return results


def prefix_length_greater_than(
    keys: np.ndarray,
    threshold: float,
    *,
    scheduler: Scheduler | None = None,
) -> int:
    """Length of the prefix of ``keys`` whose entries are strictly ``> threshold``."""
    keys = np.asarray(keys)
    n = int(keys.shape[0])
    if n == 0 or keys[0] <= threshold:
        if scheduler is not None:
            scheduler.charge(1, 1)
        return 0
    bound = 1
    while bound < n and keys[bound] > threshold:
        bound <<= 1
    low = bound >> 1
    high = min(bound, n - 1)
    if keys[high] > threshold:
        result = high + 1
    else:
        left, right = low, high
        while right - left > 1:
            middle = (left + right) // 2
            if keys[middle] > threshold:
                left = middle
            else:
                right = middle
        result = right
    if scheduler is not None:
        scheduler.charge(2 * (ceil_log2(max(result, 1)) + 1.0), ceil_log2(max(result, 1)) + 1.0)
    return result
