"""The core order ``CO``: per-μ candidate cores sorted by core threshold.

For every value of μ (from 2 up to the largest closed neighborhood size),
``CO[μ]`` lists the vertices whose closed neighborhood has at least μ members
-- the only vertices that can ever be cores for that μ -- sorted by
non-increasing *core threshold*, i.e. the largest ε at which the vertex still
is a core.  At query time the cores for (μ, ε) are a prefix of ``CO[μ]``,
found with a doubling search (Algorithm 3).

The structure stores one entry per (vertex, μ) pair with ``2 <= μ <=
|N̄(v)|``, which is ``Σ_v deg(v) = 2m`` entries in total, matching the O(m)
index-space bound of GS*-Index.  Construction finds the member list of each μ
via doubling search over the degree-sorted vertex array (Algorithm 2, line
12) and orders all lists with one segmented (integer) sort.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..parallel.metrics import ceil_log2
from ..parallel.primitives import segmented_arange
from ..parallel.scheduler import Scheduler
from ..parallel.sorting import (
    comparison_sort_permutation,
    integer_sort_permutation,
    segmented_sort_by_key,
    similarity_rank_keys,
)
from .doubling import prefix_length_at_least, prefix_lengths_at_least
from .neighbor_order import NeighborOrder


@dataclass
class CoreOrder:
    """Candidate core vertices for every μ, sorted by non-increasing threshold.

    Attributes
    ----------
    indptr:
        Offsets into ``vertices``/``thresholds`` indexed by μ; entries for
        μ < 2 are empty.  ``indptr`` has length ``max_mu + 2`` so that the
        segment of μ is ``[indptr[μ], indptr[μ+1])``.
    vertices:
        Candidate core vertex ids, segment by segment.
    thresholds:
        Core threshold of each vertex for the segment's μ, aligned with
        ``vertices`` and non-increasing within a segment.
    """

    indptr: np.ndarray
    vertices: np.ndarray
    thresholds: np.ndarray

    @property
    def max_mu(self) -> int:
        """Largest μ for which a candidate list exists."""
        return int(self.indptr.shape[0] - 2)

    def candidates(self, mu: int) -> tuple[np.ndarray, np.ndarray]:
        """Vertices that can be cores for ``mu`` and their thresholds."""
        if mu < 2 or mu > self.max_mu:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
        start, end = int(self.indptr[mu]), int(self.indptr[mu + 1])
        return self.vertices[start:end], self.thresholds[start:end]

    def cores(
        self, mu: int, epsilon: float, *, scheduler: Scheduler | None = None
    ) -> np.ndarray:
        """Core vertices under parameters ``(mu, epsilon)`` (Algorithm 3).

        The cores are the prefix of ``CO[mu]`` whose thresholds are at least
        ``epsilon``, found by doubling search.
        """
        vertices, thresholds = self.candidates(mu)
        count = prefix_length_at_least(thresholds, epsilon, scheduler=scheduler)
        return vertices[:count]

    def core_threshold(self, v: int, mu: int) -> float | None:
        """Threshold of ``v`` for ``mu`` as recorded in the order (None if absent)."""
        vertices, thresholds = self.candidates(mu)
        matches = np.flatnonzero(vertices == v)
        if matches.size == 0:
            return None
        return float(thresholds[matches[0]])


def build_core_order(
    graph: Graph,
    neighbor_order: NeighborOrder,
    *,
    scheduler: Scheduler | None = None,
    use_integer_sort: bool = True,
    executor=None,
) -> CoreOrder:
    """Construct the core order from the neighbor order (Algorithm 2).

    For μ ranging over ``2 .. max closed degree``, the member list of μ is the
    set of vertices with degree at least ``μ - 1``; it is located by doubling
    search on the degree-sorted vertex array, and every member's threshold is
    read off the neighbor order in O(1).  ``executor`` shards the global
    segmented sort across worker processes (see
    :mod:`repro.parallel.execute`); the stored order is bit-identical at any
    worker count.
    """
    scheduler = scheduler if scheduler is not None else Scheduler()
    n = graph.num_vertices
    degrees = graph.degrees
    max_mu = int(degrees.max(initial=0)) + 1 if n else 1

    # Vertices sorted by non-increasing degree (Algorithm 2, line 8).
    if use_integer_sort:
        order = integer_sort_permutation(scheduler, degrees, descending=True)
    else:
        order = comparison_sort_permutation(scheduler, degrees, descending=True)
    sorted_vertices = np.arange(n, dtype=np.int64)[order]
    sorted_degrees = degrees[order]

    # The per-μ searches run as one parallel batch (Algorithm 2, line 11):
    # members of μ are the vertices with closed degree >= μ, i.e. degree >=
    # μ - 1, a prefix of the degree-sorted array.  All max_mu - 1 prefixes
    # are located with one batched doubling search against the shared array
    # and expanded with one segmented gather -- no Python loop over μ.
    mu_values = np.arange(2, max_mu + 1, dtype=np.int64)
    segment_lengths = np.zeros(max_mu + 1, dtype=np.int64)
    if mu_values.size:
        segment_lengths[2:] = prefix_lengths_at_least(
            sorted_degrees,
            mu_values - 1,
            np.zeros(mu_values.size, dtype=np.int64),
            np.full(mu_values.size, n, dtype=np.int64),
            scheduler=scheduler,
        )

    indptr = np.zeros(max_mu + 2, dtype=np.int64)
    np.cumsum(segment_lengths, out=indptr[1:])
    total_entries = int(indptr[-1])
    # Rank of every entry within its μ-segment, and the μ it belongs to.
    counts = segment_lengths[2:]
    ranks = segmented_arange(counts)
    entry_mu = np.repeat(mu_values, counts)
    all_vertices = sorted_vertices[ranks]
    # Threshold of v for μ: similarity of its (μ - 1)-th most similar
    # neighbor, i.e. position μ - 2 of NO[v].
    if total_entries:
        offsets = neighbor_order.indptr[all_vertices] + (entry_mu - 2)
        all_thresholds = neighbor_order.similarities[offsets]
    else:
        all_thresholds = np.zeros(0, dtype=np.float64)
    nonzero_segments = int(np.count_nonzero(counts))
    scheduler.charge(
        total_entries, ceil_log2(max(nonzero_segments, 1)) + 1.0
    )

    # One global segmented sort orders every CO[mu] by non-increasing
    # threshold (ties by vertex id, inherited from the stable sort).
    if use_integer_sort:
        keys = similarity_rank_keys(all_thresholds)
    else:
        keys = all_thresholds
    positions = np.arange(all_vertices.shape[0], dtype=np.int64)
    sorted_positions = segmented_sort_by_key(
        scheduler,
        indptr,
        positions,
        keys,
        descending=True,
        use_integer_sort=use_integer_sort,
        executor=executor,
    )
    return CoreOrder(
        indptr=indptr,
        vertices=all_vertices[sorted_positions],
        thresholds=all_thresholds[sorted_positions],
    )
