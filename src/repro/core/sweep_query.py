"""Batched multi-parameter query planner: many ``(μ, ε)`` clusterings at once.

Parameter exploration -- the workload the index exists for -- queries the same
index dozens of times over a grid of ``(μ, ε)`` settings.  Issued one by one,
every query repeats the same three index probes: the doubling search locating
the core prefix of ``CO[μ]``, the doubling searches locating each core's
ε-similar prefix of ``NO``, and the gather materialising those prefixes.  This
planner executes a whole batch with the redundancy removed:

1. *one* batched doubling search (:func:`~repro.core.doubling.
   prefix_lengths_at_least`) finds the core prefix of every pair
   simultaneously;
2. pairs are grouped by distinct ε.  Within a group the core sets are nested
   (``cores(μ', ε) ⊆ cores(μ, ε)`` for ``μ' ≥ μ``), so the group's ε-similar
   arcs are gathered *once* for the smallest μ -- one shared doubling search
   across all groups locates every prefix, then one segmented gather per
   distinct ε materialises it;
3. the pairs of a group run in *descending* μ order over one shared
   union-find forest: descending μ only ever adds cores, so each step unions
   just the newly eligible core-core arcs and reads the labels off the grown
   forest.  Every arc of the group is unioned exactly once, instead of once
   per pair -- union-find is what dominates a query, so this is where the
   sweep's asymptotic saving comes from.  Border attachment stays per pair
   (different core sets assign different borders).

The per-pair results are bit-for-bit identical to per-pair
:meth:`ScanIndex.query <repro.core.index.ScanIndex.query>` calls.  Labels are
union-find representatives (the minimum vertex id of each component under
min-hooking, regardless of union order) and the deterministic border rule is
arc-order-independent; for the arbitrary first-writer rule the pair's border
arcs are first restored to its own traversal order (cores in
``CO[μ]``-prefix order, neighbor order within a core) so the same writers
win.

A caller issuing many batches against one index (the serving loop of
:mod:`repro.serve`) can pass a :class:`~repro.core.query.QueryBuffers` to
recycle the planner's O(n) scratch -- the per-ε-group union-find forest and
the rank/member restore arrays -- across calls; every touched entry is
restored before the call returns, and results stay bit-identical.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..parallel.metrics import ceil_log2
from ..parallel.primitives import segmented_ranges
from ..parallel.scheduler import Scheduler
from ..parallel.unionfind import UnionFind
from .clustering import UNCLUSTERED, Clustering
from .doubling import prefix_lengths_at_least
from .query import QueryBuffers, attach_borders


def _validate_pairs(pairs: Sequence[tuple[int, float]]) -> tuple[np.ndarray, np.ndarray]:
    """Split and range-check a sequence of ``(mu, epsilon)`` pairs."""
    mus = np.array([int(mu) for mu, _ in pairs], dtype=np.int64)
    epsilons = np.array([float(epsilon) for _, epsilon in pairs], dtype=np.float64)
    if mus.size and int(mus.min()) < 2:
        raise ValueError(f"mu must be at least 2, got {int(mus.min())}")
    if epsilons.size and (epsilons.min() < 0.0 or epsilons.max() > 1.0):
        raise ValueError("every epsilon must lie in [0, 1]")
    return mus, epsilons


def query_many(
    graph,
    neighbor_order,
    core_order,
    pairs: Iterable[tuple[int, float]],
    *,
    scheduler: Scheduler | None = None,
    deterministic_borders: bool = False,
    buffers: QueryBuffers | None = None,
) -> list[Clustering]:
    """SCAN clusterings for every ``(mu, epsilon)`` pair, planned as one batch.

    Returns one :class:`~repro.core.clustering.Clustering` per input pair, in
    input order, each identical to what a separate
    :func:`~repro.core.query.cluster` call would produce.  ``buffers``
    (optional) recycles the planner's O(n) scratch arrays across calls; see
    the module docstring.
    """
    pairs = list(pairs)
    if not pairs:
        return []
    scheduler = scheduler if scheduler is not None else Scheduler()
    mus, epsilons = _validate_pairs(pairs)
    num_pairs = int(mus.size)
    max_mu = core_order.max_mu

    # --- Stage 1: core prefixes of all pairs, one batched doubling search.
    co_indptr = core_order.indptr
    in_range = mus <= max_mu          # mus >= 2 already enforced
    clipped = np.where(in_range, mus, 0)    # index 0/1 exist even when empty
    core_starts = co_indptr[clipped]
    core_lengths = np.where(in_range, co_indptr[clipped + 1] - core_starts, 0)
    core_counts = prefix_lengths_at_least(
        core_order.thresholds, epsilons, core_starts, core_lengths, scheduler=scheduler
    )

    # --- Stage 2: group pairs by distinct ε; the group's arcs are gathered
    # for its smallest μ, whose core set contains every other pair's cores.
    distinct_eps, group_of = np.unique(epsilons, return_inverse=True)
    num_groups = int(distinct_eps.size)
    order_by_mu = np.lexsort((mus, group_of))
    boundaries = np.searchsorted(group_of[order_by_mu], np.arange(num_groups))
    base_pair = order_by_mu[boundaries]

    base_cores: list[np.ndarray] = [
        core_order.vertices[core_starts[p]: core_starts[p] + core_counts[p]]
        for p in base_pair.tolist()
    ]

    # --- Stage 3: ε-similar neighbor prefixes of every base core, located by
    # ONE shared doubling search spanning all groups at once.
    all_cores = (
        np.concatenate(base_cores) if base_cores else np.zeros(0, dtype=np.int64)
    )
    group_sizes = np.array([cores.size for cores in base_cores], dtype=np.int64)
    per_core_eps = np.repeat(distinct_eps, group_sizes)
    no_starts = neighbor_order.indptr[all_cores]
    no_lengths = neighbor_order.indptr[all_cores + 1] - no_starts
    prefix_counts = prefix_lengths_at_least(
        neighbor_order.similarities,
        per_core_eps,
        no_starts,
        no_lengths,
        scheduler=scheduler,
    )

    # --- Stage 4: one segmented gather per distinct ε, then an incremental
    # union-find per group over pairs in descending-μ order.
    n = graph.num_vertices
    results: list[Clustering | None] = [None] * num_pairs
    group_offsets = np.zeros(num_groups + 1, dtype=np.int64)
    np.cumsum(group_sizes, out=group_offsets[1:])
    if buffers is not None:
        buffers.check_size(n)
        rank = buffers.rank
        member = buffers.member
    else:
        rank = np.zeros(n, dtype=np.int64)
        member = np.zeros(n, dtype=bool)
    for group in range(num_groups):
        lo, hi = int(group_offsets[group]), int(group_offsets[group + 1])
        counts = prefix_counts[lo:hi]
        total = int(counts.sum())
        if total:
            num_nonempty = int(np.count_nonzero(counts))
            scheduler.charge(total, ceil_log2(max(num_nonempty, 1)) + 1.0)
            positions = segmented_ranges(no_starts[lo:hi], counts)
            group_sources = np.repeat(all_cores[lo:hi], counts)
            group_targets = neighbor_order.neighbors[positions]
            group_similarities = neighbor_order.similarities[positions]
        else:
            group_sources = np.zeros(0, dtype=np.int64)
            group_targets = np.zeros(0, dtype=np.int64)
            group_similarities = np.zeros(0, dtype=np.float64)

        # Descending μ: each pair's cores contain the previous pair's, so
        # the shared forest only ever grows and every group arc is unioned
        # exactly once across the whole group.
        group_pairs = order_by_mu[boundaries[group]: (
            boundaries[group + 1] if group + 1 < num_groups else num_pairs
        )][::-1]
        forest = buffers.forest if buffers is not None else UnionFind(n)
        added = np.zeros(int(group_sources.size), dtype=bool)
        try:
            for pair in group_pairs.tolist():
                mu, epsilon = int(mus[pair]), float(epsilons[pair])
                cores = core_order.vertices[
                    core_starts[pair]: core_starts[pair] + core_counts[pair]
                ]
                labels = np.full(n, UNCLUSTERED, dtype=np.int64)
                core_mask = np.zeros(n, dtype=bool)
                if cores.size == 0:
                    results[pair] = Clustering(
                        labels, core_mask, mu=mu, epsilon=epsilon
                    )
                    continue
                core_mask[cores] = True
                try:
                    # Write inside the try: clearing never-set entries is a
                    # no-op, so the restore is safe from any point.
                    member[cores] = True
                    source_is_core = member[group_sources]
                    target_is_core = member[group_targets]
                finally:
                    member[cores] = False
                scheduler.charge(
                    int(group_sources.size) + int(cores.size),
                    ceil_log2(max(int(group_sources.size), 1)) + 1.0,
                )

                # Connectivity (union-find, Section 6.2), incremental: only
                # the arcs that became core-core at this μ are new unions.
                eligible = source_is_core & target_is_core
                new_arcs = eligible & ~added
                # Flag the arcs BEFORE unioning them: the crash-restoring
                # reset below covers `added`, and union_batch may have
                # written at these endpoints by the time an interrupt lands
                # mid-batch (resetting an untouched vertex is a no-op, so
                # over-flagging is safe).
                added |= new_arcs
                forest.union_batch(
                    scheduler, group_sources[new_arcs], group_targets[new_arcs]
                )
                labels[cores] = forest.find_batch(scheduler, cores)

                # Border vertices: non-core endpoints of ε-similar edges out
                # of this pair's cores.
                border_arcs = source_is_core & ~target_is_core
                border_sources = group_sources[border_arcs]
                border_targets = group_targets[border_arcs]
                border_similarities = group_similarities[border_arcs]
                if not deterministic_borders and border_sources.size:
                    # The arbitrary border rule keeps the first writer in
                    # traversal order, so restore the pair's own order
                    # (CO[μ]-prefix rank of the source; the stable sort
                    # keeps neighbor order within a source) to match a lone
                    # query bit for bit.  The deterministic rule is
                    # order-independent.
                    rank[cores] = np.arange(cores.size, dtype=np.int64)
                    order = np.argsort(rank[border_sources], kind="stable")
                    border_sources = border_sources[order]
                    border_targets = border_targets[order]
                    border_similarities = border_similarities[order]
                attach_borders(
                    labels,
                    border_sources,
                    border_targets,
                    border_similarities,
                    scheduler=scheduler,
                    deterministic=deterministic_borders,
                )
                results[pair] = Clustering(labels, core_mask, mu=mu, epsilon=epsilon)
        finally:
            if buffers is not None:
                # Restore the recycled forest even when a pair dies
                # mid-group: the touched entries are the endpoints of the
                # unioned arcs plus the group's base core set (a superset
                # of every pair's find_batch argument).
                forest.reset_batch(
                    group_sources[added], group_targets[added], base_cores[group]
                )
    return results  # type: ignore[return-value]
