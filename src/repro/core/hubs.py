"""Hub and outlier classification of unclustered vertices (Section 4.3).

After a clustering query, every unclustered vertex is either a *hub* -- it
neighbors at least two distinct clusters -- or an *outlier*.  The paper
computes this with a map over each unclustered vertex's neighbors followed by
a reduce, for ``O(n + m)`` total work and ``O(log n)`` span; the same costs
are charged here.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..parallel.metrics import ceil_log2
from ..parallel.scheduler import Scheduler
from .clustering import UNCLUSTERED, Clustering


def classify_unclustered(
    graph: Graph,
    clustering: Clustering,
    *,
    scheduler: Scheduler | None = None,
) -> Clustering:
    """Fill in ``hub_mask`` / ``outlier_mask`` of ``clustering`` in place.

    A vertex left unclustered by the query is a hub when its neighbors span
    at least two distinct clusters, and an outlier otherwise.  Returns the
    same :class:`Clustering` for convenient chaining.
    """
    scheduler = scheduler if scheduler is not None else Scheduler()
    labels = clustering.labels
    n = graph.num_vertices
    hub_mask = np.zeros(n, dtype=bool)
    outlier_mask = np.zeros(n, dtype=bool)

    unclustered = clustering.unclustered_vertices()
    total_degree = int(graph.degrees[unclustered].sum()) if unclustered.size else 0
    scheduler.charge(total_degree + n, ceil_log2(max(n, 1)) + 1.0)

    for v in unclustered:
        v = int(v)
        neighbor_labels = labels[graph.neighbors(v)]
        neighbor_labels = neighbor_labels[neighbor_labels != UNCLUSTERED]
        distinct = np.unique(neighbor_labels)
        if distinct.shape[0] >= 2:
            hub_mask[v] = True
        else:
            outlier_mask[v] = True

    clustering.hub_mask = hub_mask
    clustering.outlier_mask = outlier_mask
    return clustering
