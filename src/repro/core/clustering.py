"""The result type returned by SCAN clusterings.

A SCAN clustering partitions *some* of the vertices into clusters and leaves
the rest unclustered; unclustered vertices are further split into *hubs*
(neighbors of at least two distinct clusters) and *outliers* (everything
else).  :class:`Clustering` captures all of that in flat numpy arrays so that
quality measures and comparisons stay vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Label used for vertices that belong to no cluster.
UNCLUSTERED = -1


@dataclass
class Clustering:
    """A (partial) clustering of the vertices ``0 .. n-1``.

    Attributes
    ----------
    labels:
        int64 array of length ``n``; ``labels[v]`` is the cluster id of ``v``
        or :data:`UNCLUSTERED`.  Cluster ids are arbitrary but consistent.
    core_mask:
        Boolean array marking the core vertices of the clustering.
    mu, epsilon:
        The SCAN parameters the clustering was computed with.
    hub_mask, outlier_mask:
        Optional boolean arrays produced by hub/outlier classification; both
        all-False until :func:`repro.core.hubs.classify_unclustered` runs.
    """

    labels: np.ndarray
    core_mask: np.ndarray
    mu: int = 2
    epsilon: float = 0.0
    hub_mask: np.ndarray = field(default=None)  # type: ignore[assignment]
    outlier_mask: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.core_mask = np.asarray(self.core_mask, dtype=bool)
        if self.labels.shape != self.core_mask.shape:
            raise ValueError("labels and core_mask must have the same length")
        n = self.labels.shape[0]
        if self.hub_mask is None:
            self.hub_mask = np.zeros(n, dtype=bool)
        if self.outlier_mask is None:
            self.outlier_mask = np.zeros(n, dtype=bool)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices the clustering is defined over."""
        return int(self.labels.shape[0])

    @property
    def num_clusters(self) -> int:
        """Number of distinct (non-empty) clusters."""
        clustered = self.labels[self.labels != UNCLUSTERED]
        if clustered.size == 0:
            return 0
        return int(np.unique(clustered).shape[0])

    @property
    def num_clustered_vertices(self) -> int:
        """Number of vertices assigned to some cluster."""
        return int(np.count_nonzero(self.labels != UNCLUSTERED))

    def is_clustered(self, v: int) -> bool:
        """True when vertex ``v`` belongs to a cluster."""
        return bool(self.labels[v] != UNCLUSTERED)

    def is_core(self, v: int) -> bool:
        """True when vertex ``v`` is a core vertex."""
        return bool(self.core_mask[v])

    def cluster_of(self, v: int) -> int | None:
        """Cluster id of ``v``, or ``None`` when unclustered."""
        label = int(self.labels[v])
        return None if label == UNCLUSTERED else label

    def unclustered_vertices(self) -> np.ndarray:
        """Ids of all unclustered vertices."""
        return np.flatnonzero(self.labels == UNCLUSTERED)

    def core_vertices(self) -> np.ndarray:
        """Ids of all core vertices."""
        return np.flatnonzero(self.core_mask)

    def hubs(self) -> np.ndarray:
        """Ids of vertices classified as hubs (empty until classification runs)."""
        return np.flatnonzero(self.hub_mask)

    def outliers(self) -> np.ndarray:
        """Ids of vertices classified as outliers (empty until classification runs)."""
        return np.flatnonzero(self.outlier_mask)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def clusters(self) -> dict[int, np.ndarray]:
        """Mapping from cluster id to the sorted array of its members."""
        result: dict[int, np.ndarray] = {}
        clustered = self.labels != UNCLUSTERED
        for label in np.unique(self.labels[clustered]):
            result[int(label)] = np.flatnonzero(self.labels == label)
        return result

    def cluster_sizes(self) -> np.ndarray:
        """Sizes of the clusters, sorted descending."""
        clustered = self.labels[self.labels != UNCLUSTERED]
        if clustered.size == 0:
            return np.zeros(0, dtype=np.int64)
        _, counts = np.unique(clustered, return_counts=True)
        return np.sort(counts)[::-1]

    def canonical_labels(self) -> np.ndarray:
        """Labels renumbered to ``0 .. k-1`` in order of first appearance.

        Unclustered vertices keep :data:`UNCLUSTERED`.  Two clusterings that
        induce the same partition have identical canonical labels.
        """
        canonical = np.full(self.num_vertices, UNCLUSTERED, dtype=np.int64)
        next_id = 0
        seen: dict[int, int] = {}
        for v in range(self.num_vertices):
            label = int(self.labels[v])
            if label == UNCLUSTERED:
                continue
            if label not in seen:
                seen[label] = next_id
                next_id += 1
            canonical[v] = seen[label]
        return canonical

    def same_partition_as(self, other: "Clustering") -> bool:
        """True when both clusterings induce the same partition of the vertices."""
        if self.num_vertices != other.num_vertices:
            return False
        return np.array_equal(self.canonical_labels(), other.canonical_labels())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Clustering(n={self.num_vertices}, clusters={self.num_clusters}, "
            f"clustered={self.num_clustered_vertices}, mu={self.mu}, eps={self.epsilon})"
        )
