"""Index queries: extracting the SCAN clustering for arbitrary (μ, ε).

This module implements Algorithms 3-5 of the paper.  Given the precomputed
index (neighbor order + core order), a query

1. finds the core vertices as a prefix of ``CO[μ]`` via doubling search
   (:func:`get_cores`, Algorithm 3);
2. gathers all ε-similar edges incident to cores as prefixes of the cores'
   neighbor-order lists (doubling search per core);
3. runs union-find over the ε-similar core-core edges to cluster the cores
   (the connectivity step of Algorithm 5, using the union-find optimisation
   of Section 6.2);
4. attaches border (non-core) vertices to a neighboring core's cluster --
   either to an arbitrary one (the CAS semantics of Algorithm 4) or, for
   reproducible experiments, to the most similar one with ties broken toward
   the lower vertex id (the deterministic rule of Section 7.3.4).

The total work is proportional to the number of ε-similar edges touching the
output clusters, matching Theorem 4.3.
"""

from __future__ import annotations

import numpy as np

from ..parallel.metrics import ceil_log2
from ..parallel.primitives import segmented_ranges
from ..parallel.scheduler import Scheduler
from ..parallel.unionfind import UnionFind
from .clustering import UNCLUSTERED, Clustering
from .doubling import prefix_lengths_at_least


def get_cores(
    core_order,
    mu: int,
    epsilon: float,
    *,
    scheduler: Scheduler | None = None,
) -> np.ndarray:
    """Core vertices under ``(mu, epsilon)`` (Algorithm 3).

    ``mu`` counts the vertex itself (closed ε-neighborhood), following the
    paper; ``mu <= 1`` therefore makes every vertex a core, and values above
    the maximum closed degree yield no cores.
    """
    if mu < 2:
        raise ValueError(f"mu must be at least 2, got {mu}")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
    return core_order.cores(mu, epsilon, scheduler=scheduler)


def _epsilon_similar_arcs(
    neighbor_order,
    cores: np.ndarray,
    epsilon: float,
    scheduler: Scheduler,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All arcs (core u, neighbor v, similarity) with similarity >= epsilon.

    Each core's ε-similar neighbors form a prefix of its neighbor-order list.
    All prefixes are located with one batched doubling search over the
    neighbor order's similarity array (Algorithm 5, line 4) and gathered with
    a single segmented expansion -- there is no Python-level loop over cores.
    """
    starts = neighbor_order.indptr[cores]
    lengths = neighbor_order.indptr[cores + 1] - starts
    counts = prefix_lengths_at_least(
        neighbor_order.similarities, epsilon, starts, lengths, scheduler=scheduler
    )
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), np.zeros(0, dtype=np.float64)
    # Gathering the prefixes is one flat parallel copy: work proportional to
    # the number of emitted arcs, span the fork-tree over the non-empty cores.
    num_nonempty = int(np.count_nonzero(counts))
    scheduler.charge(total, ceil_log2(max(num_nonempty, 1)) + 1.0)
    positions = segmented_ranges(starts, counts)
    return (
        np.repeat(cores, counts),
        neighbor_order.neighbors[positions],
        neighbor_order.similarities[positions],
    )


def cluster_from_arcs(
    graph,
    cores: np.ndarray,
    arc_sources: np.ndarray,
    arc_targets: np.ndarray,
    arc_similarities: np.ndarray,
    mu: int,
    epsilon: float,
    *,
    scheduler: Scheduler,
    deterministic_borders: bool = False,
) -> Clustering:
    """Clustering from precomputed cores and their ε-similar arcs.

    The tail of Algorithm 5 -- union-find over the core-core arcs followed by
    border attachment -- shared by the single-query path (:func:`cluster`)
    and the batched multi-parameter planner
    (:mod:`repro.core.sweep_query`), which supplies arcs it gathered once for
    a whole ε-group.  Arcs must arrive in the same traversal order the
    single-query path produces (cores in ``CO[μ]``-prefix order, each core's
    arcs in neighbor-order) so that the first-writer border rule matches
    bit for bit.
    """
    n = graph.num_vertices
    labels = np.full(n, UNCLUSTERED, dtype=np.int64)
    core_mask = np.zeros(n, dtype=bool)
    if cores.size == 0:
        return Clustering(labels, core_mask, mu=mu, epsilon=epsilon)
    core_mask[cores] = True

    # Connectivity over the ε-similar core-core edges (union-find, Section 6.2).
    core_to_core = core_mask[arc_targets]
    forest = UnionFind(n)
    forest.union_batch(scheduler, arc_sources[core_to_core], arc_targets[core_to_core])
    labels[cores] = forest.find_batch(scheduler, cores)

    # Border vertices: non-core endpoints of ε-similar edges out of cores.
    border_arcs = ~core_to_core
    attach_borders(
        labels,
        arc_sources[border_arcs],
        arc_targets[border_arcs],
        arc_similarities[border_arcs],
        scheduler=scheduler,
        deterministic=deterministic_borders,
    )
    return Clustering(labels, core_mask, mu=mu, epsilon=epsilon)


def attach_borders(
    labels: np.ndarray,
    border_sources: np.ndarray,
    border_targets: np.ndarray,
    border_similarities: np.ndarray,
    *,
    scheduler: Scheduler,
    deterministic: bool = False,
) -> None:
    """Assign border vertices to a neighboring core's cluster (Algorithm 4).

    ``border_*`` list the ε-similar core -> non-core arcs; ``labels`` must
    already hold the core labels and is updated in place.  Shared by the
    single-query tail above and the batched sweep planner.
    """
    scheduler.charge(
        int(border_targets.size), ceil_log2(max(int(border_targets.size), 1)) + 1.0
    )
    if not border_targets.size:
        return
    if deterministic:
        # Most similar neighboring core wins; ties go to the lower core id.
        order = np.lexsort((border_sources, -border_similarities))
    else:
        # Arbitrary assignment: the paper uses a compare-and-swap, which
        # keeps the first writer; we mirror that by keeping the first arc
        # in traversal order.
        order = np.arange(border_targets.shape[0])
    # First occurrence of every border vertex in priority order, found
    # with one sort-based pass instead of a per-arc Python loop
    # (np.unique returns the index of the first occurrence).
    border_vertices, winner = np.unique(border_targets[order], return_index=True)
    labels[border_vertices] = labels[border_sources[order[winner]]]


def cluster(
    graph,
    neighbor_order,
    core_order,
    mu: int,
    epsilon: float,
    *,
    scheduler: Scheduler | None = None,
    deterministic_borders: bool = False,
) -> Clustering:
    """SCAN clustering for ``(mu, epsilon)`` from the index (Algorithm 5)."""
    scheduler = scheduler if scheduler is not None else Scheduler()
    cores = get_cores(core_order, mu, epsilon, scheduler=scheduler)
    if cores.size == 0:
        return Clustering(
            np.full(graph.num_vertices, UNCLUSTERED, dtype=np.int64),
            np.zeros(graph.num_vertices, dtype=bool),
            mu=mu,
            epsilon=epsilon,
        )
    arc_sources, arc_targets, arc_similarities = _epsilon_similar_arcs(
        neighbor_order, cores, epsilon, scheduler
    )
    return cluster_from_arcs(
        graph,
        cores,
        arc_sources,
        arc_targets,
        arc_similarities,
        mu,
        epsilon,
        scheduler=scheduler,
        deterministic_borders=deterministic_borders,
    )
