"""Index queries: extracting the SCAN clustering for arbitrary (μ, ε).

This module implements Algorithms 3-5 of the paper.  Given the precomputed
index (neighbor order + core order), a query

1. finds the core vertices as a prefix of ``CO[μ]`` via doubling search
   (:func:`get_cores`, Algorithm 3);
2. gathers all ε-similar edges incident to cores as prefixes of the cores'
   neighbor-order lists (doubling search per core);
3. runs union-find over the ε-similar core-core edges to cluster the cores
   (the connectivity step of Algorithm 5, using the union-find optimisation
   of Section 6.2);
4. attaches border (non-core) vertices to a neighboring core's cluster --
   either to an arbitrary one (the CAS semantics of Algorithm 4) or, for
   reproducible experiments, to the most similar one with ties broken toward
   the lower vertex id (the deterministic rule of Section 7.3.4).

The total work is proportional to the number of ε-similar edges touching the
output clusters, matching Theorem 4.3.
"""

from __future__ import annotations

import numpy as np

from ..parallel.metrics import ceil_log2
from ..parallel.primitives import segmented_ranges
from ..parallel.scheduler import Scheduler
from ..parallel.unionfind import UnionFind
from .clustering import UNCLUSTERED, Clustering
from .doubling import prefix_lengths_at_least


class QueryBuffers:
    """Reusable per-index scratch buffers for repeated queries.

    A cold :func:`cluster` call pays O(n) per query just to allocate scratch:
    a fresh union-find forest (``arange(n)``), the core-membership mask, and
    -- on the sweep path -- the rank/member arrays used to restore traversal
    order.  For interactive serving those allocations dominate small-output
    queries, so :class:`QueryBuffers` allocates them *once* at index size and
    the query paths recycle them, restoring every touched entry before the
    next query (O(result) cleanup, see :meth:`UnionFind.reset_batch
    <repro.parallel.unionfind.UnionFind.reset_batch>`).

    Invariant between queries: ``forest`` is the identity forest, ``labels``
    is all :data:`UNCLUSTERED`, and the ``member`` mask is all False.
    ``rank`` carries no invariant -- its readers only read entries they have
    just written.  Pass an instance to :func:`cluster`,
    :func:`repro.core.sweep_query.query_many`, or hold one inside a
    :class:`repro.serve.ClusterSession`, always against the same index.
    """

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = int(num_vertices)
        self.forest = UnionFind(self.num_vertices)
        self.labels = np.full(self.num_vertices, UNCLUSTERED, dtype=np.int64)
        self.member = np.zeros(self.num_vertices, dtype=bool)
        self.rank = np.zeros(self.num_vertices, dtype=np.int64)
        # Recycled arc-gather scratch (see ensure_arc_capacity): sized to the
        # largest gather seen so far, grown geometrically, so the steady
        # state of a serving loop allocates nothing for the gather itself.
        self._arc_capacity = 0
        self.arc_positions: np.ndarray | None = None
        self.arc_sources: np.ndarray | None = None
        self.arc_targets: np.ndarray | None = None
        self.arc_similarities: np.ndarray | None = None
        self.arc_flags: np.ndarray | None = None

    def check_size(self, num_vertices: int) -> None:
        """Raise when the buffers were sized for a different graph."""
        if int(num_vertices) != self.num_vertices:
            raise ValueError(
                f"QueryBuffers sized for {self.num_vertices} vertices used "
                f"with a graph of {num_vertices}"
            )

    def ensure_arc_capacity(self, total: int) -> None:
        """Grow the recycled arc-gather buffers to hold ``total`` arcs.

        Growth is geometric (at least doubling), so a serving loop pays the
        allocation a logarithmic number of times and then never again: the
        cold-miss gather of :func:`_epsilon_similar_arcs` writes into these
        buffers instead of allocating O(result) fresh arrays per query.
        ``arc_flags`` rides along for the core-membership gather of the
        compact serving path.  Views into the buffers are only valid until
        the next gather against the same :class:`QueryBuffers`.
        """
        if total <= self._arc_capacity:
            return
        capacity = max(int(total), 2 * self._arc_capacity, 1024)
        self._arc_capacity = capacity
        self.arc_positions = np.zeros(capacity, dtype=np.int64)
        self.arc_sources = np.zeros(capacity, dtype=np.int64)
        self.arc_targets = np.zeros(capacity, dtype=np.int64)
        self.arc_similarities = np.zeros(capacity, dtype=np.float64)
        self.arc_flags = np.zeros(capacity, dtype=bool)


def get_cores(
    core_order,
    mu: int,
    epsilon: float,
    *,
    scheduler: Scheduler | None = None,
) -> np.ndarray:
    """Core vertices under ``(mu, epsilon)`` (Algorithm 3).

    ``mu`` counts the vertex itself (closed ε-neighborhood), following the
    paper; ``mu <= 1`` therefore makes every vertex a core, and values above
    the maximum closed degree yield no cores.
    """
    if mu < 2:
        raise ValueError(f"mu must be at least 2, got {mu}")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
    return core_order.cores(mu, epsilon, scheduler=scheduler)


def _segmented_fill(out: np.ndarray, values: np.ndarray, block_starts: np.ndarray) -> None:
    """Fill ``out`` with ``repeat(values, counts)`` without allocating O(total).

    ``block_starts`` are the (strictly increasing) output offsets of the
    segments, ``block_starts[0] == 0``.  The repeat is delta-encoded -- one
    scatter of the O(segments) first differences followed by an in-place
    cumulative sum -- so the only arrays touched at O(total) size are ``out``
    itself and the cumsum pass over it.
    """
    out[:] = 0
    out[0] = values[0]
    out[block_starts[1:]] = np.diff(values)
    np.cumsum(out, out=out)


def _take_into(source: np.ndarray, positions: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gather ``source[positions]`` into ``out`` without transient copies.

    ``mode="clip"`` skips the bounds pre-check (the callers' positions are
    in-bounds by construction: CSR prefix offsets) -- with ``mode="raise"``
    numpy routes the gather through an output-sized scratch buffer.  Sources
    that are unaligned (columns mmapped from a pre-alignment artifact) fall
    back to fancy indexing: ``np.take`` with an ``out`` would silently copy
    the *entire* source column per call to realign it.
    """
    if source.dtype == out.dtype and source.flags.aligned:
        np.take(source, positions, out=out, mode="clip")
        return out
    return source[positions]


def _epsilon_similar_arcs(
    neighbor_order,
    cores: np.ndarray,
    epsilon: float,
    scheduler: Scheduler,
    buffers: QueryBuffers | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All arcs (core u, neighbor v, similarity) with similarity >= epsilon.

    Each core's ε-similar neighbors form a prefix of its neighbor-order list.
    All prefixes are located with one batched doubling search over the
    neighbor order's similarity array (Algorithm 5, line 4) and gathered with
    a single segmented expansion -- there is no Python-level loop over cores.

    With ``buffers`` the gather writes into the recycled arc buffers
    (:meth:`QueryBuffers.ensure_arc_capacity`) and returns *views* into them,
    valid until the next gather against the same buffers: the per-request
    allocation of the serving loop's cold-miss path drops from four O(result)
    arrays to the O(cores) search scratch.  The emitted arcs are bit-identical
    either way.
    """
    starts = neighbor_order.indptr[cores]
    lengths = neighbor_order.indptr[cores + 1] - starts
    counts = prefix_lengths_at_least(
        neighbor_order.similarities, epsilon, starts, lengths, scheduler=scheduler
    )
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), np.zeros(0, dtype=np.float64)
    # Gathering the prefixes is one flat parallel copy: work proportional to
    # the number of emitted arcs, span the fork-tree over the non-empty cores.
    num_nonempty = int(np.count_nonzero(counts))
    scheduler.charge(total, ceil_log2(max(num_nonempty, 1)) + 1.0)
    if buffers is None:
        positions = segmented_ranges(starts, counts)
        return (
            np.repeat(cores, counts),
            neighbor_order.neighbors[positions],
            neighbor_order.similarities[positions],
        )

    # Recycled-buffer gather.  Zero-count cores are dropped first so the
    # delta-encoded repeats scatter to strictly increasing offsets.
    buffers.ensure_arc_capacity(total)
    if num_nonempty != counts.shape[0]:
        keep = counts > 0
        cores = cores[keep]
        starts = starts[keep]
        counts = counts[keep]
    block_starts = np.cumsum(counts) - counts
    # Positions are delta-encoded directly: within a segment each position is
    # the previous plus one, and at a segment boundary it jumps from the end
    # of the previous prefix to the next segment's start.  One ones-fill, one
    # O(segments) scatter and one in-place cumsum -- no iota pass.
    positions = buffers.arc_positions[:total]
    positions[:] = 1
    positions[0] = starts[0]
    if counts.shape[0] > 1:
        positions[block_starts[1:]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    np.cumsum(positions, out=positions)
    arc_sources = buffers.arc_sources[:total]
    _segmented_fill(arc_sources, cores, block_starts)
    arc_targets = _take_into(
        neighbor_order.neighbors, positions, buffers.arc_targets[:total]
    )
    arc_similarities = _take_into(
        neighbor_order.similarities, positions, buffers.arc_similarities[:total]
    )
    return arc_sources, arc_targets, arc_similarities


def cluster_from_arcs(
    graph,
    cores: np.ndarray,
    arc_sources: np.ndarray,
    arc_targets: np.ndarray,
    arc_similarities: np.ndarray,
    mu: int,
    epsilon: float,
    *,
    scheduler: Scheduler,
    deterministic_borders: bool = False,
    buffers: QueryBuffers | None = None,
) -> Clustering:
    """Clustering from precomputed cores and their ε-similar arcs.

    The tail of Algorithm 5 -- union-find over the core-core arcs followed by
    border attachment -- shared by the single-query path (:func:`cluster`)
    and the batched multi-parameter planner
    (:mod:`repro.core.sweep_query`), which supplies arcs it gathered once for
    a whole ε-group.  Arcs must arrive in the same traversal order the
    single-query path produces (cores in ``CO[μ]``-prefix order, each core's
    arcs in neighbor-order) so that the first-writer border rule matches
    bit for bit.

    When ``buffers`` is given its recycled union-find forest replaces the
    fresh O(n) one; every touched forest entry is restored before returning,
    so repeated calls against the same buffers stay O(result) in scratch
    cost.  The returned :class:`Clustering` always owns freshly allocated
    label/mask arrays -- buffer reuse never aliases results.
    """
    n = graph.num_vertices
    labels = np.full(n, UNCLUSTERED, dtype=np.int64)
    core_mask = np.zeros(n, dtype=bool)
    if cores.size == 0:
        return Clustering(labels, core_mask, mu=mu, epsilon=epsilon)
    core_mask[cores] = True

    # Connectivity over the ε-similar core-core edges (union-find, Section 6.2).
    core_to_core = core_mask[arc_targets]
    cc_sources = arc_sources[core_to_core]
    cc_targets = arc_targets[core_to_core]
    if buffers is not None:
        buffers.check_size(n)
        forest = buffers.forest
        try:
            forest.union_batch(scheduler, cc_sources, cc_targets)
            labels[cores] = forest.find_batch(scheduler, cores)
        finally:
            # Restore even when the query dies mid-flight: a dirty recycled
            # forest would silently over-merge every later query.
            forest.reset_batch(cc_sources, cc_targets, cores)
    else:
        forest = UnionFind(n)
        forest.union_batch(scheduler, cc_sources, cc_targets)
        labels[cores] = forest.find_batch(scheduler, cores)

    # Border vertices: non-core endpoints of ε-similar edges out of cores.
    border_arcs = ~core_to_core
    attach_borders(
        labels,
        arc_sources[border_arcs],
        arc_targets[border_arcs],
        arc_similarities[border_arcs],
        scheduler=scheduler,
        deterministic=deterministic_borders,
    )
    return Clustering(labels, core_mask, mu=mu, epsilon=epsilon)


def resolve_border_assignments(
    border_sources: np.ndarray,
    border_targets: np.ndarray,
    border_similarities: np.ndarray,
    *,
    deterministic: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Pick the winning core arc for every border vertex (Algorithm 4).

    ``border_*`` list the ε-similar core -> non-core arcs in traversal order.
    Returns ``(border_vertices, winners)`` where ``winners[i]`` indexes the
    arc whose source cluster ``border_vertices[i]`` joins, i.e. the
    assignment is ``labels[border_vertices] = labels[border_sources[winners]]``.
    Shared by :func:`attach_borders` (which applies it to a dense label
    array) and the compact serving path of :mod:`repro.serve.session` (which
    never materialises dense labels).
    """
    if deterministic:
        # Most similar neighboring core wins; ties go to the lower core id.
        order = np.lexsort((border_sources, -border_similarities))
    else:
        # Arbitrary assignment: the paper uses a compare-and-swap, which
        # keeps the first writer; we mirror that by keeping the first arc
        # in traversal order.
        order = np.arange(border_targets.shape[0])
    # First occurrence of every border vertex in priority order, found
    # with one sort-based pass instead of a per-arc Python loop
    # (np.unique returns the index of the first occurrence).
    border_vertices, winner = np.unique(border_targets[order], return_index=True)
    return border_vertices, order[winner]


def attach_borders(
    labels: np.ndarray,
    border_sources: np.ndarray,
    border_targets: np.ndarray,
    border_similarities: np.ndarray,
    *,
    scheduler: Scheduler,
    deterministic: bool = False,
) -> None:
    """Assign border vertices to a neighboring core's cluster (Algorithm 4).

    ``border_*`` list the ε-similar core -> non-core arcs; ``labels`` must
    already hold the core labels and is updated in place.  Shared by the
    single-query tail above and the batched sweep planner.
    """
    scheduler.charge(
        int(border_targets.size), ceil_log2(max(int(border_targets.size), 1)) + 1.0
    )
    if not border_targets.size:
        return
    border_vertices, winners = resolve_border_assignments(
        border_sources,
        border_targets,
        border_similarities,
        deterministic=deterministic,
    )
    labels[border_vertices] = labels[border_sources[winners]]


def cluster(
    graph,
    neighbor_order,
    core_order,
    mu: int,
    epsilon: float,
    *,
    scheduler: Scheduler | None = None,
    deterministic_borders: bool = False,
    buffers: QueryBuffers | None = None,
) -> Clustering:
    """SCAN clustering for ``(mu, epsilon)`` from the index (Algorithm 5).

    ``buffers`` (optional) recycles a :class:`QueryBuffers` union-find forest
    across calls instead of allocating a fresh O(n) forest per query; results
    are bit-identical either way.
    """
    scheduler = scheduler if scheduler is not None else Scheduler()
    cores = get_cores(core_order, mu, epsilon, scheduler=scheduler)
    if cores.size == 0:
        return Clustering(
            np.full(graph.num_vertices, UNCLUSTERED, dtype=np.int64),
            np.zeros(graph.num_vertices, dtype=bool),
            mu=mu,
            epsilon=epsilon,
        )
    arc_sources, arc_targets, arc_similarities = _epsilon_similar_arcs(
        neighbor_order, cores, epsilon, scheduler, buffers=buffers
    )
    return cluster_from_arcs(
        graph,
        cores,
        arc_sources,
        arc_targets,
        arc_similarities,
        mu,
        epsilon,
        scheduler=scheduler,
        deterministic_borders=deterministic_borders,
        buffers=buffers,
    )
