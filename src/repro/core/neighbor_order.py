"""The neighbor order ``NO``: adjacency lists sorted by non-increasing similarity.

The neighbor order is one half of the GS*-Index structure (Section 3.2).  For
every vertex ``v`` it stores ``v``'s neighbors sorted from most to least
similar, together with the similarity scores.  Because the lists are sorted,
the ε-similar neighbors of ``v`` form a *prefix*, retrievable with a doubling
search in time proportional to its length, and the core threshold of ``v``
for a parameter μ is simply the similarity at position μ-2 of the list (the
paper's 1-indexed ``NO[v][μ]``, whose first entry is ``v`` itself with
similarity 1).

Construction sorts all ``2m`` (vertex, neighbor, similarity) triples with a
single segmented sort, which lets the integer-sort bounds of Section 4.1.2
apply when the similarity scores are quantised rationals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..parallel.scheduler import Scheduler
from ..parallel.sorting import segmented_sort_by_key, similarity_rank_keys
from ..similarity.exact import EdgeSimilarities
from .doubling import prefix_length_at_least


@dataclass
class NeighborOrder:
    """Per-vertex neighbor lists sorted by non-increasing similarity.

    Attributes
    ----------
    indptr:
        CSR offsets (identical to the graph's ``indptr``).
    neighbors:
        Neighbor ids, sorted within each vertex's segment by non-increasing
        similarity (ties broken by ascending neighbor id).
    similarities:
        Similarity scores aligned with ``neighbors``.
    """

    indptr: np.ndarray
    neighbors: np.ndarray
    similarities: np.ndarray

    @property
    def num_vertices(self) -> int:
        """Number of vertices the order covers."""
        return int(self.indptr.shape[0] - 1)

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors_of(self, v: int) -> np.ndarray:
        """Neighbors of ``v`` from most to least similar."""
        return self.neighbors[self.indptr[v]:self.indptr[v + 1]]

    def similarities_of(self, v: int) -> np.ndarray:
        """Similarity scores aligned with :meth:`neighbors_of`."""
        return self.similarities[self.indptr[v]:self.indptr[v + 1]]

    def epsilon_neighborhood_size(
        self, v: int, epsilon: float, *, scheduler: Scheduler | None = None
    ) -> int:
        """Number of neighbors of ``v`` with similarity at least ``epsilon``.

        Uses doubling search, so the cost is logarithmic in the answer.  The
        vertex itself is *not* counted (add one for the closed ε-neighborhood).
        """
        return prefix_length_at_least(
            self.similarities_of(v), epsilon, scheduler=scheduler
        )

    def epsilon_neighbors(
        self, v: int, epsilon: float, *, scheduler: Scheduler | None = None
    ) -> np.ndarray:
        """Neighbors of ``v`` with similarity at least ``epsilon`` (a prefix of NO[v])."""
        count = self.epsilon_neighborhood_size(v, epsilon, scheduler=scheduler)
        return self.neighbors_of(v)[:count]

    def core_threshold(self, v: int, mu: int) -> float | None:
        """Largest ε for which ``v`` is a core under parameter ``mu``.

        Following the paper's convention, the closed ε-neighborhood of ``v``
        always contains ``v`` itself (similarity 1), so the threshold for
        ``mu`` is the similarity of the ``(mu - 1)``-th most similar neighbor.
        Returns ``None`` when ``v``'s closed neighborhood is smaller than
        ``mu`` (it can never be a core for that ``mu``).
        """
        if mu <= 1:
            return 1.0
        if self.degree(v) < mu - 1:
            return None
        return float(self.similarities_of(v)[mu - 2])


def build_neighbor_order(
    graph: Graph,
    similarities: EdgeSimilarities,
    *,
    scheduler: Scheduler | None = None,
    use_integer_sort: bool = True,
    executor=None,
) -> NeighborOrder:
    """Construct the neighbor order from precomputed edge similarities.

    ``use_integer_sort`` applies the rational-to-integer quantisation of
    Section 4.1.2 so the cheaper integer-sort bound is charged; the resulting
    order is identical because the quantisation is order-preserving at the
    resolution used.  ``executor`` shards the segmented sort across worker
    processes (see :mod:`repro.parallel.execute`); the stored order is
    bit-identical at any worker count.
    """
    scheduler = scheduler if scheduler is not None else Scheduler()
    arc_similarities = similarities.arc_values()
    arc_positions = np.arange(graph.num_arcs, dtype=np.int64)

    if use_integer_sort:
        keys = similarity_rank_keys(arc_similarities)
    else:
        keys = arc_similarities

    sorted_positions = segmented_sort_by_key(
        scheduler,
        graph.indptr,
        arc_positions,
        keys,
        descending=True,
        use_integer_sort=use_integer_sort,
        executor=executor,
    )
    return NeighborOrder(
        indptr=graph.indptr.copy(),
        neighbors=graph.indices[sorted_positions],
        similarities=arc_similarities[sorted_positions],
    )
