"""The parallel SCAN index: construction and the public query interface.

:class:`ScanIndex` bundles everything the paper calls "the index": the
similarity score of every edge, the neighbor order ``NO`` and the core order
``CO``.  Building it is the expensive, parallelisable step (Section 4.1);
once built, clusterings for arbitrary ``(μ, ε)`` parameters are cheap
(Section 4.2), which is the point of the index-based approach -- users
typically explore many parameter settings in search of a good clustering.

Typical usage::

    from repro import ScanIndex
    from repro.graphs import planted_partition

    graph = planted_partition(num_clusters=10, cluster_size=50, seed=0)
    index = ScanIndex.build(graph, measure="cosine")
    clustering = index.query(mu=5, epsilon=0.6)

Approximate (LSH-based) construction is selected by passing an
:class:`~repro.lsh.approximate.ApproximationConfig`::

    index = ScanIndex.build(graph, approximate=ApproximationConfig(num_samples=128))

A built index is a durable artifact: :meth:`ScanIndex.save` flattens it into
the columnar on-disk format of :mod:`repro.storage` and :meth:`ScanIndex.load`
memory-maps it back -- no similarity computation and no sorting happen on the
load path.  Whole parameter sweeps go through :meth:`ScanIndex.query_many`,
which plans a batch of ``(μ, ε)`` settings together so shared index probes are
executed once::

    index.save("orkut.scanidx")
    index = ScanIndex.load("orkut.scanidx")
    clusterings = index.query_many([(5, 0.6), (5, 0.7), (8, 0.6)])

For long-lived serving -- many queries against one loaded index, often with
repeats -- open a :meth:`ScanIndex.session`, which recycles query scratch
across calls and caches results under ε-snapped keys (see
:mod:`repro.serve`)::

    session = index.session()
    result = session.serve(5, 0.6)       # compact answer, cached
    clustering = session.query(5, 0.6)   # dense Clustering, cache hit

When the graph evolves, a batch of edge insertions/deletions patches the
index in place -- bit-identical to a rebuild on the mutated graph, in work
proportional to the affected neighborhoods (see :mod:`repro.dynamic`);
open sessions are auto-invalidated::

    index.apply_updates(insertions=[(3, 17)], deletions=[(0, 9)])
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from contextlib import nullcontext

from .. import obs
from ..graphs.graph import Graph
from ..lsh.approximate import ApproximationConfig, compute_approximate_similarities
from ..parallel.execute import executor_for
from ..parallel.metrics import CostReport
from ..parallel.scheduler import PAPER_NUM_THREADS, Scheduler
from ..similarity.exact import EdgeSimilarities, compute_similarities
from .clustering import Clustering
from .core_order import CoreOrder, build_core_order
from .hubs import classify_unclustered
from .neighbor_order import NeighborOrder, build_neighbor_order
from .query import cluster as _cluster
from .query import get_cores


@dataclass
class ScanIndex:
    """Precomputed SCAN index over a graph (GS*-Index structure, built in parallel).

    Attributes
    ----------
    graph:
        The indexed graph.
    similarities:
        Per-edge similarity scores the index was built from.
    neighbor_order, core_order:
        The two sorted orders queries read prefixes of.
    construction_report:
        Work/span/wall-clock record of the construction, used by the
        benchmark harness.
    update_lineage:
        One record per applied update batch (see :meth:`apply_updates`);
        empty for a freshly built index.  Persisted in the artifact header
        so a loaded index knows its mutation history.
    """

    graph: Graph
    similarities: EdgeSimilarities
    neighbor_order: NeighborOrder
    core_order: CoreOrder
    construction_report: CostReport
    update_lineage: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        *,
        measure: str = "cosine",
        backend: str = "batch",
        approximate: ApproximationConfig | None = None,
        use_integer_sort: bool = True,
        num_workers: int = PAPER_NUM_THREADS,
        scheduler: Scheduler | None = None,
        jobs: int = 1,
    ) -> "ScanIndex":
        """Build the index, computing similarities from scratch.

        Parameters
        ----------
        graph:
            Input graph (weighted graphs require ``measure="cosine"``).
        measure:
            Structural similarity measure (``cosine``, ``jaccard``, ``dice``).
        backend:
            Exact similarity backend (``batch`` -- the vectorised default --
            ``merge``, ``hash``, ``matmul``); ignored when ``approximate``
            is given.
        approximate:
            When provided, similarities are estimated with LSH sketches
            (SimHash for cosine, MinHash for Jaccard) instead of computed
            exactly; see Section 5 of the paper.
        use_integer_sort:
            Sort the orders with the integer-sort bounds of Section 4.1.2.
        num_workers:
            *Simulated* processor count recorded on the scheduler (work-span
            accounting only; does not change how code executes).
        scheduler:
            Externally owned scheduler for cost accounting; a fresh one is
            created when omitted.
        jobs:
            *Real* worker processes for the construction hot spots (the
            batch similarity pass and both segmented order sorts), executed
            through :mod:`repro.parallel.execute` over shared-memory
            columns.  ``1`` (default) is the serial code path, ``0`` means
            every visible core, and any count produces a bit-identical
            index.  Falls back to serial -- warning once -- when shared
            memory is unavailable or the graph is below the measured size
            floor where pool startup dominates.
        """
        scheduler = scheduler if scheduler is not None else Scheduler(num_workers)
        started = time.perf_counter()
        with executor_for(jobs, num_arcs=graph.num_arcs) as executor:
            with obs.span(
                "build.similarities",
                measure=measure,
                backend="lsh" if approximate is not None else backend,
                edges=graph.num_edges,
            ):
                if approximate is not None:
                    if approximate.measure != measure:
                        approximate = ApproximationConfig(
                            measure=measure,
                            num_samples=approximate.num_samples,
                            seed=approximate.seed,
                            use_k_partition_minhash=approximate.use_k_partition_minhash,
                            degree_threshold=approximate.degree_threshold,
                        )
                    similarities = compute_approximate_similarities(
                        graph, approximate, scheduler=scheduler
                    )
                else:
                    similarities = compute_similarities(
                        graph,
                        measure=measure,
                        backend=backend,
                        scheduler=scheduler,
                        executor=executor,
                    )
            return cls.build_from_similarities(
                graph,
                similarities,
                use_integer_sort=use_integer_sort,
                scheduler=scheduler,
                _started=started,
                _executor=executor,
            )

    @classmethod
    def build_from_similarities(
        cls,
        graph: Graph,
        similarities: EdgeSimilarities,
        *,
        use_integer_sort: bool = True,
        scheduler: Scheduler | None = None,
        jobs: int = 1,
        _started: float | None = None,
        _executor=None,
    ) -> "ScanIndex":
        """Build the index from similarity scores computed elsewhere.

        ``jobs`` shards the two segmented order sorts across worker
        processes exactly as in :meth:`build` (``_executor`` lets an already
        open executor be reused instead).
        """
        scheduler = scheduler if scheduler is not None else Scheduler()
        started = time.perf_counter() if _started is None else _started
        if _executor is not None:
            executor_context = nullcontext(_executor)
        else:
            executor_context = executor_for(jobs, num_arcs=graph.num_arcs)
        with executor_context as executor:
            with obs.span("build.neighbor_order", arcs=graph.num_arcs):
                neighbor_order = build_neighbor_order(
                    graph,
                    similarities,
                    scheduler=scheduler,
                    use_integer_sort=use_integer_sort,
                    executor=executor,
                )
            with obs.span("build.core_order", arcs=graph.num_arcs):
                core_order = build_core_order(
                    graph,
                    neighbor_order,
                    scheduler=scheduler,
                    use_integer_sort=use_integer_sort,
                    executor=executor,
                )
        elapsed = time.perf_counter() - started
        obs.histogram("build.construction_seconds").observe(elapsed)
        report = CostReport.from_counter(
            label=f"index-construction[{similarities.measure}]",
            counter=scheduler.counter,
            wall_seconds=elapsed,
            num_workers=scheduler.num_workers,
            measure=similarities.measure,
        )
        return cls(
            graph=graph,
            similarities=similarities,
            neighbor_order=neighbor_order,
            core_order=core_order,
            construction_report=report,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def core_vertices(
        self, mu: int, epsilon: float, *, scheduler: Scheduler | None = None
    ) -> np.ndarray:
        """Core vertices under ``(mu, epsilon)`` (Algorithm 3)."""
        return get_cores(self.core_order, mu, epsilon, scheduler=scheduler)

    def query(
        self,
        mu: int,
        epsilon: float,
        *,
        scheduler: Scheduler | None = None,
        deterministic_borders: bool = False,
        classify_hubs_and_outliers: bool = False,
    ) -> Clustering:
        """SCAN clustering for ``(mu, epsilon)`` (Algorithm 5).

        ``deterministic_borders`` assigns each border vertex to its most
        similar core neighbor (ties to the lower vertex id) instead of an
        arbitrary one, which makes repeated queries bit-for-bit reproducible
        (used by the quality experiments in Section 7.3.4).
        ``classify_hubs_and_outliers`` additionally labels every unclustered
        vertex as hub or outlier (Section 4.3).
        """
        scheduler = scheduler if scheduler is not None else Scheduler()
        clustering = _cluster(
            self.graph,
            self.neighbor_order,
            self.core_order,
            mu,
            epsilon,
            scheduler=scheduler,
            deterministic_borders=deterministic_borders,
        )
        if classify_hubs_and_outliers:
            classify_unclustered(self.graph, clustering, scheduler=scheduler)
        return clustering

    def query_many(
        self,
        pairs: Iterable[tuple[int, float]] | Sequence[tuple[int, float]],
        *,
        scheduler: Scheduler | None = None,
        deterministic_borders: bool = False,
        classify_hubs_and_outliers: bool = False,
    ) -> list[Clustering]:
        """Clusterings for a whole batch of ``(mu, epsilon)`` settings.

        The batch is planned by :mod:`repro.core.sweep_query`: pairs sharing
        an ε reuse one gathered arc set, and all doubling searches run as
        shared batches, so a 50-point parameter sweep costs far less than 50
        :meth:`query` calls.  Results arrive in input order and are identical
        to per-pair :meth:`query` calls with the same options.

        Parameters
        ----------
        pairs:
            Iterable of ``(mu, epsilon)`` settings; duplicates are allowed
            and answered independently.  Every ``mu`` must be at least 2 and
            every ``epsilon`` in ``[0, 1]``.
        scheduler:
            Externally owned scheduler for work-span accounting; a fresh one
            is created when omitted.
        deterministic_borders:
            Attach each border vertex to its most similar core neighbor
            (ties to the lower vertex id) instead of the traversal-order
            first writer; makes repeated sweeps bit-for-bit reproducible.
        classify_hubs_and_outliers:
            Additionally label every unclustered vertex of every result as
            hub or outlier (Section 4.3).
        """
        from .sweep_query import query_many as _query_many

        scheduler = scheduler if scheduler is not None else Scheduler()
        clusterings = _query_many(
            self.graph,
            self.neighbor_order,
            self.core_order,
            pairs,
            scheduler=scheduler,
            deterministic_borders=deterministic_borders,
        )
        if classify_hubs_and_outliers:
            for clustering in clusterings:
                classify_unclustered(self.graph, clustering, scheduler=scheduler)
        return clusterings

    # ------------------------------------------------------------------
    # Serving (the serve/ subsystem seam)
    # ------------------------------------------------------------------
    def session(self, *, cache_size: int = 256, cache=None):
        """Open a persistent :class:`~repro.serve.session.ClusterSession`.

        The session owns recycled query buffers (allocated once at index
        size) and a bounded LRU result cache keyed by ε-snapped parameters,
        so a stream of queries -- especially one with repeats -- is served
        with O(result) steady-state allocation and bit-identical answers.

        Parameters
        ----------
        cache_size:
            Capacity of the session-owned result cache; zero or negative
            disables caching (buffer recycling still applies).
        cache:
            Share an existing :class:`~repro.serve.cache.ResultCache`
            between sessions instead; sessions over this same index share
            a cache generation (and so each other's entries), while any
            other index binds its own, so entries can never cross indexes.
        """
        from ..serve.session import ClusterSession

        return ClusterSession(self, cache_size=cache_size, cache=cache)

    # ------------------------------------------------------------------
    # Mutation (the dynamic/ subsystem seam)
    # ------------------------------------------------------------------
    def apply_updates(
        self,
        batch=None,
        *,
        insertions=None,
        deletions=None,
        scheduler: Scheduler | None = None,
        jobs: int = 1,
    ):
        """Apply a batch of edge insertions/deletions **in place**.

        The index is repaired, not rebuilt: only edges incident to a
        touched endpoint have their similarity recomputed, and only the
        affected vertices' runs of the neighbor and core orders are
        respliced (merges of sorted runs; see :mod:`repro.dynamic`).  The
        result is bit-identical to ``ScanIndex.build`` on the mutated
        graph -- same stored columns, same query answers in both border
        modes -- at a fraction of the cost for small batches
        (``benchmarks/bench_updates.py`` tracks the ratio).

        Every open serving session over this index is auto-invalidated:
        the mutation bumps the index's serving generations, so cached
        pre-update results can never be served afterwards.

        Parameters
        ----------
        batch:
            A prepared :class:`~repro.dynamic.UpdateBatch`; mutually
            exclusive with the keyword edge lists.
        insertions:
            Iterable of ``(u, v)`` or ``(u, v, weight)`` edges to add.
        deletions:
            Iterable of ``(u, v)`` edges to remove.
        scheduler:
            Work-span accounting target; a fresh one is used when omitted.
        jobs:
            Real worker processes for the high-churn construction-path
            re-sort fallback (same knob and same bit-identity contract as
            :meth:`build`; the low-churn merge strategy is memory-bound and
            stays serial).

        Returns an :class:`~repro.dynamic.UpdateReport`.  Raises
        ``ValueError`` for LSH-approximate indexes, edges already present
        (insert) or absent (delete), and out-of-range endpoints.
        """
        from ..dynamic import UpdateBatch
        from ..dynamic.patch import apply_updates as _apply_updates

        if batch is None:
            batch = UpdateBatch.from_edges(insertions or (), deletions or ())
        elif insertions is not None or deletions is not None:
            raise ValueError(
                "pass either a prepared batch or insertions/deletions lists, not both"
            )
        return _apply_updates(self, batch, scheduler=scheduler, jobs=jobs)

    # ------------------------------------------------------------------
    # Persistence (the storage/ subsystem seam)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Persist the index as a columnar artifact directory.

        See :mod:`repro.storage.format` for the on-disk layout (uncompressed
        ``.npz`` columns plus a JSON header).

        Parameters
        ----------
        path:
            Target artifact *directory*.  The write is staged in a scratch
            sibling, fsynced, and swapped in through the backup-and-rename
            commit protocol of :mod:`repro.storage.integrity`, so a save
            interrupted at any instant leaves either the complete previous
            artifact or the complete new one -- never a torn mix.  The
            header records a CRC-32 per column so the write can later be
            proven intact (``repro index verify``).

        Returns the path written, for chaining into :meth:`load`.
        """
        from ..storage.artifact import save_index

        return save_index(self, path)

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        mmap_mode: str | None = "r",
        verify: bool = False,
    ) -> "ScanIndex":
        """Load a saved index artifact, memory-mapping its columns.

        The load path performs no similarity computation and no sorting: the
        graph, the per-edge scores and both orders come straight from the
        stored columns.

        Parameters
        ----------
        path:
            Artifact directory written by :meth:`save`.
        mmap_mode:
            ``"r"`` (default) memory-maps every column read-only straight
            out of the uncompressed ``.npz``, so no column data is touched
            until a query reads it; ``None`` reads everything into memory
            up front (use when the artifact lives on storage slower than
            page-fault latency tolerates).
        verify:
            ``True`` additionally checks every column's CRC-32 against the
            header before returning (the deep integrity check; reads every
            byte).  The fast structural check -- header consistency, column
            dtypes/lengths, graph shape -- always runs.

        A target missing because a writer died between its commit renames
        is recovered from its parked backup first (lineage-checked; see
        :func:`repro.storage.integrity.recover_artifact`).

        Raises :class:`~repro.storage.format.ArtifactFormatError` when the
        path is missing, not an artifact, corrupt, or of an unsupported
        format version -- and its subclass
        :class:`~repro.storage.integrity.ArtifactIntegrityError` when
        stored bytes fail their recorded checksums.
        """
        from ..storage.artifact import load_index

        return load_index(path, mmap_mode=mmap_mode, verify=verify)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def measure(self) -> str:
        """Similarity measure the index was built with."""
        return self.similarities.measure

    def index_size_entries(self) -> int:
        """Number of stored (vertex, neighbor) and (vertex, μ) entries (O(m))."""
        return int(self.neighbor_order.neighbors.shape[0] + self.core_order.vertices.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScanIndex(n={self.graph.num_vertices}, m={self.graph.num_edges}, "
            f"measure={self.measure!r})"
        )
