"""Approximate all-edge similarities via LSH with the low-degree heuristic.

Section 6.3 of the paper observes that sketching is only worthwhile for
high-degree vertices: if a vertex's degree is small relative to the number of
samples ``k``, computing its similarities exactly is both cheaper and more
accurate than comparing ``k``-length sketches.  The implementation therefore

1. marks a vertex *high-degree* when its degree exceeds ``k`` (cosine /
   SimHash) or ``3k/2`` (Jaccard / MinHash);
2. approximates only the edges whose *both* endpoints are high-degree,
   comparing their sketches in one batched array pass;
3. computes every remaining edge exactly with the vectorised batch
   similarity engine restricted to those edges
   (:func:`~repro.similarity.batch.edge_numerators_for_subset`), so the
   low-degree side of the split also runs without per-edge Python loops.

The result is an :class:`~repro.similarity.exact.EdgeSimilarities` whose
``measure`` is prefixed with ``approx_`` so downstream code can tell the two
apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..parallel.metrics import ceil_log2
from ..parallel.scheduler import Scheduler
from ..similarity.batch import edge_numerators_for_subset
from ..similarity.exact import EdgeSimilarities
from .minhash import estimate_jaccard_batch, k_partition_minhash_sketches, minhash_sketches
from .simhash import estimate_cosine_batch, simhash_sketches

#: Degree multiple above which a vertex is sketched, per similarity measure.
DEGREE_THRESHOLD_FACTOR = {"cosine": 1.0, "jaccard": 1.5}


@dataclass(frozen=True)
class ApproximationConfig:
    """Settings of one approximate similarity computation.

    Attributes
    ----------
    measure:
        ``"cosine"`` (SimHash) or ``"jaccard"`` (MinHash).
    num_samples:
        Sketch length ``k``.
    seed:
        Seed of the sketching randomness.
    use_k_partition_minhash:
        Use the cheaper one-permutation variant for Jaccard (the paper's
        implementation choice).  Ignored for cosine.
    degree_threshold:
        Degree above which a vertex is sketched.  ``None`` selects the
        paper's heuristic (``k`` for cosine, ``1.5 k`` for Jaccard).
    """

    measure: str = "cosine"
    num_samples: int = 64
    seed: int = 0
    use_k_partition_minhash: bool = True
    degree_threshold: int | None = None

    def resolved_threshold(self) -> int:
        """Effective high-degree threshold."""
        if self.degree_threshold is not None:
            return int(self.degree_threshold)
        factor = DEGREE_THRESHOLD_FACTOR[self.measure]
        return int(np.ceil(factor * self.num_samples))

    def __post_init__(self) -> None:
        if self.measure not in DEGREE_THRESHOLD_FACTOR:
            raise ValueError(
                f"measure must be one of {tuple(DEGREE_THRESHOLD_FACTOR)}, got {self.measure!r}"
            )
        if self.num_samples < 1:
            raise ValueError("num_samples must be >= 1")


def _exact_similarities_for_edges(
    graph: Graph,
    edge_ids: np.ndarray,
    measure: str,
    scheduler: Scheduler,
) -> np.ndarray:
    """Exact similarity of the selected edges only (the low-degree fallback).

    Uses the same "probe the larger neighborhood with the smaller one"
    strategy as Algorithm 1, restricted to the requested edges, executed as
    one batched array pass (:func:`~repro.similarity.batch.
    edge_numerators_for_subset`) rather than a per-edge Python loop; work
    still adds up across edges with the span of the largest single edge.
    """
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    numerators = edge_numerators_for_subset(graph, edge_ids, scheduler)
    edge_u_all, edge_v_all = graph.edge_list()
    u = edge_u_all[edge_ids]
    v = edge_v_all[edge_ids]

    if measure == "cosine":
        if graph.is_weighted:
            squared = np.zeros(graph.num_vertices, dtype=np.float64)
            np.add.at(squared, graph.arc_sources(), graph.arc_weights ** 2)
            norms = np.sqrt(squared + 1.0)
        else:
            norms = np.sqrt(graph.degrees.astype(np.float64) + 1.0)
        return numerators / (norms[u] * norms[v])
    # Jaccard over closed neighborhoods (unweighted graphs only).
    closed = (graph.degrees[u] + 1.0) + (graph.degrees[v] + 1.0)
    return numerators / (closed - numerators)


def compute_approximate_similarities(
    graph: Graph,
    config: ApproximationConfig | None = None,
    *,
    scheduler: Scheduler | None = None,
    **config_kwargs,
) -> EdgeSimilarities:
    """Approximate similarity score of every edge of ``graph``.

    Either pass an :class:`ApproximationConfig` or the individual fields as
    keyword arguments (``measure=...``, ``num_samples=...``, ``seed=...``).
    """
    if config is None:
        config = ApproximationConfig(**config_kwargs)
    elif config_kwargs:
        raise ValueError("pass either a config object or keyword fields, not both")
    if graph.is_weighted and config.measure != "cosine":
        raise ValueError("weighted graphs only support the (weighted) cosine measure")
    scheduler = scheduler if scheduler is not None else Scheduler()

    measure_label = f"approx_{config.measure}"
    if graph.num_edges == 0:
        return EdgeSimilarities(graph, np.zeros(0, dtype=np.float64), measure_label, "lsh")

    threshold = config.resolved_threshold()
    degrees = graph.degrees
    high_degree = degrees > threshold
    edge_u, edge_v = graph.edge_list()
    approximate_mask = high_degree[edge_u] & high_degree[edge_v]
    scheduler.charge(graph.num_edges, ceil_log2(max(graph.num_edges, 1)) + 1.0)

    values = np.zeros(graph.num_edges, dtype=np.float64)

    # Sketch only vertices that are high-degree *and* have a high-degree
    # neighbor (Section 6.3: no sketches are needed otherwise).
    sketch_vertices = np.unique(
        np.concatenate([edge_u[approximate_mask], edge_v[approximate_mask]])
    )
    if sketch_vertices.size:
        if config.measure == "cosine":
            sketches = simhash_sketches(
                graph,
                config.num_samples,
                seed=config.seed,
                scheduler=scheduler,
                vertices=sketch_vertices,
            )
            values[approximate_mask] = estimate_cosine_batch(
                sketches,
                edge_u[approximate_mask],
                edge_v[approximate_mask],
                scheduler=scheduler,
            )
        else:
            if config.use_k_partition_minhash:
                sketches = k_partition_minhash_sketches(
                    graph,
                    config.num_samples,
                    seed=config.seed,
                    scheduler=scheduler,
                    vertices=sketch_vertices,
                )
            else:
                sketches = minhash_sketches(
                    graph,
                    config.num_samples,
                    seed=config.seed,
                    scheduler=scheduler,
                    vertices=sketch_vertices,
                )
            values[approximate_mask] = estimate_jaccard_batch(
                sketches,
                edge_u[approximate_mask],
                edge_v[approximate_mask],
                k_partition=config.use_k_partition_minhash,
                scheduler=scheduler,
            )

    exact_edges = np.flatnonzero(~approximate_mask)
    if exact_edges.size:
        values[exact_edges] = _exact_similarities_for_edges(
            graph, exact_edges, config.measure, scheduler
        )

    return EdgeSimilarities(graph, values, measure_label, "lsh")
