"""Locality-sensitive hashing: SimHash, MinHash, and approximate similarities."""

from .simhash import (
    box_muller,
    estimate_angle,
    estimate_cosine,
    estimate_cosine_batch,
    gaussian_projections,
    simhash_sketches,
)
from .minhash import (
    EMPTY_BUCKET,
    estimate_jaccard,
    estimate_jaccard_batch,
    estimate_jaccard_k_partition,
    k_partition_minhash_sketches,
    minhash_sketches,
)
from .approximate import (
    DEGREE_THRESHOLD_FACTOR,
    ApproximationConfig,
    compute_approximate_similarities,
)
from .theory import (
    hoeffding_failure_probability,
    minhash_required_samples,
    minhash_uncertainty_interval,
    simhash_required_samples,
    simhash_uncertainty_interval,
)

__all__ = [
    "box_muller",
    "estimate_angle",
    "estimate_cosine",
    "estimate_cosine_batch",
    "gaussian_projections",
    "simhash_sketches",
    "EMPTY_BUCKET",
    "estimate_jaccard",
    "estimate_jaccard_batch",
    "estimate_jaccard_k_partition",
    "k_partition_minhash_sketches",
    "minhash_sketches",
    "DEGREE_THRESHOLD_FACTOR",
    "ApproximationConfig",
    "compute_approximate_similarities",
    "hoeffding_failure_probability",
    "minhash_required_samples",
    "minhash_uncertainty_interval",
    "simhash_required_samples",
    "simhash_uncertainty_interval",
]
