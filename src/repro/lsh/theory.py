"""Sample-size bounds and misclassification intervals (Theorems 5.2 and 5.3).

The theorems state that if enough LSH samples are drawn, then with high
probability every edge whose exact similarity lies *outside* a small interval
around the threshold ε is classified on the correct side of ε by the
approximate similarity.  These helpers expose the bounds so users (and the
property tests) can pick sample counts with guaranteed behaviour.
"""

from __future__ import annotations

import math


def simhash_required_samples(num_vertices: int, num_edges: int, delta: float) -> int:
    """Samples needed by Theorem 5.2: ``k >= π² ln(n m) / (2 δ²)``."""
    _validate(num_vertices, num_edges, delta)
    return int(math.ceil(math.pi ** 2 * math.log(num_vertices * num_edges) / (2.0 * delta ** 2)))


def minhash_required_samples(num_vertices: int, num_edges: int, delta: float) -> int:
    """Samples needed by Theorem 5.3: ``k >= ln(n m) / (2 δ²)``."""
    _validate(num_vertices, num_edges, delta)
    return int(math.ceil(math.log(num_vertices * num_edges) / (2.0 * delta ** 2)))


def simhash_uncertainty_interval(epsilon: float, delta: float) -> tuple[float, float]:
    """Similarity interval around ε where SimHash misclassification is allowed.

    Theorem 5.2 guarantees correct classification for edges with exact cosine
    similarity outside ``(ε - δ, ε + sqrt(1 - ε²) δ)``.
    """
    _validate_threshold(epsilon, delta)
    return (epsilon - delta, epsilon + math.sqrt(max(0.0, 1.0 - epsilon ** 2)) * delta)


def minhash_uncertainty_interval(epsilon: float, delta: float) -> tuple[float, float]:
    """Similarity interval around ε where MinHash misclassification is allowed.

    Theorem 5.3 guarantees correct classification for edges with exact Jaccard
    similarity outside ``(ε - δ, ε + δ)``.
    """
    _validate_threshold(epsilon, delta)
    return (epsilon - delta, epsilon + delta)


def hoeffding_failure_probability(num_samples: int, delta: float, *, simhash: bool = True) -> float:
    """Per-edge failure probability bound used inside the theorem proofs.

    For SimHash the estimate of the angle deviates by more than δ with
    probability at most ``exp(-2 k δ² / π²)``; for MinHash the Jaccard
    estimate deviates by more than δ with probability at most
    ``exp(-2 k δ²)`` (Hoeffding's inequality).
    """
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    scale = math.pi ** 2 if simhash else 1.0
    return math.exp(-2.0 * num_samples * delta ** 2 / scale)


def _validate(num_vertices: int, num_edges: int, delta: float) -> None:
    if num_vertices < 2 or num_edges < 1:
        raise ValueError("bounds require at least 2 vertices and 1 edge")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")


def _validate_threshold(epsilon: float, delta: float) -> None:
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError("epsilon must lie in [0, 1]")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
