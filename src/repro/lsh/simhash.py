"""SimHash sketches for approximating (weighted) cosine similarity.

SimHash (Charikar 2002) sketches a vector ``x`` by the sign pattern of its
inner products with ``k`` random Gaussian directions.  For two vectors with
angle θ, each coordinate of the sketches differs with probability θ/π, so the
Hamming distance of the sketches estimates the angle and hence the cosine
similarity (Section 2.1.2 of the paper).

The vectors sketched here are the closed-neighborhood weight vectors of the
graph's vertices (with ``w(v, v) = 1``), so comparing the sketches of two
adjacent vertices approximates exactly the similarity the exact engine
computes.  The Gaussian directions are produced with an explicit Box-Muller
transform from a seeded uniform generator, as the paper describes.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.graph import Graph
from ..parallel.metrics import ceil_log2
from ..parallel.scheduler import Scheduler

#: Bound on the ``num_samples x num_probed_arcs`` contribution matrix held in
#: memory at once; larger workloads process the selected vertices in slices.
DEFAULT_CHUNK_ELEMENTS = 1 << 24


def box_muller(rng: np.random.Generator, size: int) -> np.ndarray:
    """Standard normal samples generated with the Box-Muller transform.

    Draws ``ceil(size / 2)`` pairs of uniforms and converts each pair into two
    independent standard normal values.
    """
    pairs = (size + 1) // 2
    u1 = rng.random(pairs)
    u2 = rng.random(pairs)
    # Guard against log(0).
    u1 = np.clip(u1, np.finfo(np.float64).tiny, 1.0)
    radius = np.sqrt(-2.0 * np.log(u1))
    normals = np.empty(2 * pairs, dtype=np.float64)
    normals[0::2] = radius * np.cos(2.0 * np.pi * u2)
    normals[1::2] = radius * np.sin(2.0 * np.pi * u2)
    return normals[:size]


def gaussian_projections(
    num_samples: int,
    num_coordinates: int,
    *,
    seed: int = 0,
) -> np.ndarray:
    """A ``num_samples x num_coordinates`` matrix of Box-Muller normals."""
    rng = np.random.default_rng(seed)
    flat = box_muller(rng, num_samples * num_coordinates)
    return flat.reshape(num_samples, num_coordinates)


def simhash_sketches(
    graph: Graph,
    num_samples: int,
    *,
    seed: int = 0,
    scheduler: Scheduler | None = None,
    vertices: np.ndarray | None = None,
) -> np.ndarray:
    """Boolean SimHash sketches of the selected vertices' closed neighborhoods.

    Returns an ``n x k`` boolean array (rows of unselected vertices are left
    all-False and must not be used).  The charge is ``O(k * Σ degree)`` work
    and ``O(log n + log k)`` span, matching Theorem 5.1's sketching cost.

    Construction is fully vectorised by degree bucketing: vertices of equal
    degree ``d`` gather their neighbors into one ``(group, d)`` index matrix
    and all their dot products compute as one batched array reduction (a
    plain axis sum when unweighted, an ``einsum`` contraction when weighted).
    The only Python loop runs over the distinct degrees present -- never over
    vertices -- and each bucket is sliced so no intermediate block exceeds
    :data:`DEFAULT_CHUNK_ELEMENTS` entries.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    scheduler = scheduler if scheduler is not None else Scheduler()
    n = graph.num_vertices
    projections = gaussian_projections(num_samples, n, seed=seed)
    sketches = np.zeros((n, num_samples), dtype=bool)
    selected = np.arange(n, dtype=np.int64) if vertices is None else np.asarray(vertices)

    total_degree = int(graph.degrees[selected].sum()) if selected.size else 0
    scheduler.charge(
        num_samples * (total_degree + selected.size),
        ceil_log2(max(n, 1)) + ceil_log2(max(num_samples, 1)) + 1.0,
    )
    if selected.size == 0:
        return sketches

    degrees = graph.degrees
    # Row-major view so neighbor gathers copy contiguous rows of length k.
    coordinate_rows = np.ascontiguousarray(projections.T)
    # Closed neighborhood: the self coordinate has weight 1.
    dots = coordinate_rows[selected].copy()
    selected_degrees = degrees[selected]
    for degree in np.unique(selected_degrees).tolist():
        if degree == 0:
            continue
        rows = np.flatnonzero(selected_degrees == degree)
        group_size = max(
            1, DEFAULT_CHUNK_ELEMENTS // max(degree * num_samples, 1)
        )
        for lo in range(0, int(rows.size), group_size):
            group = rows[lo:lo + group_size]
            vertices_of_group = selected[group]
            neighbor_matrix = graph.indices[
                graph.indptr[vertices_of_group][:, None]
                + np.arange(degree, dtype=np.int64)
            ]
            gathered = coordinate_rows[neighbor_matrix]   # (group, degree, k)
            if graph.arc_weights is None:
                dots[group] += gathered.sum(axis=1)
            else:
                weight_matrix = graph.arc_weights[
                    graph.indptr[vertices_of_group][:, None]
                    + np.arange(degree, dtype=np.int64)
                ]
                dots[group] += np.einsum("gdk,gd->gk", gathered, weight_matrix)
    sketches[selected] = dots >= 0.0
    return sketches


def _simhash_sketches_scalar(
    graph: Graph,
    num_samples: int,
    *,
    seed: int = 0,
    vertices: np.ndarray | None = None,
) -> np.ndarray:
    """Reference per-vertex loop the vectorised path is pinned against."""
    n = graph.num_vertices
    projections = gaussian_projections(num_samples, n, seed=seed)
    sketches = np.zeros((n, num_samples), dtype=bool)
    selected = np.arange(n, dtype=np.int64) if vertices is None else np.asarray(vertices)
    for v in selected:
        v = int(v)
        neighbors = graph.neighbors(v)
        weights = graph.neighbor_weights(v)
        dots = projections[:, neighbors] @ weights + projections[:, v]
        sketches[v] = dots >= 0.0
    return sketches


def estimate_angle(sketch_a: np.ndarray, sketch_b: np.ndarray) -> float:
    """Estimated angle (radians) between the vectors behind two sketches."""
    sketch_a = np.asarray(sketch_a, dtype=bool)
    sketch_b = np.asarray(sketch_b, dtype=bool)
    if sketch_a.shape != sketch_b.shape:
        raise ValueError("sketches must have equal length")
    k = sketch_a.shape[0]
    if k == 0:
        raise ValueError("sketches must be non-empty")
    differing = int(np.count_nonzero(sketch_a != sketch_b))
    return differing * math.pi / k


def estimate_cosine(sketch_a: np.ndarray, sketch_b: np.ndarray) -> float:
    """Estimated cosine similarity from two SimHash sketches, clipped to [0, 1].

    Clipping matches the paper's setting: structural similarities of closed
    neighborhoods are always non-negative.
    """
    cosine = math.cos(estimate_angle(sketch_a, sketch_b))
    return min(1.0, max(0.0, cosine))


def estimate_cosine_batch(
    sketches: np.ndarray,
    pairs_u: np.ndarray,
    pairs_v: np.ndarray,
    *,
    scheduler: Scheduler | None = None,
) -> np.ndarray:
    """Vectorised cosine estimates for many vertex pairs at once.

    ``sketches`` is the ``n x k`` array from :func:`simhash_sketches`;
    ``pairs_u`` / ``pairs_v`` are aligned arrays of vertex ids.  Work is
    ``O(k)`` per pair, span ``O(log k)``.
    """
    pairs_u = np.asarray(pairs_u, dtype=np.int64)
    pairs_v = np.asarray(pairs_v, dtype=np.int64)
    if pairs_u.shape != pairs_v.shape:
        raise ValueError("pair arrays must have equal length")
    k = sketches.shape[1]
    if scheduler is not None:
        scheduler.charge(int(pairs_u.size) * k, ceil_log2(max(k, 1)) + 1.0)
    differing = np.count_nonzero(sketches[pairs_u] != sketches[pairs_v], axis=1)
    angles = differing * (math.pi / k)
    return np.clip(np.cos(angles), 0.0, 1.0)
