"""MinHash sketches for approximating Jaccard similarity.

Two flavours are implemented, matching Sections 2.1.2 and 6.3 of the paper:

* **standard MinHash** (Broder 1997): ``k`` independent hash functions, each
  sketch coordinate is the minimum hash value of the set under one function.
  The fraction of agreeing coordinates is an unbiased estimate of the Jaccard
  similarity and obeys the Hoeffding bound of Theorem 5.3.
* **k-partition MinHash** / one-permutation hashing (Li, Owen, Zhang 2012):
  a single hash function partitions the universe into ``k`` buckets and the
  sketch stores the minimum hash per bucket.  Sketching a set of size ``d``
  costs ``O(k + d)`` instead of ``O(k d)``; empty buckets are ignored when
  comparing two sketches.  This is the variant the paper's implementation
  uses for approximate Jaccard similarity.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..parallel.metrics import ceil_log2
from ..parallel.primitives import segmented_ranges
from ..parallel.scheduler import Scheduler

#: Sentinel marking an empty bucket in a k-partition sketch.
EMPTY_BUCKET = np.int64(np.iinfo(np.int64).max)


def _flatten_closed_neighborhoods(
    graph: Graph, selected: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed neighborhoods of ``selected``, flattened into one item array.

    Returns ``(items, starts, lengths)`` where segment ``i`` of ``items``
    holds ``N(selected[i]) ∪ {selected[i]}`` (order within a segment is
    irrelevant to MinHash, which only takes minima).  One segmented gather,
    no per-vertex Python loop.
    """
    lengths = graph.degrees[selected] + 1
    starts = np.cumsum(lengths) - lengths
    items = np.empty(int(lengths.sum()), dtype=np.int64)
    neighbor_dest = segmented_ranges(starts, lengths - 1)
    items[neighbor_dest] = graph.indices[
        segmented_ranges(graph.indptr[selected], lengths - 1)
    ]
    items[starts + lengths - 1] = selected
    return items, starts, lengths

def _random_hash_parameters(num_functions: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-function multipliers and offsets seeding the splitmix64-style hash."""
    rng = np.random.default_rng(seed)
    multipliers = rng.integers(1, 1 << 62, size=num_functions, dtype=np.uint64)
    multipliers = multipliers | np.uint64(1)
    offsets = rng.integers(0, 1 << 62, size=num_functions, dtype=np.uint64)
    return multipliers, offsets


def _hash_values(items: np.ndarray, multiplier: int, offset: int) -> np.ndarray:
    """Well-mixed 61-bit hash of each item, returned as non-negative int64 values.

    A plain multiply-add hash biases small keys toward small hash values (the
    key 0 would always win the MinHash minimum), so the values are passed
    through a splitmix64-style finaliser: arithmetic wraps modulo 2**64 and
    the avalanche steps decorrelate the output from the key magnitude.
    """
    h = items.astype(np.uint64) * np.uint64(multiplier) + np.uint64(offset)
    h ^= h >> np.uint64(30)
    h *= np.uint64(0xBF58476D1CE4E5B9)
    h ^= h >> np.uint64(27)
    h *= np.uint64(0x94D049BB133111EB)
    h ^= h >> np.uint64(31)
    return (h >> np.uint64(3)).astype(np.int64)


def minhash_sketches(
    graph: Graph,
    num_samples: int,
    *,
    seed: int = 0,
    scheduler: Scheduler | None = None,
    vertices: np.ndarray | None = None,
) -> np.ndarray:
    """Standard MinHash sketches of the vertices' closed neighborhoods.

    Returns an ``n x k`` int64 array.  Work ``O(k * Σ degree)``, span
    ``O(log n + log k)``.

    All selected closed neighborhoods are flattened into one item array once;
    each of the ``k`` hash functions is then applied to the whole array and
    the per-vertex minima fall out of one segmented ``np.minimum.reduceat``
    pass.  The only Python loop runs over the ``k`` samples, never over
    vertices, and the minima are bitwise identical to the per-vertex path
    (integer minimum over the same multiset).
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    scheduler = scheduler if scheduler is not None else Scheduler()
    n = graph.num_vertices
    multipliers, offsets = _random_hash_parameters(num_samples, seed)
    sketches = np.full((n, num_samples), EMPTY_BUCKET, dtype=np.int64)
    selected = np.arange(n, dtype=np.int64) if vertices is None else np.asarray(vertices)

    total_degree = int(graph.degrees[selected].sum()) if selected.size else 0
    scheduler.charge(
        num_samples * (total_degree + selected.size),
        ceil_log2(max(n, 1)) + ceil_log2(max(num_samples, 1)) + 1.0,
    )
    if selected.size == 0:
        return sketches

    items, starts, _ = _flatten_closed_neighborhoods(graph, selected)
    for sample in range(num_samples):
        hashed = _hash_values(items, int(multipliers[sample]), int(offsets[sample]))
        # Closed neighborhoods always contain the vertex itself, so every
        # reduceat segment is non-empty.
        sketches[selected, sample] = np.minimum.reduceat(hashed, starts)
    return sketches


def _minhash_sketches_scalar(
    graph: Graph,
    num_samples: int,
    *,
    seed: int = 0,
    vertices: np.ndarray | None = None,
) -> np.ndarray:
    """Reference per-vertex loop the vectorised path is pinned against."""
    n = graph.num_vertices
    multipliers, offsets = _random_hash_parameters(num_samples, seed)
    sketches = np.full((n, num_samples), EMPTY_BUCKET, dtype=np.int64)
    selected = np.arange(n, dtype=np.int64) if vertices is None else np.asarray(vertices)
    for v in selected:
        v = int(v)
        closed = graph.closed_neighborhood(v)
        for sample in range(num_samples):
            hashed = _hash_values(closed, int(multipliers[sample]), int(offsets[sample]))
            sketches[v, sample] = hashed.min()
    return sketches


def estimate_jaccard(sketch_a: np.ndarray, sketch_b: np.ndarray) -> float:
    """Fraction of agreeing coordinates between two standard MinHash sketches."""
    sketch_a = np.asarray(sketch_a)
    sketch_b = np.asarray(sketch_b)
    if sketch_a.shape != sketch_b.shape:
        raise ValueError("sketches must have equal length")
    if sketch_a.shape[0] == 0:
        raise ValueError("sketches must be non-empty")
    return float(np.count_nonzero(sketch_a == sketch_b)) / sketch_a.shape[0]


def k_partition_minhash_sketches(
    graph: Graph,
    num_samples: int,
    *,
    seed: int = 0,
    scheduler: Scheduler | None = None,
    vertices: np.ndarray | None = None,
) -> np.ndarray:
    """One-permutation (k-partition) MinHash sketches of closed neighborhoods.

    Each element is hashed once; its bucket is ``hash mod k`` and its in-bucket
    value is ``hash // k``.  The sketch stores the minimum in-bucket value per
    bucket, with :data:`EMPTY_BUCKET` marking buckets no element landed in.
    Work ``O(Σ (degree + k))``, span ``O(log n)``.

    Vectorised as one hash pass over the flattened closed neighborhoods
    followed by a sort-based segmented minimum over the composite
    ``(vertex, bucket)`` keys -- no Python loop at all.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    scheduler = scheduler if scheduler is not None else Scheduler()
    n = graph.num_vertices
    multipliers, offsets = _random_hash_parameters(1, seed)
    multiplier, offset = int(multipliers[0]), int(offsets[0])
    sketches = np.full((n, num_samples), EMPTY_BUCKET, dtype=np.int64)
    selected = np.arange(n, dtype=np.int64) if vertices is None else np.asarray(vertices)

    total_degree = int(graph.degrees[selected].sum()) if selected.size else 0
    scheduler.charge(
        total_degree + int(selected.size) * num_samples,
        ceil_log2(max(n, 1)) + 1.0,
    )
    if selected.size == 0:
        return sketches

    items, _, lengths = _flatten_closed_neighborhoods(graph, selected)
    hashed = _hash_values(items, multiplier, offset)
    buckets = hashed % num_samples
    values = hashed // num_samples
    # Composite (selected row, bucket) key of every hashed item; sorting the
    # keys makes each occupied bucket a contiguous run whose minimum one
    # reduceat pass extracts.
    rows = np.repeat(np.arange(selected.size, dtype=np.int64), lengths)
    composite = rows * np.int64(num_samples) + buckets
    order = np.argsort(composite, kind="stable")
    sorted_keys = composite[order]
    run_starts = np.flatnonzero(
        np.concatenate([[True], sorted_keys[1:] != sorted_keys[:-1]])
    )
    minima = np.minimum.reduceat(values[order], run_starts)
    occupied = sorted_keys[run_starts]
    sketches[selected[occupied // num_samples], occupied % num_samples] = minima
    return sketches


def _k_partition_minhash_sketches_scalar(
    graph: Graph,
    num_samples: int,
    *,
    seed: int = 0,
    vertices: np.ndarray | None = None,
) -> np.ndarray:
    """Reference per-vertex loop the vectorised path is pinned against."""
    n = graph.num_vertices
    multipliers, offsets = _random_hash_parameters(1, seed)
    multiplier, offset = int(multipliers[0]), int(offsets[0])
    sketches = np.full((n, num_samples), EMPTY_BUCKET, dtype=np.int64)
    selected = np.arange(n, dtype=np.int64) if vertices is None else np.asarray(vertices)
    for v in selected:
        v = int(v)
        closed = graph.closed_neighborhood(v)
        hashed = _hash_values(closed, multiplier, offset)
        buckets = hashed % num_samples
        values = hashed // num_samples
        np.minimum.at(sketches[v], buckets, values)
    return sketches


def estimate_jaccard_k_partition(sketch_a: np.ndarray, sketch_b: np.ndarray) -> float:
    """Jaccard estimate from two k-partition sketches, ignoring jointly empty buckets.

    Buckets that are empty in both sketches carry no information and are
    skipped; if every bucket is jointly empty the estimate is 0.
    """
    sketch_a = np.asarray(sketch_a)
    sketch_b = np.asarray(sketch_b)
    if sketch_a.shape != sketch_b.shape:
        raise ValueError("sketches must have equal length")
    informative = ~((sketch_a == EMPTY_BUCKET) & (sketch_b == EMPTY_BUCKET))
    count = int(np.count_nonzero(informative))
    if count == 0:
        return 0.0
    matches = int(np.count_nonzero((sketch_a == sketch_b) & informative))
    return matches / count


def estimate_jaccard_batch(
    sketches: np.ndarray,
    pairs_u: np.ndarray,
    pairs_v: np.ndarray,
    *,
    k_partition: bool = True,
    scheduler: Scheduler | None = None,
) -> np.ndarray:
    """Vectorised Jaccard estimates for many vertex pairs at once."""
    pairs_u = np.asarray(pairs_u, dtype=np.int64)
    pairs_v = np.asarray(pairs_v, dtype=np.int64)
    if pairs_u.shape != pairs_v.shape:
        raise ValueError("pair arrays must have equal length")
    k = sketches.shape[1]
    if scheduler is not None:
        scheduler.charge(int(pairs_u.size) * k, ceil_log2(max(k, 1)) + 1.0)
    left = sketches[pairs_u]
    right = sketches[pairs_v]
    if not k_partition:
        return np.count_nonzero(left == right, axis=1) / float(k)
    informative = ~((left == EMPTY_BUCKET) & (right == EMPTY_BUCKET))
    counts = informative.sum(axis=1)
    matches = np.count_nonzero((left == right) & informative, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        estimates = np.where(counts > 0, matches / np.maximum(counts, 1), 0.0)
    return estimates
